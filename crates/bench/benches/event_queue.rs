//! Future-event-list throughput: the inner loop of every simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmsb_simcore::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Pseudo-random but deterministic times.
            let mut t = 12345u64;
            for i in 0..1000u64 {
                t = t.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push(SimTime::from_nanos(t >> 20), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
    group.bench_function("interleaved_hold_64", |b| {
        // Steady-state pattern: pop one, push one, 64 events resident.
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..64u64 {
                q.push(SimTime::from_nanos(i), i);
            }
            let mut sum = 0u64;
            for _ in 0..1000 {
                let (at, e) = q.pop().unwrap();
                sum += e;
                q.push(at + pmsb_simcore::SimDuration::from_nanos(64), e);
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
