//! Per-packet decision cost of each marking scheme — the paper argues
//! PMSB "keeps the same scale implementation complexity as ECN/RED"
//! (§IV-C); this bench quantifies that claim for the software models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmsb::marking::{MarkingScheme, MqEcn, PerPort, PerQueue, Pmsb, Tcn};
use pmsb::PortSnapshot;

fn snapshot() -> PortSnapshot {
    let mut b = PortSnapshot::builder(8)
        .round_time_nanos(9_600)
        .sojourn_nanos(25_000);
    for q in 0..8 {
        b = b.queue_bytes(q, (q as u64 + 1) * 3_000);
    }
    b.build()
}

fn bench_marking(c: &mut Criterion) {
    let view = snapshot();
    let mut group = c.benchmark_group("marking_decision");
    let mut schemes: Vec<(&str, Box<dyn MarkingScheme>)> = vec![
        ("per_queue", Box::new(PerQueue::standard(16 * 1500, 8))),
        ("per_port", Box::new(PerPort::new(16 * 1500))),
        ("mq_ecn", Box::new(MqEcn::new(65 * 1500, vec![1500; 8]))),
        ("tcn", Box::new(Tcn::new(78_200))),
        ("pmsb", Box::new(Pmsb::new(12 * 1500, vec![1; 8]))),
    ];
    for (name, scheme) in schemes.iter_mut() {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut marks = 0u32;
                for q in 0..8 {
                    if scheme.should_mark(black_box(&view), q).is_mark() {
                        marks += 1;
                    }
                }
                black_box(marks)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marking);
criterion_main!(benches);
