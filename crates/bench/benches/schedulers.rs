//! Enqueue+dequeue cost of each scheduler under an 8-queue backlog.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmsb_sched::{Dwrr, HierSpWfq, MultiQueue, SchedItem, Scheduler, StrictPriority, Wfq, Wrr};

#[derive(Debug, Clone, Copy)]
struct Pkt(u64);
impl SchedItem for Pkt {
    fn len_bytes(&self) -> u64 {
        self.0
    }
}

fn drive(sched: Box<dyn Scheduler>, ops: usize) -> u64 {
    let n = sched.num_queues();
    let mut mq = MultiQueue::new(sched, u64::MAX);
    let mut now = 0u64;
    for _ in 0..4 {
        for q in 0..n {
            mq.enqueue(q, Pkt(1500), now).unwrap();
        }
    }
    let mut served = 0u64;
    for _ in 0..ops {
        let (q, p) = mq.dequeue(now).unwrap();
        served += p.0;
        now += 1500;
        mq.enqueue(q, Pkt(1500), now).unwrap();
    }
    served
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_ops");
    let ops = 1000;
    group.bench_function("sp", |b| {
        b.iter(|| black_box(drive(Box::new(StrictPriority::new(8)), ops)))
    });
    group.bench_function("wrr", |b| {
        b.iter(|| black_box(drive(Box::new(Wrr::new(vec![1; 8])), ops)))
    });
    group.bench_function("dwrr", |b| {
        b.iter(|| black_box(drive(Box::new(Dwrr::new(vec![1; 8], 1500)), ops)))
    });
    group.bench_function("wfq", |b| {
        b.iter(|| black_box(drive(Box::new(Wfq::new(vec![1; 8])), ops)))
    });
    group.bench_function("sp_wfq", |b| {
        b.iter(|| {
            black_box(drive(
                Box::new(HierSpWfq::new(vec![0, 0, 1, 1, 1, 1, 1, 1], vec![1; 8])),
                ops,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
