//! End-to-end simulator throughput: a small dumbbell contention scenario
//! per scheme, measuring full events-through-the-world cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};

fn run(marking: MarkingConfig) -> usize {
    let mut e = Experiment::dumbbell(4, 2).marking(marking);
    for s in 0..4 {
        e.add_flow(FlowDesc::bulk(s, 4, s % 2, 500_000));
    }
    let res = e.run_for_millis(10);
    res.fct.len()
}

fn bench_small_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("dumbbell_4x500KB");
    group.sample_size(20);
    for (name, marking) in [
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        ),
        ("per_port", MarkingConfig::PerPort { threshold_pkts: 16 }),
        ("mq_ecn", MarkingConfig::MqEcn { standard_pkts: 16 }),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            },
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run(marking.clone()))));
    }
    group.finish();
}

criterion_group!(benches, bench_small_sim);
criterion_main!(benches);
