//! DCTCP sender/receiver state-machine throughput (per-ACK cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmsb_netsim::config::TransportConfig;
use pmsb_netsim::packet::PacketKind;
use pmsb_netsim::transport::{DctcpReceiver, DctcpSender};

/// One complete in-memory transfer: sender and receiver joined directly.
fn transfer(bytes: u64, mark_every: u64) -> u64 {
    let cfg = TransportConfig::default();
    let mut s = DctcpSender::new(1, 0, 1, 0, bytes, None, 0, &cfg);
    let mut r = DctcpReceiver::new(1);
    let mut now = 0u64;
    let mut in_flight = s.start(now).packets;
    let mut count = 0u64;
    while !s.is_completed() {
        now += 10_000;
        let acks: Vec<_> = in_flight
            .drain(..)
            .map(|mut p| {
                count += 1;
                if mark_every > 0 && count.is_multiple_of(mark_every) {
                    p.ce = true;
                }
                r.on_data(&p, now).ack.expect("per-packet ACKs")
            })
            .collect();
        now += 10_000;
        for a in acks {
            let PacketKind::Ack { cum_ack, ece } = a.kind else {
                unreachable!()
            };
            in_flight.extend(s.on_ack(cum_ack, ece, a.sent_at_nanos, now).packets);
        }
        if in_flight.is_empty() && !s.is_completed() {
            break; // safety: should not happen
        }
    }
    count
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("dctcp_transfer");
    group.bench_function("1mb_unmarked", |b| {
        b.iter(|| black_box(transfer(1_000_000, 0)))
    });
    group.bench_function("1mb_marked_every_8", |b| {
        b.iter(|| black_box(transfer(1_000_000, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
