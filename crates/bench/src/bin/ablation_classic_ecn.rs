//! Ablation: DCTCP's proportional cut vs classic ECN halving.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ablation_classic_ecn(quick);
}
