//! Ablation: DCTCP's proportional cut vs classic ECN halving.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ablation_classic_ecn/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ablation_classic_ecn");
}
