//! Ablation: ACK coalescing sensitivity.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ablation_delayed_acks/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ablation_delayed_acks");
}
