//! Ablation: ACK coalescing sensitivity.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ablation_delayed_acks(quick);
}
