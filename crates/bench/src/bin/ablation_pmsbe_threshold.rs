//! Ablation: PMSB(e) RTT-threshold sensitivity.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ablation_pmsbe_threshold(quick);
}
