//! Ablation: PMSB(e) RTT-threshold sensitivity.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ablation_pmsbe_threshold/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ablation_pmsbe_threshold");
}
