//! Ablation: PMSB port-threshold sensitivity (fairness + latency).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ablation_port_threshold(quick);
}
