//! Ablation: PMSB port-threshold sensitivity (fairness + latency).
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ablation_port_threshold/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ablation_port_threshold");
}
