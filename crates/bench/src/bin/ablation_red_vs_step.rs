//! Ablation: RED ramp vs DCTCP step marking.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ablation_red_vs_step/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ablation_red_vs_step");
}
