//! Ablation: RED ramp vs DCTCP step marking.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ablation_red_vs_step(quick);
}
