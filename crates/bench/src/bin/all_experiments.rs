//! Runs every experiment in the paper, in order. Pass `--quick` for a
//! fast smoke run.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let t0 = std::time::Instant::now();
    pmsb_bench::figures::fig01(quick);
    pmsb_bench::figures::fig02(quick);
    pmsb_bench::figures::fig03(quick);
    pmsb_bench::figures::fig04(quick);
    pmsb_bench::figures::fig05(quick);
    pmsb_bench::figures::fig06(quick);
    pmsb_bench::figures::fig07(quick);
    pmsb_bench::figures::fig08(quick);
    pmsb_bench::figures::fig09(quick);
    pmsb_bench::figures::fig10(quick);
    pmsb_bench::figures::fig11_12(quick);
    pmsb_bench::figures::fig13(quick);
    pmsb_bench::figures::fig14(quick);
    pmsb_bench::figures::fig15(quick);
    pmsb_bench::figures::table1();
    pmsb_bench::figures::thm_iv1(quick);
    pmsb_bench::large_scale::fig16_21(quick);
    pmsb_bench::large_scale::fig22_27(quick);
    pmsb_bench::extensions::ext_per_pool_violation(quick);
    pmsb_bench::extensions::ablation_port_threshold(quick);
    pmsb_bench::extensions::ablation_pmsbe_threshold(quick);
    pmsb_bench::extensions::ablation_red_vs_step(quick);
    pmsb_bench::extensions::ablation_classic_ecn(quick);
    pmsb_bench::extensions::ablation_delayed_acks(quick);
    pmsb_bench::extensions::ext_dynamic_threshold(quick);
    pmsb_bench::extensions::ext_websearch_workload(quick);
    pmsb_bench::extensions::ext_datamining_workload(quick);
    pmsb_bench::extensions::ext_incast(quick);
    pmsb_bench::extensions::ext_seed_sensitivity(quick);
    println!("\nall experiments done in {:?}", t0.elapsed());
}
