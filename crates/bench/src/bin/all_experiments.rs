//! Runs every experiment in the paper plus the extensions, as one
//! harness campaign. Pass `--quick` for a fast smoke run and `--jobs N`
//! to fan cells across N workers; rerunning resumes completed jobs
//! from `results/all_experiments/records.jsonl` at zero cost.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("all");
}
