//! The buffer-contention campaign: marking schemes under shared-pool
//! buffer policies (see `pmsb_bench::buffers`).

fn main() {
    pmsb_bench::campaigns::run_campaign_main("buffers");
}
