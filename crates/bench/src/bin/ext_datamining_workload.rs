//! Extension experiment: `ext_datamining_workload`.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ext_datamining_workload(quick);
}
