//! Extension experiment: `ext_datamining_workload`.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ext_datamining_workload/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ext_datamining_workload");
}
