//! Extension: Dynamic Threshold vs static shared buffer.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ext_dynamic_threshold/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ext_dynamic_threshold");
}
