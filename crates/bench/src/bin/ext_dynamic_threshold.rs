//! Extension: Dynamic Threshold vs static shared buffer.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ext_dynamic_threshold(quick);
}
