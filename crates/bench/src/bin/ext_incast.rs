//! Extension experiment: `ext_incast`.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ext_incast/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ext_incast");
}
