//! Extension experiment: `ext_incast`.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ext_incast(quick);
}
