//! Extension: per-service-pool marking couples unrelated ports.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ext_per_pool_violation/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ext_per_pool_violation");
}
