//! Extension: per-service-pool marking couples unrelated ports.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ext_per_pool_violation(quick);
}
