//! Extension experiment: `ext_seed_sensitivity`.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/seed_sensitivity/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("seed-sensitivity");
}
