//! Extension experiment: `ext_seed_sensitivity`.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ext_seed_sensitivity(quick);
}
