//! Extension: large-scale comparison on the web-search workload.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/ext_websearch_workload/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("ext_websearch_workload");
}
