//! Extension: large-scale comparison on the web-search workload.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::extensions::ext_websearch_workload(quick);
}
