//! Fault-injection sweep: marking schemes under link flaps and 0.1%
//! random loss on a small leaf-spine.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/faults/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("faults");
}
