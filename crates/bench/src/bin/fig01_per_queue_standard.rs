//! Fig. 1: per-queue standard-threshold marking inflates RTT with queue count.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig01(quick);
}
