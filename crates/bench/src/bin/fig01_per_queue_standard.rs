//! Fig. 1: per-queue standard-threshold marking inflates RTT with queue count.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig01(&mut out, quick);
    print!("{out}");
}
