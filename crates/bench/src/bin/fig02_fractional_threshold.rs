//! Fig. 2: fractional per-queue thresholds lose lone-flow throughput.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig02(quick);
}
