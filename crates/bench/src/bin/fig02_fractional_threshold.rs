//! Fig. 2: fractional per-queue thresholds lose lone-flow throughput.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig02(&mut out, quick);
    print!("{out}");
}
