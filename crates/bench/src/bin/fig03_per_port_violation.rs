//! Fig. 3: per-port marking violates weighted fair sharing (1 vs 8 flows).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig03(quick);
}
