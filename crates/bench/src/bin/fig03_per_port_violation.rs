//! Fig. 3: per-port marking violates weighted fair sharing (1 vs 8 flows).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig03(&mut out, quick);
    print!("{out}");
}
