//! Fig. 4: DCTCP dequeue marking lowers the slow-start buffer peak.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig04(&mut out, quick);
    print!("{out}");
}
