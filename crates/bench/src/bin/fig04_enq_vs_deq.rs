//! Fig. 4: DCTCP dequeue marking lowers the slow-start buffer peak.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig04(quick);
}
