//! Fig. 5: TCN cannot accelerate congestion notification.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig05(quick);
}
