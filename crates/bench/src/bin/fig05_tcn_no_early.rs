//! Fig. 5: TCN cannot accelerate congestion notification.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig05(&mut out, quick);
    print!("{out}");
}
