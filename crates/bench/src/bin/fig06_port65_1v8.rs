//! Fig. 6: per-port K=65 restores fairness for 1 vs 8 flows.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig06(&mut out, quick);
    print!("{out}");
}
