//! Fig. 6: per-port K=65 restores fairness for 1 vs 8 flows.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig06(quick);
}
