//! Fig. 7: per-port K=65 is violated again at 1 vs 40 flows.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig07(quick);
}
