//! Fig. 7: per-port K=65 is violated again at 1 vs 40 flows.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig07(&mut out, quick);
    print!("{out}");
}
