//! Fig. 8: PMSB preserves 1:1 weighted fair sharing (1 vs 4 flows).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig08(&mut out, quick);
    print!("{out}");
}
