//! Fig. 9: RTT distribution of queue-2 flows under each scheme.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig09(&mut out, quick);
    print!("{out}");
}
