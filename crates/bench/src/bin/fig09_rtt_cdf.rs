//! Fig. 9: RTT distribution of queue-2 flows under each scheme.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig09(quick);
}
