//! Fig. 10: PMSB holds fair sharing under heavy traffic (1 vs 100 flows).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig10(&mut out, quick);
    print!("{out}");
}
