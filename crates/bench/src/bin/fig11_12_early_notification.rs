//! Figs. 11/12: PMSB and PMSB(e) deliver congestion information early.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig11_12(&mut out, quick);
    print!("{out}");
}
