//! Figs. 11/12: PMSB and PMSB(e) deliver congestion information early.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig11_12(quick);
}
