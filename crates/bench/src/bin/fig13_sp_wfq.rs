//! Fig. 13: PMSB preserves SP+WFQ scheduling (5 / 2.5 / 2.5 Gbps).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig13(quick);
}
