//! Fig. 13: PMSB preserves SP+WFQ scheduling (5 / 2.5 / 2.5 Gbps).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig13(&mut out, quick);
    print!("{out}");
}
