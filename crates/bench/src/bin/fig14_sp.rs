//! Fig. 14: PMSB preserves strict-priority scheduling (5 / 3 / 2 Gbps).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig14(quick);
}
