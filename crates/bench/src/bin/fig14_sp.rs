//! Fig. 14: PMSB preserves strict-priority scheduling (5 / 3 / 2 Gbps).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig14(&mut out, quick);
    print!("{out}");
}
