//! Fig. 15: PMSB preserves WFQ (10 Gbps solo, then 5 / 5 Gbps).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::fig15(&mut out, quick);
    print!("{out}");
}
