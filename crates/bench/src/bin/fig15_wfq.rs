//! Fig. 15: PMSB preserves WFQ (10 Gbps solo, then 5 / 5 Gbps).
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::fig15(quick);
}
