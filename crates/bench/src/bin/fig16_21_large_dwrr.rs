//! Figs. 16-21: large-scale leaf-spine FCT sweep under DWRR.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`; results persist under
//! `results/large_scale_dwrr/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("large-scale-dwrr");
}
