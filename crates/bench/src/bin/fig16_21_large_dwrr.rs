//! Figs. 16-21: large-scale leaf-spine FCT sweep under DWRR.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::large_scale::fig16_21(quick);
}
