//! Figs. 22-27: large-scale leaf-spine FCT sweep under WFQ.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::large_scale::fig22_27(quick);
}
