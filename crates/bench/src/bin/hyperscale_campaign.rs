//! Hyperscale fat-tree sweep: marking schemes under streamed incast,
//! shuffle, and hot-service patterns with slab flow state and sketch
//! telemetry.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`, `--sim-threads N`; results persist under
//! `results/hyperscale/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("hyperscale");
}
