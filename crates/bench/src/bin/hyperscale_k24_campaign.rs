//! Hyperscale k=24 cells: PMSB vs plain per-port on the 3456-host
//! `fat_tree(24)` fabric under streamed shuffle and web-search-sized
//! mix patterns, on the hybrid flow-level engine.
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`, `--sim-threads N|auto`,
//! `--partition traffic|contiguous`; results persist under
//! `results/hyperscale_k24/` and completed jobs resume for free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("hyperscale-k24");
}
