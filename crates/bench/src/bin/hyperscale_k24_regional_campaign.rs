//! Hyperscale k=24 regional cells: PMSB vs plain per-port on the
//! 3456-host `fat_tree(24)` fabric under streamed shuffle and
//! web-search-sized mix patterns, on the *regional* engine — the auto
//! hot set of switch ports runs at full packet level (real scheduler,
//! marking, PMSB(e) filter) inside the fluid run, so the scheme columns
//! separate through measured per-queue marking where the hybrid
//! engine's shared closed form keeps them identical (DESIGN.md §13).
//!
//! Runs as a harness campaign: accepts `--quick`, `--jobs N`,
//! `--results DIR`, `--quiet`, `--sim-threads N|auto`,
//! `--partition traffic|contiguous`; results persist under
//! `results/hyperscale_k24_regional/` and completed jobs resume for
//! free.
fn main() {
    pmsb_bench::campaigns::run_campaign_main("hyperscale-k24-regional");
}
