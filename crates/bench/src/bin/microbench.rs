//! Self-timed micro-benchmarks: marking decisions, scheduler ops, the
//! event queue, DCTCP transfers, and a small end-to-end simulation.
//! Pass `--quick` for a fast smoke run.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::micro::run_all(&mut out, quick);
    print!("{out}");
}
