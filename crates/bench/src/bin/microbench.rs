//! Self-timed micro-benchmarks: marking decisions, scheduler ops, the
//! event queue, DCTCP transfers, and a small end-to-end simulation.
//!
//! Flags:
//! * `--quick` — fast smoke run (fewer iterations);
//! * `--json PATH` — additionally write a machine-readable report
//!   (see `pmsb_bench::report`) with derived hot-path metrics and the
//!   FEL determinism cross-check;
//! * `--baseline PATH` — a previous run to compare against: either a
//!   committed `BENCH_*.json` report (schema `pmsb-bench/v1`) or the
//!   legacy `case,mean_ns,best_ns` CSV (captured stdout); folds
//!   before/after numbers and per-case speedups into the JSON report.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = pmsb_bench::util::quick_flag();
    let json_path = flag_value("--json");
    let baseline_path = flag_value("--baseline");

    let mut out = String::new();
    let results = pmsb_bench::micro::run_all(&mut out, quick);
    print!("{out}");

    if let Some(path) = json_path {
        let baseline = baseline_path.map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
        });
        let report = match pmsb_bench::report::build(&results, baseline.as_deref(), quick) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("microbench: {e}");
                std::process::exit(2);
            }
        };
        std::fs::write(&path, report)
            .unwrap_or_else(|e| panic!("cannot write JSON report {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
