//! Table I: the qualitative capability matrix, generated from the code.
fn main() {
    let mut out = String::new();
    pmsb_bench::figures::table1(&mut out);
    print!("{out}");
}
