//! Table I: the qualitative capability matrix, generated from the code.
fn main() {
    pmsb_bench::figures::table1();
}
