//! Theorem IV.1: empirical threshold-bound validation.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    pmsb_bench::figures::thm_iv1(quick);
}
