//! Theorem IV.1: empirical threshold-bound validation.
fn main() {
    let quick = pmsb_bench::util::quick_flag();
    let mut out = String::new();
    pmsb_bench::figures::thm_iv1(&mut out, quick);
    print!("{out}");
}
