//! Runs the transport campaign: DCTCP vs classic-ECN NewReno across the
//! marking lineup on the small leaf–spine. See `crate::transport`.

fn main() {
    pmsb_bench::campaigns::run_campaign_main("transport");
}
