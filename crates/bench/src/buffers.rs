//! Buffer-contention campaign: the marking lineup under shared-memory
//! switch pools.
//!
//! PMSB's signal is *per-port occupancy*, but on a real shared-buffer
//! ASIC a port's admissible backlog shrinks as the rest of the switch
//! fills. This campaign re-runs the marking lineup under buffer
//! contention: synchronized incast epochs on the small leaf–spine, with
//! the switch memory managed by each [`pmsb_netsim::BufferPolicy`] —
//! `static` (private per-port buffers), `dt:1` (Dynamic-Threshold shared
//! pool), `delay:100` (BShare-style delay-driven caps) — in two memory
//! regimes: `normal` (the default 2 MiB per port) and `tiny` (a 4-MTU
//! per-port budget, the Tiny-Buffer-TCP regime where marking schemes
//! are most likely to collapse). The `shared_drops`/`admit_rejects`/
//! `pool_high_water` columns come from
//! [`pmsb_metrics::contention::ContentionSummary`].

use pmsb_harness::Record;
use pmsb_metrics::fct::SizeClass;
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};
use pmsb_netsim::packet::MTU_WIRE_BYTES;
use pmsb_netsim::BufferPolicy;

use crate::outln;
use crate::util::banner;

/// Fabric shape, shared with the fault and transport sweeps: 2 leaves x
/// 2 spines x 4 hosts per leaf.
pub const LEAVES: usize = 2;
/// Spine count.
pub const SPINES: usize = 2;
/// Hosts under each leaf.
pub const HOSTS_PER_LEAF: usize = 4;

/// Response size each incast sender ships per epoch (a classic
/// partition-aggregate answer; small class, so `small_p99_us` is the
/// headline column).
pub const RESPONSE_BYTES: u64 = 64_000;

/// Epoch spacing: wide enough for a clean drain between bursts on the
/// normal regime, tight enough that tiny-regime RTO survivors overlap
/// the next burst.
pub const EPOCH_NANOS: u64 = 1_000_000;

/// The buffer policies of the sweep, with their canonical CLI names.
pub fn policies() -> Vec<BufferPolicy> {
    vec![
        BufferPolicy::Static,
        BufferPolicy::DynamicThreshold { alpha: 1.0 },
        BufferPolicy::DelayDriven {
            target_delay_nanos: 100_000,
        },
    ]
}

/// The memory regimes of the sweep: per-port buffer budget in bytes.
/// Shared pools total the sum of a switch's port budgets, so `static`
/// and the shared policies compare at equal switch memory.
pub fn regimes() -> Vec<(&'static str, u64)> {
    vec![
        ("normal", 2 * 1024 * 1024),
        // The Tiny-Buffer regime: a few MTUs per port. One 16-packet
        // slow-start burst overruns a whole leaf pool by itself.
        ("tiny", 4 * MTU_WIRE_BYTES),
    ]
}

/// One `(scheme, policy, regime)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct BufRow {
    /// Scheme name (the transport campaign's marking lineup).
    pub scheme: &'static str,
    /// Buffer policy CLI name (`static` / `dt:1` / `delay:100`).
    pub buffer: String,
    /// Memory regime (`normal` / `tiny`).
    pub regime: &'static str,
    /// Completed flows.
    pub completed: usize,
    /// Injected flows.
    pub injected: usize,
    /// Overall average FCT, µs.
    pub overall_avg_us: f64,
    /// Small-flow 99th-percentile FCT, µs.
    pub small_p99_us: f64,
    /// CE marks applied by switches.
    pub marks: u64,
    /// All packet drops (per-port tail drops + pool rejections).
    pub drops: u64,
    /// Packets the shared pools refused (0 under `static`).
    pub shared_drops: u64,
    /// Pool refusals from the policy cap while pool space remained.
    pub admit_rejects: u64,
    /// Peak occupancy of the fullest pool, bytes (0 under `static`).
    pub pool_high_water: u64,
    /// Retransmission timeouts across all senders.
    pub timeouts: u64,
}

/// The incast flow list: every host except the aggregator (host 0)
/// ships one response per epoch, all starting at the same instant —
/// service queues spread by sender so multi-queue marking has work to
/// do. Deterministic: no RNG, identical on every LP.
fn incast_flows(epochs: u64) -> Vec<FlowDesc> {
    let num_hosts = LEAVES * HOSTS_PER_LEAF;
    let mut flows = Vec::new();
    for e in 0..epochs {
        let at = 1_000_000 + e * EPOCH_NANOS;
        for src in 1..num_hosts {
            flows.push(FlowDesc::bulk(src, 0, src % 8, RESPONSE_BYTES).starting_at(at));
        }
    }
    flows
}

/// Runs one `(scheme, policy, regime)` cell.
pub fn run_cell(
    scheme: &'static str,
    marking: MarkingConfig,
    pmsbe: Option<u64>,
    policy: BufferPolicy,
    regime: &'static str,
    port_bytes: u64,
    epochs: u64,
) -> BufRow {
    let mut e = Experiment::leaf_spine(LEAVES, SPINES, HOSTS_PER_LEAF)
        .marking(marking)
        .buffer(policy)
        .buffer_bytes(port_bytes)
        .sim_threads(crate::util::sim_threads())
        .partition(crate::util::partition());
    if let Some(thr) = pmsbe {
        e = e.pmsbe_rtt_threshold_nanos(thr);
    }
    let flows = incast_flows(epochs);
    let last = flows.last().map(|f| f.start_nanos).unwrap_or(0);
    let injected = flows.len();
    e.add_flows(flows);
    // Tiny-regime stragglers sit through multi-RTO backoff; give them
    // room to finish so the tail percentiles are about the survivors'
    // real cost, not the cutoff.
    let res = e.run_until_nanos(last + 2_000_000_000);
    let stat = |c: SizeClass, f: fn(&pmsb_metrics::Summary) -> f64| {
        res.fct.stats(c).map(|s| f(&s) / 1e3).unwrap_or(f64::NAN)
    };
    let sb = res.shared_buffer.unwrap_or_default();
    BufRow {
        scheme,
        buffer: policy.name(),
        regime,
        completed: res.fct.len(),
        injected,
        overall_avg_us: stat(SizeClass::Overall, |s| s.mean),
        small_p99_us: stat(SizeClass::Small, |s| s.p99),
        marks: res.marks,
        drops: res.drops,
        shared_drops: sb.shared_drops,
        admit_rejects: sb.admit_rejects,
        pool_high_water: sb.pool_high_water_bytes,
        timeouts: res.sender_stats.values().map(|s| s.timeouts).sum(),
    }
}

/// The epoch count of the sweep (or the `--quick` smoke version).
pub fn num_epochs(quick: bool) -> u64 {
    if quick {
        5
    } else {
        20
    }
}

/// The CSV header matching [`csv_line`].
pub const CSV_HEADER: &str = "scheme,buffer,regime,completed,injected,overall_avg_us,\
                              small_p99_us,marks,drops,shared_drops,admit_rejects,\
                              pool_high_water,timeouts";

/// One [`BufRow`] as a CSV line (no newline).
pub fn csv_line(row: &BufRow) -> String {
    format!(
        "{},{},{},{},{},{:.1},{:.1},{},{},{},{},{},{}",
        row.scheme,
        row.buffer,
        row.regime,
        row.completed,
        row.injected,
        row.overall_avg_us,
        row.small_p99_us,
        row.marks,
        row.drops,
        row.shared_drops,
        row.admit_rejects,
        row.pool_high_water,
        row.timeouts
    )
}

/// The harness-record payload of one cell.
pub fn row_record(row: &BufRow) -> Record {
    Record::new()
        .field("completed", row.completed)
        .field("injected", row.injected)
        .field("overall_avg_us", row.overall_avg_us)
        .field("small_p99_us", row.small_p99_us)
        .field("marks", row.marks)
        .field("drops", row.drops)
        .field("shared_drops", row.shared_drops)
        .field("admit_rejects", row.admit_rejects)
        .field("pool_high_water", row.pool_high_water)
        .field("timeouts", row.timeouts)
}

/// Rebuilds a [`BufRow`] from a record written by [`row_record`] (with
/// `scheme`, `buffer` and `regime` job parameters).
pub fn row_from_record(rec: &Record) -> Option<BufRow> {
    let scheme = crate::transport::schemes()
        .into_iter()
        .map(|(name, _, _)| name)
        .find(|s| rec.get_str("scheme") == Some(s))?;
    let buffer = policies()
        .into_iter()
        .map(|p| p.name())
        .find(|b| rec.get_str("buffer") == Some(b))?;
    let regime = regimes()
        .into_iter()
        .map(|(name, _)| name)
        .find(|r| rec.get_str("regime") == Some(r))?;
    let f = |k: &str| rec.get_f64(k);
    Some(BufRow {
        scheme,
        buffer,
        regime,
        completed: f("completed")? as usize,
        injected: f("injected")? as usize,
        overall_avg_us: f("overall_avg_us")?,
        small_p99_us: f("small_p99_us")?,
        marks: f("marks")? as u64,
        drops: f("drops")? as u64,
        shared_drops: f("shared_drops")? as u64,
        admit_rejects: f("admit_rejects")? as u64,
        pool_high_water: f("pool_high_water")? as u64,
        timeouts: f("timeouts")? as u64,
    })
}

/// The report title.
pub const BUFFERS_TITLE: &str =
    "Buffers: marking schemes under shared-pool contention (7-to-1 incast, 2x2 leaf-spine)";

/// Writes the sweep table plus headline observations for a completed
/// set of cells.
pub fn write_report(out: &mut String, rows: &[BufRow]) {
    banner(out, BUFFERS_TITLE);
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    let cell = |scheme: &str, buffer: &str, regime: &str| {
        rows.iter()
            .find(|r| r.scheme == scheme && r.buffer == buffer && r.regime == regime)
    };
    for (scheme, _, _) in crate::transport::schemes() {
        if let (Some(st), Some(dt), Some(dl)) = (
            cell(scheme, "static", "tiny"),
            cell(scheme, "dt:1", "tiny"),
            cell(scheme, "delay:100", "tiny"),
        ) {
            outln!(
                out,
                "# {scheme} @ tiny: small p99 {:.1} us static vs {:.1} dt \
                 vs {:.1} delay (shared drops {} / {})",
                st.small_p99_us,
                dt.small_p99_us,
                dl.small_p99_us,
                dt.shared_drops,
                dl.shared_drops
            );
        }
    }
    for r in rows {
        if r.admit_rejects > 0 {
            outln!(
                out,
                "# {}/{}/{}: policy cap refused {} of {} pool rejections \
                 (pool peaked at {} bytes)",
                r.scheme,
                r.buffer,
                r.regime,
                r.admit_rejects,
                r.shared_drops,
                r.pool_high_water
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_round_trips_through_record() {
        let row = BufRow {
            scheme: "pmsb",
            buffer: "dt:1".into(),
            regime: "tiny",
            completed: 30,
            injected: 35,
            overall_avg_us: 812.5,
            small_p99_us: 4031.0,
            marks: 120,
            drops: 44,
            shared_drops: 40,
            admit_rejects: 11,
            pool_high_water: 36_000,
            timeouts: 5,
        };
        let rec = row_record(&row)
            .field("scheme", "pmsb")
            .field("buffer", "dt:1")
            .field("regime", "tiny");
        let back = row_from_record(&rec).expect("round-trip");
        assert_eq!(back.scheme, row.scheme);
        assert_eq!(back.buffer, row.buffer);
        assert_eq!(back.regime, row.regime);
        assert_eq!(back.shared_drops, row.shared_drops);
        assert_eq!(back.admit_rejects, row.admit_rejects);
        assert_eq!(back.pool_high_water, row.pool_high_water);
    }

    #[test]
    fn static_cells_report_no_pool_activity() {
        let row = run_cell(
            "per-port",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            None,
            BufferPolicy::Static,
            "normal",
            2 * 1024 * 1024,
            2,
        );
        assert!(row.completed > 0);
        assert_eq!(row.shared_drops, 0, "no pool under static");
        assert_eq!(row.pool_high_water, 0);
    }

    #[test]
    fn tiny_shared_cells_hit_the_pool() {
        for policy in [
            BufferPolicy::DynamicThreshold { alpha: 1.0 },
            BufferPolicy::DelayDriven {
                target_delay_nanos: 100_000,
            },
        ] {
            let row = run_cell(
                "pmsb",
                MarkingConfig::Pmsb {
                    port_threshold_pkts: 12,
                },
                None,
                policy,
                "tiny",
                4 * MTU_WIRE_BYTES,
                2,
            );
            assert!(
                row.shared_drops > 0,
                "{policy:?}: a 7-to-1 incast must overrun a 4-MTU pool"
            );
            assert!(row.pool_high_water > 0);
            assert!(row.completed > 0, "{policy:?}: survivors still finish");
        }
    }
}
