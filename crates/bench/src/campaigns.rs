//! Harness campaigns: every experiment in the suite expressed as
//! [`pmsb_harness`] jobs.
//!
//! Each figure/extension is one job whose record carries its headline
//! metrics plus the full human-readable report; the large-scale sweeps
//! and the seed-sensitivity study fan out one job per
//! `(scheduler, scheme, load, seed)` cell, so `--jobs N` parallelizes
//! the expensive part of `all_experiments` and interrupted runs resume
//! from `results/<campaign>/records.jsonl`.

use pmsb_harness::{Campaign, CampaignResult, Job, Record, RunOptions};
use pmsb_netsim::experiment::SchedulerConfig;

use crate::large_scale::{self, LsRow};
use crate::util::banner;
use crate::{buffers, extensions, faults, figures, hyperscale, outln, transport};

/// The seed used by single-seed sweeps, matching the paper runs.
pub const DEFAULT_SEED: u64 = 42;

/// The seeds of the seed-sensitivity study.
pub const SENSITIVITY_SEEDS: [u64; 3] = [42, 1337, 98765];

/// Wraps an experiment function into a job: the function writes its
/// report into a buffer and returns its headline metrics; the record
/// stores both. Figure/extension experiments derive all randomness
/// from fixed internal configuration, so the job seed is 0.
fn report_job(
    scenario: &'static str,
    quick: bool,
    f: impl FnOnce(&mut String) -> Record + Send + 'static,
) -> Job {
    Job::new(scenario, 0, move || {
        let mut out = String::new();
        let mut rec = f(&mut out);
        rec.push("report", out);
        rec
    })
    .param("quick", quick)
}

/// One job per static-flow experiment: Figs. 1–15, Table I, Thm. IV.1.
pub fn figure_jobs(quick: bool) -> Vec<Job> {
    let mut jobs = vec![
        report_job("fig01", quick, move |out| {
            let mut rec = Record::new();
            for (nq, s) in figures::fig01(out, quick) {
                rec.push(&format!("q{nq}_rtt_avg_us"), s.mean / 1e3);
                rec.push(&format!("q{nq}_rtt_p99_us"), s.p99 / 1e3);
            }
            rec
        }),
        report_job("fig02", quick, move |out| {
            let (full, frac) = figures::fig02(out, quick);
            Record::new().field("gbps_k16", full).field("gbps_k2", frac)
        }),
        report_job("fig03", quick, move |out| {
            share_record(&figures::fig03(out, quick))
        }),
        report_job("fig04", quick, move |out| {
            let (enq, deq) = figures::fig04(out, quick);
            Record::new()
                .field("enqueue_peak_pkts", enq)
                .field("dequeue_peak_pkts", deq)
        }),
        report_job("fig05", quick, move |out| {
            Record::new().field("tcn_peak_pkts", figures::fig05(out, quick))
        }),
        report_job("fig06", quick, move |out| {
            share_record(&figures::fig06(out, quick))
        }),
        report_job("fig07", quick, move |out| {
            share_record(&figures::fig07(out, quick))
        }),
        report_job("fig08", quick, move |out| {
            share_record(&figures::fig08(out, quick))
        }),
        report_job("fig09", quick, move |out| {
            let mut rec = Record::new();
            for (scheme, s) in figures::fig09(out, quick) {
                rec.push(&format!("{scheme}_rtt_avg_us"), s.mean / 1e3);
                rec.push(&format!("{scheme}_rtt_p99_us"), s.p99 / 1e3);
            }
            rec
        }),
        report_job("fig10", quick, move |out| {
            share_record(&figures::fig10(out, quick))
        }),
        report_job("fig11_12", quick, move |out| {
            let mut rec = Record::new();
            for (scheme, enq, deq) in figures::fig11_12(out, quick) {
                rec.push(&format!("{scheme}_enqueue_peak_pkts"), enq);
                rec.push(&format!("{scheme}_dequeue_peak_pkts"), deq);
            }
            rec
        }),
        report_job("fig13", quick, move |out| {
            queues_record(&figures::fig13(out, quick))
        }),
        report_job("fig14", quick, move |out| {
            queues_record(&figures::fig14(out, quick))
        }),
        report_job("fig15", quick, move |out| {
            let (solo, q1, q2) = figures::fig15(out, quick);
            Record::new()
                .field("solo_gbps", solo)
                .field("final_q1_gbps", q1)
                .field("final_q2_gbps", q2)
        }),
        report_job("thm_iv1", quick, move |out| {
            let mut rec = Record::new();
            for (ratio, k, util) in figures::thm_iv1(out, quick) {
                rec.push(&format!("k{k}_ratio"), ratio);
                rec.push(&format!("k{k}_utilization"), util);
            }
            rec
        }),
    ];
    // Table I is configuration-independent, so no `quick` parameter: a
    // quick run's record satisfies a full run too.
    jobs.push(Job::new("table1", 0, || {
        let mut out = String::new();
        let mut rec = Record::new();
        for (scheme, caps) in figures::table1(&mut out) {
            let yn: String = caps.iter().map(|c| if *c { 'y' } else { 'n' }).collect();
            rec.push(&scheme, yn);
        }
        rec.push("report", out);
        rec
    }));
    jobs
}

fn share_record(r: &crate::util::ShareResult) -> Record {
    let mut rec = Record::new();
    for (q, g) in r.queue_gbps.iter().enumerate() {
        rec.push(&format!("q{}_gbps", q + 1), *g);
    }
    rec.field("total_gbps", r.total_gbps)
        .field("marks", r.marks)
        .field("drops", r.drops)
}

fn queues_record(shares: &[f64]) -> Record {
    let mut rec = Record::new();
    for (q, g) in shares.iter().enumerate() {
        rec.push(&format!("q{}_final_gbps", q + 1), *g);
    }
    rec
}

/// One job per extension / ablation experiment.
pub fn extension_jobs(quick: bool) -> Vec<Job> {
    vec![
        report_job("ext_per_pool_violation", quick, move |out| {
            let (pool, port) = extensions::ext_per_pool_violation(out, quick);
            Record::new()
                .field("per_pool_gbps", pool)
                .field("per_port_gbps", port)
        }),
        report_job("ablation_port_threshold", quick, move |out| {
            let mut rec = Record::new();
            for (k, q1, p99) in extensions::ablation_port_threshold(out, quick) {
                rec.push(&format!("k{k}_queue1_gbps"), q1);
                rec.push(&format!("k{k}_rtt_p99_us"), p99);
            }
            rec
        }),
        report_job("ablation_pmsbe_threshold", quick, move |out| {
            let mut rec = Record::new();
            for (thr, victim, frac) in extensions::ablation_pmsbe_threshold(out, quick) {
                rec.push(&format!("thr{thr:.0}us_victim_gbps"), victim);
                rec.push(&format!("thr{thr:.0}us_ignored_frac"), frac);
            }
            rec
        }),
        report_job("ablation_red_vs_step", quick, move |out| {
            let (red, step) = extensions::ablation_red_vs_step(out, quick);
            Record::new()
                .field("red_mice_p99_us", red)
                .field("step_mice_p99_us", step)
        }),
        report_job("ablation_classic_ecn", quick, move |out| {
            let (dctcp, classic) = extensions::ablation_classic_ecn(out, quick);
            Record::new()
                .field("dctcp_gbps", dctcp)
                .field("classic_gbps", classic)
        }),
        report_job("ablation_delayed_acks", quick, move |out| {
            let mut rec = Record::new();
            for (m, p99, share) in extensions::ablation_delayed_acks(out, quick) {
                rec.push(&format!("m{m}_small_p99_us"), p99);
                rec.push(&format!("m{m}_victim_gbps"), share);
            }
            rec
        }),
        report_job("ext_dynamic_threshold", quick, move |out| {
            let (stat, dt) = extensions::ext_dynamic_threshold(out, quick);
            Record::new()
                .field("static_mice_p99_us", stat)
                .field("dt_mice_p99_us", dt)
        }),
        report_job("ext_websearch_workload", quick, move |out| {
            let mut rec = Record::new();
            for (scheme, p99) in extensions::ext_websearch_workload(out, quick) {
                rec.push(&format!("{scheme}_small_p99_us"), p99);
            }
            rec
        }),
        report_job("ext_datamining_workload", quick, move |out| {
            let mut rec = Record::new();
            for (scheme, p99) in extensions::ext_datamining_workload(out, quick) {
                rec.push(&format!("{scheme}_small_p99_us"), p99);
            }
            rec
        }),
        report_job("ext_incast", quick, move |out| {
            let mut rec = Record::new();
            for (scheme, last) in extensions::ext_incast(out, quick) {
                rec.push(&format!("{scheme}_last_completion_us"), last);
            }
            rec
        }),
    ]
}

/// Tags a sweep job with a `buffer` parameter when a non-default
/// (shared) buffer policy is active, so its records never collide with
/// the static-buffer golden records (same convention as the `engine`
/// parameter: default-policy jobs keep their historical keys).
fn tag_buffer(job: Job) -> Job {
    let buffer = crate::util::buffer_policy();
    if buffer.is_shared() {
        job.param("buffer", buffer.name())
    } else {
        job
    }
}

/// One job per `(scheme, load, seed)` cell of a large-scale sweep.
/// `scheduler` is `"dwrr"` (Figs. 16–21, MQ-ECN included) or `"wfq"`
/// (Figs. 22–27).
pub fn large_scale_jobs(scheduler: &'static str, quick: bool, seeds: &[u64]) -> Vec<Job> {
    let include_mq_ecn = scheduler == "dwrr";
    let scenario = if include_mq_ecn {
        "fig16_21"
    } else {
        "fig22_27"
    };
    let (loads, num_flows) = large_scale::loads_and_flows(quick);
    let mut jobs = Vec::new();
    for &seed in seeds {
        for &load in loads {
            for (name, marking, pmsbe, point) in large_scale::schemes(include_mq_ecn) {
                jobs.push(tag_buffer(
                    Job::new(scenario, seed, move || {
                        let sched = if include_mq_ecn {
                            SchedulerConfig::Dwrr {
                                weights: vec![1; 8],
                            }
                        } else {
                            SchedulerConfig::Wfq {
                                weights: vec![1; 8],
                            }
                        };
                        large_scale::row_record(&large_scale::run_cell(
                            sched,
                            name,
                            marking,
                            pmsbe,
                            point,
                            load,
                            num_flows,
                            seed,
                            crate::util::sim_threads(),
                        ))
                    })
                    .param("scheduler", scheduler)
                    .param("scheme", name)
                    .param("load", load)
                    .param("quick", quick),
                ));
            }
        }
    }
    jobs
}

/// One job per `(scheme, fault profile)` cell of the fault-injection
/// sweep (see [`crate::faults`]).
pub fn fault_jobs(quick: bool, seed: u64) -> Vec<Job> {
    let num_flows = faults::num_flows(quick);
    let mut jobs = Vec::new();
    for (name, marking) in faults::schemes() {
        for profile in faults::PROFILES {
            let marking = marking.clone();
            jobs.push(tag_buffer(
                Job::new("faults", seed, move || {
                    faults::row_record(&faults::run_cell(name, marking, profile, num_flows, seed))
                })
                .param("scheme", name)
                .param("profile", *profile)
                .param("quick", quick),
            ));
        }
    }
    jobs
}

/// Writes the fault-sweep table from completed records.
pub fn write_faults_report(out: &mut String, records: &[Record]) {
    let rows: Vec<faults::FaultRow> = records
        .iter()
        .filter(|r| r.get_str("scenario") == Some("faults"))
        .filter_map(faults::row_from_record)
        .collect();
    if !rows.is_empty() {
        faults::write_report(out, &rows);
    }
}

/// One job per `(scheme, pattern)` cell of the hyperscale fat-tree
/// sweep (see [`crate::hyperscale`]). Streaming cells: the record holds
/// sketch percentiles and the slab high-water mark, never a per-flow
/// sample store.
pub fn hyperscale_jobs(quick: bool, seed: u64) -> Vec<Job> {
    let (k, total_flows) = hyperscale::fabric_and_flows(quick);
    // Captured at job-construction time (`--engine` is parsed before the
    // campaign is built). Non-packet engines are tagged with an `engine`
    // parameter so their records never collide with the packet-engine
    // golden records; packet jobs keep their historical keys.
    let engine = crate::util::engine();
    let mut jobs = Vec::new();
    for scheme in hyperscale::schemes() {
        for pattern in hyperscale::patterns(quick) {
            let name = scheme.0;
            let pattern_name = pattern.0;
            let scheme = scheme.clone();
            let mut job = Job::new("hyperscale", seed, move || {
                hyperscale::row_record(&hyperscale::run_cell(
                    &scheme,
                    &pattern,
                    k,
                    total_flows,
                    seed,
                    crate::util::sim_threads(),
                    engine,
                ))
            })
            .param("scheme", name)
            .param("pattern", pattern_name)
            .param("quick", quick);
            if engine != pmsb_netsim::EngineKind::Packet {
                job = job.param("engine", engine.name());
            }
            jobs.push(tag_buffer(job));
        }
    }
    jobs
}

/// Writes the hyperscale table from completed records.
pub fn write_hyperscale_report(out: &mut String, records: &[Record]) {
    let rows: Vec<hyperscale::HsRow> = records
        .iter()
        .filter(|r| r.get_str("scenario") == Some("hyperscale"))
        .filter_map(hyperscale::row_from_record)
        .collect();
    if !rows.is_empty() {
        hyperscale::write_report(out, &rows);
    }
}

/// One job per `(scheme, pattern)` cell of the k=24 grid — the ROADMAP's
/// largest-fabric remnant. The engine is pinned to hybrid per cell (the
/// flow-level fast path is what makes 3456 hosts affordable as a
/// campaign cell), so `--engine` does not apply; records carry an
/// explicit `engine=hybrid` parameter.
pub fn hyperscale_k24_jobs(quick: bool, seed: u64) -> Vec<Job> {
    let total_flows = hyperscale::k24_flows(quick);
    let mut jobs = Vec::new();
    for scheme in hyperscale::k24_schemes() {
        for pattern in hyperscale::k24_patterns() {
            let name = scheme.0;
            let pattern_name = pattern.0;
            let scheme = scheme.clone();
            jobs.push(tag_buffer(
                Job::new("hyperscale_k24", seed, move || {
                    hyperscale::row_record(&hyperscale::run_cell(
                        &scheme,
                        &pattern,
                        hyperscale::K24_FABRIC,
                        total_flows,
                        seed,
                        crate::util::sim_threads(),
                        pmsb_netsim::EngineKind::Hybrid,
                    ))
                })
                .param("scheme", name)
                .param("pattern", pattern_name)
                .param("engine", "hybrid")
                .param("quick", quick),
            ));
        }
    }
    jobs
}

/// Writes the k=24 table from completed records.
pub fn write_hyperscale_k24_report(out: &mut String, records: &[Record]) {
    let rows: Vec<hyperscale::HsRow> = records
        .iter()
        .filter(|r| r.get_str("scenario") == Some("hyperscale_k24"))
        .filter_map(hyperscale::row_from_record)
        .collect();
    if !rows.is_empty() {
        hyperscale::write_k24_report(out, &rows);
    }
}

/// One job per `(scheme, pattern)` cell of the *regional* k=24 grid: the
/// same fabric and patterns as `hyperscale_k24`, but under the regional
/// engine (`auto` hot set), so the scheme columns differ through
/// *measured* per-queue marking at the hot ports — the per-port-vs-PMSB
/// contrast the pure flow-level engines cannot resolve (DESIGN.md §13).
/// The engine is pinned per cell, so `--engine` does not apply; records
/// carry an explicit `engine=regional` parameter.
pub fn hyperscale_k24_regional_jobs(quick: bool, seed: u64) -> Vec<Job> {
    let total_flows = hyperscale::k24_flows(quick);
    let mut jobs = Vec::new();
    for scheme in hyperscale::k24_schemes() {
        for pattern in hyperscale::k24_patterns() {
            let name = scheme.0;
            let pattern_name = pattern.0;
            let scheme = scheme.clone();
            jobs.push(tag_buffer(
                Job::new("hyperscale_k24_regional", seed, move || {
                    hyperscale::row_record(&hyperscale::run_cell(
                        &scheme,
                        &pattern,
                        hyperscale::K24_FABRIC,
                        total_flows,
                        seed,
                        crate::util::sim_threads(),
                        pmsb_netsim::EngineKind::Regional,
                    ))
                })
                .param("scheme", name)
                .param("pattern", pattern_name)
                .param("engine", "regional")
                .param("quick", quick),
            ));
        }
    }
    jobs
}

/// Writes the regional k=24 table from completed records.
pub fn write_hyperscale_k24_regional_report(out: &mut String, records: &[Record]) {
    let rows: Vec<hyperscale::HsRow> = records
        .iter()
        .filter(|r| r.get_str("scenario") == Some("hyperscale_k24_regional"))
        .filter_map(hyperscale::row_from_record)
        .collect();
    if !rows.is_empty() {
        hyperscale::write_k24_regional_report(out, &rows);
    }
}

/// One job per `(transport, scheme)` cell of the transport sweep (see
/// [`crate::transport`]).
pub fn transport_jobs(quick: bool, seed: u64) -> Vec<Job> {
    let num_flows = transport::num_flows(quick);
    let mut jobs = Vec::new();
    for &kind in transport::TRANSPORTS {
        for (name, marking, pmsbe) in transport::schemes() {
            jobs.push(tag_buffer(
                Job::new("transport", seed, move || {
                    transport::row_record(&transport::run_cell(
                        kind, name, marking, pmsbe, num_flows, seed,
                    ))
                })
                .param("transport", kind.name())
                .param("scheme", name)
                .param("quick", quick),
            ));
        }
    }
    jobs
}

/// Writes the transport-sweep table from completed records.
pub fn write_transport_report(out: &mut String, records: &[Record]) {
    let rows: Vec<transport::TransportRow> = records
        .iter()
        .filter(|r| r.get_str("scenario") == Some("transport"))
        .filter_map(transport::row_from_record)
        .collect();
    if !rows.is_empty() {
        transport::write_report(out, &rows);
    }
}

/// One job per `(scheme, buffer policy, memory regime)` cell of the
/// buffer-contention sweep (see [`crate::buffers`]). Unlike the other
/// sweeps this campaign pins its own buffer policy per cell, so the
/// process-wide `--buffer` override does not apply to it; the flow
/// pattern is a deterministic incast schedule, so the job seed is 0.
pub fn buffer_jobs(quick: bool) -> Vec<Job> {
    let epochs = buffers::num_epochs(quick);
    let mut jobs = Vec::new();
    for (scheme, marking, pmsbe) in transport::schemes() {
        for policy in buffers::policies() {
            for (regime, port_bytes) in buffers::regimes() {
                let marking = marking.clone();
                jobs.push(
                    Job::new("buffers", 0, move || {
                        buffers::row_record(&buffers::run_cell(
                            scheme, marking, pmsbe, policy, regime, port_bytes, epochs,
                        ))
                    })
                    .param("scheme", scheme)
                    .param("buffer", policy.name())
                    .param("regime", regime)
                    .param("quick", quick),
                );
            }
        }
    }
    jobs
}

/// Writes the buffer-contention table from completed records.
pub fn write_buffers_report(out: &mut String, records: &[Record]) {
    let rows: Vec<buffers::BufRow> = records
        .iter()
        .filter(|r| r.get_str("scenario") == Some("buffers"))
        .filter_map(buffers::row_from_record)
        .collect();
    if !rows.is_empty() {
        buffers::write_report(out, &rows);
    }
}

/// One job per `(scheme, seed)` of the seed-sensitivity study: the
/// headline PMSB-vs-TCN comparison (DWRR, load 0.5) across seeds.
pub fn seed_sensitivity_jobs(quick: bool) -> Vec<Job> {
    let num_flows = if quick { 250 } else { 800 };
    let mut jobs = Vec::new();
    for &seed in &SENSITIVITY_SEEDS {
        for (name, marking, pmsbe, point) in large_scale::schemes(false) {
            if name != "pmsb" && name != "tcn" {
                continue;
            }
            jobs.push(tag_buffer(
                Job::new("seed_sensitivity", seed, move || {
                    large_scale::row_record(&large_scale::run_cell(
                        SchedulerConfig::Dwrr {
                            weights: vec![1; 8],
                        },
                        name,
                        marking,
                        pmsbe,
                        point,
                        0.5,
                        num_flows,
                        seed,
                        crate::util::sim_threads(),
                    ))
                })
                .param("scheduler", "dwrr")
                .param("scheme", name)
                .param("load", 0.5)
                .param("quick", quick),
            ));
        }
    }
    jobs
}

fn campaign_from(name: &str, jobs: Vec<Job>) -> Campaign {
    let mut c = Campaign::new(name);
    for j in jobs {
        c.push(j);
    }
    c
}

/// The full suite — every figure, extension, large-scale cell, and
/// seed-sensitivity cell — as one campaign.
pub fn all_experiments_campaign(quick: bool) -> Campaign {
    let mut jobs = figure_jobs(quick);
    jobs.extend(extension_jobs(quick));
    jobs.extend(large_scale_jobs("dwrr", quick, &[DEFAULT_SEED]));
    jobs.extend(large_scale_jobs("wfq", quick, &[DEFAULT_SEED]));
    jobs.extend(seed_sensitivity_jobs(quick));
    campaign_from("all_experiments", jobs)
}

/// Campaign names accepted by [`campaign_by_name`], beyond individual
/// scenario names.
pub const CAMPAIGN_NAMES: &[&str] = &[
    "all",
    "figures",
    "extensions",
    "large-scale-dwrr",
    "large-scale-wfq",
    "seed-sensitivity",
    "faults",
    "transport",
    "hyperscale",
    "hyperscale-k24",
    "hyperscale-k24-regional",
    "buffers",
];

/// Resolves a campaign by name: one of [`CAMPAIGN_NAMES`] or any
/// individual figure/extension scenario (e.g. `fig08`,
/// `ablation_port_threshold`).
pub fn campaign_by_name(name: &str, quick: bool) -> Option<Campaign> {
    let canonical = name.replace('-', "_");
    match canonical.as_str() {
        "all" | "all_experiments" => Some(all_experiments_campaign(quick)),
        "figures" => Some(campaign_from("figures", figure_jobs(quick))),
        "extensions" => Some(campaign_from("extensions", extension_jobs(quick))),
        "large_scale_dwrr" | "fig16_21" => Some(campaign_from(
            "large_scale_dwrr",
            large_scale_jobs("dwrr", quick, &[DEFAULT_SEED]),
        )),
        "large_scale_wfq" | "fig22_27" => Some(campaign_from(
            "large_scale_wfq",
            large_scale_jobs("wfq", quick, &[DEFAULT_SEED]),
        )),
        "seed_sensitivity" | "ext_seed_sensitivity" => Some(campaign_from(
            "seed_sensitivity",
            seed_sensitivity_jobs(quick),
        )),
        "faults" => Some(campaign_from("faults", fault_jobs(quick, DEFAULT_SEED))),
        "transport" => Some(campaign_from(
            "transport",
            transport_jobs(quick, DEFAULT_SEED),
        )),
        "hyperscale" => Some(campaign_from(
            "hyperscale",
            hyperscale_jobs(quick, DEFAULT_SEED),
        )),
        "hyperscale_k24" => Some(campaign_from(
            "hyperscale_k24",
            hyperscale_k24_jobs(quick, DEFAULT_SEED),
        )),
        "hyperscale_k24_regional" => Some(campaign_from(
            "hyperscale_k24_regional",
            hyperscale_k24_regional_jobs(quick, DEFAULT_SEED),
        )),
        "buffers" => Some(campaign_from("buffers", buffer_jobs(quick))),
        _ => {
            let jobs: Vec<Job> = figure_jobs(quick)
                .into_iter()
                .chain(extension_jobs(quick))
                .filter(|j| j.scenario() == canonical)
                .collect();
            if jobs.is_empty() {
                None
            } else {
                Some(campaign_from(&canonical, jobs))
            }
        }
    }
}

/// Writes the seed-sensitivity summary table from completed records.
pub fn write_seed_sensitivity_report(out: &mut String, records: &[Record]) {
    let cell = |seed: u64, scheme: &str| -> Option<f64> {
        records
            .iter()
            .find(|r| {
                r.get_str("scenario") == Some("seed_sensitivity")
                    && r.get_f64("seed") == Some(seed as f64)
                    && r.get_str("scheme") == Some(scheme)
            })
            .and_then(|r| r.get_f64("small_p99_us"))
    };
    banner(
        out,
        "Extension: seed sensitivity of the PMSB vs TCN small-flow p99 reduction",
    );
    outln!(out, "seed,pmsb_small_p99_us,tcn_small_p99_us,reduction");
    for &seed in &SENSITIVITY_SEEDS {
        if let (Some(p), Some(t)) = (cell(seed, "pmsb"), cell(seed, "tcn")) {
            outln!(out, "{seed},{p:.1},{t:.1},{:.3}", 1.0 - p / t);
        }
    }
    outln!(out, "# the reduction is stable across seeds");
}

/// Assembles and prints everything a finished campaign has to show:
/// per-experiment reports in job order, then the large-scale sweep
/// tables and the seed-sensitivity summary reconstructed from records.
pub fn print_campaign_output(result: &CampaignResult) {
    for report in result.reports() {
        print!("{report}");
    }
    let mut out = String::new();
    for (scenario, title) in [
        ("fig16_21", large_scale::FIG16_21_TITLE),
        ("fig22_27", large_scale::FIG22_27_TITLE),
    ] {
        let rows: Vec<LsRow> = result
            .records
            .iter()
            .filter(|r| r.get_str("scenario") == Some(scenario))
            .filter_map(large_scale::row_from_record)
            .collect();
        if !rows.is_empty() {
            large_scale::write_sweep_report(&mut out, title, &rows);
        }
    }
    if result
        .records
        .iter()
        .any(|r| r.get_str("scenario") == Some("seed_sensitivity"))
    {
        write_seed_sensitivity_report(&mut out, &result.records);
    }
    write_faults_report(&mut out, &result.records);
    write_transport_report(&mut out, &result.records);
    write_hyperscale_report(&mut out, &result.records);
    write_hyperscale_k24_report(&mut out, &result.records);
    write_hyperscale_k24_regional_report(&mut out, &result.records);
    write_buffers_report(&mut out, &result.records);
    print!("{out}");
}

/// Shared `main` for campaign binaries: parse harness flags plus
/// `--quick`, run the named campaign, print its output, exit nonzero
/// if any job failed.
pub fn run_campaign_main(name: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match RunOptions::take_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(2);
        }
    };
    let mut quick = false;
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            // Out-of-band on purpose: thread count changes wall clock
            // only, never records, so it must stay out of job keys.
            "--sim-threads" => match rest.next().as_deref() {
                Some(v) if v.eq_ignore_ascii_case("auto") => crate::util::set_sim_threads(
                    std::thread::available_parallelism().map_or(1, |n| n.get()),
                ),
                Some(v) if v.parse::<usize>().is_ok_and(|n| n >= 1) => {
                    crate::util::set_sim_threads(v.parse().unwrap())
                }
                _ => {
                    eprintln!("{name}: --sim-threads needs an integer >= 1, or auto");
                    std::process::exit(2);
                }
            },
            // Out-of-band for the same reason: the conservative protocol
            // is byte-identical under any partition, so the strategy
            // must never enter a job key.
            "--partition" => match rest.next().as_deref() {
                Some("traffic") => {
                    crate::util::set_partition(pmsb_netsim::PartitionStrategy::Traffic)
                }
                Some("contiguous") => {
                    crate::util::set_partition(pmsb_netsim::PartitionStrategy::Contiguous)
                }
                _ => {
                    eprintln!("{name}: --partition needs traffic|contiguous");
                    std::process::exit(2);
                }
            },
            // Applies to the sweep campaigns (non-static records are
            // tagged with a `buffer` job parameter); the `buffers`
            // campaign pins its own policy per cell and ignores this.
            "--buffer" => match rest.next().map(|v| pmsb_netsim::BufferPolicy::parse(&v)) {
                Some(Ok(p)) => crate::util::set_buffer_policy(p),
                Some(Err(e)) => {
                    eprintln!("{name}: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("{name}: --buffer needs static|dt:ALPHA|delay[:MICROS]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("{name}: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(campaign) = campaign_by_name(name, quick) else {
        eprintln!("{name}: unknown campaign");
        std::process::exit(2);
    };
    match campaign.run(&opts) {
        Ok(result) => {
            print_campaign_output(&result);
            if !result.is_success() {
                for f in &result.failures {
                    eprintln!("{name}: job {} failed: {}", f.key, f.error);
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_job_counts_line_up() {
        let c = all_experiments_campaign(true);
        // 16 figures + 10 extensions + dwrr cells (2 loads x 4 schemes)
        // + wfq cells (2 loads x 3 schemes) + sensitivity (3 seeds x 2).
        assert_eq!(c.len(), 16 + 10 + 8 + 6 + 6);
    }

    #[test]
    fn campaign_names_resolve() {
        for name in CAMPAIGN_NAMES {
            assert!(
                campaign_by_name(name, true).is_some(),
                "{name} must resolve"
            );
        }
        assert!(campaign_by_name("fig08", true).is_some());
        assert!(campaign_by_name("ablation_port_threshold", true).is_some());
        assert!(campaign_by_name("no_such_campaign", true).is_none());
    }

    #[test]
    fn transport_jobs_cover_the_grid() {
        let jobs = transport_jobs(true, DEFAULT_SEED);
        // 2 transports x 4 schemes.
        assert_eq!(jobs.len(), 8);
        let keys: std::collections::HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), 8, "keys must be unique");
        assert!(keys
            .iter()
            .any(|k| k.contains("transport=newreno") && k.contains("scheme=pmsb(e)")));
    }

    #[test]
    fn hyperscale_jobs_cover_the_grid() {
        let jobs = hyperscale_jobs(true, DEFAULT_SEED);
        // 4 schemes x 3 patterns.
        assert_eq!(jobs.len(), 12);
        let keys: std::collections::HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), 12, "keys must be unique");
        assert!(keys
            .iter()
            .any(|k| k.contains("scheme=pmsb(e)") && k.contains("pattern=hotservice")));
    }

    #[test]
    fn hyperscale_k24_jobs_cover_the_grid() {
        let jobs = hyperscale_k24_jobs(true, DEFAULT_SEED);
        // 2 schemes x 2 patterns.
        assert_eq!(jobs.len(), 4);
        let keys: std::collections::HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), 4, "keys must be unique");
        assert!(keys.iter().any(|k| k.contains("scheme=per-port")
            && k.contains("pattern=mix-websearch")
            && k.contains("engine=hybrid")));
    }

    #[test]
    fn hyperscale_k24_regional_jobs_cover_the_grid() {
        let jobs = hyperscale_k24_regional_jobs(true, DEFAULT_SEED);
        // 2 schemes x 2 patterns, all pinned to the regional engine.
        assert_eq!(jobs.len(), 4);
        let keys: std::collections::HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), 4, "keys must be unique");
        assert!(keys.iter().all(|k| k.contains("engine=regional")));
        assert!(keys.iter().any(|k| k.contains("scheme=per-port")
            && k.contains("pattern=mix-websearch")
            && k.contains("engine=regional")));
    }

    #[test]
    fn buffer_jobs_cover_the_grid() {
        let jobs = buffer_jobs(true);
        // 4 schemes x 3 policies x 2 regimes.
        assert_eq!(jobs.len(), 24);
        let keys: std::collections::HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), 24, "keys must be unique");
        assert!(keys.iter().any(|k| k.contains("scheme=pmsb(e)")
            && k.contains("buffer=delay:100")
            && k.contains("regime=tiny")));
    }

    #[test]
    fn large_scale_jobs_cover_the_grid() {
        let jobs = large_scale_jobs("dwrr", true, &[1, 2]);
        // 2 seeds x 2 loads x 4 schemes.
        assert_eq!(jobs.len(), 16);
        let keys: std::collections::HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), 16, "keys must be unique");
        assert!(keys
            .iter()
            .any(|k| k.contains("scheme=mq-ecn") && k.contains("seed=2")));
    }

    #[test]
    fn seed_sensitivity_report_reconstructs_from_records() {
        let mut records = Vec::new();
        for &seed in &SENSITIVITY_SEEDS {
            for (scheme, p99) in [("pmsb", 100.0), ("tcn", 200.0)] {
                records.push(
                    Record::new()
                        .field("scenario", "seed_sensitivity")
                        .field("seed", seed)
                        .field("scheme", scheme)
                        .field("small_p99_us", p99),
                );
            }
        }
        let mut out = String::new();
        write_seed_sensitivity_report(&mut out, &records);
        assert!(out.contains("42,100.0,200.0,0.500"), "report: {out}");
        assert!(out.contains("98765,100.0,200.0,0.500"));
    }
}
