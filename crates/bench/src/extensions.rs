//! Experiments beyond the paper: the per-service-pool violation the paper
//! only asserts, sensitivity ablations for PMSB's two knobs, the RED
//! baseline, and an alternative (web-search) workload.

use pmsb_metrics::fct::SizeClass;
use pmsb_netsim::config::{EcnResponse, SchedulerConfig};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};
use pmsb_netsim::world::World;
use pmsb_netsim::{HostConfig, SwitchConfig, TransportConfig};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::arrivals::{arrival_rate_for_load, PoissonArrivals};
use pmsb_workload::{DataMining, FlowSizeDist, WebSearch};

use crate::outln;
use crate::util::{banner, weighted_share};

/// §II-A's untested claim: per-service-pool marking lets queues of
/// *different ports* interfere. Eight flows congest receiver A's port;
/// one flow to receiver B shares only the buffer pool with them, yet
/// backs off under per-pool marking. Returns
/// `(b_gbps_per_pool, b_gbps_per_port)`.
pub fn ext_per_pool_violation(out: &mut String, quick: bool) -> (f64, f64) {
    banner(
        out,
        "Extension: per-service-pool marking couples unrelated ports",
    );
    let millis = if quick { 15 } else { 50 };
    let run = |marking: MarkingConfig| -> f64 {
        let cfg = SwitchConfig {
            marking: marking.clone(),
            ..SwitchConfig::default()
        };
        let host_cfg = HostConfig {
            nic_marking: marking,
            ..HostConfig::default()
        };
        let mut w = World::new(TransportConfig::default());
        // Hosts 0..8 = senders, 9 = receiver A (hot), 10 = receiver B.
        for _ in 0..11 {
            w.add_host(host_cfg.clone());
        }
        let s = w.add_switch();
        for h in 0..11 {
            let p = w.wire_host(h, s, 10_000_000_000, 5_000, &cfg);
            w.set_route(s, h, vec![p]);
        }
        for sender in 0..8 {
            w.add_flow(FlowDesc::long_lived(sender, 9, sender % 8));
        }
        w.add_flow(FlowDesc::long_lived(8, 10, 0));
        w.set_trace(pmsb_netsim::trace::TraceConfig::watch_port(0, 10, 100_000));
        let res = w.run_until_nanos(millis * 1_000_000);
        let t = &res.port_traces[&(0, 10)];
        let bins = t.queue_throughput[0].num_bins();
        t.mean_queue_gbps(0, bins / 4, bins)
    };
    // The pool threshold matches a single port's standard threshold, as a
    // naive shared-buffer configuration would.
    let pool = run(MarkingConfig::PerPool { threshold_pkts: 16 });
    let port = run(MarkingConfig::PerPort { threshold_pkts: 16 });
    outln!(out, "marking,receiver_b_gbps");
    outln!(out, "per-pool,{pool:.2}");
    outln!(out, "per-port,{port:.2}");
    outln!(
        out,
        "# per-pool marking victimizes traffic on an uncongested port"
    );
    (pool, port)
}

/// Ablation: PMSB's single knob, the port threshold. Sweeps it and
/// reports both fairness (the 1-vs-8 victim share) and the victim flows'
/// RTT — the latency cost of larger thresholds. Returns
/// `(port_k_pkts, queue1_gbps, rtt_p99_us_of_queue2)` rows.
pub fn ablation_port_threshold(out: &mut String, quick: bool) -> Vec<(u64, f64, f64)> {
    banner(
        out,
        "Ablation: PMSB port threshold sweep (fairness + latency)",
    );
    let millis = if quick { 12 } else { 40 };
    let mut rows = Vec::new();
    outln!(out, "port_k_pkts,queue1_gbps,queue2_gbps,rtt_p99_us");
    for k in [4u64, 8, 12, 24, 48, 65] {
        let share = weighted_share(
            MarkingConfig::Pmsb {
                port_threshold_pkts: k,
            },
            None,
            &[1, 8],
            millis,
        );
        // RTT of the queue-2 flows under the same configuration.
        let mut e = Experiment::dumbbell(9, 2)
            .marking(MarkingConfig::Pmsb {
                port_threshold_pkts: k,
            })
            .record_rtt();
        e.add_flow(FlowDesc::long_lived(0, 9, 0));
        for s in 1..9 {
            e.add_flow(FlowDesc::long_lived(s, 9, 1));
        }
        let res = e.run_for_millis(millis);
        let mut samples = Vec::new();
        for f in 1..9u64 {
            if let Some(v) = res.rtt_nanos_by_flow.get(&f) {
                samples.extend(v.iter().skip(v.len() / 4).map(|r| *r as f64));
            }
        }
        let p99 = pmsb_metrics::Summary::from_samples(samples)
            .map(|s| s.p99 / 1e3)
            .unwrap_or(f64::NAN);
        outln!(
            out,
            "{k},{:.2},{:.2},{p99:.1}",
            share.queue_gbps[0],
            share.queue_gbps[1]
        );
        rows.push((k, share.queue_gbps[0], p99));
    }
    outln!(
        out,
        "# small thresholds keep latency low; fairness holds across the sweep"
    );
    rows
}

/// Ablation: PMSB(e)'s RTT threshold. Too low and the victim honours
/// per-port marks (unfair); absurdly high and even genuinely congested
/// flows ignore marks (queues grow). Returns
/// `(threshold_us, victim_gbps, marks_ignored_fraction)` rows.
pub fn ablation_pmsbe_threshold(out: &mut String, quick: bool) -> Vec<(f64, f64, f64)> {
    banner(
        out,
        "Ablation: PMSB(e) RTT threshold sweep (1 vs 8 flows, per-port K=12)",
    );
    let millis = if quick { 12 } else { 40 };
    // Dumbbell base RTT is ~23 us.
    let mut rows = Vec::new();
    outln!(out, "rtt_threshold_us,victim_gbps,ignored_fraction");
    for thr_us in [10.0f64, 25.0, 40.0, 80.0, 400.0] {
        let mut e = Experiment::dumbbell(9, 2)
            .marking(MarkingConfig::PerPort { threshold_pkts: 12 })
            .pmsbe_rtt_threshold_nanos((thr_us * 1e3) as u64)
            .watch_bottleneck(100_000);
        e.add_flow(FlowDesc::long_lived(0, 9, 0));
        for s in 1..9 {
            e.add_flow(FlowDesc::long_lived(s, 9, 1));
        }
        let res = e.run_for_millis(millis);
        let t = &res.port_traces[&(0, 9)];
        let bins = t.queue_throughput[0].num_bins();
        let victim = t.mean_queue_gbps(0, bins / 4, bins);
        let seen: u64 = res.sender_stats.values().map(|s| s.marks_seen).sum();
        let ignored: u64 = res.sender_stats.values().map(|s| s.marks_ignored).sum();
        let frac = if seen == 0 {
            0.0
        } else {
            ignored as f64 / seen as f64
        };
        outln!(out, "{thr_us:.0},{victim:.2},{frac:.3}");
        rows.push((thr_us, victim, frac));
    }
    outln!(
        out,
        "# below base RTT nothing is ignored (victim suffers); far above, everyone is blind"
    );
    rows
}

/// Extension: RED's gentle probability ramp versus DCTCP's step threshold
/// as the underlying per-queue marker for mice sharing a queue with
/// elephants. Returns `(red_p99_us, step_p99_us)` for the mice.
pub fn ablation_red_vs_step(out: &mut String, quick: bool) -> (f64, f64) {
    banner(
        out,
        "Ablation: RED ramp vs DCTCP step marking (mice behind elephants)",
    );
    let millis = if quick { 25 } else { 80 };
    let run = |marking: MarkingConfig| -> f64 {
        let mut e = Experiment::dumbbell(3, 1).marking(marking);
        e.add_flow(FlowDesc::long_lived(0, 3, 0));
        e.add_flow(FlowDesc::long_lived(1, 3, 0));
        for i in 0..12u64 {
            e.add_flow(FlowDesc::bulk(2, 3, 0, 30_000).starting_at(2_000_000 + i * 2_000_000));
        }
        let res = e.run_for_millis(millis);
        res.fct.stats(SizeClass::Small).unwrap().p99 / 1e3
    };
    let red = run(MarkingConfig::Red {
        min_pkts: 4,
        max_pkts: 28,
        max_p: 0.25,
    });
    let step = run(MarkingConfig::PerQueueStandard { threshold_pkts: 16 });
    outln!(out, "marker,mice_p99_us");
    outln!(out, "red,{red:.1}");
    outln!(out, "dctcp-step,{step:.1}");
    (red, step)
}

/// Extension: the large-scale comparison on the web-search workload
/// (DCTCP paper) instead of the synthetic 60/30/10 mix. Returns
/// `(scheme, small_p99_us)` rows.
pub fn ext_websearch_workload(out: &mut String, quick: bool) -> Vec<(&'static str, f64)> {
    banner(
        out,
        "Extension: web-search workload, leaf-spine, DWRR, load 0.5",
    );
    ext_workload(out, quick, Box::new(WebSearch::new()))
}

/// Extension: the same comparison on the heavy-tailed data-mining
/// workload (VL2 paper). Returns `(scheme, small_p99_us)` rows.
pub fn ext_datamining_workload(out: &mut String, quick: bool) -> Vec<(&'static str, f64)> {
    banner(
        out,
        "Extension: data-mining workload, leaf-spine, DWRR, load 0.5",
    );
    ext_workload(out, quick, Box::new(DataMining::new()))
}

fn ext_workload(
    out: &mut String,
    quick: bool,
    dist: Box<dyn FlowSizeDist>,
) -> Vec<(&'static str, f64)> {
    let num_flows = if quick { 200 } else { 800 };
    let rate = arrival_rate_for_load(0.5, 48 * 10_000_000_000, dist.mean_bytes());
    let dist = &*dist;
    let mut rows = Vec::new();
    outln!(
        out,
        "scheme,completed,small_avg_us,small_p99_us,large_avg_us"
    );
    for (name, marking, pmsbe, point) in crate::large_scale::schemes(true) {
        let mut rng = SimRng::seed_from(1234);
        let mut arrivals = PoissonArrivals::with_rate(rate);
        let mut e = Experiment::paper_leaf_spine()
            .marking(marking)
            .mark_point(point);
        if let Some(thr) = pmsbe {
            e = e.pmsbe_rtt_threshold_nanos(thr);
        }
        let mut last = 0;
        for _ in 0..num_flows {
            let start = arrivals.next_arrival_nanos(&mut rng);
            last = start;
            let src = rng.below(48);
            let mut dst = rng.below(47);
            if dst >= src {
                dst += 1;
            }
            let service = rng.below(8);
            let size = dist.sample(&mut rng);
            e.add_flow(FlowDesc::bulk(src, dst, service, size).starting_at(start));
        }
        let res = e.run_until_nanos(last + 1_000_000_000);
        let small = res.fct.stats(SizeClass::Small);
        let large = res.fct.stats(SizeClass::Large);
        let p99 = small.map(|s| s.p99 / 1e3).unwrap_or(f64::NAN);
        outln!(
            out,
            "{name},{},{:.1},{:.1},{:.1}",
            res.fct.len(),
            small.map(|s| s.mean / 1e3).unwrap_or(f64::NAN),
            p99,
            large.map(|s| s.mean / 1e3).unwrap_or(f64::NAN),
        );
        rows.push((name, p99));
    }
    rows
}

/// Extension: DCTCP's `(1 − α/2)` cut versus classic ECN's halving
/// (RFC 3168) under the same shallow marking threshold. Classic halving
/// overshoots on every marked window and drains the queue, losing
/// throughput; DCTCP's proportional cut keeps the link full — the very
/// reason datacenter ECN uses DCTCP. Returns
/// `(dctcp_gbps, classic_gbps)`.
pub fn ablation_classic_ecn(out: &mut String, quick: bool) -> (f64, f64) {
    banner(
        out,
        "Ablation: DCTCP vs classic-ECN response, per-queue K=16, 2 flows",
    );
    let millis = if quick { 20 } else { 60 };
    let run = |resp: EcnResponse| -> f64 {
        let mut e = Experiment::dumbbell(2, 1)
            .marking(MarkingConfig::PerQueueStandard { threshold_pkts: 16 })
            .transport(TransportConfig {
                ecn_response: resp,
                ..TransportConfig::default()
            })
            .watch_bottleneck(100_000);
        for s in 0..2 {
            e.add_flow(FlowDesc::long_lived(s, 2, 0));
        }
        let res = e.run_for_millis(millis);
        let t = &res.port_traces[&(0, 2)];
        let bins = t.queue_throughput[0].num_bins();
        t.mean_queue_gbps(0, bins / 4, bins)
    };
    let dctcp = run(EcnResponse::Dctcp);
    let classic = run(EcnResponse::Classic);
    outln!(out, "response,throughput_gbps");
    outln!(out, "dctcp,{dctcp:.3}");
    outln!(out, "classic,{classic:.3}");
    outln!(
        out,
        "# classic halving loses {:.1}% throughput at this threshold",
        (1.0 - classic / dctcp) * 100.0
    );
    (dctcp, classic)
}

/// Extension: ACK coalescing sensitivity — the paper (and our default)
/// ACKs every packet; real stacks coalesce. Delayed ACKs halve the ACK
/// rate but coarsen the DCTCP mark-fraction estimate and PMSB(e)'s RTT
/// signal. Returns `(ack_every, small_p99_us, victim_gbps)` rows.
pub fn ablation_delayed_acks(out: &mut String, quick: bool) -> Vec<(u64, f64, f64)> {
    banner(out, "Ablation: ACK coalescing (m = 1 / 2 / 4), PMSB K=12");
    let millis = if quick { 15 } else { 40 };
    let mut rows = Vec::new();
    outln!(out, "ack_every,small_p99_us,victim_gbps");
    for m in [1u64, 2, 4] {
        // Mice-behind-elephants latency under coalescing.
        let mut e = Experiment::dumbbell(3, 2)
            .marking(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .transport(TransportConfig {
                ack_every_packets: m,
                ..TransportConfig::default()
            });
        e.add_flow(FlowDesc::long_lived(0, 3, 0));
        e.add_flow(FlowDesc::long_lived(1, 3, 0));
        for i in 0..10u64 {
            e.add_flow(FlowDesc::bulk(2, 3, 1, 30_000).starting_at(2_000_000 + i * 2_000_000));
        }
        let res = e.run_for_millis(millis.max(25));
        let p99 = res
            .fct
            .stats(SizeClass::Small)
            .map(|s| s.p99 / 1e3)
            .unwrap_or(f64::NAN);
        // Fairness (1 vs 8) under the same coalescing.
        let share = {
            let mut e = Experiment::dumbbell(9, 2)
                .marking(MarkingConfig::Pmsb {
                    port_threshold_pkts: 12,
                })
                .transport(TransportConfig {
                    ack_every_packets: m,
                    ..TransportConfig::default()
                })
                .watch_bottleneck(100_000);
            e.add_flow(FlowDesc::long_lived(0, 9, 0));
            for s in 1..9 {
                e.add_flow(FlowDesc::long_lived(s, 9, 1));
            }
            let res = e.run_for_millis(millis);
            let t = &res.port_traces[&(0, 9)];
            let bins = t.queue_throughput[0].num_bins();
            t.mean_queue_gbps(0, bins / 4, bins)
        };
        outln!(out, "{m},{p99:.1},{share:.2}");
        rows.push((m, p99, share));
    }
    outln!(
        out,
        "# PMSB's fairness survives ACK coalescing; mice whose tail segment \
         misses the coalescing quota pay up to the flush timeout (0.5 ms)"
    );
    rows
}

/// Extension: Dynamic-Threshold buffer management (Choudhury & Hahne,
/// the commodity shared-buffer policy) versus a static shared pool,
/// under plain drop-tail. With a static pool, elephants fill the buffer
/// and mice sharing only the *pool* (not the queue) get tail-dropped
/// into retransmission timeouts; DT caps the hog queue. Returns
/// `(static_mice_p99_us, dt_mice_p99_us)`.
pub fn ext_dynamic_threshold(out: &mut String, quick: bool) -> (f64, f64) {
    banner(
        out,
        "Extension: Dynamic Threshold vs static shared buffer (drop-tail)",
    );
    // Long enough for RTO-delayed mice to finish: truncating the run
    // would silently drop exactly the flows the experiment is about.
    let millis = if quick { 60 } else { 120 };
    let run = |dt_alpha: Option<f64>| -> f64 {
        let mut w = World::new(TransportConfig::default());
        let cfg = SwitchConfig {
            scheduler: SchedulerConfig::Dwrr {
                weights: vec![1, 1],
            },
            marking: MarkingConfig::None,
            buffer_bytes: 48 * 1500,
            buffer: dt_alpha.map_or(pmsb_netsim::BufferPolicy::Static, |alpha| {
                pmsb_netsim::BufferPolicy::DynamicThreshold { alpha }
            }),
            ..SwitchConfig::default()
        };
        for _ in 0..4 {
            w.add_host(HostConfig::default());
        }
        let s = w.add_switch();
        for h in 0..4 {
            let p = w.wire_host(h, s, 10_000_000_000, 5_000, &cfg);
            w.set_route(s, h, vec![p]);
        }
        w.add_flow(FlowDesc::long_lived(0, 3, 0));
        w.add_flow(FlowDesc::long_lived(1, 3, 0));
        for i in 0..8u64 {
            w.add_flow(FlowDesc::bulk(2, 3, 1, 30_000).starting_at(3_000_000 + i * 3_000_000));
        }
        let res = w.run_until_nanos(millis * 1_000_000);
        res.fct
            .stats(SizeClass::Small)
            .map(|s| s.p99 / 1e3)
            .unwrap_or(f64::NAN)
    };
    let stat = run(None);
    let dt = run(Some(1.0));
    outln!(out, "buffer_policy,mice_p99_us");
    outln!(out, "static,{stat:.1}");
    outln!(out, "dynamic-threshold,{dt:.1}");
    outln!(
        out,
        "# DT keeps headroom for bursty queues even without ECN"
    );
    (stat, dt)
}

/// Extension: incast — `n` synchronized senders each ship one small
/// response (256 KB) to a single receiver, the classic partition-
/// aggregate pattern. Reports the time until the *last* response
/// completes for each scheme. Returns `(scheme, completion_us)` rows.
pub fn ext_incast(out: &mut String, quick: bool) -> Vec<(&'static str, f64)> {
    banner(out, "Extension: 16-to-1 incast (256 KB responses)");
    let n = 16usize;
    let resp = 256_000u64;
    let _ = quick; // the scenario is already small
    let mut rows = Vec::new();
    outln!(out, "scheme,last_completion_us,drops,timeouts");
    for (name, marking, pmsbe, point) in [
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            None,
            pmsb::MarkPoint::Enqueue,
        ),
        (
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(40_000u64),
            pmsb::MarkPoint::Enqueue,
        ),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            },
            None,
            pmsb::MarkPoint::Dequeue,
        ),
        (
            "drop-tail",
            MarkingConfig::None,
            None,
            pmsb::MarkPoint::Enqueue,
        ),
    ] {
        let mut e = Experiment::dumbbell(n, 2)
            .marking(marking)
            .mark_point(point)
            .buffer_bytes(128 * 1500);
        if let Some(thr) = pmsbe {
            e = e.pmsbe_rtt_threshold_nanos(thr);
        }
        for s in 0..n {
            e.add_flow(FlowDesc::bulk(s, n, s % 2, resp));
        }
        let res = e.run_for_millis(400);
        let last = res
            .fct
            .records()
            .iter()
            .map(|r| r.end_nanos)
            .max()
            .unwrap_or(u64::MAX);
        let timeouts: u64 = res.sender_stats.values().map(|s| s.timeouts).sum();
        outln!(
            out,
            "{name},{:.1},{},{}",
            last as f64 / 1e3,
            res.drops,
            timeouts
        );
        rows.push((name, last as f64 / 1e3));
    }
    outln!(
        out,
        "# ECN absorbs the synchronized burst; drop-tail pays RTOs"
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pool_couples_ports_and_per_port_does_not() {
        let (pool, port) = ext_per_pool_violation(&mut String::new(), true);
        assert!(
            pool < port * 0.75,
            "per-pool ({pool:.2}) must victimize receiver B vs per-port ({port:.2})"
        );
        assert!(port > 8.0, "per-port B should run near line rate");
    }

    #[test]
    fn incast_ecn_beats_droptail() {
        let rows = ext_incast(&mut String::new(), true);
        let get = |n: &str| rows.iter().find(|(name, _)| *name == n).unwrap().1;
        assert!(
            get("pmsb") < get("drop-tail"),
            "ECN must finish the incast sooner: {rows:?}"
        );
    }

    #[test]
    fn delayed_acks_keep_pmsb_fairness() {
        let rows = ablation_delayed_acks(&mut String::new(), true);
        for (m, _p99, share) in &rows {
            assert!(
                (*share - 5.0).abs() < 0.9,
                "fair share must survive ack_every={m}: {share}"
            );
        }
    }

    #[test]
    fn classic_halving_loses_throughput() {
        let (dctcp, classic) = ablation_classic_ecn(&mut String::new(), true);
        assert!(dctcp > 9.0, "dctcp should hold near line rate: {dctcp}");
        assert!(
            classic < dctcp - 0.3,
            "classic halving must lose throughput: {classic} vs {dctcp}"
        );
    }

    #[test]
    fn pmsbe_threshold_sweep_shows_the_tradeoff() {
        let rows = ablation_pmsbe_threshold(&mut String::new(), true);
        // Far below base RTT: ~nothing ignored, victim suppressed.
        let low = &rows[0];
        // Generous threshold: victim recovers its fair share.
        let good = rows.iter().find(|r| r.0 == 80.0).unwrap();
        assert!(low.2 < 0.05, "threshold below base RTT ignores ~nothing");
        assert!(
            good.1 > low.1 + 1.0,
            "a sane threshold must rescue the victim ({:.2} vs {:.2})",
            good.1,
            low.1
        );
    }
}
