//! Fault-injection campaign: marking schemes under link flaps and
//! random loss.
//!
//! The paper evaluates marking schemes on a healthy fabric; this
//! campaign asks how the same lineup behaves when the fabric misbehaves.
//! A small leaf–spine carries the paper's Poisson flow mix while a
//! [`FaultSchedule`] flaps one leaf uplink and applies 0.1% random loss
//! to another, and the robustness columns (retransmissions, RTOs,
//! loss-recovery time) join the FCT columns in the output.

use pmsb_harness::Record;
use pmsb_metrics::fct::SizeClass;
use pmsb_metrics::robustness::{FlowRobustness, RobustnessSummary};
use pmsb_netsim::experiment::{Experiment, FaultSchedule, FaultTarget, FlowDesc, MarkingConfig};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::traffic::TrafficSpec;

use crate::outln;
use crate::util::banner;

/// Fabric shape: `LEAVES` leaves x `SPINES` spines x `HOSTS_PER_LEAF`
/// hosts (leaf switches are topology indices `0..LEAVES`, uplink to
/// spine `s` is leaf port `HOSTS_PER_LEAF + s`).
pub const LEAVES: usize = 2;
/// Spine count.
pub const SPINES: usize = 2;
/// Hosts under each leaf.
pub const HOSTS_PER_LEAF: usize = 4;

/// The fault profiles of the sweep.
pub const PROFILES: &[&str] = &["none", "flap", "loss", "flap+loss"];

/// The scheme lineup: PMSB vs the per-queue and per-port baselines.
pub fn schemes() -> Vec<(&'static str, MarkingConfig)> {
    vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        ),
        (
            "per-queue",
            MarkingConfig::PerQueueStandard { threshold_pkts: 65 },
        ),
        ("per-port", MarkingConfig::PerPort { threshold_pkts: 12 }),
    ]
}

/// The schedule a profile injects; `None` for the fault-free baseline
/// (which therefore exercises the injector-absent fast path).
///
/// * `flap` — the leaf-0 → spine-0 uplink goes dark from 5 ms to 15 ms.
/// * `loss` — 0.1% random loss on the leaf-1 → spine-1 uplink from t=0.
pub fn schedule_for(profile: &str, fault_seed: u64) -> Option<FaultSchedule> {
    let mut s = FaultSchedule::new(fault_seed);
    let flap_link = FaultTarget::SwitchLink {
        switch: 0,
        port: HOSTS_PER_LEAF,
    };
    let lossy_link = FaultTarget::SwitchLink {
        switch: 1,
        port: HOSTS_PER_LEAF + 1,
    };
    match profile {
        "none" => return None,
        "flap" => s.link_flap(flap_link, 5_000_000, 15_000_000),
        "loss" => s.loss(lossy_link, 0, 0.001),
        "flap+loss" => {
            s.link_flap(flap_link, 5_000_000, 15_000_000);
            s.loss(lossy_link, 0, 0.001);
        }
        other => panic!("unknown fault profile {other:?}"),
    }
    Some(s)
}

/// One `(scheme, profile)` cell of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Fault profile name.
    pub profile: &'static str,
    /// Completed / injected flows.
    pub completed: usize,
    /// Injected flows.
    pub injected: usize,
    /// Overall average FCT, µs.
    pub overall_avg_us: f64,
    /// Small-flow (<100 KB) 99th-percentile FCT, µs.
    pub small_p99_us: f64,
    /// CE marks applied.
    pub marks: u64,
    /// Congestive buffer tail drops.
    pub drops: u64,
    /// Packets the injector destroyed (loss + corruption + unroutable).
    pub fault_drops: u64,
    /// Segments retransmitted across all senders.
    pub retransmissions: u64,
    /// Retransmission timeouts across all senders.
    pub timeouts: u64,
    /// Loss-recovery episodes across all senders.
    pub loss_episodes: u64,
    /// Mean per-flow loss-recovery time (lossy flows only), µs.
    pub mean_recovery_us: f64,
    /// Worst per-flow loss-recovery time, µs.
    pub max_recovery_us: f64,
}

/// Runs one `(scheme, profile)` cell: the paper flow mix at moderate
/// load over the small leaf–spine, with the profile's faults injected.
pub fn run_cell(
    scheme: &'static str,
    marking: MarkingConfig,
    profile: &'static str,
    num_flows: usize,
    seed: u64,
) -> FaultRow {
    let num_hosts = LEAVES * HOSTS_PER_LEAF;
    let spec = TrafficSpec::paper_large_scale(num_hosts, 0.3);
    let mut rng = SimRng::seed_from(seed);
    let flows = spec.generate(num_flows, &mut rng);
    let mut e = Experiment::leaf_spine(LEAVES, SPINES, HOSTS_PER_LEAF)
        .marking(marking)
        .buffer(crate::util::buffer_policy())
        .sim_threads(crate::util::sim_threads())
        .partition(crate::util::partition());
    // The fault stream is salted off the workload seed so different
    // seeds move both the traffic and the loss pattern, while equal
    // seeds reproduce the run exactly.
    if let Some(schedule) = schedule_for(profile, seed ^ 0xfa17) {
        e = e.faults(schedule);
    }
    for f in &flows {
        e.add_flow(
            FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                .starting_at(f.start_nanos),
        );
    }
    let last = flows.last().map(|f| f.start_nanos).unwrap_or(0);
    let res = e.run_until_nanos(last + 1_000_000_000);
    let stat = |c: SizeClass, f: fn(&pmsb_metrics::Summary) -> f64| {
        res.fct.stats(c).map(|s| f(&s) / 1e3).unwrap_or(f64::NAN)
    };
    let rob = RobustnessSummary::collect(res.sender_stats.values().map(|s| FlowRobustness {
        retransmissions: s.retransmissions,
        timeouts: s.timeouts,
        loss_episodes: s.loss_episodes,
        recovery_nanos: s.recovery_nanos,
    }));
    FaultRow {
        scheme,
        profile,
        completed: res.fct.len(),
        injected: flows.len(),
        overall_avg_us: stat(SizeClass::Overall, |s| s.mean),
        small_p99_us: stat(SizeClass::Small, |s| s.p99),
        marks: res.marks,
        drops: res.drops,
        fault_drops: res.faults.as_ref().map(|f| f.fault_drops()).unwrap_or(0),
        retransmissions: rob.retransmissions,
        timeouts: rob.timeouts,
        loss_episodes: rob.loss_episodes,
        mean_recovery_us: rob.mean_recovery_nanos() / 1e3,
        max_recovery_us: rob.max_recovery_nanos() / 1e3,
    }
}

/// The flow count of the sweep (or the `--quick` smoke version).
pub fn num_flows(quick: bool) -> usize {
    if quick {
        120
    } else {
        600
    }
}

/// The CSV header matching [`csv_line`].
pub const CSV_HEADER: &str = "scheme,profile,completed,injected,overall_avg_us,small_p99_us,\
                              marks,drops,fault_drops,retransmissions,timeouts,loss_episodes,\
                              mean_recovery_us,max_recovery_us";

/// One [`FaultRow`] as a CSV line (no newline).
pub fn csv_line(row: &FaultRow) -> String {
    format!(
        "{},{},{},{},{:.1},{:.1},{},{},{},{},{},{},{:.1},{:.1}",
        row.scheme,
        row.profile,
        row.completed,
        row.injected,
        row.overall_avg_us,
        row.small_p99_us,
        row.marks,
        row.drops,
        row.fault_drops,
        row.retransmissions,
        row.timeouts,
        row.loss_episodes,
        row.mean_recovery_us,
        row.max_recovery_us
    )
}

/// The harness-record payload of one cell.
pub fn row_record(row: &FaultRow) -> Record {
    Record::new()
        .field("completed", row.completed)
        .field("injected", row.injected)
        .field("overall_avg_us", row.overall_avg_us)
        .field("small_p99_us", row.small_p99_us)
        .field("marks", row.marks)
        .field("drops", row.drops)
        .field("fault_drops", row.fault_drops)
        .field("retransmissions", row.retransmissions)
        .field("timeouts", row.timeouts)
        .field("loss_episodes", row.loss_episodes)
        .field("mean_recovery_us", row.mean_recovery_us)
        .field("max_recovery_us", row.max_recovery_us)
}

/// Rebuilds a [`FaultRow`] from a record written by [`row_record`]
/// (with `scheme` and `profile` job parameters).
pub fn row_from_record(rec: &Record) -> Option<FaultRow> {
    let scheme = schemes()
        .into_iter()
        .map(|(name, _)| name)
        .find(|s| rec.get_str("scheme") == Some(s))?;
    let profile = PROFILES
        .iter()
        .copied()
        .find(|p| rec.get_str("profile") == Some(p))?;
    let f = |k: &str| rec.get_f64(k);
    Some(FaultRow {
        scheme,
        profile,
        completed: f("completed")? as usize,
        injected: f("injected")? as usize,
        overall_avg_us: f("overall_avg_us")?,
        small_p99_us: f("small_p99_us")?,
        marks: f("marks")? as u64,
        drops: f("drops")? as u64,
        fault_drops: f("fault_drops")? as u64,
        retransmissions: f("retransmissions")? as u64,
        timeouts: f("timeouts")? as u64,
        loss_episodes: f("loss_episodes")? as u64,
        mean_recovery_us: f("mean_recovery_us")?,
        max_recovery_us: f("max_recovery_us")?,
    })
}

/// The report title.
pub const FAULTS_TITLE: &str =
    "Faults: marking schemes under link flap + 0.1% loss (2x2 leaf-spine)";

/// Writes the sweep table plus headline observations for a completed
/// set of cells.
pub fn write_report(out: &mut String, rows: &[FaultRow]) {
    banner(out, FAULTS_TITLE);
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    let cell = |scheme: &str, profile: &str| {
        rows.iter()
            .find(|r| r.scheme == scheme && r.profile == profile)
    };
    for (scheme, _) in schemes() {
        if let (Some(clean), Some(faulted)) = (cell(scheme, "none"), cell(scheme, "flap+loss")) {
            outln!(
                out,
                "# {scheme}: avg FCT {:.1} -> {:.1} us under flap+loss \
                 ({} retx, {} RTOs, mean recovery {:.1} us)",
                clean.overall_avg_us,
                faulted.overall_avg_us,
                faulted.retransmissions,
                faulted.timeouts,
                faulted.mean_recovery_us
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_to_schedules() {
        assert!(schedule_for("none", 1).is_none());
        for p in &PROFILES[1..] {
            let s = schedule_for(p, 1).expect("faulted profile has a schedule");
            assert!(!s.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown fault profile")]
    fn unknown_profile_panics() {
        schedule_for("meteor-strike", 1);
    }

    #[test]
    fn row_round_trips_through_record() {
        let row = FaultRow {
            scheme: "pmsb",
            profile: "flap+loss",
            completed: 100,
            injected: 120,
            overall_avg_us: 1234.5,
            small_p99_us: 99.9,
            marks: 10,
            drops: 2,
            fault_drops: 7,
            retransmissions: 42,
            timeouts: 3,
            loss_episodes: 5,
            mean_recovery_us: 2500.0,
            max_recovery_us: 9000.0,
        };
        let rec = row_record(&row)
            .field("scheme", "pmsb")
            .field("profile", "flap+loss");
        let back = row_from_record(&rec).expect("round-trip");
        assert_eq!(back.completed, row.completed);
        assert_eq!(back.retransmissions, row.retransmissions);
        assert_eq!(back.loss_episodes, row.loss_episodes);
        assert_eq!(back.max_recovery_us, row.max_recovery_us);
    }

    #[test]
    fn quick_cell_runs_and_populates_robustness_columns() {
        let row = run_cell(
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            "flap+loss",
            60,
            42,
        );
        assert!(row.completed > 0);
        assert!(row.fault_drops > 0, "0.1% loss must destroy packets");
        assert!(row.retransmissions > 0, "loss must force retransmissions");
    }
}
