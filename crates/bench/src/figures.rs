//! Static-flow experiments: Figs. 1–15, Table I, Theorem IV.1 (§VI-A).

use pmsb::analysis;
use pmsb::marking::{MarkingScheme, MqEcn, Pmsb, Tcn};
use pmsb::MarkPoint;
use pmsb_metrics::{Cdf, Summary};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};

use crate::outln;
use crate::util::{banner, weighted_share, ShareResult};

/// Fig. 1 — per-queue marking with the standard threshold: RTT inflates
/// with the number of active queues. Returns `(num_queues, rtt_summary)`
/// rows (RTT in nanoseconds).
pub fn fig01(out: &mut String, quick: bool) -> Vec<(usize, Summary)> {
    banner(
        out,
        "Fig 1: per-queue marking, standard threshold K=16 pkts -- RTT vs #queues",
    );
    let millis = if quick { 10 } else { 40 };
    let queue_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    outln!(out, "queues,rtt_avg_us,rtt_p50_us,rtt_p95_us,rtt_p99_us");
    for &nq in &queue_counts {
        let mut e = Experiment::dumbbell(8, nq)
            .marking(MarkingConfig::PerQueueStandard { threshold_pkts: 16 })
            .record_rtt();
        for s in 0..8 {
            e.add_flow(FlowDesc::long_lived(s, 8, s % nq));
        }
        let res = e.run_for_millis(millis);
        let mut samples: Vec<f64> = Vec::new();
        for v in res.rtt_nanos_by_flow.values() {
            // Skip the slow-start quarter of each flow's samples.
            samples.extend(v.iter().skip(v.len() / 4).map(|r| *r as f64));
        }
        let s = Summary::from_samples(samples.clone()).expect("rtt samples");
        outln!(
            out,
            "{nq},{:.1},{:.1},{:.1},{:.1}",
            s.mean / 1e3,
            s.p50 / 1e3,
            s.p95 / 1e3,
            s.p99 / 1e3
        );
        if !quick {
            print_cdf(out, &format!("queues={nq}"), samples);
        }
        rows.push((nq, s));
    }
    rows
}

/// Fig. 2 — per-queue marking with a fractional threshold loses
/// throughput for a lone flow. Returns `(gbps_at_k16, gbps_at_k2)`.
pub fn fig02(out: &mut String, quick: bool) -> (f64, f64) {
    banner(
        out,
        "Fig 2: per-queue fractional threshold -- lone-flow throughput, K=16 vs K=2 pkts",
    );
    let millis = if quick { 15 } else { 50 };
    let run = |k: u64| -> f64 {
        let mut e = Experiment::dumbbell(1, 8)
            .marking(MarkingConfig::PerQueueStandard { threshold_pkts: k })
            .watch_bottleneck(100_000);
        e.add_flow(FlowDesc::long_lived(0, 1, 0));
        let res = e.run_for_millis(millis);
        let t = &res.port_traces[&(0, 1)];
        let bins = t.queue_throughput[0].num_bins();
        t.mean_queue_gbps(0, bins / 4, bins)
    };
    let full = run(16);
    let frac = run(2);
    outln!(out, "threshold_pkts,throughput_gbps");
    outln!(out, "16,{full:.3}");
    outln!(out, "2,{frac:.3}");
    outln!(
        out,
        "# fractional threshold loses {:.1}% throughput",
        (1.0 - frac / full) * 100.0
    );
    (full, frac)
}

/// Fig. 3 — plain per-port marking (K=16) violates weighted fair sharing
/// with 1 vs 8 flows. Paper: ≈2.49 / 7.51 Gbps.
pub fn fig03(out: &mut String, quick: bool) -> ShareResult {
    banner(
        out,
        "Fig 3: per-port K=16 pkts, queues 1:1, flows 1 vs 8 -- fair-share violation",
    );
    let r = weighted_share(
        MarkingConfig::PerPort { threshold_pkts: 16 },
        None,
        &[1, 8],
        if quick { 15 } else { 50 },
    );
    print_share(out, &r);
    r
}

/// Fig. 4 — DCTCP enqueue vs dequeue marking: dequeue marking delivers
/// congestion information earlier and lowers the slow-start buffer peak
/// ≈25%. Returns `(enqueue_peak_pkts, dequeue_peak_pkts)`.
pub fn fig04(out: &mut String, quick: bool) -> (f64, f64) {
    banner(
        out,
        "Fig 4: DCTCP K=16 pkts at 1 Gbps, 4 flows -- enqueue vs dequeue marking peak",
    );
    let (enq, deq) = (
        slow_start_peak(
            out,
            MarkingConfig::PerQueueStandard { threshold_pkts: 16 },
            MarkPoint::Enqueue,
            None,
            quick,
        ),
        slow_start_peak(
            out,
            MarkingConfig::PerQueueStandard { threshold_pkts: 16 },
            MarkPoint::Dequeue,
            None,
            quick,
        ),
    );
    outln!(out, "mark_point,peak_pkts");
    outln!(out, "enqueue,{enq:.1}");
    outln!(out, "dequeue,{deq:.1}");
    outln!(
        out,
        "# dequeue marking lowers the peak {:.1}%",
        (1.0 - deq / enq) * 100.0
    );
    (enq, deq)
}

/// Fig. 5 — TCN cannot deliver congestion information early: its
/// (necessarily dequeue-time) sojourn marking still shows the tall
/// slow-start peak of enqueue-style DCTCP. Returns the TCN peak in pkts.
pub fn fig05(out: &mut String, quick: bool) -> f64 {
    // The sojourn threshold matches Fig. 4's congestion level: the time
    // to drain 16 packets at the 1 Gbps bottleneck (192 us).
    banner(
        out,
        "Fig 5: TCN T_k=192 us at 1 Gbps, 4 flows -- no early notification",
    );
    let peak = slow_start_peak(
        out,
        MarkingConfig::Tcn {
            threshold_nanos: 192_000,
        },
        MarkPoint::Dequeue,
        None,
        quick,
    );
    outln!(out, "scheme,peak_pkts");
    outln!(out, "tcn,{peak:.1}");
    peak
}

/// Fig. 6 — raising the port threshold to 65 pkts restores fairness for
/// 1 vs 8 flows (marks become rare).
pub fn fig06(out: &mut String, quick: bool) -> ShareResult {
    banner(
        out,
        "Fig 6: per-port K=65 pkts, flows 1 vs 8 -- fairness restored",
    );
    let r = weighted_share(
        MarkingConfig::PerPort { threshold_pkts: 65 },
        None,
        &[1, 8],
        if quick { 15 } else { 50 },
    );
    print_share(out, &r);
    r
}

/// Fig. 7 — but with 1 vs 40 flows the stable queue exceeds even 65 pkts
/// and the violation returns: thresholds cannot be raised forever.
pub fn fig07(out: &mut String, quick: bool) -> ShareResult {
    banner(
        out,
        "Fig 7: per-port K=65 pkts, flows 1 vs 40 -- violation returns",
    );
    let r = weighted_share(
        MarkingConfig::PerPort { threshold_pkts: 65 },
        None,
        &[1, 40],
        if quick { 15 } else { 50 },
    );
    print_share(out, &r);
    r
}

/// Fig. 8 — PMSB (port K=12) preserves 1:1 weighted fair sharing with
/// 1 vs 4 flows while using the whole link.
pub fn fig08(out: &mut String, quick: bool) -> ShareResult {
    banner(
        out,
        "Fig 8: PMSB port K=12 pkts, DWRR 1:1, flows 1 vs 4 -- fair sharing preserved",
    );
    let r = weighted_share(
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        None,
        &[1, 4],
        if quick { 15 } else { 50 },
    );
    print_share(out, &r);
    r
}

/// Fig. 9 — RTT distribution of the queue-2 (4-flow) traffic under each
/// scheme. Returns `(scheme, rtt_summary)` rows.
pub fn fig09(out: &mut String, quick: bool) -> Vec<(&'static str, Summary)> {
    banner(
        out,
        "Fig 9: RTT of queue-2 flows -- PMSB / PMSB(e) / MQ-ECN / TCN / per-queue-std",
    );
    let millis = if quick { 15 } else { 50 };
    let schemes: Vec<(&'static str, MarkingConfig, Option<u64>, MarkPoint)> = vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            None,
            MarkPoint::Enqueue,
        ),
        (
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(40_000),
            MarkPoint::Enqueue,
        ),
        (
            "mq-ecn",
            MarkingConfig::MqEcn { standard_pkts: 16 },
            None,
            MarkPoint::Enqueue,
        ),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            },
            None,
            MarkPoint::Dequeue, // TCN can only mark at dequeue
        ),
        (
            "per-queue-std",
            MarkingConfig::PerQueueStandard { threshold_pkts: 16 },
            None,
            MarkPoint::Enqueue,
        ),
    ];
    let mut rows = Vec::new();
    outln!(out, "scheme,rtt_avg_us,rtt_p50_us,rtt_p95_us,rtt_p99_us");
    for (name, marking, pmsbe, point) in schemes {
        let mut e = Experiment::dumbbell(5, 2)
            .marking(marking)
            .mark_point(point)
            .record_rtt();
        if let Some(thr) = pmsbe {
            e = e.pmsbe_rtt_threshold_nanos(thr);
        }
        // Queue 0: one flow from sender 0; queue 1: four flows.
        e.add_flow(FlowDesc::long_lived(0, 5, 0));
        for s in 1..5 {
            e.add_flow(FlowDesc::long_lived(s, 5, 1));
        }
        let res = e.run_for_millis(millis);
        let mut samples = Vec::new();
        for flow in 1..5u64 {
            if let Some(v) = res.rtt_nanos_by_flow.get(&flow) {
                samples.extend(v.iter().skip(v.len() / 4).map(|r| *r as f64));
            }
        }
        let s = Summary::from_samples(samples.clone()).expect("rtt samples");
        outln!(
            out,
            "{name},{:.1},{:.1},{:.1},{:.1}",
            s.mean / 1e3,
            s.p50 / 1e3,
            s.p95 / 1e3,
            s.p99 / 1e3
        );
        if !quick {
            print_cdf(out, name, samples);
        }
        rows.push((name, s));
    }
    rows
}

/// Fig. 10 — PMSB keeps fair sharing even at 1 vs 100 flows.
pub fn fig10(out: &mut String, quick: bool) -> ShareResult {
    banner(
        out,
        "Fig 10: PMSB port K=12 pkts, flows 1 vs 100 -- heavy traffic",
    );
    let r = weighted_share(
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        None,
        &[1, 100],
        if quick { 15 } else { 50 },
    );
    print_share(out, &r);
    r
}

/// Figs. 11/12 — PMSB and PMSB(e) deliver congestion information early:
/// dequeue marking lowers the slow-start peak ≈20%. Returns
/// `(scheme, enqueue_peak, dequeue_peak)` rows in packets.
pub fn fig11_12(out: &mut String, quick: bool) -> Vec<(&'static str, f64, f64)> {
    banner(
        out,
        "Figs 11/12: PMSB & PMSB(e) port K=12 pkts, 4 flows -- enqueue vs dequeue peaks",
    );
    let mut rows = Vec::new();
    outln!(out, "scheme,enqueue_peak_pkts,dequeue_peak_pkts");
    for (name, marking, pmsbe) in [
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            None,
        ),
        (
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(90_000u64),
        ),
    ] {
        let enq = slow_start_peak(out, marking.clone(), MarkPoint::Enqueue, pmsbe, quick);
        let deq = slow_start_peak(out, marking, MarkPoint::Dequeue, pmsbe, quick);
        outln!(out, "{name},{enq:.1},{deq:.1}");
        rows.push((name, enq, deq));
    }
    rows
}

/// Fig. 13 — SP+WFQ with PMSB: queue 1 strictly above queues 2 and 3
/// (1:1). Staged starts; final shares should be 5 / 2.5 / 2.5 Gbps.
/// Returns the final per-queue Gbps.
pub fn fig13(out: &mut String, quick: bool) -> Vec<f64> {
    banner(
        out,
        "Fig 13: SP+WFQ under PMSB -- staged flows, expect 5 / 2.5 / 2.5 Gbps",
    );
    let (t1, t2, end) = stage_times(quick);
    let mut e = Experiment::dumbbell(6, 3)
        .scheduler(SchedulerConfig::SpWfq {
            group_of: vec![0, 1, 1],
            weights: vec![1, 1, 1],
        })
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .watch_bottleneck(100_000);
    e.add_flow(FlowDesc::long_lived(0, 6, 0).with_app_rate_bps(5_000_000_000));
    e.add_flow(FlowDesc::long_lived(1, 6, 1).starting_at(t1));
    for s in 2..6 {
        e.add_flow(FlowDesc::long_lived(s, 6, 2).starting_at(t2));
    }
    let shares = staged_shares(e, 6, 3, t2, end);
    outln!(out, "queue,final_gbps");
    for (q, g) in shares.iter().enumerate() {
        outln!(out, "{},{g:.2}", q + 1);
    }
    shares
}

/// Fig. 14 — strict priority with PMSB: app-limited 5/3/10 Gbps flows in
/// priority order; final shares should be 5 / 3 / 2 Gbps.
pub fn fig14(out: &mut String, quick: bool) -> Vec<f64> {
    banner(
        out,
        "Fig 14: SP under PMSB -- staged 5G/3G/10G flows, expect 5 / 3 / 2 Gbps",
    );
    let (t1, t2, end) = stage_times(quick);
    let mut e = Experiment::dumbbell(3, 3)
        .scheduler(SchedulerConfig::Sp { num_queues: 3 })
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .watch_bottleneck(100_000);
    e.add_flow(FlowDesc::long_lived(0, 3, 0).with_app_rate_bps(5_000_000_000));
    e.add_flow(
        FlowDesc::long_lived(1, 3, 1)
            .with_app_rate_bps(3_000_000_000)
            .starting_at(t1),
    );
    e.add_flow(
        FlowDesc::long_lived(2, 3, 2)
            .with_app_rate_bps(10_000_000_000)
            .starting_at(t2),
    );
    let shares = staged_shares(e, 3, 3, t2, end);
    outln!(out, "queue,final_gbps");
    for (q, g) in shares.iter().enumerate() {
        outln!(out, "{},{g:.2}", q + 1);
    }
    shares
}

/// Fig. 15 — WFQ with PMSB: a lone queue-1 flow takes the full link, then
/// four queue-2 flows arrive and the split becomes 5 / 5 Gbps. Returns
/// `(solo_gbps, final_q1, final_q2)`.
pub fn fig15(out: &mut String, quick: bool) -> (f64, f64, f64) {
    banner(
        out,
        "Fig 15: WFQ under PMSB -- 10 Gbps solo, then 5 / 5 Gbps split",
    );
    let (t1, _t2, end) = stage_times(quick);
    let mut e = Experiment::dumbbell(5, 2)
        .scheduler(SchedulerConfig::Wfq {
            weights: vec![1, 1],
        })
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .watch_bottleneck(100_000);
    e.add_flow(FlowDesc::long_lived(0, 5, 0));
    for s in 1..5 {
        e.add_flow(FlowDesc::long_lived(s, 5, 1).starting_at(t1));
    }
    let res = e.run_until_nanos(end);
    let trace = &res.port_traces[&(0, 5)];
    let bin = 1_000_000u64;
    // Solo window: second quarter of [0, t1); final window: last quarter.
    let solo =
        trace.queue_throughput[0].mean_gbps((t1 / bin / 4) as usize, (t1 / bin / 2) as usize);
    let from = (end - (end - t1) / 4) / bin;
    let q1 = trace.queue_throughput[0].mean_gbps(from as usize, (end / bin) as usize);
    let q2 = trace.queue_throughput[1].mean_gbps(from as usize, (end / bin) as usize);
    outln!(out, "phase,q1_gbps,q2_gbps");
    outln!(out, "solo,{solo:.2},0.00");
    outln!(out, "shared,{q1:.2},{q2:.2}");
    (solo, q1, q2)
}

/// Table I — the capability matrix, generated from the implementations.
pub fn table1(out: &mut String) -> Vec<(String, [bool; 4])> {
    banner(out, "Table I: capability matrix");
    let schemes: Vec<(String, Box<dyn MarkingScheme>)> = vec![
        (
            "MQ-ECN".into(),
            Box::new(MqEcn::new(65 * 1500, vec![1500; 8])),
        ),
        ("TCN".into(), Box::new(Tcn::new(78_200))),
        ("PMSB".into(), Box::new(Pmsb::new(12 * 1500, vec![1; 8]))),
    ];
    let mut rows = Vec::new();
    outln!(
        out,
        "scheme,generic_sched,round_based_sched,early_notification,no_switch_mod"
    );
    for (name, s) in schemes {
        let c = s.capabilities();
        let row = [
            c.generic_scheduler,
            c.round_based_scheduler,
            c.early_notification,
            c.no_switch_modification,
        ];
        outln!(
            out,
            "{name},{},{},{},{}",
            yn(row[0]),
            yn(row[1]),
            yn(row[2]),
            yn(row[3])
        );
        rows.push((name, row));
    }
    // PMSB(e) runs per-port marking at switches (no modification) and the
    // selective-blindness rule at end hosts.
    let row = [true, true, true, true];
    outln!(
        out,
        "PMSB(e),{},{},{},{}",
        yn(true),
        yn(true),
        yn(true),
        yn(true)
    );
    rows.push(("PMSB(e)".into(), row));
    rows
}

/// Theorem IV.1 — empirical validation: sweep the per-queue threshold
/// around the `γ·C·RTT/7` bound at the worst-case flow count and measure
/// utilization. Returns `(k_over_bound, k_pkts, utilization)` rows.
pub fn thm_iv1(out: &mut String, quick: bool) -> Vec<(f64, u64, f64)> {
    banner(
        out,
        "Theorem IV.1: threshold sweep around gamma*C*RTT/7 at the worst-case flow count",
    );
    let millis = if quick { 20 } else { 60 };
    // Longer links make the bound land on convenient packet counts:
    // RTT ~= 8*25us prop + serialization ~= 104 us => BDP ~= 87 pkts.
    let delay = 25_000u64;
    let rtt_nanos = 4 * delay + 4_800; // props + ~4 serializations
    let bdp = analysis::bdp_segments(10_000_000_000, rtt_nanos, 1500);
    let bound = analysis::theorem_iv1_min_threshold_segments(bdp);
    let mut rows = Vec::new();
    outln!(
        out,
        "# BDP ~= {bdp:.1} pkts, Theorem IV.1 bound ~= {bound:.1} pkts"
    );
    outln!(out, "k_over_bound,k_pkts,n_flows,utilization");
    for ratio in [0.35, 0.6, 1.0, 1.5, 2.5] {
        let k = ((bound * ratio).round() as u64).max(1);
        let n = analysis::worst_case_flow_count(bdp, k as f64)
            .round()
            .max(2.0) as usize;
        let mut e = Experiment::dumbbell(n, 1)
            .marking(MarkingConfig::PerQueueStandard { threshold_pkts: k })
            .link_delay_nanos(delay)
            .watch_bottleneck(200_000);
        for s in 0..n {
            e.add_flow(FlowDesc::long_lived(s, n, 0));
        }
        let res = e.run_for_millis(millis);
        let t = &res.port_traces[&(0, n)];
        let bins = t.queue_throughput[0].num_bins();
        let util = t.mean_queue_gbps(0, bins / 3, bins) / 10.0;
        outln!(out, "{ratio:.2},{k},{n},{util:.4}");
        rows.push((ratio, k, util));
    }
    rows
}

// ----------------------------------------------------------------------
// Helpers.
// ----------------------------------------------------------------------

/// Prints an 11-point CDF of microsecond-converted samples — the data
/// behind the paper's distribution plots.
fn print_cdf(out: &mut String, label: &str, samples_nanos: Vec<f64>) {
    if let Some(cdf) = Cdf::from_samples(samples_nanos) {
        let pts: Vec<String> = cdf
            .plot_points(11)
            .into_iter()
            .map(|(v, q)| format!("{q:.1}:{:.1}us", v / 1e3))
            .collect();
        outln!(out, "# cdf {label}: {}", pts.join(" "));
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn print_share(out: &mut String, r: &ShareResult) {
    outln!(out, "queue,gbps");
    for (q, g) in r.queue_gbps.iter().enumerate() {
        outln!(out, "{},{g:.2}", q + 1);
    }
    outln!(
        out,
        "# total {:.2} Gbps, {} marks, {} drops",
        r.total_gbps,
        r.marks,
        r.drops
    );
}

/// Slow-start buffer peak (in packets) at a 1 Gbps bottleneck with 4
/// synchronized flows in one queue — the Figs. 4/5/11/12 measurement.
/// With `--series`, also dumps the occupancy-vs-time trace (the curve
/// the paper plots).
fn slow_start_peak(
    out: &mut String,
    marking: MarkingConfig,
    point: MarkPoint,
    pmsbe: Option<u64>,
    quick: bool,
) -> f64 {
    let millis = if quick { 10 } else { 30 };
    let mut e = Experiment::dumbbell(4, 1)
        .marking(marking.clone())
        .mark_point(point)
        .link_rate_gbps(1)
        .watch_bottleneck(5_000);
    if let Some(thr) = pmsbe {
        e = e.pmsbe_rtt_threshold_nanos(thr);
    }
    for s in 0..4 {
        e.add_flow(FlowDesc::long_lived(s, 4, 0));
    }
    let res = e.run_for_millis(millis);
    let gauge = &res.port_traces[&(0, 4)].port_occupancy_pkts;
    if crate::util::series_flag() {
        outln!(
            out,
            "# series {}/{point} (time_us,occupancy_pkts)",
            marking.name()
        );
        for (t, v) in gauge.points() {
            outln!(out, "{:.1},{v:.0}", *t as f64 / 1e3);
        }
    }
    gauge.peak().expect("occupancy samples")
}

/// Stage boundaries for the Figs. 13–15 staged-start experiments:
/// `(first_join, second_join, end)` in nanoseconds.
fn stage_times(quick: bool) -> (u64, u64, u64) {
    if quick {
        (4_000_000, 8_000_000, 12_000_000)
    } else {
        (10_000_000, 20_000_000, 30_000_000)
    }
}

/// Runs a staged experiment and reports the mean per-queue Gbps over the
/// last quarter of the final stage.
fn staged_shares(
    e: Experiment,
    bottleneck_port: usize,
    num_queues: usize,
    last_stage_start: u64,
    end: u64,
) -> Vec<f64> {
    let res = e.run_until_nanos(end);
    let trace = &res.port_traces[&(0, bottleneck_port)];
    let bin = 1_000_000u64;
    let from = ((last_stage_start + (end - last_stage_start) / 2) / bin) as usize;
    let to = (end / bin) as usize;
    (0..num_queues)
        .map(|q| {
            let b = trace.queue_throughput[q].num_bins();
            if b <= from {
                0.0
            } else {
                trace.mean_queue_gbps(q, from, to.min(b))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_shows_violation_and_fig08_fixes_it() {
        let violated = fig03(&mut String::new(), true);
        assert!(
            violated.queue_gbps[0] < 4.0,
            "per-port K=16 must victimize queue 1: {:?}",
            violated.queue_gbps
        );
        let fair = fig08(&mut String::new(), true);
        assert!(
            (fair.queue_gbps[0] - 5.0).abs() < 0.8,
            "PMSB must restore ~5 Gbps: {:?}",
            fair.queue_gbps
        );
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1(&mut String::new());
        let get = |n: &str| rows.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(get("MQ-ECN"), [false, true, true, false]);
        assert_eq!(get("TCN"), [true, true, false, false]);
        assert_eq!(get("PMSB"), [true, true, true, false]);
        assert_eq!(get("PMSB(e)"), [true, true, true, true]);
    }
}
