//! Hyperscale fat-tree campaign: the marking-scheme lineup under the
//! datacenter-day streaming patterns ([`pmsb_workload::PatternSpec`]) on
//! a `fat_tree(k)` fabric.
//!
//! Unlike the leaf–spine sweeps, these cells run the *streaming* path:
//! flows are pulled lazily from the pattern iterator, per-flow state
//! lives in the recycled slab, and FCT percentiles come from the
//! mergeable quantile sketch — so a cell's resident memory is bounded by
//! concurrent flows, not by the total flow count (DESIGN.md §10).

use pmsb_harness::Record;
use pmsb_netsim::experiment::{Experiment, MarkingConfig};
use pmsb_netsim::EngineKind;
use pmsb_workload::PatternSpec;

use crate::outln;
use crate::util::banner;

/// One `(scheme, pattern)` cell of the hyperscale table.
#[derive(Debug, Clone)]
pub struct HsRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Pattern name.
    pub pattern: &'static str,
    /// Flows pulled from the stream.
    pub injected: u64,
    /// Flows that completed before the horizon.
    pub completed: u64,
    /// Payload bytes of completed flows.
    pub bytes_completed: u64,
    /// Sketch median FCT, µs.
    pub fct_p50_us: f64,
    /// Sketch 90th-percentile FCT, µs.
    pub fct_p90_us: f64,
    /// Sketch 99th-percentile FCT, µs.
    pub fct_p99_us: f64,
    /// Tail drops across the fabric.
    pub drops: u64,
    /// CE marks applied.
    pub marks: u64,
    /// ECE marks senders saw.
    pub marks_seen: u64,
    /// ECE marks PMSB(e) suppressed (0 without a threshold).
    pub marks_ignored: u64,
    /// Live-slot high-water mark: the peak number of simultaneously
    /// allocated flow slots (the resident-memory proxy). With
    /// `--sim-threads > 1` the per-shard peaks (taken at different
    /// instants) sum to an upper bound, so this field is the one metric
    /// that may read higher on sharded runs. It is therefore kept out of
    /// the harness record and the CSV — campaign records must stay
    /// byte-identical across thread counts — and reported instead by
    /// `BENCH_pr6.json` and the `pmsb-sim fabric` diagnostics.
    pub slab_high_water: u64,
}

/// One scheme of the hyperscale lineup: `(name, marking, PMSB(e) RTT
/// threshold)`.
pub type SchemeSpec = (&'static str, MarkingConfig, Option<u64>);

/// PMSB(e) RTT threshold for the 1 µs-link fat-tree: the unloaded
/// inter-pod RTT (~20 µs: six 1 µs hops each way plus store-and-forward
/// serialization) plus one port's worth of K=12 queueing (~14 µs),
/// rounded up — the same "base RTT + K" construction as the paper's
/// 85.2 µs leaf–spine setting.
pub const PMSBE_FAT_TREE_THRESHOLD_NANOS: u64 = 40_000;

/// The scheme lineup of the hyperscale campaign: PMSB (port K = 12),
/// plain per-port (K = 12), per-queue with the full standard threshold
/// on every queue (K = 65, the Fig. 1 overshooting baseline), and
/// PMSB(e) (per-port K = 12 plus the end-host RTT filter).
pub fn schemes() -> Vec<SchemeSpec> {
    vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            None,
        ),
        (
            "per-port",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            None,
        ),
        (
            "per-queue",
            MarkingConfig::PerQueueStandard { threshold_pkts: 65 },
            None,
        ),
        (
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(PMSBE_FAT_TREE_THRESHOLD_NANOS),
        ),
    ]
}

/// The traffic patterns of the campaign. `quick` shrinks the incast
/// fan-in so it fits the k=4 smoke fabric (15 possible senders).
pub fn patterns(quick: bool) -> Vec<(&'static str, PatternSpec)> {
    vec![
        ("incast", PatternSpec::incast(if quick { 8 } else { 32 })),
        ("shuffle", PatternSpec::shuffle()),
        ("hotservice", PatternSpec::hotservice(1.2)),
    ]
}

/// Fabric size and per-cell flow count (`--quick` shrinks both).
pub fn fabric_and_flows(quick: bool) -> (usize, u64) {
    if quick {
        (4, 2_000)
    } else {
        (8, 20_000)
    }
}

/// Fat-tree parameter of the k=24 campaign cells (3456 hosts,
/// 720 switches — the largest fabric the suite drives).
pub const K24_FABRIC: usize = 24;

/// Per-cell flow count of the k=24 campaign (`--quick` shrinks it).
pub fn k24_flows(quick: bool) -> u64 {
    if quick {
        2_000
    } else {
        20_000
    }
}

/// The scheme lineup of the k=24 cells: the paper scheme against its
/// closest per-port baseline (the per-queue/PMSB(e) columns stay on the
/// k=8 grid; at 3456 hosts two schemes keep the cell count honest).
pub fn k24_schemes() -> Vec<SchemeSpec> {
    schemes()
        .into_iter()
        .filter(|(name, _, _)| *name == "pmsb" || *name == "per-port")
        .collect()
}

/// The traffic patterns of the k=24 cells: the plain shuffle plus an
/// incast+shuffle mix drawing flow sizes from the web-search
/// distribution.
pub fn k24_patterns() -> Vec<(&'static str, PatternSpec)> {
    use pmsb_workload::SizeDistSpec;
    vec![
        ("shuffle", PatternSpec::shuffle()),
        (
            "mix-websearch",
            PatternSpec::sized(
                PatternSpec::Mix(vec![PatternSpec::incast(32), PatternSpec::shuffle()]),
                SizeDistSpec::WebSearch,
            ),
        ),
    ]
}

/// Runs one `(scheme, pattern)` streaming cell on a `fat_tree(k)`
/// fabric across `sim_threads` shards, under the chosen simulation
/// `engine` (the fluid/hybrid engines ignore `sim_threads`; they are
/// single-threaded by design). The horizon is the stream's last arrival
/// plus a 50 ms drain window.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    scheme_spec: &SchemeSpec,
    pattern_spec: &(&'static str, PatternSpec),
    k: usize,
    total_flows: u64,
    seed: u64,
    sim_threads: usize,
    engine: EngineKind,
) -> HsRow {
    let (scheme, marking, pmsbe) = scheme_spec.clone();
    let (pattern_name, pattern) = pattern_spec;
    let num_hosts = k * k * k / 4;
    let last_start = pattern
        .flows(num_hosts, seed, total_flows)
        .last()
        .map(|f| f.start_nanos)
        .unwrap_or(0);
    let mut e = Experiment::fat_tree(k)
        .marking(marking)
        .stream(pattern.clone(), seed, total_flows)
        .buffer(crate::util::buffer_policy())
        .sim_threads(sim_threads)
        .partition(crate::util::partition())
        .engine(engine);
    if engine == EngineKind::Regional {
        e = e.region(crate::util::region());
    }
    if let Some(thr) = pmsbe {
        e = e.pmsbe_rtt_threshold_nanos(thr);
    }
    let res = e.run_until_nanos(last_start + 50_000_000);
    let s = res.stream.as_ref().expect("streaming run");
    let q = |p: f64| {
        s.sketch
            .quantile(p)
            .map(|n| n as f64 / 1e3)
            .unwrap_or(f64::NAN)
    };
    HsRow {
        scheme,
        pattern: pattern_name,
        injected: s.injected,
        completed: s.completed,
        bytes_completed: s.bytes_completed,
        fct_p50_us: q(0.5),
        fct_p90_us: q(0.9),
        fct_p99_us: q(0.99),
        drops: res.drops,
        marks: res.marks,
        marks_seen: s.agg_sender.marks_seen,
        marks_ignored: s.agg_sender.marks_ignored,
        slab_high_water: s.slab_high_water,
    }
}

/// The CSV header matching [`csv_line`].
pub const CSV_HEADER: &str = "scheme,pattern,injected,completed,bytes_completed,fct_p50_us,\
                              fct_p90_us,fct_p99_us,drops,marks,marks_seen,marks_ignored";

/// One [`HsRow`] as a CSV line (no newline).
pub fn csv_line(row: &HsRow) -> String {
    format!(
        "{},{},{},{},{},{:.1},{:.1},{:.1},{},{},{},{}",
        row.scheme,
        row.pattern,
        row.injected,
        row.completed,
        row.bytes_completed,
        row.fct_p50_us,
        row.fct_p90_us,
        row.fct_p99_us,
        row.drops,
        row.marks,
        row.marks_seen,
        row.marks_ignored
    )
}

/// The harness-record payload of one cell — every [`HsRow`] metric.
pub fn row_record(row: &HsRow) -> Record {
    Record::new()
        .field("injected", row.injected)
        .field("completed", row.completed)
        .field("bytes_completed", row.bytes_completed)
        .field("fct_p50_us", row.fct_p50_us)
        .field("fct_p90_us", row.fct_p90_us)
        .field("fct_p99_us", row.fct_p99_us)
        .field("drops", row.drops)
        .field("marks", row.marks)
        .field("marks_seen", row.marks_seen)
        .field("marks_ignored", row.marks_ignored)
}

/// Rebuilds an [`HsRow`] from a harness record written by
/// [`row_record`] (with `scheme` and `pattern` job parameters).
pub fn row_from_record(rec: &Record) -> Option<HsRow> {
    let scheme = ["pmsb", "per-port", "per-queue", "pmsb(e)"]
        .into_iter()
        .find(|s| rec.get_str("scheme") == Some(s))?;
    let pattern = ["incast", "shuffle", "hotservice", "mix-websearch"]
        .into_iter()
        .find(|p| rec.get_str("pattern") == Some(p))?;
    let f = |k: &str| rec.get_f64(k);
    Some(HsRow {
        scheme,
        pattern,
        injected: f("injected")? as u64,
        completed: f("completed")? as u64,
        bytes_completed: f("bytes_completed")? as u64,
        fct_p50_us: f("fct_p50_us")?,
        fct_p90_us: f("fct_p90_us")?,
        fct_p99_us: f("fct_p99_us")?,
        drops: f("drops")? as u64,
        marks: f("marks")? as u64,
        marks_seen: f("marks_seen")? as u64,
        marks_ignored: f("marks_ignored")? as u64,
        // Not persisted (thread-count-dependent upper bound, see the
        // field docs): absent from every record by construction.
        slab_high_water: 0,
    })
}

/// Writes the hyperscale table plus per-pattern p99 comparisons against
/// the per-queue baseline.
pub fn write_report(out: &mut String, rows: &[HsRow]) {
    banner(out, "Hyperscale: fat-tree streaming patterns");
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    for (pattern, _) in patterns(true) {
        let cell = |scheme: &str| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.pattern == pattern)
                .map(|r| r.fct_p99_us)
                .filter(|v| v.is_finite())
        };
        let Some(base) = cell("per-queue") else {
            continue;
        };
        for ours in ["pmsb", "pmsb(e)"] {
            if let Some(o) = cell(ours) {
                outln!(
                    out,
                    "# {pattern}: {ours} vs per-queue p99 FCT change {:+.1}%",
                    (o / base - 1.0) * 100.0
                );
            }
        }
    }
}

/// Writes the k=24 table plus the per-pattern PMSB-vs-per-port p99
/// comparison (there is no per-queue column on this grid).
pub fn write_k24_report(out: &mut String, rows: &[HsRow]) {
    banner(
        out,
        "Hyperscale k=24: fat_tree(24) streaming cells (hybrid engine)",
    );
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    for (pattern, _) in k24_patterns() {
        let cell = |scheme: &str| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.pattern == pattern)
                .map(|r| r.fct_p99_us)
                .filter(|v| v.is_finite())
        };
        if let (Some(ours), Some(base)) = (cell("pmsb"), cell("per-port")) {
            outln!(
                out,
                "# {pattern}: pmsb vs per-port p99 FCT change {:+.1}%",
                (ours / base - 1.0) * 100.0
            );
        }
    }
}

/// Writes the regional k=24 table plus the per-pattern PMSB-vs-per-port
/// comparisons of *both* marks and p99 FCT — the point of the regional
/// cells: at the measured hot ports the two schemes see different
/// per-queue mark eligibility, so the scheme columns separate where the
/// hybrid engine's shared closed form keeps them identical.
pub fn write_k24_regional_report(out: &mut String, rows: &[HsRow]) {
    banner(
        out,
        "Hyperscale k=24 regional: fat_tree(24) cells, hot ports at packet level",
    );
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    for (pattern, _) in k24_patterns() {
        let cell = |scheme: &str| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.pattern == pattern)
        };
        let (Some(ours), Some(base)) = (cell("pmsb"), cell("per-port")) else {
            continue;
        };
        if ours.fct_p99_us.is_finite() && base.fct_p99_us.is_finite() {
            outln!(
                out,
                "# {pattern}: pmsb vs per-port p99 FCT change {:+.1}%",
                (ours.fct_p99_us / base.fct_p99_us - 1.0) * 100.0
            );
        }
        if base.marks > 0 {
            outln!(
                out,
                "# {pattern}: pmsb vs per-port marks change {:+.1}%",
                (ours.marks as f64 / base.marks as f64 - 1.0) * 100.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_round_trips_through_a_record() {
        let row = HsRow {
            scheme: "pmsb(e)",
            pattern: "shuffle",
            injected: 2_000,
            completed: 1_990,
            bytes_completed: 199_000_000,
            fct_p50_us: 120.5,
            fct_p90_us: 300.0,
            fct_p99_us: 512.25,
            drops: 3,
            marks: 400,
            marks_seen: 390,
            marks_ignored: 25,
            slab_high_water: 64,
        };
        let rec = row_record(&row)
            .field("scheme", row.scheme)
            .field("pattern", row.pattern);
        let back = row_from_record(&rec).expect("row must round-trip");
        assert_eq!(back.scheme, row.scheme);
        assert_eq!(back.pattern, row.pattern);
        assert_eq!(back.completed, row.completed);
        assert_eq!(back.bytes_completed, row.bytes_completed);
        assert_eq!(back.fct_p99_us, row.fct_p99_us);
        assert_eq!(back.slab_high_water, 0, "high-water is never persisted");
    }

    #[test]
    fn report_compares_against_per_queue() {
        let mk = |scheme: &'static str, pattern: &'static str, p99: f64| HsRow {
            scheme,
            pattern,
            injected: 10,
            completed: 10,
            bytes_completed: 1_000,
            fct_p50_us: p99 / 2.0,
            fct_p90_us: p99,
            fct_p99_us: p99,
            drops: 0,
            marks: 0,
            marks_seen: 0,
            marks_ignored: 0,
            slab_high_water: 5,
        };
        let rows = vec![
            mk("per-queue", "incast", 200.0),
            mk("pmsb", "incast", 100.0),
        ];
        let mut out = String::new();
        write_report(&mut out, &rows);
        assert!(out.contains(CSV_HEADER));
        assert!(
            out.contains("incast: pmsb vs per-queue p99 FCT change -50.0%"),
            "report: {out}"
        );
    }

    #[test]
    fn quick_grid_covers_schemes_and_patterns() {
        assert_eq!(schemes().len(), 4);
        assert_eq!(patterns(true).len(), 3);
        let (k, flows) = fabric_and_flows(true);
        assert_eq!(k, 4);
        assert!(flows >= 1_000);
    }

    #[test]
    fn k24_grid_is_the_roadmap_cell() {
        let schemes: Vec<_> = k24_schemes().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(schemes, ["pmsb", "per-port"]);
        let patterns: Vec<_> = k24_patterns().iter().map(|(n, _)| *n).collect();
        assert_eq!(patterns, ["shuffle", "mix-websearch"]);
        assert_eq!(K24_FABRIC, 24);
        // A k=24 record must survive the round trip (the pattern name is
        // new on this grid).
        let rec = Record::new()
            .field("scheme", "per-port")
            .field("pattern", "mix-websearch")
            .field("injected", 10u64)
            .field("completed", 10u64)
            .field("bytes_completed", 1_000u64)
            .field("fct_p50_us", 1.0)
            .field("fct_p90_us", 2.0)
            .field("fct_p99_us", 3.0)
            .field("drops", 0u64)
            .field("marks", 0u64)
            .field("marks_seen", 0u64)
            .field("marks_ignored", 0u64);
        let row = row_from_record(&rec).expect("k24 rows must round-trip");
        assert_eq!(row.pattern, "mix-websearch");
    }

    #[test]
    fn k24_report_compares_pmsb_to_per_port() {
        let mk = |scheme: &'static str, p99: f64| HsRow {
            scheme,
            pattern: "shuffle",
            injected: 10,
            completed: 10,
            bytes_completed: 1_000,
            fct_p50_us: p99 / 2.0,
            fct_p90_us: p99,
            fct_p99_us: p99,
            drops: 0,
            marks: 0,
            marks_seen: 0,
            marks_ignored: 0,
            slab_high_water: 5,
        };
        let rows = vec![mk("pmsb", 90.0), mk("per-port", 100.0)];
        let mut out = String::new();
        write_k24_report(&mut out, &rows);
        assert!(
            out.contains("shuffle: pmsb vs per-port p99 FCT change -10.0%"),
            "report: {out}"
        );
    }
}
