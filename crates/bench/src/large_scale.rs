//! Large-scale leaf–spine FCT experiments: Figs. 16–21 (DWRR) and
//! Figs. 22–27 (WFQ) of §VI-B.
//!
//! 48-host leaf–spine fabric, Poisson arrivals of the paper's 60/30/10
//! flow-size mix over 8 services, load swept on the x-axis. Each figure
//! group reports overall average FCT, large-flow average and 99th
//! percentile, and small-flow average / 95th / 99th percentile for each
//! scheme — the same series the paper plots.

use pmsb::MarkPoint;
use pmsb_harness::Record;
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::traffic::TrafficSpec;

use crate::outln;
use crate::util::banner;
use pmsb_metrics::fct::SizeClass;
use pmsb_metrics::robustness::{FlowRobustness, RobustnessSummary};

/// One `(scheme, load)` cell of the large-scale tables.
#[derive(Debug, Clone)]
pub struct LsRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Offered load fraction.
    pub load: f64,
    /// Completed / injected flows.
    pub completed: usize,
    /// Injected flows.
    pub injected: usize,
    /// Overall average FCT, µs.
    pub overall_avg_us: f64,
    /// Large-flow (>10 MB) average FCT, µs.
    pub large_avg_us: f64,
    /// Large-flow 99th-percentile FCT, µs.
    pub large_p99_us: f64,
    /// Small-flow (<100 KB) average FCT, µs.
    pub small_avg_us: f64,
    /// Small-flow 95th-percentile FCT, µs.
    pub small_p95_us: f64,
    /// Small-flow 99th-percentile FCT, µs.
    pub small_p99_us: f64,
    /// Tail drops across the fabric.
    pub drops: u64,
    /// CE marks applied.
    pub marks: u64,
    /// ECE marks senders saw across all flows.
    pub marks_seen: u64,
    /// ECE marks PMSB(e) suppressed (0 for schemes without a threshold) —
    /// the blindness rate is `marks_ignored / marks_seen`.
    pub marks_ignored: u64,
    /// Segments retransmitted across all senders.
    pub retransmissions: u64,
    /// Retransmission timeouts across all senders.
    pub timeouts: u64,
    /// Loss-recovery episodes across all senders.
    pub loss_episodes: u64,
    /// Mean per-flow loss-recovery time (lossy flows only), µs; 0 when
    /// no flow lost anything.
    pub mean_recovery_us: f64,
}

/// One scheme of the lineup: `(name, marking, PMSB(e) RTT threshold,
/// mark point)`.
pub type SchemeSpec = (&'static str, MarkingConfig, Option<u64>, MarkPoint);

/// The scheme lineup for a scheduler, as configured in the paper:
/// PMSB port K = 12 pkts; PMSB(e) = per-port K = 12 with an 85.2 µs RTT
/// threshold; MQ-ECN standard K = 65 pkts (round-based schedulers only);
/// TCN T_k = 78.2 µs (dequeue marking by nature).
pub fn schemes(include_mq_ecn: bool) -> Vec<SchemeSpec> {
    let mut v: Vec<SchemeSpec> = vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            None,
            MarkPoint::Enqueue,
        ),
        (
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(85_200),
            MarkPoint::Enqueue,
        ),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 78_200,
            },
            None,
            MarkPoint::Dequeue,
        ),
    ];
    if include_mq_ecn {
        v.insert(
            2,
            (
                "mq-ecn",
                MarkingConfig::MqEcn { standard_pkts: 65 },
                None,
                MarkPoint::Enqueue,
            ),
        );
    }
    v
}

/// Runs one `(scheduler, scheme, load)` cell on `sim_threads` shards
/// (1 = sequential; the records are identical either way, see
/// DESIGN.md §8).
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    scheduler: SchedulerConfig,
    scheme: &'static str,
    marking: MarkingConfig,
    pmsbe: Option<u64>,
    mark_point: MarkPoint,
    load: f64,
    num_flows: usize,
    seed: u64,
    sim_threads: usize,
) -> LsRow {
    let spec = TrafficSpec::paper_large_scale(48, load);
    let mut rng = SimRng::seed_from(seed);
    let flows = spec.generate(num_flows, &mut rng);
    let mut e = Experiment::paper_leaf_spine()
        .scheduler(scheduler)
        .marking(marking)
        .mark_point(mark_point)
        .buffer(crate::util::buffer_policy())
        .sim_threads(sim_threads)
        .partition(crate::util::partition());
    if let Some(thr) = pmsbe {
        e = e.pmsbe_rtt_threshold_nanos(thr);
    }
    for f in &flows {
        e.add_flow(
            FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                .starting_at(f.start_nanos),
        );
    }
    let last = flows.last().map(|f| f.start_nanos).unwrap_or(0);
    let res = e.run_until_nanos(last + 1_000_000_000);
    let stat = |c: SizeClass, f: fn(&pmsb_metrics::Summary) -> f64| {
        res.fct.stats(c).map(|s| f(&s) / 1e3).unwrap_or(f64::NAN)
    };
    let rob = RobustnessSummary::collect(res.sender_stats.values().map(|s| FlowRobustness {
        retransmissions: s.retransmissions,
        timeouts: s.timeouts,
        loss_episodes: s.loss_episodes,
        recovery_nanos: s.recovery_nanos,
    }));
    LsRow {
        scheme,
        load,
        completed: res.fct.len(),
        injected: flows.len(),
        overall_avg_us: stat(SizeClass::Overall, |s| s.mean),
        large_avg_us: stat(SizeClass::Large, |s| s.mean),
        large_p99_us: stat(SizeClass::Large, |s| s.p99),
        small_avg_us: stat(SizeClass::Small, |s| s.mean),
        small_p95_us: stat(SizeClass::Small, |s| s.p95),
        small_p99_us: stat(SizeClass::Small, |s| s.p99),
        drops: res.drops,
        marks: res.marks,
        marks_seen: res.sender_stats.values().map(|s| s.marks_seen).sum(),
        marks_ignored: res.sender_stats.values().map(|s| s.marks_ignored).sum(),
        retransmissions: rob.retransmissions,
        timeouts: rob.timeouts,
        loss_episodes: rob.loss_episodes,
        mean_recovery_us: rob.mean_recovery_nanos() / 1e3,
    }
}

/// The load points and flow count of the paper sweep (or the `--quick`
/// smoke version).
pub fn loads_and_flows(quick: bool) -> (&'static [f64], usize) {
    if quick {
        (&[0.3, 0.6], 250)
    } else {
        (&[0.2, 0.4, 0.6, 0.8], 1200)
    }
}

/// The CSV header matching [`csv_line`].
pub const CSV_HEADER: &str = "scheme,load,completed,injected,overall_avg_us,large_avg_us,\
                              large_p99_us,small_avg_us,small_p95_us,small_p99_us,drops,marks,\
                              marks_seen,marks_ignored,retransmissions,timeouts,loss_episodes,\
                              mean_recovery_us";

/// One [`LsRow`] as a CSV line (no newline).
pub fn csv_line(row: &LsRow) -> String {
    format!(
        "{},{:.1},{},{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{},{},{},{},{},{},{:.1}",
        row.scheme,
        row.load,
        row.completed,
        row.injected,
        row.overall_avg_us,
        row.large_avg_us,
        row.large_p99_us,
        row.small_avg_us,
        row.small_p95_us,
        row.small_p99_us,
        row.drops,
        row.marks,
        row.marks_seen,
        row.marks_ignored,
        row.retransmissions,
        row.timeouts,
        row.loss_episodes,
        row.mean_recovery_us
    )
}

/// The harness-record payload of one cell — every [`LsRow`] metric.
pub fn row_record(row: &LsRow) -> Record {
    Record::new()
        .field("completed", row.completed)
        .field("injected", row.injected)
        .field("overall_avg_us", row.overall_avg_us)
        .field("large_avg_us", row.large_avg_us)
        .field("large_p99_us", row.large_p99_us)
        .field("small_avg_us", row.small_avg_us)
        .field("small_p95_us", row.small_p95_us)
        .field("small_p99_us", row.small_p99_us)
        .field("drops", row.drops)
        .field("marks", row.marks)
        .field("marks_seen", row.marks_seen)
        .field("marks_ignored", row.marks_ignored)
        .field("retransmissions", row.retransmissions)
        .field("timeouts", row.timeouts)
        .field("loss_episodes", row.loss_episodes)
        .field("mean_recovery_us", row.mean_recovery_us)
}

/// Rebuilds an [`LsRow`] from a harness record written by
/// [`row_record`] (with `scheme` and `load` job parameters). Returns
/// `None` if a field is missing or the scheme name is unknown.
pub fn row_from_record(rec: &Record) -> Option<LsRow> {
    let scheme = ["pmsb", "pmsb(e)", "mq-ecn", "tcn"]
        .into_iter()
        .find(|s| rec.get_str("scheme") == Some(s))?;
    let f = |k: &str| rec.get_f64(k);
    Some(LsRow {
        scheme,
        load: rec.get_str("load")?.parse().ok()?,
        completed: f("completed")? as usize,
        injected: f("injected")? as usize,
        overall_avg_us: f("overall_avg_us")?,
        large_avg_us: f("large_avg_us")?,
        large_p99_us: f("large_p99_us")?,
        small_avg_us: f("small_avg_us")?,
        small_p95_us: f("small_p95_us")?,
        small_p99_us: f("small_p99_us")?,
        drops: f("drops")? as u64,
        marks: f("marks")? as u64,
        // Absent in records written before these columns existed:
        // surface as zero rather than dropping the row.
        marks_seen: f("marks_seen").unwrap_or(0.0) as u64,
        marks_ignored: f("marks_ignored").unwrap_or(0.0) as u64,
        retransmissions: f("retransmissions").unwrap_or(0.0) as u64,
        timeouts: f("timeouts").unwrap_or(0.0) as u64,
        loss_episodes: f("loss_episodes").unwrap_or(0.0) as u64,
        mean_recovery_us: f("mean_recovery_us").unwrap_or(0.0),
    })
}

/// Writes the sweep table (banner, CSV rows, headline reductions) for a
/// completed set of cells.
pub fn write_sweep_report(out: &mut String, title: &str, rows: &[LsRow]) {
    banner(out, title);
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    write_reductions(out, rows);
}

/// The DWRR sweep title (Figs. 16–21).
pub const FIG16_21_TITLE: &str = "Figs 16-21: large-scale leaf-spine, DWRR scheduler";
/// The WFQ sweep title (Figs. 22–27).
pub const FIG22_27_TITLE: &str =
    "Figs 22-27: large-scale leaf-spine, WFQ scheduler (MQ-ECN excluded)";

/// Writes the paper's headline comparisons: PMSB / PMSB(e) small-flow FCT
/// reduction relative to each baseline, averaged across loads.
pub fn write_reductions(out: &mut String, rows: &[LsRow]) {
    let mean_of = |scheme: &str, f: fn(&LsRow) -> f64| -> Option<f64> {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.scheme == scheme && f(r).is_finite())
            .map(f)
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    };
    for baseline in ["tcn", "mq-ecn"] {
        for ours in ["pmsb", "pmsb(e)"] {
            for (metric, get) in [
                (
                    "small avg",
                    (|r: &LsRow| r.small_avg_us) as fn(&LsRow) -> f64,
                ),
                ("small p99", |r: &LsRow| r.small_p99_us),
                ("large avg", |r: &LsRow| r.large_avg_us),
            ] {
                if let (Some(b), Some(o)) = (mean_of(baseline, get), mean_of(ours, get)) {
                    outln!(
                        out,
                        "# {ours} vs {baseline}: {metric} FCT change {:+.1}%",
                        (o / b - 1.0) * 100.0
                    );
                }
            }
        }
    }
}
