#![warn(missing_docs)]

//! The PMSB experiment suite.
//!
//! Every table and figure of the paper's evaluation maps to one function
//! here and one thin binary in `src/bin/`:
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Fig. 1 | [`figures::fig01`] | `fig01_per_queue_standard` |
//! | Fig. 2 | [`figures::fig02`] | `fig02_fractional_threshold` |
//! | Fig. 3 | [`figures::fig03`] | `fig03_per_port_violation` |
//! | Fig. 4 | [`figures::fig04`] | `fig04_enq_vs_deq` |
//! | Fig. 5 | [`figures::fig05`] | `fig05_tcn_no_early` |
//! | Fig. 6 | [`figures::fig06`] | `fig06_port65_1v8` |
//! | Fig. 7 | [`figures::fig07`] | `fig07_port65_1v40` |
//! | Fig. 8 | [`figures::fig08`] | `fig08_pmsb_dwrr_1v4` |
//! | Fig. 9 | [`figures::fig09`] | `fig09_rtt_cdf` |
//! | Fig. 10 | [`figures::fig10`] | `fig10_pmsb_1v100` |
//! | Figs. 11/12 | [`figures::fig11_12`] | `fig11_12_early_notification` |
//! | Fig. 13 | [`figures::fig13`] | `fig13_sp_wfq` |
//! | Fig. 14 | [`figures::fig14`] | `fig14_sp` |
//! | Fig. 15 | [`figures::fig15`] | `fig15_wfq` |
//! | Figs. 16–21 | [`campaigns::large_scale_jobs`] | `fig16_21_large_dwrr` |
//! | Figs. 22–27 | [`campaigns::large_scale_jobs`] | `fig22_27_large_wfq` |
//! | Table I | [`figures::table1`] | `table1_capabilities` |
//! | Theorem IV.1 | [`figures::thm_iv1`] | `thm_iv1_validation` |
//!
//! Beyond the paper, [`extensions`] adds the per-service-pool violation
//! experiment (§II-A's untested claim), threshold-sensitivity ablations
//! for PMSB and PMSB(e), a RED-ramp comparison, and the web-search
//! workload (binaries `ext_*` / `ablation_*`).
//!
//! Experiment functions write their human-readable report into a
//! `&mut String` and return structured results. The [`campaigns`]
//! module wraps everything as [`pmsb_harness`] jobs: `all_experiments`
//! (and the other campaign binaries) fan cells across `--jobs N`
//! workers, persist one JSONL record per job under
//! `results/<campaign>/`, and resume completed jobs for free on rerun.
//! All binaries accept `--quick` (shorter runs for smoke-testing);
//! [`micro`] holds the self-timed micro-benchmarks (`microbench`).

pub mod buffers;
pub mod campaigns;
pub mod extensions;
pub mod faults;
pub mod figures;
pub mod hyperscale;
pub mod large_scale;
pub mod micro;
pub mod report;
pub mod transport;
pub mod util;
