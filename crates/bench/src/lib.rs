#![warn(missing_docs)]

//! The PMSB experiment harness.
//!
//! Every table and figure of the paper's evaluation maps to one function
//! here and one thin binary in `src/bin/`:
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Fig. 1 | [`figures::fig01`] | `fig01_per_queue_standard` |
//! | Fig. 2 | [`figures::fig02`] | `fig02_fractional_threshold` |
//! | Fig. 3 | [`figures::fig03`] | `fig03_per_port_violation` |
//! | Fig. 4 | [`figures::fig04`] | `fig04_enq_vs_deq` |
//! | Fig. 5 | [`figures::fig05`] | `fig05_tcn_no_early` |
//! | Fig. 6 | [`figures::fig06`] | `fig06_port65_1v8` |
//! | Fig. 7 | [`figures::fig07`] | `fig07_port65_1v40` |
//! | Fig. 8 | [`figures::fig08`] | `fig08_pmsb_dwrr_1v4` |
//! | Fig. 9 | [`figures::fig09`] | `fig09_rtt_cdf` |
//! | Fig. 10 | [`figures::fig10`] | `fig10_pmsb_1v100` |
//! | Figs. 11/12 | [`figures::fig11_12`] | `fig11_12_early_notification` |
//! | Fig. 13 | [`figures::fig13`] | `fig13_sp_wfq` |
//! | Fig. 14 | [`figures::fig14`] | `fig14_sp` |
//! | Fig. 15 | [`figures::fig15`] | `fig15_wfq` |
//! | Figs. 16–21 | [`large_scale::fig16_21`] | `fig16_21_large_dwrr` |
//! | Figs. 22–27 | [`large_scale::fig22_27`] | `fig22_27_large_wfq` |
//! | Table I | [`figures::table1`] | `table1_capabilities` |
//! | Theorem IV.1 | [`figures::thm_iv1`] | `thm_iv1_validation` |
//!
//! Beyond the paper, [`extensions`] adds the per-service-pool violation
//! experiment (§II-A's untested claim), threshold-sensitivity ablations
//! for PMSB and PMSB(e), a RED-ramp comparison, and the web-search
//! workload (binaries `ext_*` / `ablation_*`).
//!
//! All binaries accept `--quick` (shorter runs for smoke-testing) and
//! print machine-readable CSV alongside a human-readable summary;
//! `all_experiments` runs everything in sequence.

pub mod extensions;
pub mod figures;
pub mod large_scale;
pub mod util;
