//! Self-timed micro-benchmarks (the former criterion benches), run by
//! the `microbench` binary. No external benchmarking crate: each case
//! is a closure timed over a fixed batch, repeated for several samples,
//! reporting the per-iteration mean and the best sample.
//!
//! Cases:
//! * `marking_decision/*` — per-packet decision cost of each marking
//!   scheme (the paper's §IV-C complexity claim);
//! * `scheduler_ops/*` — enqueue+dequeue cost per scheduler;
//! * `event_queue/*` — future-event-list throughput;
//! * `dctcp_transfer/*` — sender/receiver state-machine cost;
//! * `transport_newreno/*` — the same loopback on the NewReno transport;
//! * `dumbbell_4x500KB/*` — end-to-end simulator throughput;
//! * `large_scale_parallel/threads_*` — one leaf–spine cell sharded
//!   across 1/2/4 worker threads (wall-clock scaling of `--sim-threads`);
//! * `hyperscale/fat_tree_k4_stream` — a streamed mixed workload through
//!   the slab flow state on the smoke fat-tree;
//! * `fluid/*` — the same streamed cell under the flow-level fluid and
//!   hybrid engines, plus a fluid dumbbell (the fast path of DESIGN.md
//!   §11).

use std::hint::black_box;
use std::time::Instant;

use pmsb::marking::{MarkingScheme, MqEcn, PerPort, PerQueue, Pmsb, Tcn};
use pmsb::PortSnapshot;
use pmsb_netsim::config::{TransportConfig, TransportKind};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};
use pmsb_netsim::packet::PacketKind;
use pmsb_netsim::transport::{Receiver as _, Sender as _, TransportReceiver, TransportSender};
use pmsb_sched::{Dwrr, HierSpWfq, MultiQueue, SchedItem, Scheduler, StrictPriority, Wfq, Wrr};
use pmsb_simcore::{EventQueue, HeapQueue, SimTime};

use crate::outln;

/// Timing of one benchmark case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// `group/name` label.
    pub label: String,
    /// Mean nanoseconds per iteration across all samples.
    pub mean_nanos: f64,
    /// Best (fastest) sample's nanoseconds per iteration.
    pub best_nanos: f64,
}

/// Times `f` for `iters` iterations per sample, `samples` times (after
/// one warm-up sample), and appends a CSV line to the report.
fn run_case(
    out: &mut String,
    label: &str,
    iters: u32,
    samples: u32,
    mut f: impl FnMut(),
) -> CaseResult {
    for _ in 0..iters.max(1) {
        f(); // warm-up
    }
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_iter);
        total += per_iter;
    }
    let res = CaseResult {
        label: label.to_string(),
        mean_nanos: total / samples as f64,
        best_nanos: best,
    };
    outln!(
        out,
        "{},{:.1},{:.1}",
        res.label,
        res.mean_nanos,
        res.best_nanos
    );
    res
}

fn snapshot() -> PortSnapshot {
    let mut b = PortSnapshot::builder(8)
        .round_time_nanos(9_600)
        .sojourn_nanos(25_000);
    for q in 0..8 {
        b = b.queue_bytes(q, (q as u64 + 1) * 3_000);
    }
    b.build()
}

fn marking_cases(out: &mut String, iters: u32, samples: u32) -> Vec<CaseResult> {
    let view = snapshot();
    let schemes: Vec<(&str, Box<dyn MarkingScheme>)> = vec![
        ("per_queue", Box::new(PerQueue::standard(16 * 1500, 8))),
        ("per_port", Box::new(PerPort::new(16 * 1500))),
        ("mq_ecn", Box::new(MqEcn::new(65 * 1500, vec![1500; 8]))),
        ("tcn", Box::new(Tcn::new(78_200))),
        ("pmsb", Box::new(Pmsb::new(12 * 1500, vec![1; 8]))),
    ];
    let mut results = Vec::new();
    for (name, mut scheme) in schemes {
        results.push(run_case(
            out,
            &format!("marking_decision/{name}"),
            iters,
            samples,
            || {
                let mut marks = 0u32;
                for q in 0..8 {
                    if scheme.should_mark(black_box(&view), q).is_mark() {
                        marks += 1;
                    }
                }
                black_box(marks);
            },
        ));
    }
    results
}

#[derive(Debug, Clone, Copy)]
struct Pkt(u64);
impl SchedItem for Pkt {
    fn len_bytes(&self) -> u64 {
        self.0
    }
}

/// 8-queue backlogged enqueue+dequeue churn, `ops` operations.
fn drive(sched: Box<dyn Scheduler>, ops: usize) -> u64 {
    let n = sched.num_queues();
    let mut mq = MultiQueue::new(sched, u64::MAX);
    let mut now = 0u64;
    for _ in 0..4 {
        for q in 0..n {
            mq.enqueue(q, Pkt(1500), now).unwrap();
        }
    }
    let mut served = 0u64;
    for _ in 0..ops {
        let (q, p) = mq.dequeue(now).unwrap();
        served += p.0;
        now += 1500;
        mq.enqueue(q, Pkt(1500), now).unwrap();
    }
    served
}

type SchedMaker = fn() -> Box<dyn Scheduler>;

fn scheduler_cases(out: &mut String, iters: u32, samples: u32) -> Vec<CaseResult> {
    let ops = 1000;
    let makers: Vec<(&str, SchedMaker)> = vec![
        ("sp", || Box::new(StrictPriority::new(8))),
        ("wrr", || Box::new(Wrr::new(vec![1; 8]))),
        ("dwrr", || Box::new(Dwrr::new(vec![1; 8], 1500))),
        ("wfq", || Box::new(Wfq::new(vec![1; 8]))),
        ("sp_wfq", || {
            Box::new(HierSpWfq::new(vec![0, 0, 1, 1, 1, 1, 1, 1], vec![1; 8]))
        }),
    ];
    makers
        .into_iter()
        .map(|(name, make)| {
            run_case(
                out,
                &format!("scheduler_ops/{name}"),
                iters,
                samples,
                || {
                    black_box(drive(make(), ops));
                },
            )
        })
        .collect()
}

/// Minimal FEL facade so the wheel and the reference heap run the exact
/// same benchmark workloads in the same process (the PR-2 baseline CSV
/// was captured on different hardware, so same-machine twins are the
/// honest comparison).
trait BenchFel {
    fn push(&mut self, at: u64, e: u64);
    fn pop(&mut self) -> Option<(u64, u64)>;
}

impl BenchFel for EventQueue<u64> {
    fn push(&mut self, at: u64, e: u64) {
        EventQueue::push(self, SimTime::from_nanos(at), e);
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        EventQueue::pop(self).map(|(t, e)| (t.as_nanos(), e))
    }
}

impl BenchFel for HeapQueue<u64> {
    fn push(&mut self, at: u64, e: u64) {
        HeapQueue::push(self, SimTime::from_nanos(at), e);
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        HeapQueue::pop(self).map(|(t, e)| (t.as_nanos(), e))
    }
}

/// 1000 pushes at pseudo-random (deterministic) times, then full drain.
fn push_pop_1k_workload<Q: BenchFel>(q: &mut Q) {
    let mut t = 12345u64;
    for i in 0..1000u64 {
        t = t.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.push(t >> 20, i);
    }
    let mut sum = 0u64;
    while let Some((_, e)) = q.pop() {
        sum += e;
    }
    black_box(sum);
}

/// Steady-state pattern: pop one, push one 64 ns out, 64 resident.
fn interleaved_hold_64_workload<Q: BenchFel>(q: &mut Q) {
    for i in 0..64u64 {
        q.push(i, i);
    }
    let mut sum = 0u64;
    for _ in 0..1000 {
        let (at, e) = q.pop().unwrap();
        sum += e;
        q.push(at + 64, e);
    }
    black_box(sum);
}

fn event_queue_cases(out: &mut String, iters: u32, samples: u32) -> Vec<CaseResult> {
    vec![
        run_case(out, "event_queue/push_pop_1k", iters, samples, || {
            push_pop_1k_workload(&mut EventQueue::new());
        }),
        run_case(
            out,
            "event_queue/interleaved_hold_64",
            iters,
            samples,
            || {
                interleaved_hold_64_workload(&mut EventQueue::new());
            },
        ),
        run_case(out, "event_queue/push_pop_1k_heap", iters, samples, || {
            push_pop_1k_workload(&mut HeapQueue::new());
        }),
        run_case(
            out,
            "event_queue/interleaved_hold_64_heap",
            iters,
            samples,
            || {
                interleaved_hold_64_workload(&mut HeapQueue::new());
            },
        ),
    ]
}

/// One complete in-memory transfer: sender and receiver joined directly.
/// `kind` picks the transport state machine (the `TransportConfig`
/// defaults keep per-packet ACKs, so the loopback below holds for both).
fn transfer_with(kind: TransportKind, bytes: u64, mark_every: u64) -> u64 {
    let cfg = TransportConfig {
        kind,
        ..TransportConfig::default()
    };
    let mut s = TransportSender::new(1, 0, 1, 0, bytes, None, 0, &cfg);
    let mut r = TransportReceiver::new(1, &cfg);
    let mut now = 0u64;
    let mut in_flight = s.start(now).packets;
    let mut count = 0u64;
    while !s.is_completed() {
        now += 10_000;
        let acks: Vec<_> = in_flight
            .drain(..)
            .map(|mut p| {
                count += 1;
                if mark_every > 0 && count.is_multiple_of(mark_every) {
                    p.ce = true;
                }
                r.on_data(&p, now).ack.expect("per-packet ACKs")
            })
            .collect();
        now += 10_000;
        for a in acks {
            let PacketKind::Ack { cum_ack, ece } = a.kind else {
                unreachable!()
            };
            in_flight.extend(s.on_ack(cum_ack, ece, a.sent_at_nanos, now).packets);
        }
        if in_flight.is_empty() && !s.is_completed() {
            break; // safety: should not happen
        }
    }
    count
}

/// The DCTCP loopback transfer (the PR-2 baseline case).
fn transfer(bytes: u64, mark_every: u64) -> u64 {
    transfer_with(TransportKind::Dctcp, bytes, mark_every)
}

fn transport_cases(out: &mut String, iters: u32, samples: u32) -> Vec<CaseResult> {
    vec![
        run_case(out, "dctcp_transfer/1mb_unmarked", iters, samples, || {
            black_box(transfer(1_000_000, 0));
        }),
        run_case(
            out,
            "dctcp_transfer/1mb_marked_every_8",
            iters,
            samples,
            || {
                black_box(transfer(1_000_000, 8));
            },
        ),
        run_case(
            out,
            "transport_newreno/1mb_marked_every_8",
            iters,
            samples,
            || {
                black_box(transfer_with(TransportKind::NewReno, 1_000_000, 8));
            },
        ),
    ]
}

fn small_sim(marking: MarkingConfig) -> usize {
    let mut e = Experiment::dumbbell(4, 2).marking(marking);
    for s in 0..4 {
        e.add_flow(FlowDesc::bulk(s, 4, s % 2, 500_000));
    }
    let res = e.run_for_millis(10);
    res.fct.len()
}

fn small_sim_cases(out: &mut String, iters: u32, samples: u32) -> Vec<CaseResult> {
    [
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        ),
        ("per_port", MarkingConfig::PerPort { threshold_pkts: 16 }),
        ("mq_ecn", MarkingConfig::MqEcn { standard_pkts: 16 }),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            },
        ),
    ]
    .into_iter()
    .map(|(name, marking)| {
        run_case(
            out,
            &format!("dumbbell_4x500KB/{name}"),
            iters,
            samples,
            || {
                black_box(small_sim(marking.clone()));
            },
        )
    })
    .collect()
}

/// The conservative-protocol profile of the last sharded run in
/// [`parallel_cases`] (the `threads_4` case). `report::derive_metrics`
/// reads this to surface `derived.parallel.*` without re-running the
/// cell; `None` until the parallel cases have run in this process.
static PARALLEL_PROFILE: std::sync::Mutex<Option<pmsb_simcore::lp::LpRunProfile>> =
    std::sync::Mutex::new(None);

/// The profile captured after the `large_scale_parallel/threads_4`
/// benchmark case, if the parallel cases ran in this process.
pub fn parallel_profile() -> Option<pmsb_simcore::lp::LpRunProfile> {
    PARALLEL_PROFILE.lock().expect("profile lock").clone()
}

/// Large-scale leaf–spine cell at `sim_threads` shards: the workload
/// the parallel runtime exists for (one 48-host fabric, paper flow
/// mix). `quick` shrinks the flow count so the smoke suite stays fast.
fn parallel_cases(out: &mut String, quick: bool, samples: u32) -> Vec<CaseResult> {
    let num_flows = if quick { 60 } else { 600 };
    let results = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            run_case(
                out,
                &format!("large_scale_parallel/threads_{threads}"),
                1,
                samples,
                || {
                    let row = crate::large_scale::run_cell(
                        pmsb_netsim::experiment::SchedulerConfig::Dwrr {
                            weights: vec![1; 8],
                        },
                        "pmsb",
                        MarkingConfig::Pmsb {
                            port_threshold_pkts: 12,
                        },
                        None,
                        pmsb::MarkPoint::Enqueue,
                        0.6,
                        num_flows,
                        42,
                        threads,
                    );
                    black_box(row.completed);
                },
            )
        })
        .collect();
    // The last sharded run above was a `threads_4` sample (`threads_1`
    // takes the sequential path and never touches the profile), so the
    // process-wide last-run profile describes exactly that case.
    *PARALLEL_PROFILE.lock().expect("profile lock") = Some(pmsb_simcore::lp::last_run_profile());
    results
}

/// Streaming fat-tree cell through the slab flow state: a k=4 fabric
/// under a mixed incast+shuffle stream, timed end to end (one iteration
/// = one full run). The per-flow cost here is the unit the million-flow
/// throughput in `BENCH_pr6.json` scales up (see
/// `report::hyperscale_run`).
fn hyperscale_cases(out: &mut String, quick: bool, samples: u32) -> Vec<CaseResult> {
    let total_flows = if quick { 1_000 } else { 10_000 };
    let scheme = (
        "pmsb",
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        None,
    );
    let pattern = (
        "mix",
        pmsb_workload::PatternSpec::Mix(vec![
            pmsb_workload::PatternSpec::incast(8),
            pmsb_workload::PatternSpec::shuffle(),
        ]),
    );
    vec![run_case(
        out,
        "hyperscale/fat_tree_k4_stream",
        1,
        samples,
        || {
            let row = crate::hyperscale::run_cell(
                &scheme,
                &pattern,
                4,
                total_flows,
                42,
                1,
                pmsb_netsim::EngineKind::Packet,
            );
            black_box(row.completed);
        },
    )]
}

/// The same streaming cell under the flow-level engines: `fluid` (pure
/// closed-form marking), `hybrid` (per-port packet micro-sim
/// calibration), and `regional` (auto-scouted hot ports at full packet
/// level inside the fluid run), plus the dumbbell scenario on the fluid
/// path. The per-iteration ratio of `fat_tree_k4_stream` to its
/// `_fluid`/`_hybrid`/`_regional` twins is the in-suite view of
/// `derived.hyperscale.fluid_speedup` (and the regional twin backs the
/// `regional_speedup` figure in the JSON report).
fn fluid_cases(out: &mut String, quick: bool, samples: u32) -> Vec<CaseResult> {
    use pmsb_netsim::EngineKind;
    let total_flows = if quick { 1_000 } else { 10_000 };
    let scheme = (
        "pmsb",
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        None,
    );
    let pattern = (
        "mix",
        pmsb_workload::PatternSpec::Mix(vec![
            pmsb_workload::PatternSpec::incast(8),
            pmsb_workload::PatternSpec::shuffle(),
        ]),
    );
    let mut results: Vec<CaseResult> = [
        ("fluid/fat_tree_k4_stream_fluid", EngineKind::Fluid),
        ("fluid/fat_tree_k4_stream_hybrid", EngineKind::Hybrid),
        ("fluid/fat_tree_k4_stream_regional", EngineKind::Regional),
    ]
    .into_iter()
    .map(|(label, engine)| {
        run_case(out, label, 1, samples, || {
            let row = crate::hyperscale::run_cell(&scheme, &pattern, 4, total_flows, 42, 1, engine);
            black_box(row.completed);
        })
    })
    .collect();
    results.push(run_case(
        out,
        "fluid/dumbbell_4x500KB_fluid",
        if quick { 20 } else { 200 },
        samples,
        || {
            let mut e = Experiment::dumbbell(4, 2)
                .marking(MarkingConfig::Pmsb {
                    port_threshold_pkts: 12,
                })
                .engine(pmsb_netsim::EngineKind::Fluid);
            for s in 0..4 {
                e.add_flow(FlowDesc::bulk(s, 4, s % 2, 500_000));
            }
            black_box(e.run_for_millis(10).fct.len());
        },
    ));
    results
}

/// Runs the whole micro-benchmark suite, appending a
/// `case,mean_ns,best_ns` CSV to `out`. `quick` shrinks iteration
/// counts for smoke runs.
pub fn run_all(out: &mut String, quick: bool) -> Vec<CaseResult> {
    let (fast_iters, slow_iters, samples) = if quick { (200, 2, 2) } else { (2_000, 10, 5) };
    outln!(out, "case,mean_ns,best_ns");
    let mut results = Vec::new();
    results.extend(marking_cases(out, fast_iters * 10, samples));
    results.extend(scheduler_cases(out, fast_iters, samples));
    results.extend(event_queue_cases(out, fast_iters, samples));
    results.extend(transport_cases(out, slow_iters, samples));
    results.extend(small_sim_cases(out, slow_iters, samples));
    results.extend(parallel_cases(out, quick, samples));
    results.extend(hyperscale_cases(out, quick, samples));
    results.extend(fluid_cases(out, quick, samples));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_times_every_case() {
        let mut out = String::new();
        let results = run_all(&mut out, true);
        assert_eq!(results.len(), 5 + 5 + 4 + 3 + 4 + 3 + 1 + 4);
        for r in &results {
            assert!(
                r.best_nanos > 0.0 && r.best_nanos.is_finite(),
                "case {} must have a positive time",
                r.label
            );
            assert!(r.mean_nanos >= r.best_nanos);
            assert!(out.contains(&r.label));
        }
    }

    #[test]
    fn transfer_completes_marked_and_unmarked() {
        assert!(transfer(100_000, 0) > 0);
        assert!(transfer(100_000, 8) > transfer(100_000, 0) / 2);
    }

    #[test]
    fn newreno_loopback_transfer_completes() {
        assert!(transfer_with(TransportKind::NewReno, 100_000, 0) > 0);
        assert!(transfer_with(TransportKind::NewReno, 100_000, 8) > 0);
    }
}
