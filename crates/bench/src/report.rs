//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! The `microbench` binary emits one JSON document per run when passed
//! `--json PATH`. Besides the raw per-case timings it records three
//! derived hot-path metrics — event-queue ops/sec, end-to-end dumbbell
//! packets/sec, and the wall-clock of a small in-process harness
//! campaign — plus a determinism cross-check that the timing-wheel FEL
//! pops the exact same sequence as the reference binary heap on
//! randomized seeded workloads.
//!
//! Pass `--baseline PATH` (a `case,mean_ns,best_ns` CSV from a previous
//! run, i.e. a captured stdout of `microbench`) to fold before/after
//! numbers and per-case speedups into the report. The JSON is written
//! by hand — no serialization dependency — and all floats are emitted
//! with a fixed precision so reports diff cleanly.

use std::fmt::Write as _;
use std::time::Instant;

use pmsb_harness::{Campaign, Job, Record, RunOptions};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};
use pmsb_simcore::rng::SimRng;
use pmsb_simcore::{EventQueue, HeapQueue, SimTime};

use crate::micro::CaseResult;

/// A baseline entry parsed from a previous run's CSV report.
#[derive(Debug, Clone)]
pub struct BaselineCase {
    /// `group/name` label, matched against [`CaseResult::label`].
    pub label: String,
    /// Baseline mean nanoseconds per iteration.
    pub mean_nanos: f64,
    /// Baseline best-sample nanoseconds per iteration.
    pub best_nanos: f64,
}

/// Parses a `case,mean_ns,best_ns` CSV (the `microbench` stdout format)
/// into baseline entries, skipping the header and malformed lines.
pub fn parse_baseline_csv(text: &str) -> Vec<BaselineCase> {
    text.lines()
        .filter_map(|line| {
            let mut parts = line.trim().split(',');
            let label = parts.next()?.to_string();
            let mean_nanos: f64 = parts.next()?.trim().parse().ok()?;
            let best_nanos: f64 = parts.next()?.trim().parse().ok()?;
            Some(BaselineCase {
                label,
                mean_nanos,
                best_nanos,
            })
        })
        .collect()
}

/// The first JSON string literal in `s`, assuming no escapes (true for
/// every label this report family emits).
fn leading_json_string(s: &str) -> Option<String> {
    let s = s.trim_start().strip_prefix('"')?;
    Some(s[..s.find('"')?].to_string())
}

/// The number following the first occurrence of `key` in `s`. The
/// leading quote in keys like `"best_ns":` keeps `"baseline_best_ns":`
/// from matching.
fn number_after(s: &str, key: &str) -> Option<f64> {
    let tail = s[s.find(key)? + key.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Parses a previous run's `pmsb-bench/v1` JSON report (a committed
/// `BENCH_*.json`) into baseline entries. Fails with a descriptive
/// message when the document declares a different — or no — schema,
/// so a stale or foreign report is rejected instead of silently
/// producing an empty baseline.
pub fn parse_baseline_json(text: &str) -> Result<Vec<BaselineCase>, String> {
    match text
        .find("\"schema\":")
        .and_then(|pos| leading_json_string(&text[pos + "\"schema\":".len()..]))
    {
        Some(s) if s == "pmsb-bench/v1" => {}
        Some(s) => {
            return Err(format!(
                "baseline JSON declares schema '{s}', expected 'pmsb-bench/v1'; \
                 regenerate the baseline with this microbench's --json flag"
            ))
        }
        None => {
            return Err(
                "baseline JSON has no \"schema\" field; expected a 'pmsb-bench/v1' report \
                 (or pass a case,mean_ns,best_ns CSV)"
                    .into(),
            )
        }
    }
    let mut cases = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"label\":") {
        rest = &rest[pos + "\"label\":".len()..];
        // The case's numbers sit between this label and the next one.
        let obj = &rest[..rest.find("\"label\":").unwrap_or(rest.len())];
        if let (Some(label), Some(mean_nanos), Some(best_nanos)) = (
            leading_json_string(rest),
            number_after(obj, "\"mean_ns\":"),
            number_after(obj, "\"best_ns\":"),
        ) {
            cases.push(BaselineCase {
                label,
                mean_nanos,
                best_nanos,
            });
        }
    }
    Ok(cases)
}

/// Parses `--baseline` input in either supported format, dispatching on
/// the leading `{`: a committed `pmsb-bench/v1` JSON report, or the
/// legacy `case,mean_ns,best_ns` CSV capture of microbench stdout.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineCase>, String> {
    if text.trim_start().starts_with('{') {
        parse_baseline_json(text)
    } else {
        Ok(parse_baseline_csv(text))
    }
}

/// Outcome of the in-report FEL determinism cross-check.
#[derive(Debug, Clone)]
pub struct DeterminismCheck {
    /// `true` iff every workload popped identically on wheel and heap.
    pub fel_matches_heap: bool,
    /// Number of randomized workloads driven.
    pub workloads: u32,
    /// Total events pushed-and-popped across all workloads.
    pub events_checked: u64,
}

/// Drives the timing-wheel [`EventQueue`] and the reference
/// [`HeapQueue`] through identical randomized seeded workloads and
/// checks that every popped `(time, payload)` pair matches. This is a
/// cut-down in-binary version of the `fel_differential` test suite, so
/// every `BENCH_*.json` carries its own proof that the measured queue
/// still pops the heap's exact order.
pub fn determinism_check() -> DeterminismCheck {
    let mut ok = true;
    let mut events_checked = 0u64;
    let mut workloads = 0u32;
    // (seed, far_shift): far_shift > 0 mixes in far-future times that
    // cross the wheel horizon into the overflow heap.
    for (seed, far_shift) in [(1u64, 0u32), (2, 0), (3, 26), (4, 28)] {
        workloads += 1;
        let mut rng = SimRng::seed_from(seed);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        for i in 0..5_000u64 {
            let now = wheel.now().as_nanos();
            let at = if far_shift > 0 && rng.below(8) == 0 {
                now + (rng.next_u64() % (1 << far_shift))
            } else {
                now + rng.below(2_000) as u64
            };
            wheel.push(SimTime::from_nanos(at), i);
            heap.push(SimTime::from_nanos(at), i);
            if i % 3 == 0 {
                ok &= wheel.pop() == heap.pop();
                events_checked += 1;
            }
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            ok &= w == h;
            if w.is_none() {
                break;
            }
            events_checked += 1;
        }
    }
    DeterminismCheck {
        fel_matches_heap: ok,
        workloads,
        events_checked,
    }
}

/// Hot-path metrics derived from one representative run, rather than
/// from timed closures.
#[derive(Debug, Clone)]
pub struct DerivedMetrics {
    /// Events processed by one `dumbbell_4x500KB/pmsb` run.
    pub dumbbell_events: u64,
    /// Per-hop packet deliveries in that run.
    pub dumbbell_deliveries: u64,
    /// FEL push+pop operations per second, from `event_queue/push_pop_1k`.
    pub event_queue_ops_per_sec: f64,
    /// Simulated packet deliveries per wall-clock second, from the
    /// best `dumbbell_4x500KB/pmsb` sample.
    pub dumbbell_packets_per_sec: f64,
    /// Events processed per wall-clock second on the same sample.
    pub dumbbell_events_per_sec: f64,
    /// Wall-clock of a 4-cell in-process harness campaign, ms.
    pub campaign_wall_clock_ms: f64,
    /// Sharded large-scale run speedup at 2 threads vs sequential, from
    /// the `large_scale_parallel/threads_*` best samples (NaN when the
    /// cases were not run).
    pub parallel_speedup_t2: f64,
    /// Same at 4 threads.
    pub parallel_speedup_t4: f64,
    /// Conservative-protocol health of the `threads_4` case (window
    /// count, per-window batching, barrier overhead, LP balance).
    pub parallel: ParallelProtocol,
    /// The hyperscale representative run (quick: 20k flows on a k=4
    /// fat-tree; full: one million flows on k=16).
    pub hyperscale: HyperscaleRun,
    /// The `fat_tree(24)` streaming smoke pass — the largest fabric the
    /// suite drives end to end (3456 hosts, 720 switches).
    pub k24: K24Smoke,
}

/// How the conservative protocol spent the `large_scale_parallel/
/// threads_4` benchmark case (the sharded paper fabric), from the
/// [`pmsb_simcore::lp::LpRunProfile`] captured right after that case.
/// All zeros when the parallel cases did not run in this process.
#[derive(Debug, Clone, Default)]
pub struct ParallelProtocol {
    /// Conservative windows the run stepped (fewer is better: each
    /// window costs two barriers).
    pub windows: u64,
    /// Cross-LP messages delivered across all windows.
    pub messages: u64,
    /// Messages batched into each window on average.
    pub msgs_per_window: f64,
    /// Coordinator barrier-wait share of the run's wall clock.
    pub barrier_wait_share: f64,
    /// Max-over-mean per-LP busy time (1.0 = perfectly balanced).
    pub lp_imbalance: f64,
}

/// One streaming shuffle pass over the 3456-host `fat_tree(24)` fabric:
/// proof the suite builds and drives k=24 end to end, with the
/// wall-clock flow throughput it sustains there.
#[derive(Debug, Clone)]
pub struct K24Smoke {
    /// Fat-tree parameter (always 24).
    pub fabric_k: usize,
    /// Host count of the fabric (`k^3/4`).
    pub hosts: usize,
    /// Flows injected from the stream.
    pub flows: u64,
    /// Flows completed before the horizon.
    pub completed: u64,
    /// Completed flows per wall-clock second.
    pub flows_per_sec: f64,
    /// Peak simultaneously-allocated flow slots.
    pub slab_high_water: u64,
}

/// Runs the k=24 streaming smoke pass (quick: 5 000 flows; full:
/// 50 000) and times it.
pub fn k24_smoke(quick: bool) -> K24Smoke {
    use pmsb_netsim::EngineKind;
    use pmsb_workload::PatternSpec;
    let k = 24usize;
    let flows = if quick { 5_000 } else { 50_000 };
    let scheme = (
        "pmsb",
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        None,
    );
    let t0 = Instant::now();
    let row = crate::hyperscale::run_cell(
        &scheme,
        &("shuffle", PatternSpec::shuffle()),
        k,
        flows,
        42,
        crate::util::sim_threads(),
        EngineKind::Packet,
    );
    let secs = t0.elapsed().as_secs_f64();
    K24Smoke {
        fabric_k: k,
        hosts: k * k * k / 4,
        flows: row.injected,
        completed: row.completed,
        flows_per_sec: row.completed as f64 / secs,
        slab_high_water: row.slab_high_water,
    }
}

/// Metrics of one representative streaming fat-tree run: the wall-clock
/// flow throughput and the live-slab high-water mark that bound the
/// memory claim of DESIGN.md §10, under both the packet engine and the
/// hybrid packet/fluid fast path (DESIGN.md §11).
#[derive(Debug, Clone)]
pub struct HyperscaleRun {
    /// Fat-tree parameter `k` of the fabric.
    pub fabric_k: usize,
    /// Flows injected from the stream.
    pub flows: u64,
    /// Flows completed before the horizon (packet engine).
    pub completed: u64,
    /// Completed flows per wall-clock second (packet engine).
    pub flows_per_sec: f64,
    /// Peak simultaneously-allocated flow slots (the resident-memory
    /// proxy: flow state is bounded by this, not by `flows`).
    pub slab_high_water: u64,
    /// Sketch 99th-percentile FCT, µs (packet engine).
    pub fct_p99_us: f64,
    /// Flows completed before the horizon under `--engine hybrid`.
    pub hybrid_completed: u64,
    /// Completed flows per wall-clock second under `--engine hybrid`.
    pub hybrid_flows_per_sec: f64,
    /// Sketch 99th-percentile FCT under `--engine hybrid`, µs.
    pub hybrid_fct_p99_us: f64,
    /// `hybrid_flows_per_sec / flows_per_sec` — the hybrid fast path's
    /// wall-clock advantage on the same cell.
    pub fluid_speedup: f64,
    /// Flows completed before the horizon under `--engine regional`
    /// (auto-scouted hot ports at full packet level, DESIGN.md §13).
    pub regional_completed: u64,
    /// Completed flows per wall-clock second under `--engine regional`.
    pub regional_flows_per_sec: f64,
    /// Sketch 99th-percentile FCT under `--engine regional`, µs.
    pub regional_fct_p99_us: f64,
    /// `regional_flows_per_sec / flows_per_sec` — the regional engine's
    /// wall-clock advantage over the full packet run on the same cell.
    pub regional_speedup: f64,
    /// Conservative windows the packet run's sharded executor stepped
    /// (0 on the sequential fallback; see `pmsb_simcore::lp`).
    pub lp_windows: u64,
    /// Cross-shard messages it delivered.
    pub lp_messages: u64,
    /// Coordinator wall-clock spent on window barriers, ms.
    pub lp_barrier_wait_ms: f64,
}

/// Runs the representative hyperscale cell — a mixed incast+shuffle
/// stream of 20 KB flows over a fat-tree, PMSB marking — once per
/// engine (packet, then hybrid) and times both. `quick` uses 20 000
/// flows on k=4; the full run is the BENCH headline: one million flows
/// on the 1024-host k=16 fabric.
pub fn hyperscale_run(quick: bool) -> HyperscaleRun {
    use pmsb_netsim::EngineKind;
    use pmsb_workload::PatternSpec;
    let (k, flows) = if quick { (4, 20_000) } else { (16, 1_000_000) };
    let pattern = PatternSpec::Mix(vec![
        PatternSpec::Incast {
            fan_in: 64,
            epoch_nanos: 500_000,
            request_bytes: 20_000,
        },
        PatternSpec::Shuffle {
            flow_bytes: 20_000,
            wave_gap_nanos: 1_000_000,
        },
    ]);
    let scheme = (
        "pmsb",
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        None,
    );
    let cell = |engine| {
        let t0 = Instant::now();
        let row = crate::hyperscale::run_cell(
            &scheme,
            &("mix", pattern.clone()),
            k,
            flows,
            42,
            crate::util::sim_threads(),
            engine,
        );
        (row, t0.elapsed().as_secs_f64())
    };
    let (row, secs) = cell(EngineKind::Packet);
    let lp = pmsb_simcore::lp::last_run_profile();
    let (hybrid, hybrid_secs) = cell(EngineKind::Hybrid);
    let (regional, regional_secs) = cell(EngineKind::Regional);
    let packet_fps = row.completed as f64 / secs;
    let hybrid_fps = hybrid.completed as f64 / hybrid_secs;
    let regional_fps = regional.completed as f64 / regional_secs;
    HyperscaleRun {
        fabric_k: k,
        flows: row.injected,
        completed: row.completed,
        flows_per_sec: packet_fps,
        slab_high_water: row.slab_high_water,
        fct_p99_us: row.fct_p99_us,
        hybrid_completed: hybrid.completed,
        hybrid_flows_per_sec: hybrid_fps,
        hybrid_fct_p99_us: hybrid.fct_p99_us,
        fluid_speedup: hybrid_fps / packet_fps,
        regional_completed: regional.completed,
        regional_flows_per_sec: regional_fps,
        regional_fct_p99_us: regional.fct_p99_us,
        regional_speedup: regional_fps / packet_fps,
        lp_windows: lp.windows,
        lp_messages: lp.messages,
        lp_barrier_wait_ms: lp.barrier_wait_nanos as f64 / 1e6,
    }
}

/// Runs the `dumbbell_4x500KB/pmsb` scenario once and returns its
/// `(events, deliveries)` counters.
fn dumbbell_counts() -> (u64, u64) {
    let mut e = Experiment::dumbbell(4, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    for s in 0..4 {
        e.add_flow(FlowDesc::bulk(s, 4, s % 2, 500_000));
    }
    let res = e.run_for_millis(10);
    (res.events, res.deliveries)
}

/// Times one 4-cell dumbbell campaign (one cell per marking scheme)
/// through the harness, end to end including the result store.
fn campaign_wall_clock_ms() -> f64 {
    let cells: Vec<(&'static str, MarkingConfig)> = vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        ),
        ("per_port", MarkingConfig::PerPort { threshold_pkts: 16 }),
        ("mq_ecn", MarkingConfig::MqEcn { standard_pkts: 16 }),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            },
        ),
    ];
    let mut campaign = Campaign::new("bench_wallclock");
    for (scheme, marking) in cells {
        campaign.push(
            Job::new("dumbbell_4x500KB", 0, move || {
                let mut e = Experiment::dumbbell(4, 2).marking(marking);
                for s in 0..4 {
                    e.add_flow(FlowDesc::bulk(s, 4, s % 2, 500_000));
                }
                let res = e.run_for_millis(10);
                Record::new()
                    .field("flows_done", res.fct.len())
                    .field("marks", res.marks)
            })
            .param("scheme", scheme),
        );
    }
    let root = std::env::temp_dir().join(format!("pmsb-bench-wallclock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let t0 = Instant::now();
    let out = campaign.run(&RunOptions {
        jobs: Some(1),
        results_root: root.clone(),
        quiet: true,
    });
    let elapsed = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&root);
    match out {
        Ok(r) if r.is_success() => elapsed,
        _ => f64::NAN,
    }
}

fn find_best(results: &[CaseResult], label: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.label == label)
        .map(|r| r.best_nanos)
}

/// Computes the derived hot-path metrics from the timed case results.
/// `quick` sizes the representative hyperscale run.
pub fn derive_metrics(results: &[CaseResult], quick: bool) -> DerivedMetrics {
    let (events, deliveries) = dumbbell_counts();
    // push_pop_1k performs 1000 pushes + 1000 pops per iteration.
    let eq_ops = find_best(results, "event_queue/push_pop_1k")
        .map(|best| 2_000.0 / (best * 1e-9))
        .unwrap_or(f64::NAN);
    let dumbbell_best = find_best(results, "dumbbell_4x500KB/pmsb").unwrap_or(f64::NAN);
    let seq = find_best(results, "large_scale_parallel/threads_1");
    let speedup_vs_seq = |label: &str| match (seq, find_best(results, label)) {
        (Some(a), Some(b)) if b > 0.0 => a / b,
        _ => f64::NAN,
    };
    DerivedMetrics {
        dumbbell_events: events,
        dumbbell_deliveries: deliveries,
        event_queue_ops_per_sec: eq_ops,
        dumbbell_packets_per_sec: deliveries as f64 / (dumbbell_best * 1e-9),
        dumbbell_events_per_sec: events as f64 / (dumbbell_best * 1e-9),
        campaign_wall_clock_ms: campaign_wall_clock_ms(),
        parallel_speedup_t2: speedup_vs_seq("large_scale_parallel/threads_2"),
        parallel_speedup_t4: speedup_vs_seq("large_scale_parallel/threads_4"),
        parallel: crate::micro::parallel_profile()
            .map(|p| ParallelProtocol {
                windows: p.windows,
                messages: p.messages,
                msgs_per_window: p.msgs_per_window(),
                barrier_wait_share: p.barrier_wait_share(),
                lp_imbalance: p.lp_imbalance(),
            })
            .unwrap_or_default(),
        hyperscale: hyperscale_run(quick),
        k24: k24_smoke(quick),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.1}");
    } else {
        out.push_str("null");
    }
}

/// Like [`push_f64`] but with ratio precision (speedup factors).
fn push_ratio(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push_str("null");
    }
}

/// Renders the full report as a pretty-printed JSON document.
///
/// Layout:
/// ```json
/// {
///   "schema": "pmsb-bench/v1",
///   "quick": false,
///   "cases": [ {"label", "mean_ns", "best_ns",
///               "baseline_best_ns"?, "speedup"?}, ... ],
///   "derived": { ... },
///   "determinism": { ... }
/// }
/// ```
/// `speedup` is `baseline_best_ns / best_ns` (>1 means this run is
/// faster than the baseline) and appears only when `--baseline` was
/// given and the label matched.
pub fn render_json(
    results: &[CaseResult],
    baseline: &[BaselineCase],
    derived: &DerivedMetrics,
    determinism: &DeterminismCheck,
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"pmsb-bench/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\"label\": ");
        push_json_str(&mut out, &r.label);
        out.push_str(", \"mean_ns\": ");
        push_f64(&mut out, r.mean_nanos);
        out.push_str(", \"best_ns\": ");
        push_f64(&mut out, r.best_nanos);
        if let Some(b) = baseline.iter().find(|b| b.label == r.label) {
            out.push_str(", \"baseline_best_ns\": ");
            push_f64(&mut out, b.best_nanos);
            out.push_str(", \"speedup\": ");
            if r.best_nanos > 0.0 {
                let _ = write!(out, "{:.3}", b.best_nanos / r.best_nanos);
            } else {
                out.push_str("null");
            }
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"derived\": {\n");
    let _ = writeln!(
        out,
        "    \"dumbbell_events_per_run\": {},",
        derived.dumbbell_events
    );
    let _ = writeln!(
        out,
        "    \"dumbbell_deliveries_per_run\": {},",
        derived.dumbbell_deliveries
    );
    out.push_str("    \"event_queue_ops_per_sec\": ");
    push_f64(&mut out, derived.event_queue_ops_per_sec);
    out.push_str(",\n    \"dumbbell_packets_per_sec\": ");
    push_f64(&mut out, derived.dumbbell_packets_per_sec);
    out.push_str(",\n    \"dumbbell_events_per_sec\": ");
    push_f64(&mut out, derived.dumbbell_events_per_sec);
    out.push_str(",\n    \"campaign_wall_clock_ms\": ");
    push_f64(&mut out, derived.campaign_wall_clock_ms);
    out.push_str(",\n    \"parallel_speedup_t2\": ");
    push_ratio(&mut out, derived.parallel_speedup_t2);
    out.push_str(",\n    \"parallel_speedup_t4\": ");
    push_ratio(&mut out, derived.parallel_speedup_t4);
    out.push_str(",\n    \"parallel\": {\n");
    let pp = &derived.parallel;
    let _ = writeln!(out, "      \"windows\": {},", pp.windows);
    let _ = writeln!(out, "      \"messages\": {},", pp.messages);
    out.push_str("      \"msgs_per_window\": ");
    push_f64(&mut out, pp.msgs_per_window);
    out.push_str(",\n      \"barrier_wait_share\": ");
    push_ratio(&mut out, pp.barrier_wait_share);
    out.push_str(",\n      \"lp_imbalance\": ");
    push_ratio(&mut out, pp.lp_imbalance);
    out.push_str("\n    },\n    \"hyperscale\": {\n");
    let hs = &derived.hyperscale;
    let _ = writeln!(out, "      \"fabric_k\": {},", hs.fabric_k);
    let _ = writeln!(out, "      \"flows\": {},", hs.flows);
    let _ = writeln!(out, "      \"completed\": {},", hs.completed);
    out.push_str("      \"flows_per_sec\": ");
    push_f64(&mut out, hs.flows_per_sec);
    let _ = writeln!(out, ",\n      \"slab_high_water\": {},", hs.slab_high_water);
    out.push_str("      \"fct_p99_us\": ");
    push_f64(&mut out, hs.fct_p99_us);
    let _ = writeln!(
        out,
        ",\n      \"hybrid_completed\": {},",
        hs.hybrid_completed
    );
    out.push_str("      \"hybrid_flows_per_sec\": ");
    push_f64(&mut out, hs.hybrid_flows_per_sec);
    out.push_str(",\n      \"hybrid_fct_p99_us\": ");
    push_f64(&mut out, hs.hybrid_fct_p99_us);
    out.push_str(",\n      \"fluid_speedup\": ");
    push_ratio(&mut out, hs.fluid_speedup);
    let _ = writeln!(
        out,
        ",\n      \"regional_completed\": {},",
        hs.regional_completed
    );
    out.push_str("      \"regional_flows_per_sec\": ");
    push_f64(&mut out, hs.regional_flows_per_sec);
    out.push_str(",\n      \"regional_fct_p99_us\": ");
    push_f64(&mut out, hs.regional_fct_p99_us);
    out.push_str(",\n      \"regional_speedup\": ");
    push_ratio(&mut out, hs.regional_speedup);
    let _ = writeln!(out, ",\n      \"lp_windows\": {},", hs.lp_windows);
    let _ = writeln!(out, "      \"lp_messages\": {},", hs.lp_messages);
    out.push_str("      \"lp_barrier_wait_ms\": ");
    push_f64(&mut out, hs.lp_barrier_wait_ms);
    out.push_str("\n    },\n    \"k24_smoke\": {\n");
    let k24 = &derived.k24;
    let _ = writeln!(out, "      \"fabric_k\": {},", k24.fabric_k);
    let _ = writeln!(out, "      \"hosts\": {},", k24.hosts);
    let _ = writeln!(out, "      \"flows\": {},", k24.flows);
    let _ = writeln!(out, "      \"completed\": {},", k24.completed);
    out.push_str("      \"flows_per_sec\": ");
    push_f64(&mut out, k24.flows_per_sec);
    let _ = writeln!(out, ",\n      \"slab_high_water\": {}", k24.slab_high_water);
    out.push_str("    }\n  },\n");
    out.push_str("  \"determinism\": {\n");
    let _ = writeln!(
        out,
        "    \"fel_matches_heap\": {},",
        determinism.fel_matches_heap
    );
    let _ = writeln!(out, "    \"workloads\": {},", determinism.workloads);
    let _ = writeln!(
        out,
        "    \"events_checked\": {}",
        determinism.events_checked
    );
    out.push_str("  }\n}\n");
    out
}

/// Builds the complete JSON report: derived metrics, determinism
/// cross-check, and (when `baseline_text` is given — JSON report or
/// legacy CSV, see [`parse_baseline`]) per-case speedups. Fails when
/// the baseline text is a JSON document of the wrong schema.
pub fn build(
    results: &[CaseResult],
    baseline_text: Option<&str>,
    quick: bool,
) -> Result<String, String> {
    let baseline = baseline_text
        .map(parse_baseline)
        .transpose()?
        .unwrap_or_default();
    let derived = derive_metrics(results, quick);
    let determinism = determinism_check();
    Ok(render_json(
        results,
        &baseline,
        &derived,
        &determinism,
        quick,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_hyperscale() -> HyperscaleRun {
        HyperscaleRun {
            fabric_k: 4,
            flows: 20_000,
            completed: 19_900,
            flows_per_sec: 50_000.0,
            slab_high_water: 96,
            fct_p99_us: 250.0,
            hybrid_completed: 19_900,
            hybrid_flows_per_sec: 600_000.0,
            hybrid_fct_p99_us: 245.0,
            fluid_speedup: 12.0,
            regional_completed: 19_900,
            regional_flows_per_sec: 400_000.0,
            regional_fct_p99_us: 252.0,
            regional_speedup: 8.0,
            lp_windows: 0,
            lp_messages: 0,
            lp_barrier_wait_ms: 0.0,
        }
    }

    fn test_parallel() -> ParallelProtocol {
        ParallelProtocol {
            windows: 9_000,
            messages: 5_400_000,
            msgs_per_window: 600.0,
            barrier_wait_share: 0.42,
            lp_imbalance: 1.15,
        }
    }

    fn test_k24() -> K24Smoke {
        K24Smoke {
            fabric_k: 24,
            hosts: 3_456,
            flows: 5_000,
            completed: 4_990,
            flows_per_sec: 12_000.0,
            slab_high_water: 210,
        }
    }

    #[test]
    fn baseline_csv_parses_and_skips_header() {
        let parsed = parse_baseline_csv(
            "case,mean_ns,best_ns\nevent_queue/push_pop_1k,100.5,90.0\nbad line\n",
        );
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].label, "event_queue/push_pop_1k");
        assert_eq!(parsed[0].best_nanos, 90.0);
    }

    #[test]
    fn json_baseline_round_trips_from_a_rendered_report() {
        let results = vec![
            CaseResult {
                label: "event_queue/push_pop_1k".into(),
                mean_nanos: 110.0,
                best_nanos: 100.0,
            },
            CaseResult {
                label: "dumbbell_4x500KB/pmsb".into(),
                mean_nanos: 2_200.0,
                best_nanos: 2_000.0,
            },
        ];
        // Give the first case baseline fields, so the parser must not
        // confuse "baseline_best_ns" with "best_ns".
        let baseline =
            parse_baseline_csv("case,mean_ns,best_ns\nevent_queue/push_pop_1k,160.0,150.0\n");
        let derived = DerivedMetrics {
            dumbbell_events: 0,
            dumbbell_deliveries: 0,
            event_queue_ops_per_sec: f64::NAN,
            dumbbell_packets_per_sec: f64::NAN,
            dumbbell_events_per_sec: f64::NAN,
            campaign_wall_clock_ms: f64::NAN,
            parallel_speedup_t2: f64::NAN,
            parallel_speedup_t4: f64::NAN,
            parallel: test_parallel(),
            hyperscale: test_hyperscale(),
            k24: test_k24(),
        };
        let determinism = DeterminismCheck {
            fel_matches_heap: true,
            workloads: 4,
            events_checked: 20_000,
        };
        let json = render_json(&results, &baseline, &derived, &determinism, true);
        let parsed = parse_baseline(&json).expect("own report parses as a baseline");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "event_queue/push_pop_1k");
        assert_eq!(parsed[0].mean_nanos, 110.0);
        assert_eq!(parsed[0].best_nanos, 100.0);
        assert_eq!(parsed[1].label, "dumbbell_4x500KB/pmsb");
        assert_eq!(parsed[1].best_nanos, 2_000.0);
    }

    #[test]
    fn json_baseline_rejects_wrong_or_missing_schema() {
        let err = parse_baseline_json("{\"schema\": \"pmsb-bench/v2\", \"cases\": []}")
            .expect_err("wrong schema must fail");
        assert!(err.contains("pmsb-bench/v1"), "unhelpful error: {err}");
        assert!(
            err.contains("pmsb-bench/v2"),
            "should name the found schema: {err}"
        );
        let err = parse_baseline_json("{\"cases\": []}").expect_err("missing schema must fail");
        assert!(err.contains("schema"), "unhelpful error: {err}");
        // CSV input never hits the JSON path.
        assert_eq!(
            parse_baseline("case,mean_ns,best_ns\nx,2.0,1.0\n")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn determinism_check_passes() {
        let check = determinism_check();
        assert!(check.fel_matches_heap);
        assert!(check.events_checked > 10_000);
        assert_eq!(check.workloads, 4);
    }

    #[test]
    fn report_is_valid_shape_with_baseline_speedups() {
        let results = vec![
            CaseResult {
                label: "event_queue/push_pop_1k".into(),
                mean_nanos: 110.0,
                best_nanos: 100.0,
            },
            CaseResult {
                label: "dumbbell_4x500KB/pmsb".into(),
                mean_nanos: 2_200.0,
                best_nanos: 2_000.0,
            },
        ];
        let baseline =
            parse_baseline_csv("case,mean_ns,best_ns\nevent_queue/push_pop_1k,160.0,150.0\n");
        let derived = DerivedMetrics {
            dumbbell_events: 12_000,
            dumbbell_deliveries: 6_000,
            event_queue_ops_per_sec: 1e9,
            dumbbell_packets_per_sec: 3e9,
            dumbbell_events_per_sec: 6e9,
            campaign_wall_clock_ms: 42.0,
            parallel_speedup_t2: 1.4,
            parallel_speedup_t4: f64::NAN,
            parallel: test_parallel(),
            hyperscale: test_hyperscale(),
            k24: test_k24(),
        };
        let determinism = DeterminismCheck {
            fel_matches_heap: true,
            workloads: 4,
            events_checked: 20_000,
        };
        let json = render_json(&results, &baseline, &derived, &determinism, true);
        assert!(json.contains("\"speedup\": 1.500"));
        assert!(json.contains("\"baseline_best_ns\": 150.0"));
        assert!(json.contains("\"fel_matches_heap\": true"));
        assert!(json.contains("\"campaign_wall_clock_ms\": 42.0"));
        assert!(json.contains("\"parallel_speedup_t2\": 1.400"));
        assert!(json.contains("\"parallel_speedup_t4\": null"));
        assert!(json.contains("\"windows\": 9000"));
        assert!(json.contains("\"msgs_per_window\": 600.0"));
        assert!(json.contains("\"barrier_wait_share\": 0.420"));
        assert!(json.contains("\"lp_imbalance\": 1.150"));
        assert!(json.contains("\"slab_high_water\": 96"));
        assert!(json.contains("\"flows_per_sec\": 50000.0"));
        assert!(json.contains("\"fabric_k\": 4"));
        assert!(json.contains("\"hybrid_flows_per_sec\": 600000.0"));
        assert!(json.contains("\"fluid_speedup\": 12.000"));
        assert!(json.contains("\"regional_flows_per_sec\": 400000.0"));
        assert!(json.contains("\"regional_speedup\": 8.000"));
        assert!(json.contains("\"lp_windows\": 0"));
        assert!(json.contains("\"lp_barrier_wait_ms\": 0.0"));
        assert!(json.contains("\"k24_smoke\""));
        assert!(json.contains("\"fabric_k\": 24"));
        assert!(json.contains("\"hosts\": 3456"));
        // The dumbbell case had no baseline entry: no speedup key on it.
        let dumbbell_line = json
            .lines()
            .find(|l| l.contains("dumbbell_4x500KB/pmsb"))
            .unwrap();
        assert!(!dumbbell_line.contains("speedup"));
        // Shape sanity: balanced braces and brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
    }
}
