//! Transport campaign: DCTCP vs classic-ECN NewReno under the marking
//! lineup.
//!
//! The paper holds the transport fixed (DCTCP) and varies the switch
//! marking; this campaign opens the second axis. The same small
//! leaf–spine and Poisson flow mix as the fault sweep runs under every
//! `{transport} x {marking}` cell, so the tables show how much of each
//! scheme's FCT profile survives a cruder congestion response (RFC 3168:
//! halve once per RTT, no DCTCP alpha estimator). PMSB(e) composes in
//! front of either transport, and the `marks_seen`/`marks_ignored`
//! columns make its blindness rate visible per cell.

use pmsb_harness::Record;
use pmsb_metrics::fct::SizeClass;
use pmsb_metrics::robustness::{FlowRobustness, RobustnessSummary};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, TransportKind};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::traffic::TrafficSpec;

use crate::outln;
use crate::util::banner;

/// Fabric shape, shared with the fault sweep: 2 leaves x 2 spines x
/// 4 hosts per leaf.
pub const LEAVES: usize = 2;
/// Spine count.
pub const SPINES: usize = 2;
/// Hosts under each leaf.
pub const HOSTS_PER_LEAF: usize = 4;

/// The transports of the sweep.
pub const TRANSPORTS: &[TransportKind] = &[TransportKind::Dctcp, TransportKind::NewReno];

/// The scheme lineup: `(name, marking, PMSB(e) RTT threshold)`. PMSB(e)
/// rides on the per-port marking, as in Algorithm 2.
pub fn schemes() -> Vec<(&'static str, MarkingConfig, Option<u64>)> {
    vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            None,
        ),
        (
            "per-queue",
            MarkingConfig::PerQueueStandard { threshold_pkts: 65 },
            None,
        ),
        (
            "per-port",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            None,
        ),
        (
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(85_200),
        ),
    ]
}

/// One `(transport, scheme)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct TransportRow {
    /// Transport name (`dctcp` / `newreno`).
    pub transport: &'static str,
    /// Scheme name.
    pub scheme: &'static str,
    /// Completed flows.
    pub completed: usize,
    /// Injected flows.
    pub injected: usize,
    /// Overall average FCT, µs.
    pub overall_avg_us: f64,
    /// Small-flow (<100 KB) 99th-percentile FCT, µs.
    pub small_p99_us: f64,
    /// CE marks applied by switches.
    pub marks: u64,
    /// Congestive buffer tail drops.
    pub drops: u64,
    /// ECE marks senders saw across all flows.
    pub marks_seen: u64,
    /// ECE marks PMSB(e) suppressed (0 without a threshold).
    pub marks_ignored: u64,
    /// Segments retransmitted across all senders.
    pub retransmissions: u64,
    /// Retransmission timeouts across all senders.
    pub timeouts: u64,
}

/// Runs one `(transport, scheme)` cell: the paper flow mix at moderate
/// load over the small leaf–spine.
pub fn run_cell(
    kind: TransportKind,
    scheme: &'static str,
    marking: MarkingConfig,
    pmsbe: Option<u64>,
    num_flows: usize,
    seed: u64,
) -> TransportRow {
    let num_hosts = LEAVES * HOSTS_PER_LEAF;
    let spec = TrafficSpec::paper_large_scale(num_hosts, 0.3);
    let mut rng = SimRng::seed_from(seed);
    let flows = spec.generate(num_flows, &mut rng);
    let mut e = Experiment::leaf_spine(LEAVES, SPINES, HOSTS_PER_LEAF)
        .marking(marking)
        .transport_kind(kind)
        .buffer(crate::util::buffer_policy())
        .sim_threads(crate::util::sim_threads())
        .partition(crate::util::partition());
    if let Some(thr) = pmsbe {
        e = e.pmsbe_rtt_threshold_nanos(thr);
    }
    for f in &flows {
        e.add_flow(
            FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                .starting_at(f.start_nanos),
        );
    }
    let last = flows.last().map(|f| f.start_nanos).unwrap_or(0);
    let res = e.run_until_nanos(last + 1_000_000_000);
    let stat = |c: SizeClass, f: fn(&pmsb_metrics::Summary) -> f64| {
        res.fct.stats(c).map(|s| f(&s) / 1e3).unwrap_or(f64::NAN)
    };
    let rob = RobustnessSummary::collect(res.sender_stats.values().map(|s| FlowRobustness {
        retransmissions: s.retransmissions,
        timeouts: s.timeouts,
        loss_episodes: s.loss_episodes,
        recovery_nanos: s.recovery_nanos,
    }));
    TransportRow {
        transport: kind.name(),
        scheme,
        completed: res.fct.len(),
        injected: flows.len(),
        overall_avg_us: stat(SizeClass::Overall, |s| s.mean),
        small_p99_us: stat(SizeClass::Small, |s| s.p99),
        marks: res.marks,
        drops: res.drops,
        marks_seen: res.sender_stats.values().map(|s| s.marks_seen).sum(),
        marks_ignored: res.sender_stats.values().map(|s| s.marks_ignored).sum(),
        retransmissions: rob.retransmissions,
        timeouts: rob.timeouts,
    }
}

/// The flow count of the sweep (or the `--quick` smoke version).
pub fn num_flows(quick: bool) -> usize {
    if quick {
        120
    } else {
        600
    }
}

/// The CSV header matching [`csv_line`].
pub const CSV_HEADER: &str = "transport,scheme,completed,injected,overall_avg_us,small_p99_us,\
                              marks,drops,marks_seen,marks_ignored,retransmissions,timeouts";

/// One [`TransportRow`] as a CSV line (no newline).
pub fn csv_line(row: &TransportRow) -> String {
    format!(
        "{},{},{},{},{:.1},{:.1},{},{},{},{},{},{}",
        row.transport,
        row.scheme,
        row.completed,
        row.injected,
        row.overall_avg_us,
        row.small_p99_us,
        row.marks,
        row.drops,
        row.marks_seen,
        row.marks_ignored,
        row.retransmissions,
        row.timeouts
    )
}

/// The harness-record payload of one cell.
pub fn row_record(row: &TransportRow) -> Record {
    Record::new()
        .field("completed", row.completed)
        .field("injected", row.injected)
        .field("overall_avg_us", row.overall_avg_us)
        .field("small_p99_us", row.small_p99_us)
        .field("marks", row.marks)
        .field("drops", row.drops)
        .field("marks_seen", row.marks_seen)
        .field("marks_ignored", row.marks_ignored)
        .field("retransmissions", row.retransmissions)
        .field("timeouts", row.timeouts)
}

/// Rebuilds a [`TransportRow`] from a record written by [`row_record`]
/// (with `transport` and `scheme` job parameters).
pub fn row_from_record(rec: &Record) -> Option<TransportRow> {
    let transport = TRANSPORTS
        .iter()
        .map(|k| k.name())
        .find(|t| rec.get_str("transport") == Some(t))?;
    let scheme = schemes()
        .into_iter()
        .map(|(name, _, _)| name)
        .find(|s| rec.get_str("scheme") == Some(s))?;
    let f = |k: &str| rec.get_f64(k);
    Some(TransportRow {
        transport,
        scheme,
        completed: f("completed")? as usize,
        injected: f("injected")? as usize,
        overall_avg_us: f("overall_avg_us")?,
        small_p99_us: f("small_p99_us")?,
        marks: f("marks")? as u64,
        drops: f("drops")? as u64,
        marks_seen: f("marks_seen")? as u64,
        marks_ignored: f("marks_ignored")? as u64,
        retransmissions: f("retransmissions")? as u64,
        timeouts: f("timeouts")? as u64,
    })
}

/// The report title.
pub const TRANSPORT_TITLE: &str =
    "Transport: DCTCP vs classic-ECN NewReno across marking schemes (2x2 leaf-spine)";

/// Writes the sweep table plus headline observations for a completed
/// set of cells.
pub fn write_report(out: &mut String, rows: &[TransportRow]) {
    banner(out, TRANSPORT_TITLE);
    outln!(out, "{CSV_HEADER}");
    for row in rows {
        outln!(out, "{}", csv_line(row));
    }
    let cell = |transport: &str, scheme: &str| {
        rows.iter()
            .find(|r| r.transport == transport && r.scheme == scheme)
    };
    for (scheme, _, _) in schemes() {
        if let (Some(d), Some(n)) = (cell("dctcp", scheme), cell("newreno", scheme)) {
            outln!(
                out,
                "# {scheme}: avg FCT {:.1} us (dctcp) vs {:.1} us (newreno), \
                 small p99 {:.1} vs {:.1} us",
                d.overall_avg_us,
                n.overall_avg_us,
                d.small_p99_us,
                n.small_p99_us
            );
        }
    }
    for r in rows {
        if r.marks_ignored > 0 {
            outln!(
                out,
                "# {}/{}: PMSB(e) ignored {} of {} marks seen ({:.1}%)",
                r.transport,
                r.scheme,
                r.marks_ignored,
                r.marks_seen,
                100.0 * r.marks_ignored as f64 / r.marks_seen.max(1) as f64
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_round_trips_through_record() {
        let row = TransportRow {
            transport: "newreno",
            scheme: "pmsb(e)",
            completed: 100,
            injected: 120,
            overall_avg_us: 1234.5,
            small_p99_us: 99.9,
            marks: 10,
            drops: 2,
            marks_seen: 500,
            marks_ignored: 123,
            retransmissions: 42,
            timeouts: 3,
        };
        let rec = row_record(&row)
            .field("transport", "newreno")
            .field("scheme", "pmsb(e)");
        let back = row_from_record(&rec).expect("round-trip");
        assert_eq!(back.transport, row.transport);
        assert_eq!(back.scheme, row.scheme);
        assert_eq!(back.marks_seen, row.marks_seen);
        assert_eq!(back.marks_ignored, row.marks_ignored);
        assert_eq!(back.timeouts, row.timeouts);
    }

    #[test]
    fn quick_cells_run_for_both_transports() {
        for &kind in TRANSPORTS {
            let row = run_cell(
                kind,
                "per-port",
                MarkingConfig::PerPort { threshold_pkts: 12 },
                None,
                40,
                7,
            );
            assert!(row.completed > 0, "{kind:?} completes flows");
            assert!(row.marks_seen > 0, "{kind:?} senders see marks");
            assert_eq!(row.marks_ignored, 0, "no PMSB(e) threshold, no blindness");
        }
    }

    #[test]
    fn pmsbe_cell_reports_a_blindness_rate() {
        let row = run_cell(
            TransportKind::NewReno,
            "pmsb(e)",
            MarkingConfig::PerPort { threshold_pkts: 12 },
            Some(85_200),
            40,
            7,
        );
        assert!(row.marks_seen > 0);
        assert!(
            row.marks_ignored > 0,
            "short-RTT marks must be suppressed under PMSB(e)"
        );
    }
}
