//! Shared experiment plumbing: CLI flags, weighted-share runs, report
//! formatting.
//!
//! Experiment functions write their human-readable report into a
//! `&mut String` (via [`outln!`](crate::outln)) instead of stdout, so
//! the harness can run them on worker threads without interleaving
//! output and persist the report as part of each job's record.

use pmsb_metrics::Summary;
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};

/// Appends one formatted line to an experiment's report buffer —
/// `println!`, but into a `String`.
#[macro_export]
macro_rules! outln {
    ($out:expr) => {
        $out.push('\n')
    };
    ($out:expr, $($arg:tt)*) => {{
        use ::std::fmt::Write as _;
        let _ = writeln!($out, $($arg)*);
    }};
}

/// `true` when `--quick` was passed: shorten the run for smoke tests.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Worker threads per simulation run (`--sim-threads N`). A process-wide
/// setting rather than a job parameter: thread count must never enter a
/// campaign job key, because the records are byte-identical across
/// thread counts and resumable result stores are shared between them.
static SIM_THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

/// Sets the intra-run shard count used by subsequently started
/// experiment cells (1 = sequential).
pub fn set_sim_threads(n: usize) {
    SIM_THREADS.store(n.max(1), std::sync::atomic::Ordering::Relaxed);
}

/// The current intra-run shard count (defaults to 1, sequential).
pub fn sim_threads() -> usize {
    SIM_THREADS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Partition strategy for sharded runs (`--partition
/// traffic|contiguous`). Process-wide like [`sim_threads`], and for the
/// same reason kept out of campaign job keys: the conservative protocol
/// is byte-identical under any partition, so the records are shared
/// across strategies.
static PARTITION: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Sets the partition strategy used by subsequently started experiment
/// cells.
pub fn set_partition(strategy: pmsb_netsim::PartitionStrategy) {
    use pmsb_netsim::PartitionStrategy;
    let v = match strategy {
        PartitionStrategy::Traffic => 0,
        PartitionStrategy::Contiguous => 1,
    };
    PARTITION.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The current partition strategy (defaults to traffic-aware).
pub fn partition() -> pmsb_netsim::PartitionStrategy {
    use pmsb_netsim::PartitionStrategy;
    match PARTITION.load(std::sync::atomic::Ordering::Relaxed) {
        1 => PartitionStrategy::Contiguous,
        _ => PartitionStrategy::Traffic,
    }
}

/// Simulation engine for subsequently started experiment cells
/// (`--engine packet|fluid|hybrid`). Process-wide like
/// [`sim_threads`]; unlike thread count the engine *does* change
/// results, so campaigns tag non-packet records with an `engine` job
/// parameter to keep result stores disjoint.
static ENGINE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Sets the engine used by subsequently started experiment cells.
pub fn set_engine(engine: pmsb_netsim::EngineKind) {
    use pmsb_netsim::EngineKind;
    let v = match engine {
        EngineKind::Packet => 0,
        EngineKind::Fluid => 1,
        EngineKind::Hybrid => 2,
        EngineKind::Regional => 3,
    };
    ENGINE.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The current simulation engine (defaults to the packet engine).
pub fn engine() -> pmsb_netsim::EngineKind {
    use pmsb_netsim::EngineKind;
    match ENGINE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => EngineKind::Fluid,
        2 => EngineKind::Hybrid,
        3 => EngineKind::Regional,
        _ => EngineKind::Packet,
    }
}

/// Hot-region spec for the regional engine (`--engine
/// regional[:auto|:ports=LIST]`). Process-wide like [`engine`]; a
/// `Mutex` rather than an atomic because the spec carries a port list
/// (same reasoning as [`buffer_policy`]). Ignored by the other engines.
static REGION: std::sync::Mutex<pmsb_netsim::RegionSpec> =
    std::sync::Mutex::new(pmsb_netsim::RegionSpec::Auto);

/// Sets the region spec used by subsequently started regional cells.
pub fn set_region(spec: pmsb_netsim::RegionSpec) {
    *REGION.lock().unwrap() = spec;
}

/// The current region spec (defaults to `Auto`, scout-pass selection).
pub fn region() -> pmsb_netsim::RegionSpec {
    REGION.lock().unwrap().clone()
}

/// Switch buffer allocation policy for subsequently started experiment
/// cells (`--buffer static|dt:ALPHA|delay[:MICROS]`). Process-wide like
/// [`engine`], and like the engine it *does* change results, so
/// campaigns tag non-static records with a `buffer` job parameter to
/// keep result stores disjoint. A `Mutex` rather than an atomic because
/// the policy carries an `f64`/`u64` payload; it is read once per cell,
/// never on a hot path.
static BUFFER: std::sync::Mutex<pmsb_netsim::BufferPolicy> =
    std::sync::Mutex::new(pmsb_netsim::BufferPolicy::Static);

/// Sets the buffer policy used by subsequently started experiment cells.
pub fn set_buffer_policy(policy: pmsb_netsim::BufferPolicy) {
    *BUFFER.lock().unwrap() = policy;
}

/// The current buffer policy (defaults to `Static`, private per-port
/// buffers — the golden-record behaviour).
pub fn buffer_policy() -> pmsb_netsim::BufferPolicy {
    *BUFFER.lock().unwrap()
}

/// `true` when `--series` was passed: figure binaries additionally dump
/// raw time series (occupancy vs time) for plotting.
pub fn series_flag() -> bool {
    std::env::args().any(|a| a == "--series")
}

/// A two-queue weighted-share outcome at a dumbbell bottleneck.
#[derive(Debug, Clone)]
pub struct ShareResult {
    /// Steady-state throughput per queue, Gbps.
    pub queue_gbps: Vec<f64>,
    /// Sum across queues, Gbps.
    pub total_gbps: f64,
    /// CE marks applied during the run.
    pub marks: u64,
    /// Tail drops during the run.
    pub drops: u64,
}

/// Runs the canonical weighted-share microbenchmark: one dumbbell with
/// `flows_per_queue[i]` long-lived flows in queue `i` (each from its own
/// sender), DWRR unless `scheduler` overrides, and the given marking.
/// Reports steady-state per-queue throughput at the bottleneck (skipping
/// the first quarter of the run as warm-up).
pub fn weighted_share(
    marking: MarkingConfig,
    scheduler: Option<SchedulerConfig>,
    flows_per_queue: &[usize],
    millis: u64,
) -> ShareResult {
    let num_queues = flows_per_queue.len();
    let num_senders: usize = flows_per_queue.iter().sum();
    let mut e = Experiment::dumbbell(num_senders, num_queues)
        .marking(marking)
        .watch_bottleneck(100_000);
    if let Some(s) = scheduler {
        e = e.scheduler(s);
    }
    let receiver = num_senders;
    let mut sender = 0;
    for (q, n) in flows_per_queue.iter().enumerate() {
        for _ in 0..*n {
            e.add_flow(FlowDesc::long_lived(sender, receiver, q));
            sender += 1;
        }
    }
    let res = e.run_for_millis(millis);
    let trace = &res.port_traces[&(0, receiver)];
    let bins = trace.queue_throughput[0].num_bins();
    let skip = bins / 4;
    let queue_gbps: Vec<f64> = (0..num_queues)
        .map(|q| {
            let b = trace.queue_throughput[q].num_bins();
            if b <= skip {
                0.0
            } else {
                trace.mean_queue_gbps(q, skip, b)
            }
        })
        .collect();
    ShareResult {
        total_gbps: queue_gbps.iter().sum(),
        queue_gbps,
        marks: res.marks,
        drops: res.drops,
    }
}

/// Formats a [`Summary`] of nanosecond samples as microseconds.
pub fn fmt_us(s: &Summary) -> String {
    format!(
        "n={} avg={:.1}us p50={:.1}us p95={:.1}us p99={:.1}us max={:.1}us",
        s.count,
        s.mean / 1e3,
        s.p50 / 1e3,
        s.p95 / 1e3,
        s.p99 / 1e3,
        s.max / 1e3
    )
}

/// A separator + title block so `all_experiments` output stays readable.
pub fn banner(out: &mut String, title: &str) {
    crate::outln!(out, "\n=== {title} ===");
}
