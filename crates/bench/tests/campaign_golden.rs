//! Harness-level determinism gate for the simulator hot path.
//!
//! The golden file `tests/golden/campaign_records.jsonl` was produced by
//! the PR-1 simulator (BinaryHeap future-event list, HashMap host
//! tables). Any rework of the event queue or the per-event path must
//! leave campaign records **byte-identical**: same pop order, same
//! marking decisions, same flow completion times, same serialized
//! bytes. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p pmsb-bench --test campaign_golden`.

use std::fs;
use std::path::PathBuf;

use pmsb_harness::{Campaign, Job, Record, RunOptions, RECORDS_FILE};
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("campaign_records.jsonl")
}

/// One deterministic dumbbell cell per marking scheme. Records carry
/// only integer fields, so the serialized bytes are platform-stable.
fn golden_campaign() -> Campaign {
    let cells: Vec<(&'static str, MarkingConfig)> = vec![
        (
            "pmsb",
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        ),
        ("per_port", MarkingConfig::PerPort { threshold_pkts: 16 }),
        ("mq_ecn", MarkingConfig::MqEcn { standard_pkts: 16 }),
        (
            "tcn",
            MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            },
        ),
    ];
    let mut campaign = Campaign::new("golden");
    for (scheme, marking) in cells {
        campaign.push(
            Job::new("dumbbell_4x200KB", 0, move || {
                let mut e = Experiment::dumbbell(4, 2).marking(marking);
                for s in 0..4 {
                    e.add_flow(FlowDesc::bulk(s, 4, s % 2, 200_000));
                }
                let res = e.run_for_millis(20);
                let mut fct_sum = 0u64;
                let mut end_last = 0u64;
                for r in res.fct.records() {
                    fct_sum += r.fct_nanos();
                    end_last = end_last.max(r.end_nanos);
                }
                Record::new()
                    .field("flows_done", res.fct.len())
                    .field("fct_sum_nanos", fct_sum)
                    .field("last_end_nanos", end_last)
                    .field("marks", res.marks)
                    .field("drops", res.drops)
            })
            .param("scheme", scheme),
        );
    }
    campaign
}

#[test]
fn campaign_records_byte_identical_to_heap_baseline() {
    let root = std::env::temp_dir().join(format!("pmsb-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let out = golden_campaign()
        .run(&RunOptions {
            jobs: Some(2),
            results_root: root.clone(),
            quiet: true,
        })
        .unwrap();
    assert!(
        out.is_success(),
        "golden campaign failed: {:?}",
        out.failures
    );
    let produced = fs::read_to_string(root.join("golden").join(RECORDS_FILE)).unwrap();
    fs::remove_dir_all(&root).ok();

    let golden = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &produced).unwrap();
        eprintln!("golden file updated: {}", golden.display());
        return;
    }
    let expected = fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        produced, expected,
        "campaign records diverged from the heap-FEL baseline — the \
         simulator is no longer bit-for-bit deterministic vs PR 1"
    );
}
