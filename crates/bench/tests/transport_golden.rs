//! Golden-record gate for the shared-buffer refactor.
//!
//! `tests/golden/transport_records.jsonl` holds the quick transport
//! campaign as produced *before* switch enqueue accounting moved behind
//! `pmsb_netsim::buffer::SharedPool`. Under the default `static` policy
//! the pool is a pure pass-through, so re-running the same campaign
//! must reproduce those records **byte-identically** — same admission
//! decisions, same marks, same FCTs, same serialized bytes. Regenerate
//! deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p pmsb-bench --test transport_golden`.

use std::fs;
use std::path::PathBuf;

use pmsb_harness::{RunOptions, RECORDS_FILE};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("transport_records.jsonl")
}

#[test]
fn static_buffer_reproduces_pre_pool_transport_records() {
    assert_eq!(
        pmsb_bench::util::buffer_policy(),
        pmsb_netsim::BufferPolicy::Static,
        "the gate only means something under the default policy"
    );
    let root = std::env::temp_dir().join(format!("pmsb-transport-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let campaign = pmsb_bench::campaigns::campaign_by_name("transport", true).unwrap();
    let out = campaign
        .run(&RunOptions {
            jobs: Some(2),
            results_root: root.clone(),
            quiet: true,
        })
        .unwrap();
    assert!(
        out.is_success(),
        "transport campaign failed: {:?}",
        out.failures
    );
    let produced = fs::read_to_string(root.join("transport").join(RECORDS_FILE)).unwrap();
    fs::remove_dir_all(&root).ok();

    let golden = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &produced).unwrap();
        eprintln!("golden file updated: {}", golden.display());
        return;
    }
    let expected = fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        produced, expected,
        "transport records diverged from the pre-shared-pool baseline — \
         the static buffer policy is no longer a pass-through"
    );
}
