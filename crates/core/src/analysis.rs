//! Steady-state analysis of PMSB (§IV-D of the paper).
//!
//! The model: `Σ n_i` long-lived, synchronized flows with identical RTT
//! share a bottleneck of capacity `C` through a port with `q` queues;
//! `n_i` flows sit in queue `i`, which has weight share
//! `γ_i = w_i / Σ_j w_j`. All quantities here are expressed in *segments*
//! (packets), matching the paper's derivation; [`bdp_segments`] converts a
//! physical `C·RTT` into segments.
//!
//! The derivation chain (equation numbers from the paper):
//!
//! * Eq. 8 — the queue peaks at `Q_max = k_i + n_i` with per-flow window
//!   `W* = (γ_i·C·RTT + k_i) / n_i` at the marking instant;
//! * Eq. 9 — sawtooth amplitude `A_i = ½·√(2·n_i·(γ_i·C·RTT + k_i))`;
//! * Eq. 10/11 — minimizing `Q_min = Q_max − A_i` over `n_i` gives the
//!   worst case at `n_i = (γ_i·C·RTT + k_i)/8`, where
//!   `Q_min = (7/8)·k_i − γ_i·C·RTT/8`;
//! * **Theorem IV.1** (Eq. 12) — `Q_min > 0` (no underflow, i.e. no
//!   throughput loss) iff `k_i > γ_i·C·RTT / 7`.

/// The bandwidth-delay product `C·RTT` in segments of `seg_bytes` bytes.
///
/// # Example
///
/// ```
/// use pmsb::analysis::bdp_segments;
///
/// // 10 Gbps x 85.2 us / 1500 B ≈ 71 segments.
/// let bdp = bdp_segments(10_000_000_000, 85_200, 1500);
/// assert!((bdp - 71.0).abs() < 0.1);
/// ```
///
/// # Panics
///
/// Panics if `seg_bytes` is zero.
pub fn bdp_segments(link_rate_bps: u64, rtt_nanos: u64, seg_bytes: u32) -> f64 {
    assert!(seg_bytes > 0, "segment size must be positive");
    (link_rate_bps as f64 / 8.0) * (rtt_nanos as f64 / 1e9) / seg_bytes as f64
}

/// The standard ECN threshold `K = C·RTT·λ` (Eq. 1), in bytes.
///
/// # Example
///
/// ```
/// use pmsb::analysis::standard_threshold_bytes;
///
/// // 10 Gbps, 19.2 us RTT, lambda = 1 => 16 packets of 1500 B.
/// assert_eq!(standard_threshold_bytes(10_000_000_000, 19_200, 1.0), 24_000);
/// ```
///
/// # Panics
///
/// Panics if `lambda` is not finite and positive.
pub fn standard_threshold_bytes(link_rate_bps: u64, rtt_nanos: u64, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be positive, got {lambda}"
    );
    ((link_rate_bps as f64 / 8.0) * (rtt_nanos as f64 / 1e9) * lambda).round() as u64
}

/// The fractional per-queue threshold `K_i = (w_i/Σw)·C·RTT·λ` (Eq. 2), in
/// bytes.
///
/// # Panics
///
/// Panics if `weight_sum` is zero or `lambda` is not positive.
pub fn fractional_threshold_bytes(
    weight: u64,
    weight_sum: u64,
    link_rate_bps: u64,
    rtt_nanos: u64,
    lambda: f64,
) -> u64 {
    assert!(weight_sum > 0, "weight sum must be positive");
    let k = standard_threshold_bytes(link_rate_bps, rtt_nanos, lambda);
    ((weight as u128 * k as u128) / weight_sum as u128) as u64
}

/// The weight share `γ_i = w_i / Σ_j w_j`.
///
/// # Panics
///
/// Panics if `weight_sum` is zero.
pub fn gamma(weight: u64, weight_sum: u64) -> f64 {
    assert!(weight_sum > 0, "weight sum must be positive");
    weight as f64 / weight_sum as f64
}

/// The per-flow window `W*` at the instant queue `i` reaches its threshold
/// (Eq. 8's auxiliary definition): `W* = (γ_i·C·RTT + k_i) / n_i`, in
/// segments.
pub fn w_star(n_flows: f64, gamma_bdp_segments: f64, k_segments: f64) -> f64 {
    (gamma_bdp_segments + k_segments) / n_flows
}

/// The queue's maximum length `Q_max = k_i + n_i` (Eq. 8), in segments.
pub fn q_max(n_flows: f64, k_segments: f64) -> f64 {
    k_segments + n_flows
}

/// The sawtooth amplitude `A_i = ½·√(2·n_i·(γ_i·C·RTT + k_i))` (Eq. 9), in
/// segments.
pub fn amplitude(n_flows: f64, gamma_bdp_segments: f64, k_segments: f64) -> f64 {
    0.5 * (2.0 * n_flows * (gamma_bdp_segments + k_segments)).sqrt()
}

/// The queue's minimum length `Q_min = Q_max − A_i`, in segments. Negative
/// values mean the queue underflows (throughput loss).
pub fn q_min(n_flows: f64, gamma_bdp_segments: f64, k_segments: f64) -> f64 {
    q_max(n_flows, k_segments) - amplitude(n_flows, gamma_bdp_segments, k_segments)
}

/// The flow count that minimizes `Q_min` (Eq. 11):
/// `n_i = (γ_i·C·RTT + k_i) / 8`.
pub fn worst_case_flow_count(gamma_bdp_segments: f64, k_segments: f64) -> f64 {
    (gamma_bdp_segments + k_segments) / 8.0
}

/// The lower bound of `Q_min` over all flow counts (Eq. 10):
/// `Q_i⁻ = (7/8)·k_i − γ_i·C·RTT/8`.
pub fn q_min_lower_bound(gamma_bdp_segments: f64, k_segments: f64) -> f64 {
    (7.0 / 8.0) * k_segments - gamma_bdp_segments / 8.0
}

/// **Theorem IV.1**: the smallest per-queue filter threshold (exclusive)
/// that avoids throughput loss, `k_i > γ_i·C·RTT / 7`, in segments.
///
/// # Example
///
/// ```
/// use pmsb::analysis::{bdp_segments, theorem_iv1_min_threshold_segments};
///
/// let bdp = bdp_segments(10_000_000_000, 85_200, 1500);
/// // Two equal-weight queues: gamma = 1/2.
/// let k_min = theorem_iv1_min_threshold_segments(0.5 * bdp);
/// assert!(k_min > 5.0 && k_min < 5.2); // ~5.07 packets
/// ```
pub fn theorem_iv1_min_threshold_segments(gamma_bdp_segments: f64) -> f64 {
    gamma_bdp_segments / 7.0
}

/// Theorem IV.1 expressed in bytes for direct use in switch configuration:
/// the exclusive lower bound on queue `i`'s filter threshold.
///
/// # Panics
///
/// Panics if `weight_sum` is zero.
pub fn theorem_iv1_min_threshold_bytes(
    weight: u64,
    weight_sum: u64,
    link_rate_bps: u64,
    rtt_nanos: u64,
) -> f64 {
    gamma(weight, weight_sum) * (link_rate_bps as f64 / 8.0) * (rtt_nanos as f64 / 1e9) / 7.0
}

/// The PMSB port threshold obtained by summing per-queue thresholds that
/// each satisfy Theorem IV.1 with margin `margin ≥ 1` (the paper: "we can
/// obtain the port's threshold by summing up the thresholds of all queues
/// belonging to this port"). Returns bytes.
///
/// # Panics
///
/// Panics if `margin < 1.0` (the bound is exclusive) or `weights` sum to 0.
pub fn pmsb_port_threshold_bytes(
    weights: &[u64],
    link_rate_bps: u64,
    rtt_nanos: u64,
    margin: f64,
) -> u64 {
    assert!(margin >= 1.0, "margin must be >= 1 to respect Theorem IV.1");
    let weight_sum: u64 = weights.iter().sum();
    assert!(weight_sum > 0, "weights must sum to a positive value");
    weights
        .iter()
        .map(|w| {
            (theorem_iv1_min_threshold_bytes(*w, weight_sum, link_rate_bps, rtt_nanos) * margin)
                .ceil() as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn eq1_matches_paper_setups() {
        // Paper §II-C: 16 packets at 1 Gbps drain in 19.2 us; so with
        // RTT*lambda = 19.2us at 1 Gbps the standard threshold is 16 pkts
        // of 1500 B (paper uses 1502 B frames; we use 1500 B MTU).
        assert_eq!(
            standard_threshold_bytes(1_000_000_000, 192_000, 1.0),
            24_000
        );
    }

    #[test]
    fn eq2_fractional_shares() {
        let k = standard_threshold_bytes(10_000_000_000, 19_200, 1.0);
        assert_eq!(
            fractional_threshold_bytes(1, 8, 10_000_000_000, 19_200, 1.0),
            k / 8
        );
        assert_eq!(
            fractional_threshold_bytes(8, 8, 10_000_000_000, 19_200, 1.0),
            k
        );
    }

    #[test]
    fn theorem_iv1_paper_setting() {
        // Large-scale setup: port threshold 12 pkts over 8 equal queues at
        // 10 Gbps with RTT 85.2us => per-queue bound gamma*BDP/7 =
        // (1/8)*71/7 ~= 1.27 pkts; the PMSB filter threshold 12/8 = 1.5
        // pkts satisfies it.
        let bdp = bdp_segments(10_000_000_000, 85_200, 1500);
        let bound = theorem_iv1_min_threshold_segments(bdp / 8.0);
        assert!(bound < 1.5, "bound {bound} should be below 1.5 pkts");
        assert!(bound > 1.2);
    }

    #[test]
    fn worst_case_is_the_minimizer() {
        // Q_min evaluated at the Eq.-11 flow count equals the Eq.-10 bound.
        let gamma_bdp = 35.0;
        let k = 10.0;
        let n_star = worst_case_flow_count(gamma_bdp, k);
        let at_star = q_min(n_star, gamma_bdp, k);
        let bound = q_min_lower_bound(gamma_bdp, k);
        assert!((at_star - bound).abs() < 1e-9, "{at_star} vs {bound}");
    }

    #[test]
    fn q_max_is_threshold_plus_flows() {
        assert_eq!(q_max(8.0, 16.0), 24.0);
    }

    #[test]
    fn pmsb_port_threshold_sums_queue_bounds() {
        let t = pmsb_port_threshold_bytes(&[1; 8], 10_000_000_000, 85_200, 1.0);
        // 8 queues x ceil(gamma*BDP/7 bytes) = 8 x ceil(1901.8) = 8x1902.
        assert_eq!(t, 8 * 1902);
        // With margin the threshold grows.
        let t2 = pmsb_port_threshold_bytes(&[1; 8], 10_000_000_000, 85_200, 2.0);
        assert!(t2 > t);
    }

    /// Eq.-10 bound really is a lower bound on Q_min for every n.
    #[test]
    fn bound_holds_for_all_n() {
        let mut rng = SimRng::seed_from(0xa0);
        for _ in 0..64 {
            let gamma_bdp = 0.1 + rng.uniform() * 999.9;
            let k = 0.1 + rng.uniform() * 999.9;
            let n = 0.5 + rng.uniform() * 9_999.5;
            let qm = q_min(n, gamma_bdp, k);
            let bound = q_min_lower_bound(gamma_bdp, k);
            assert!(qm >= bound - 1e-6, "q_min {qm} below bound {bound}");
        }
    }

    /// Theorem IV.1: thresholds above the bound keep Q_min positive for
    /// every flow count.
    #[test]
    fn above_bound_never_underflows() {
        let mut rng = SimRng::seed_from(0xa1);
        for _ in 0..64 {
            let gamma_bdp = 0.5 + rng.uniform() * 499.5;
            let slack = 0.01 + rng.uniform() * 9.99;
            let n = 0.5 + rng.uniform() * 9_999.5;
            let k = theorem_iv1_min_threshold_segments(gamma_bdp) + slack;
            assert!(q_min(n, gamma_bdp, k) > 0.0);
        }
    }

    /// Converse: at the worst-case flow count, thresholds strictly
    /// below the bound underflow.
    #[test]
    fn below_bound_underflows_at_worst_case() {
        let mut rng = SimRng::seed_from(0xa2);
        for _ in 0..64 {
            let gamma_bdp = 1.0 + rng.uniform() * 499.0;
            let frac = 0.05 + rng.uniform() * 0.9;
            let k = theorem_iv1_min_threshold_segments(gamma_bdp) * frac;
            let n = worst_case_flow_count(gamma_bdp, k);
            assert!(q_min(n, gamma_bdp, k) < 0.0);
        }
    }

    /// BDP is linear in both rate and RTT.
    #[test]
    fn bdp_linearity() {
        let mut rng = SimRng::seed_from(0xa3);
        for _ in 0..64 {
            let rate = 1 + rng.next_u64() % 100_000_000_000;
            let rtt = 1 + rng.next_u64() % 10_000_000;
            let one = bdp_segments(rate, rtt, 1500);
            let double_rate = bdp_segments(rate * 2, rtt, 1500);
            let double_rtt = bdp_segments(rate, rtt * 2, 1500);
            assert!((double_rate - 2.0 * one).abs() < 1e-6 * one.max(1.0));
            assert!((double_rtt - 2.0 * one).abs() < 1e-6 * one.max(1.0));
        }
    }

    /// The amplitude grows with the flow count (more synchronized flows
    /// oscillate harder), and q_min eventually recovers for large n
    /// (window floor).
    #[test]
    fn amplitude_monotone_in_n() {
        let mut rng = SimRng::seed_from(0xa4);
        for _ in 0..64 {
            let gamma_bdp = 0.1 + rng.uniform() * 99.9;
            let k = 0.1 + rng.uniform() * 99.9;
            let n = 1.0 + rng.uniform() * 999.0;
            assert!(amplitude(n + 1.0, gamma_bdp, k) > amplitude(n, gamma_bdp, k));
        }
    }
}
