//! PMSB(e) — the end-host heuristic variant (Algorithm 2, §V).
//!
//! PMSB(e) needs **no switch modification**: switches run plain per-port
//! ECN marking, and the *sender* decides whether to honour an ECN-Echo. The
//! sender compares the current RTT against an RTT threshold: if the RTT is
//! small, the flow's own queue cannot be the congested one (the backlog
//! causing the mark belongs to other queues of the port), so the mark is
//! ignored — selective blindness applied at the host.

/// Algorithm 2: the per-ACK decision of whether to ignore an ECN
/// congestion signal.
///
/// # Example
///
/// ```
/// use pmsb::endpoint::SelectiveBlindness;
///
/// let pmsbe = SelectiveBlindness::new(40_000); // 40 us RTT threshold
///
/// // No mark on the ACK: nothing to react to (ignore).
/// assert!(pmsbe.ignore_mark(false, 10_000));
/// // Marked, but our RTT is low: we are a victim — ignore the mark.
/// assert!(pmsbe.ignore_mark(true, 25_000));
/// // Marked and RTT high: genuine congestion — honour the mark.
/// assert!(!pmsbe.ignore_mark(true, 55_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectiveBlindness {
    rtt_threshold_nanos: u64,
}

impl SelectiveBlindness {
    /// Creates the rule with the given RTT threshold in nanoseconds.
    ///
    /// The paper leaves the threshold as the deployment's main tuning knob;
    /// [`SelectiveBlindness::from_base_rtt`] derives it from the fabric's
    /// unloaded RTT.
    pub fn new(rtt_threshold_nanos: u64) -> Self {
        SelectiveBlindness {
            rtt_threshold_nanos,
        }
    }

    /// Derives the threshold from the measured base (unloaded) RTT plus the
    /// queueing delay a healthy queue may contribute, expressed as a factor:
    /// `threshold = base_rtt · factor`. Datacenter RTTs are stable, so a
    /// factor of 2–4 distinguishes "my queue is congested" from "some other
    /// queue is congested".
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn from_base_rtt(base_rtt_nanos: u64, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "RTT threshold factor must be positive, got {factor}"
        );
        SelectiveBlindness::new((base_rtt_nanos as f64 * factor).round() as u64)
    }

    /// The configured RTT threshold in nanoseconds.
    pub fn rtt_threshold_nanos(&self) -> u64 {
        self.rtt_threshold_nanos
    }

    /// Algorithm 2: returns `true` when the sender should **ignore** the
    /// congestion information on this ACK.
    ///
    /// * `is_mark == false` (no ECN-Echo): nothing to react to — ignore.
    /// * `cur_rtt < rtt_threshold`: the flow's path is uncongested; the
    ///   mark is a per-port false positive — ignore.
    /// * Otherwise honour the mark.
    pub fn ignore_mark(&self, is_mark: bool, cur_rtt_nanos: u64) -> bool {
        if !is_mark {
            return true;
        }
        cur_rtt_nanos < self.rtt_threshold_nanos
    }
}

/// Tracks the minimum RTT a connection has observed — the base RTT used to
/// derive a PMSB(e) threshold when it is not configured statically.
///
/// # Example
///
/// ```
/// use pmsb::endpoint::BaseRttTracker;
///
/// let mut t = BaseRttTracker::new();
/// assert_eq!(t.base_rtt_nanos(), None);
/// t.observe(52_000);
/// t.observe(48_000);
/// t.observe(70_000);
/// assert_eq!(t.base_rtt_nanos(), Some(48_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaseRttTracker {
    min_rtt_nanos: Option<u64>,
    samples: u64,
}

impl BaseRttTracker {
    /// Creates a tracker with no samples.
    pub fn new() -> Self {
        BaseRttTracker::default()
    }

    /// Feeds one RTT sample in nanoseconds.
    pub fn observe(&mut self, rtt_nanos: u64) {
        self.samples += 1;
        self.min_rtt_nanos = Some(match self.min_rtt_nanos {
            Some(m) => m.min(rtt_nanos),
            None => rtt_nanos,
        });
    }

    /// The smallest RTT observed so far, if any.
    pub fn base_rtt_nanos(&self) -> Option<u64> {
        self.min_rtt_nanos
    }

    /// Number of samples observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn algorithm_2_truth_table() {
        let e = SelectiveBlindness::new(40_000);
        // (is_mark, cur_rtt) -> ignore?
        assert!(e.ignore_mark(false, 0)); // lines 1-3
        assert!(e.ignore_mark(false, 1_000_000));
        assert!(e.ignore_mark(true, 39_999)); // lines 4-6
        assert!(!e.ignore_mark(true, 40_000)); // lines 7-8 (threshold inclusive honour)
        assert!(!e.ignore_mark(true, 100_000));
    }

    #[test]
    fn from_base_rtt_scales() {
        let e = SelectiveBlindness::from_base_rtt(20_000, 2.0);
        assert_eq!(e.rtt_threshold_nanos(), 40_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_base_rtt_rejects_bad_factor() {
        SelectiveBlindness::from_base_rtt(20_000, 0.0);
    }

    #[test]
    fn tracker_keeps_minimum() {
        let mut t = BaseRttTracker::new();
        for r in [500u64, 300, 900, 300, 250, 1000] {
            t.observe(r);
        }
        assert_eq!(t.base_rtt_nanos(), Some(250));
        assert_eq!(t.samples(), 6);
    }

    /// Ignoring is monotone: if a mark is honoured at some RTT, it is
    /// honoured at any larger RTT.
    #[test]
    fn honour_monotone_in_rtt() {
        let mut rng = SimRng::seed_from(0xe0);
        for _ in 0..64 {
            let thr = rng.below(1_000_000) as u64;
            let rtt = rng.below(1_000_000) as u64;
            let d = rng.below(1_000_000) as u64;
            let e = SelectiveBlindness::new(thr);
            if !e.ignore_mark(true, rtt) {
                assert!(!e.ignore_mark(true, rtt + d));
            }
        }
    }

    /// Unmarked ACKs are always ignored regardless of RTT or threshold.
    #[test]
    fn unmarked_always_ignored() {
        let mut rng = SimRng::seed_from(0xe1);
        for _ in 0..64 {
            let thr = rng.next_u64();
            let rtt = rng.next_u64();
            assert!(SelectiveBlindness::new(thr).ignore_mark(false, rtt));
        }
    }

    /// The tracked base RTT equals the true minimum of the samples.
    #[test]
    fn tracker_min_is_exact() {
        let mut rng = SimRng::seed_from(0xe2);
        for _ in 0..64 {
            let len = 1 + rng.below(99);
            let samples: Vec<u64> = (0..len).map(|_| rng.below(1_000_000) as u64).collect();
            let mut t = BaseRttTracker::new();
            for s in &samples {
                t.observe(*s);
            }
            assert_eq!(t.base_rtt_nanos(), samples.iter().copied().min());
        }
    }
}
