#![warn(missing_docs)]

//! PMSB — *per-Port Marking with Selective Blindness* (ICDCS 2018).
//!
//! ECN marking disciplines for multi-queue datacenter switch ports. The
//! headline scheme, [`marking::Pmsb`], marks a packet only when **both**
//!
//! 1. the *port* buffer occupancy is at or above a per-port threshold
//!    (per-port marking), and
//! 2. the packet's *queue* occupancy is at or above a per-queue *filter*
//!    threshold `(weight_i / weight_sum) × port_threshold` (selective
//!    blindness),
//!
//! which protects flows in un-congested queues ("victims") from backing off
//! due to other queues' buffer occupancy, preserving the scheduling policy
//! while retaining per-port marking's throughput/latency profile.
//!
//! This crate is **pure**: it has no simulator or I/O dependency, so the same
//! decision logic can be embedded in a switch dataplane model, a simulator
//! (see `pmsb-netsim`), or unit tests. Quantities are plain integers — bytes
//! for buffer occupancy, nanoseconds for time, bits/second for link rates.
//!
//! Also provided:
//!
//! * the baselines the paper compares against: per-queue marking with
//!   standard or fractional thresholds ([`marking::PerQueue`]), plain
//!   per-port marking ([`marking::PerPort`]), per-service-pool marking
//!   ([`marking::PerPool`]), MQ-ECN ([`marking::MqEcn`]) and TCN
//!   ([`marking::Tcn`]);
//! * the end-host variant **PMSB(e)** ([`endpoint::SelectiveBlindness`],
//!   Algorithm 2): ignore an ECN-Echo when the current RTT is below an RTT
//!   threshold — no switch modification needed;
//! * the steady-state analysis of §IV-D ([`analysis`]), including the
//!   Theorem IV.1 lower bound `k_i > γ_i·C·RTT / 7` on the per-queue filter
//!   threshold that avoids throughput loss;
//! * a validated deployment recipe ([`profile::PmsbProfile`]) deriving all
//!   thresholds from measured fabric parameters.
//!
//! # Example
//!
//! ```
//! use pmsb::marking::{MarkingScheme, Pmsb};
//! use pmsb::PortSnapshot;
//!
//! // Port threshold 12 packets (MTU 1500 B); two queues with equal weight.
//! let mut scheme = Pmsb::new(12 * 1500, vec![1, 1]);
//!
//! let view = PortSnapshot::builder(2)
//!     .queue_bytes(0, 20 * 1500) // congested queue
//!     .queue_bytes(1, 1500)      // nearly-empty queue sharing the port
//!     .build();
//!
//! // The congested queue is over its filter threshold: mark.
//! assert!(scheme.should_mark(&view, 0).is_mark());
//! // The other queue is a victim of per-port marking: selectively blind.
//! assert!(!scheme.should_mark(&view, 1).is_mark());
//! ```

pub mod analysis;
pub mod endpoint;
pub mod marking;
pub mod profile;
mod view;

pub use view::{PortSnapshot, PortSnapshotBuilder, PortView};

/// Where in a switch port's pipeline the ECN decision is evaluated.
///
/// Dequeue marking delivers congestion information one queueing delay
/// earlier than enqueue marking (the packet is stamped as it leaves the
/// buffer rather than as it enters), which lowers slow-start buffer peaks —
/// the effect reproduced in Figs. 4, 11 and 12 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkPoint {
    /// Evaluate when the packet is admitted to the buffer.
    Enqueue,
    /// Evaluate when the packet is selected for transmission.
    Dequeue,
}

impl std::fmt::Display for MarkPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkPoint::Enqueue => f.write_str("enqueue"),
            MarkPoint::Dequeue => f.write_str("dequeue"),
        }
    }
}
