//! ECN marking disciplines for multi-queue switch ports.
//!
//! Every scheme implements [`MarkingScheme`]: a pure decision over a
//! [`PortView`]. The schemes are exactly those the paper builds on or
//! compares against:
//!
//! | Scheme | Struct | Paper role |
//! |---|---|---|
//! | Per-queue, standard or fractional threshold | [`PerQueue`] | §II-B motivation (Figs. 1–2) |
//! | Per-port threshold | [`PerPort`] | §II-B motivation (Figs. 3, 6, 7) |
//! | Per-service-pool threshold | [`PerPool`] | §II-A discussion |
//! | MQ-ECN (dynamic per-queue, round-based) | [`MqEcn`] | baseline (NSDI'16) |
//! | TCN (sojourn time) | [`Tcn`] | baseline (CoNEXT'16) |
//! | RED probability ramp | [`Red`] | reference [6]; DCTCP is its degenerate config |
//! | **PMSB** (Algorithm 1) | [`Pmsb`] | the contribution |
//!
//! [`Capabilities`] reproduces Table I of the paper as queryable data.

mod mq_ecn;
mod per_port;
mod per_queue;
mod pmsb;
mod pool;
mod red;
mod tcn;

pub use mq_ecn::MqEcn;
pub use per_port::PerPort;
pub use per_queue::PerQueue;
pub use pmsb::Pmsb;
pub use pool::PerPool;
pub use red::Red;
pub use tcn::Tcn;

use crate::PortView;

/// The outcome of one ECN decision.
///
/// # Example
///
/// ```
/// use pmsb::marking::MarkDecision;
///
/// assert!(MarkDecision::Mark.is_mark());
/// assert!(!MarkDecision::NoMark.is_mark());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkDecision {
    /// Set the CE codepoint on the packet.
    Mark,
    /// Leave the packet unmarked.
    NoMark,
}

impl MarkDecision {
    /// `true` if the packet should carry a CE mark.
    pub fn is_mark(self) -> bool {
        matches!(self, MarkDecision::Mark)
    }

    /// Converts a boolean predicate result into a decision.
    pub fn from_bool(mark: bool) -> Self {
        if mark {
            MarkDecision::Mark
        } else {
            MarkDecision::NoMark
        }
    }
}

/// Qualitative capabilities of a scheme — Table I of the paper.
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, MqEcn, Pmsb, Tcn};
///
/// let pmsb = Pmsb::new(12 * 1500, vec![1, 1]);
/// assert!(pmsb.capabilities().generic_scheduler);
/// assert!(pmsb.capabilities().early_notification);
///
/// let mq = MqEcn::new(24_000, vec![1500; 2]);
/// assert!(!mq.capabilities().generic_scheduler); // round-based only
///
/// let tcn = Tcn::new(19_200);
/// assert!(!tcn.capabilities().early_notification); // sojourn-based
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// Works over schedulers without a round concept (WFQ, SP).
    pub generic_scheduler: bool,
    /// Works over round-based schedulers (WRR, DWRR).
    pub round_based_scheduler: bool,
    /// Can deliver congestion information early via dequeue marking.
    pub early_notification: bool,
    /// Deployable without switch modification.
    pub no_switch_modification: bool,
}

/// A pure ECN marking decision over the state of one switch port.
///
/// Implementations must be deterministic functions of the supplied
/// [`PortView`] plus their own configuration; any smoothing state (e.g.
/// MQ-ECN's round time) lives in the scheduler and is surfaced through the
/// view, so schemes can be freely shared across ports of identical
/// configuration.
pub trait MarkingScheme: std::fmt::Debug + Send {
    /// Decides whether the packet currently entering (or leaving) queue
    /// `queue` of the port described by `view` should be CE-marked.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `queue >= view.num_queues()` or if the
    /// view's queue count does not match the scheme's configured weights.
    fn should_mark(&mut self, view: &dyn PortView, queue: usize) -> MarkDecision;

    /// `true` iff the scheme reads [`PortView::pool_bytes`], letting
    /// callers skip computing cross-port pool occupancy for the (common)
    /// schemes that only look at their own port.
    fn reads_pool(&self) -> bool {
        false
    }

    /// Short machine-readable scheme name (e.g. `"pmsb"`, `"tcn"`).
    fn name(&self) -> &'static str;

    /// The scheme's Table-I capability row.
    fn capabilities(&self) -> Capabilities;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;

    /// Table I of the paper, verified against the implementations.
    #[test]
    fn table_1_capability_matrix() {
        let mq = MqEcn::new(65 * 1500, vec![1500; 8]);
        let tcn = Tcn::new(78_200);
        let pmsb = Pmsb::new(12 * 1500, vec![1; 8]);

        // MQ-ECN: round-based only, early notification, needs switch change.
        let c = mq.capabilities();
        assert!(!c.generic_scheduler);
        assert!(c.round_based_scheduler);
        assert!(c.early_notification);
        assert!(!c.no_switch_modification);

        // TCN: generic scheduler, no early notification, needs switch change.
        let c = tcn.capabilities();
        assert!(c.generic_scheduler);
        assert!(c.round_based_scheduler);
        assert!(!c.early_notification);
        assert!(!c.no_switch_modification);

        // PMSB: everything except switch-free deployment.
        let c = pmsb.capabilities();
        assert!(c.generic_scheduler);
        assert!(c.round_based_scheduler);
        assert!(c.early_notification);
        assert!(!c.no_switch_modification);
        // (PMSB(e)'s "no switch modification" column lives in
        // `endpoint::SelectiveBlindness`, which is not a switch scheme.)
    }

    #[test]
    fn decisions_are_pure() {
        // Same view, same queue => same answer, repeatedly.
        let mut s = Pmsb::new(10 * 1500, vec![1, 1]);
        let v = PortSnapshot::builder(2)
            .queue_bytes(0, 20 * 1500)
            .queue_bytes(1, 1500)
            .build();
        for _ in 0..10 {
            assert!(s.should_mark(&v, 0).is_mark());
            assert!(!s.should_mark(&v, 1).is_mark());
        }
    }

    #[test]
    fn mark_decision_from_bool_roundtrips() {
        assert_eq!(MarkDecision::from_bool(true), MarkDecision::Mark);
        assert_eq!(MarkDecision::from_bool(false), MarkDecision::NoMark);
    }
}
