//! MQ-ECN — dynamic per-queue thresholds for round-based schedulers
//! (Bai et al., NSDI 2016; Eq. 3 of the PMSB paper).

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// MQ-ECN: queue `i` marks when its occupancy reaches the *dynamic*
/// threshold
///
/// ```text
/// K_i = min(quantum_i / T_round, C) · RTT · λ
/// ```
///
/// where `T_round` is the scheduler's smoothed time to serve every queue
/// once and `quantum_i` the bytes queue `i` may send per round. Writing the
/// standard threshold `K = C·RTT·λ`, this is equivalently
/// `K_i = K · min(quantum_i / (T_round · C), 1)`, which is how this
/// implementation computes it — so only `K` and the quanta need to be
/// configured; `C` comes from the [`PortView`] and `T_round` from the
/// scheduler (surfaced through [`PortView::round_time_nanos`]).
///
/// When the scheduler provides no round time (it is not round-based, or the
/// port has been idle), MQ-ECN falls back to the standard threshold `K` —
/// the typed version of the paper's "MQ-ECN only supports round-based
/// schedulers".
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, MqEcn};
/// use pmsb::PortSnapshot;
///
/// // Standard threshold 65 packets, two queues with 1500-byte quanta.
/// let mut mq = MqEcn::new(65 * 1500, vec![1500, 1500]);
///
/// // Congested port: T_round is long, so each queue's share of the drain
/// // rate is small and the dynamic threshold shrinks far below 65 packets.
/// let view = PortSnapshot::builder(2)
///     .queue_bytes(0, 10 * 1500)
///     .queue_bytes(1, 10 * 1500)
///     .round_time_nanos(24_000) // 20 pkts' worth of 10 Gbps service
///     .build();
/// assert!(mq.should_mark(&view, 0).is_mark());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MqEcn {
    standard_k_bytes: u64,
    quanta_bytes: Vec<u64>,
}

impl MqEcn {
    /// Creates the scheme.
    ///
    /// * `standard_k_bytes` — the standard threshold `K = C·RTT·λ` in bytes,
    ///   used directly whenever a queue's fair drain rate reaches the link
    ///   capacity (and as the fallback without round information).
    /// * `quanta_bytes` — per-queue scheduler quanta (bytes per round),
    ///   proportional to the queues' weights.
    ///
    /// # Panics
    ///
    /// Panics if `quanta_bytes` is empty or contains a zero quantum.
    pub fn new(standard_k_bytes: u64, quanta_bytes: Vec<u64>) -> Self {
        assert!(
            !quanta_bytes.is_empty() && quanta_bytes.iter().all(|q| *q > 0),
            "MQ-ECN quanta must be positive"
        );
        MqEcn {
            standard_k_bytes,
            quanta_bytes,
        }
    }

    /// The dynamic threshold `K_i` in bytes for queue `queue` given the
    /// round time (`None` means "no round information").
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn dynamic_threshold_bytes(
        &self,
        queue: usize,
        round_time_nanos: Option<u64>,
        link_rate_bps: u64,
    ) -> u64 {
        let quantum = self.quanta_bytes[queue] as f64;
        match round_time_nanos {
            None | Some(0) => self.standard_k_bytes,
            Some(t_round) => {
                // Bytes the link drains during one round.
                let drained = link_rate_bps as f64 / 8e9 * t_round as f64;
                let share = (quantum / drained).min(1.0);
                (self.standard_k_bytes as f64 * share).round() as u64
            }
        }
    }

    /// The configured standard threshold in bytes.
    pub fn standard_k_bytes(&self) -> u64 {
        self.standard_k_bytes
    }
}

impl MarkingScheme for MqEcn {
    fn should_mark(&mut self, view: &dyn PortView, queue: usize) -> MarkDecision {
        assert_eq!(
            self.quanta_bytes.len(),
            view.num_queues(),
            "scheme configured for {} queues, port has {}",
            self.quanta_bytes.len(),
            view.num_queues()
        );
        let k = self.dynamic_threshold_bytes(queue, view.round_time_nanos(), view.link_rate_bps());
        MarkDecision::from_bool(view.queue_bytes(queue) >= k.max(1))
    }

    fn name(&self) -> &'static str {
        "mq-ecn"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: false,
            round_based_scheduler: true,
            early_notification: true,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;
    use pmsb_simcore::rng::SimRng;

    const GBPS10: u64 = 10_000_000_000;

    #[test]
    fn falls_back_to_standard_without_round_time() {
        let mq = MqEcn::new(65 * 1500, vec![1500; 4]);
        assert_eq!(mq.dynamic_threshold_bytes(0, None, GBPS10), 65 * 1500);
        assert_eq!(mq.dynamic_threshold_bytes(0, Some(0), GBPS10), 65 * 1500);
    }

    #[test]
    fn short_rounds_give_standard_threshold() {
        // T_round short enough that quantum/T_round >= C: share capped at 1.
        let mq = MqEcn::new(65 * 1500, vec![1500; 2]);
        // Draining 1500 B at 10 Gbps takes 1200 ns; any round <= 1200 ns
        // means the queue's share of capacity is >= 100%.
        assert_eq!(mq.dynamic_threshold_bytes(0, Some(1200), GBPS10), 65 * 1500);
        assert_eq!(mq.dynamic_threshold_bytes(0, Some(600), GBPS10), 65 * 1500);
    }

    #[test]
    fn long_rounds_shrink_threshold_proportionally() {
        let mq = MqEcn::new(64 * 1500, vec![1500; 2]);
        // Round lasts 8x the quantum's drain time => share 1/8.
        let k = mq.dynamic_threshold_bytes(0, Some(9600), GBPS10);
        assert_eq!(k, 8 * 1500);
    }

    #[test]
    fn queues_with_bigger_quanta_get_bigger_thresholds() {
        let mq = MqEcn::new(64 * 1500, vec![1500, 4500]);
        let k0 = mq.dynamic_threshold_bytes(0, Some(19_200), GBPS10);
        let k1 = mq.dynamic_threshold_bytes(1, Some(19_200), GBPS10);
        assert_eq!(k1, 3 * k0);
    }

    #[test]
    fn marking_uses_dynamic_threshold() {
        let mut mq = MqEcn::new(64 * 1500, vec![1500; 2]);
        // share 1/8 => K_i = 8 pkts.
        let v = PortSnapshot::builder(2)
            .queue_bytes(0, 9 * 1500)
            .queue_bytes(1, 7 * 1500)
            .round_time_nanos(9600)
            .link_rate_bps(GBPS10)
            .build();
        assert!(mq.should_mark(&v, 0).is_mark());
        assert!(!mq.should_mark(&v, 1).is_mark());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_quanta() {
        MqEcn::new(1000, vec![0, 1500]);
    }

    /// The dynamic threshold never exceeds the standard threshold and is
    /// non-increasing in the round time.
    #[test]
    fn threshold_bounded_and_monotone() {
        let mut rng = SimRng::seed_from(0x30);
        for _ in 0..64 {
            let k = 1 + rng.below(9_999_999) as u64;
            let quantum = 1 + rng.below(99_999) as u64;
            let t1 = 1 + rng.below(999_999) as u64;
            let dt = rng.below(1_000_000) as u64;
            let mq = MqEcn::new(k, vec![quantum]);
            let k1 = mq.dynamic_threshold_bytes(0, Some(t1), GBPS10);
            let k2 = mq.dynamic_threshold_bytes(0, Some(t1 + dt), GBPS10);
            assert!(k1 <= k);
            assert!(k2 <= k1);
        }
    }
}
