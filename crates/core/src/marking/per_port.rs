//! Plain per-port ECN marking (§II-B of the paper).

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// Per-port ECN marking: every packet is marked while the *total* port
/// occupancy is at or above a single threshold `Port-K`, regardless of
/// which queue the packet belongs to.
///
/// This keeps both throughput and latency near-optimal, but violates the
/// scheduling policy: "packets from one queue may get marked due to buffer
/// occupancy of the other queues belonging to the same port" — the victim
/// flow phenomenon of Fig. 3 that motivates PMSB.
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, PerPort};
/// use pmsb::PortSnapshot;
///
/// let mut p = PerPort::new(16 * 1500);
/// // Queue 1 is empty, but the port is congested: its packets get marked
/// // anyway — queue 1's flows become victims.
/// let view = PortSnapshot::builder(2).queue_bytes(0, 30 * 1500).build();
/// assert!(p.should_mark(&view, 1).is_mark());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerPort {
    threshold_bytes: u64,
}

impl PerPort {
    /// Creates the scheme with the given port threshold in bytes.
    pub fn new(threshold_bytes: u64) -> Self {
        PerPort { threshold_bytes }
    }

    /// The configured port threshold in bytes.
    pub fn threshold_bytes(&self) -> u64 {
        self.threshold_bytes
    }
}

impl MarkingScheme for PerPort {
    fn should_mark(&mut self, view: &dyn PortView, _queue: usize) -> MarkDecision {
        MarkDecision::from_bool(view.port_bytes() >= self.threshold_bytes)
    }

    fn name(&self) -> &'static str {
        "per-port"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: true,
            round_based_scheduler: true,
            early_notification: true,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn marks_all_queues_when_port_congested() {
        let mut s = PerPort::new(16 * 1500);
        let v = PortSnapshot::builder(4).queue_bytes(2, 20 * 1500).build();
        for q in 0..4 {
            assert!(s.should_mark(&v, q).is_mark());
        }
    }

    #[test]
    fn marks_nothing_when_port_below_threshold() {
        let mut s = PerPort::new(16 * 1500);
        let v = PortSnapshot::builder(4).queue_bytes(0, 15 * 1500).build();
        for q in 0..4 {
            assert!(!s.should_mark(&v, q).is_mark());
        }
    }

    #[test]
    fn threshold_is_inclusive() {
        let mut s = PerPort::new(1000);
        let v = PortSnapshot::builder(1).queue_bytes(0, 1000).build();
        assert!(s.should_mark(&v, 0).is_mark());
    }

    /// The decision ignores which queue the packet came from, for
    /// seeded-random occupancy vectors.
    #[test]
    fn queue_agnostic() {
        let mut rng = SimRng::seed_from(0x99);
        for _ in 0..64 {
            let n = 2 + rng.below(6);
            let occ: Vec<u64> = (0..n).map(|_| rng.below(100_000) as u64).collect();
            let k = 1 + rng.below(199_999) as u64;
            let mut s = PerPort::new(k);
            let mut b = PortSnapshot::builder(occ.len());
            for (i, o) in occ.iter().enumerate() {
                b = b.queue_bytes(i, *o);
            }
            let v = b.build();
            let first = s.should_mark(&v, 0);
            for q in 1..occ.len() {
                assert_eq!(s.should_mark(&v, q), first);
            }
        }
    }
}
