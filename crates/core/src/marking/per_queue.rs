//! Per-queue ECN marking with static thresholds (§II-B of the paper).

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// Per-queue ECN marking: queue `i` marks when its own occupancy reaches a
/// static threshold `K_i`, independently of the other queues.
///
/// Two configurations from the paper:
///
/// * [`PerQueue::standard`] — every queue gets the full standard threshold
///   `K = C·RTT·λ` (Eq. 1). High throughput, but queuing delay grows with
///   the number of active queues (Fig. 1).
/// * [`PerQueue::fractional`] — the standard threshold is apportioned by
///   weight, `K_i = (w_i/Σw)·C·RTT·λ` (Eq. 2). Low latency, but loses
///   throughput when few queues are active (Fig. 2).
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, PerQueue};
/// use pmsb::PortSnapshot;
///
/// let mut std16 = PerQueue::standard(16 * 1500, 2);
/// let view = PortSnapshot::builder(2).queue_bytes(0, 17 * 1500).build();
/// assert!(std16.should_mark(&view, 0).is_mark());
/// assert!(!std16.should_mark(&view, 1).is_mark());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerQueue {
    thresholds_bytes: Vec<u64>,
}

impl PerQueue {
    /// Each queue uses its own explicit threshold, in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds_bytes` is empty.
    pub fn new(thresholds_bytes: Vec<u64>) -> Self {
        assert!(
            !thresholds_bytes.is_empty(),
            "per-queue marking needs at least one queue"
        );
        PerQueue { thresholds_bytes }
    }

    /// Every one of the `num_queues` queues gets the same standard
    /// threshold `k_bytes` (`K = C·RTT·λ`).
    pub fn standard(k_bytes: u64, num_queues: usize) -> Self {
        PerQueue::new(vec![k_bytes; num_queues])
    }

    /// The standard threshold `k_bytes` is split among queues in proportion
    /// to `weights` (Eq. 2): `K_i = (w_i / Σw) · k_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn fractional(k_bytes: u64, weights: &[u64]) -> Self {
        let sum: u64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && sum > 0,
            "fractional thresholds need positive total weight"
        );
        PerQueue::new(
            weights
                .iter()
                .map(|w| ((*w as u128 * k_bytes as u128) / sum as u128) as u64)
                .collect(),
        )
    }

    /// The configured per-queue thresholds, in bytes.
    pub fn thresholds_bytes(&self) -> &[u64] {
        &self.thresholds_bytes
    }
}

impl MarkingScheme for PerQueue {
    fn should_mark(&mut self, view: &dyn PortView, queue: usize) -> MarkDecision {
        assert_eq!(
            self.thresholds_bytes.len(),
            view.num_queues(),
            "scheme configured for {} queues, port has {}",
            self.thresholds_bytes.len(),
            view.num_queues()
        );
        MarkDecision::from_bool(view.queue_bytes(queue) >= self.thresholds_bytes[queue])
    }

    fn name(&self) -> &'static str {
        "per-queue"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: true,
            round_based_scheduler: true,
            early_notification: true,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn marks_only_over_threshold() {
        let mut s = PerQueue::standard(16 * 1500, 4);
        let v = PortSnapshot::builder(4)
            .queue_bytes(0, 15 * 1500)
            .queue_bytes(1, 16 * 1500)
            .queue_bytes(2, 17 * 1500)
            .build();
        assert!(!s.should_mark(&v, 0).is_mark());
        assert!(s.should_mark(&v, 1).is_mark(), "threshold is inclusive");
        assert!(s.should_mark(&v, 2).is_mark());
        assert!(!s.should_mark(&v, 3).is_mark());
    }

    #[test]
    fn independent_of_other_queues() {
        // Queue 1 empty must not be marked no matter how full queue 0 is.
        let mut s = PerQueue::standard(2 * 1500, 2);
        let v = PortSnapshot::builder(2).queue_bytes(0, 1000 * 1500).build();
        assert!(!s.should_mark(&v, 1).is_mark());
    }

    #[test]
    fn fractional_splits_by_weight() {
        let s = PerQueue::fractional(16 * 1500, &[1, 3]);
        assert_eq!(s.thresholds_bytes(), &[4 * 1500, 12 * 1500]);
    }

    #[test]
    fn fractional_equal_weights_split_evenly() {
        let s = PerQueue::fractional(8 * 1500, &[1, 1, 1, 1]);
        assert_eq!(s.thresholds_bytes(), &[2 * 1500; 4]);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn fractional_rejects_zero_weights() {
        PerQueue::fractional(1000, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "queues")]
    fn mismatched_queue_count_panics() {
        let mut s = PerQueue::standard(1500, 2);
        let v = PortSnapshot::builder(3).build();
        s.should_mark(&v, 0);
    }

    /// Fractional thresholds never exceed the standard threshold and sum
    /// to at most the standard threshold.
    #[test]
    fn fractional_is_a_partition() {
        let mut rng = SimRng::seed_from(0xF0);
        for _ in 0..64 {
            let k = 1 + rng.below(9_999_999) as u64;
            let n = 1 + rng.below(7);
            let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(99) as u64).collect();
            let s = PerQueue::fractional(k, &weights);
            let total: u64 = s.thresholds_bytes().iter().sum();
            assert!(total <= k);
            for t in s.thresholds_bytes() {
                assert!(*t <= k);
            }
        }
    }

    /// Marking is monotone in the queue's own occupancy.
    #[test]
    fn monotone_in_occupancy() {
        let mut rng = SimRng::seed_from(0xF1);
        for _ in 0..64 {
            let k = 1 + rng.below(999_999) as u64;
            let occ = rng.below(2_000_000) as u64;
            let mut s = PerQueue::standard(k, 1);
            let below = PortSnapshot::builder(1).queue_bytes(0, occ).build();
            let above = PortSnapshot::builder(1).queue_bytes(0, occ + k).build();
            if s.should_mark(&below, 0).is_mark() {
                assert!(s.should_mark(&above, 0).is_mark());
            }
        }
    }
}
