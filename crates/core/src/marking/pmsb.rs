//! PMSB — per-Port Marking with Selective Blindness (Algorithm 1).

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// The paper's contribution: per-port ECN marking gated by a per-queue
/// *filter* threshold (Algorithm 1).
///
/// A packet of queue `i` is marked iff **both** hold:
///
/// 1. `port_length ≥ port_threshold` — the port as a whole is congested
///    (per-port marking, Eq. 5: `port_threshold = C·RTT·λ`), and
/// 2. `queue_length_i ≥ queue_threshold_i` where
///    `queue_threshold_i = (weight_i / weight_sum) · port_threshold`
///    (Eq. 6) — *selective blindness*: a queue holding less than its
///    weighted share of the port threshold is deemed a victim of the other
///    queues' backlog and its packets are spared.
///
/// Theorem IV.1 shows the filter threshold avoids throughput loss whenever
/// `k_i > γ_i·C·RTT / 7`; since `queue_threshold_i = γ_i·C·RTT·λ` with the
/// usual `λ ≥ 1/2`, the condition holds by construction (see
/// [`crate::analysis`]).
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, Pmsb};
/// use pmsb::PortSnapshot;
///
/// let mut pmsb = Pmsb::new(12 * 1500, vec![1, 1]);
/// assert_eq!(pmsb.queue_threshold_bytes(0), 6 * 1500);
///
/// // Port congested, queue 0 over its filter, queue 1 a victim:
/// let view = PortSnapshot::builder(2)
///     .queue_bytes(0, 15 * 1500)
///     .queue_bytes(1, 1500)
///     .build();
/// assert!(pmsb.should_mark(&view, 0).is_mark());
/// assert!(!pmsb.should_mark(&view, 1).is_mark());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pmsb {
    port_threshold_bytes: u64,
    weights: Vec<u64>,
    weight_sum: u64,
}

impl Pmsb {
    /// Creates the scheme.
    ///
    /// * `port_threshold_bytes` — the per-port threshold (Eq. 5), shared by
    ///   all queues of the port.
    /// * `weights` — the scheduling weight of each queue, used to derive
    ///   the per-queue filter thresholds (Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(port_threshold_bytes: u64, weights: Vec<u64>) -> Self {
        let weight_sum: u64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && weight_sum > 0,
            "PMSB needs a non-empty set of queue weights with positive sum"
        );
        Pmsb {
            port_threshold_bytes,
            weights,
            weight_sum,
        }
    }

    /// The per-port threshold in bytes.
    pub fn port_threshold_bytes(&self) -> u64 {
        self.port_threshold_bytes
    }

    /// The per-queue filter threshold
    /// `queue_threshold_i = (weight_i / weight_sum) · port_threshold`
    /// (Eq. 6), in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn queue_threshold_bytes(&self, queue: usize) -> u64 {
        ((self.weights[queue] as u128 * self.port_threshold_bytes as u128)
            / self.weight_sum as u128) as u64
    }

    /// The configured queue weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }
}

impl MarkingScheme for Pmsb {
    fn should_mark(&mut self, view: &dyn PortView, queue: usize) -> MarkDecision {
        assert_eq!(
            self.weights.len(),
            view.num_queues(),
            "scheme configured for {} queues, port has {}",
            self.weights.len(),
            view.num_queues()
        );
        // Algorithm 1, lines 1–3: port not congested => never mark.
        if view.port_bytes() < self.port_threshold_bytes {
            return MarkDecision::NoMark;
        }
        // Lines 4–9: selective blindness — mark only if this queue is at or
        // above its weighted share of the port threshold.
        MarkDecision::from_bool(view.queue_bytes(queue) >= self.queue_threshold_bytes(queue))
    }

    fn name(&self) -> &'static str {
        "pmsb"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: true,
            round_based_scheduler: true,
            early_notification: true,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::PerPort;
    use crate::PortSnapshot;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn no_mark_below_port_threshold() {
        // Even a queue holding everything is spared while the port as a
        // whole is below threshold (lines 1-3 of Algorithm 1).
        let mut s = Pmsb::new(16 * 1500, vec![1, 1]);
        let v = PortSnapshot::builder(2).queue_bytes(0, 15 * 1500).build();
        assert!(!s.should_mark(&v, 0).is_mark());
        assert!(!s.should_mark(&v, 1).is_mark());
    }

    #[test]
    fn victim_queue_is_spared() {
        let mut s = Pmsb::new(16 * 1500, vec![1, 1]);
        let v = PortSnapshot::builder(2)
            .queue_bytes(0, 30 * 1500)
            .queue_bytes(1, 7 * 1500) // below its 8-pkt filter threshold
            .build();
        assert!(s.should_mark(&v, 0).is_mark());
        assert!(!s.should_mark(&v, 1).is_mark());
    }

    #[test]
    fn both_queues_marked_when_both_congested() {
        let mut s = Pmsb::new(16 * 1500, vec![1, 1]);
        let v = PortSnapshot::builder(2)
            .queue_bytes(0, 9 * 1500)
            .queue_bytes(1, 8 * 1500)
            .build();
        assert!(s.should_mark(&v, 0).is_mark());
        assert!(s.should_mark(&v, 1).is_mark());
    }

    #[test]
    fn weighted_filter_thresholds() {
        let s = Pmsb::new(12 * 1500, vec![1, 3]);
        assert_eq!(s.queue_threshold_bytes(0), 3 * 1500);
        assert_eq!(s.queue_threshold_bytes(1), 9 * 1500);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn rejects_zero_weight_sum() {
        Pmsb::new(1000, vec![0, 0]);
    }

    /// PMSB's marks are a subset of plain per-port marking's marks:
    /// selective blindness only ever *removes* marks.
    #[test]
    fn marks_subset_of_per_port() {
        let mut rng = SimRng::seed_from(0xb0);
        for _ in 0..64 {
            let n = 1 + rng.below(7);
            let occ: Vec<u64> = (0..n).map(|_| rng.below(200_000) as u64).collect();
            let port_k = 1 + rng.below(399_999) as u64;
            let mut pmsb = Pmsb::new(port_k, vec![1; n]);
            let mut pp = PerPort::new(port_k);
            let mut b = PortSnapshot::builder(n);
            for (i, o) in occ.iter().enumerate() {
                b = b.queue_bytes(i, *o);
            }
            let v = b.build();
            for q in 0..n {
                if pmsb.should_mark(&v, q).is_mark() {
                    assert!(pp.should_mark(&v, q).is_mark());
                }
            }
        }
    }

    /// With a single queue, PMSB degenerates to per-port marking
    /// (queue occupancy == port occupancy, filter = full threshold).
    #[test]
    fn single_queue_equals_per_port() {
        let mut rng = SimRng::seed_from(0xb1);
        for _ in 0..64 {
            let occ = rng.below(200_000) as u64;
            let k = 1 + rng.below(199_999) as u64;
            let mut pmsb = Pmsb::new(k, vec![1]);
            let mut pp = PerPort::new(k);
            let v = PortSnapshot::builder(1).queue_bytes(0, occ).build();
            assert_eq!(pmsb.should_mark(&v, 0), pp.should_mark(&v, 0));
        }
    }

    /// Filter thresholds partition the port threshold: they sum to at
    /// most port_threshold and are proportional to weight.
    #[test]
    fn filter_thresholds_partition() {
        let mut rng = SimRng::seed_from(0xb2);
        for _ in 0..64 {
            let n = 1 + rng.below(7);
            let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(63) as u64).collect();
            let port_k = 1 + rng.below(999_999) as u64;
            let s = Pmsb::new(port_k, weights.clone());
            let total: u64 = (0..weights.len()).map(|q| s.queue_threshold_bytes(q)).sum();
            assert!(total <= port_k);
            // Off by at most one packet-rounding per queue.
            assert!(port_k - total < weights.len() as u64 * 2);
        }
    }

    /// A queue whose occupancy is at least its weighted share of the
    /// port occupancy is never a false negative when the port marks:
    /// if queue_bytes >= (w_i/Σw)·port_bytes and port_bytes >= K_port,
    /// then PMSB marks.
    #[test]
    fn congested_queue_always_marked() {
        let mut rng = SimRng::seed_from(0xb3);
        for _ in 0..64 {
            let n = 2 + rng.below(4);
            let occ: Vec<u64> = (0..n).map(|_| rng.below(200_000) as u64).collect();
            let port_k = 1 + rng.below(99_999) as u64;
            let mut s = Pmsb::new(port_k, vec![1; n]);
            let mut b = PortSnapshot::builder(n);
            for (i, o) in occ.iter().enumerate() {
                b = b.queue_bytes(i, *o);
            }
            let v = b.build();
            let port: u64 = occ.iter().sum();
            if port >= port_k {
                for (q, o) in occ.iter().enumerate() {
                    // Queue holds >= its share of the *threshold* => marked.
                    if o * n as u64 >= port_k {
                        assert!(s.should_mark(&v, q).is_mark());
                    }
                }
            }
        }
    }
}
