//! Per-service-pool ECN marking (§II-A of the paper).

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// Per-service-pool ECN marking: packets are marked while the occupancy of
/// the shared buffer pool (spanning multiple ports) is at or above a single
/// threshold.
///
/// The paper notes this "will also violate weighted fair sharing, because
/// queues belonging to different ports may interfere with each other" — the
/// per-port victim problem of [`PerPort`](crate::marking::PerPort) at even
/// coarser granularity.
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, PerPool};
/// use pmsb::PortSnapshot;
///
/// let mut p = PerPool::new(100 * 1500);
/// // This port holds almost nothing, but the pool is congested
/// // (another port's backlog): mark anyway.
/// let view = PortSnapshot::builder(1)
///     .queue_bytes(0, 1500)
///     .pool_bytes(200 * 1500)
///     .build();
/// assert!(p.should_mark(&view, 0).is_mark());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerPool {
    threshold_bytes: u64,
}

impl PerPool {
    /// Creates the scheme with the given pool threshold in bytes.
    pub fn new(threshold_bytes: u64) -> Self {
        PerPool { threshold_bytes }
    }

    /// The configured pool threshold in bytes.
    pub fn threshold_bytes(&self) -> u64 {
        self.threshold_bytes
    }
}

impl MarkingScheme for PerPool {
    fn should_mark(&mut self, view: &dyn PortView, _queue: usize) -> MarkDecision {
        MarkDecision::from_bool(view.pool_bytes() >= self.threshold_bytes)
    }

    fn reads_pool(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "per-pool"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: true,
            round_based_scheduler: true,
            early_notification: true,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;

    #[test]
    fn uses_pool_not_port_occupancy() {
        let mut s = PerPool::new(10_000);
        // Port over, pool under: no mark.
        let v = PortSnapshot::builder(1)
            .queue_bytes(0, 50_000)
            .pool_bytes(5_000)
            .build();
        assert!(!s.should_mark(&v, 0).is_mark());
        // Port under, pool over: mark.
        let v = PortSnapshot::builder(1)
            .queue_bytes(0, 100)
            .pool_bytes(50_000)
            .build();
        assert!(s.should_mark(&v, 0).is_mark());
    }

    #[test]
    fn pool_defaults_to_port_when_unset() {
        let mut s = PerPool::new(10_000);
        let v = PortSnapshot::builder(1).queue_bytes(0, 20_000).build();
        assert!(s.should_mark(&v, 0).is_mark());
    }
}
