//! RED — Random Early Detection marking (Floyd & Jacobson, reference [6]
//! of the paper). DCTCP's marking is the degenerate RED configuration
//! (`min_th == max_th`, instantaneous queue); this is the general gentle
//! ramp, provided as an additional per-queue baseline and for ablations.

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// Per-queue RED ECN marking with a linear probability ramp.
///
/// Below `min_bytes` nothing is marked; above `max_bytes` everything is;
/// in between, packets are marked with probability
/// `max_p · (occ − min) / (max − min)`.
///
/// Switch dataplanes avoid true randomness; like several hardware
/// implementations this model *uniformizes* deterministically: it marks
/// every `round(1/p)`-th eligible packet (per queue), which yields the
/// same long-run marking rate with lower variance and keeps simulations
/// bit-for-bit reproducible.
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, Red};
/// use pmsb::PortSnapshot;
///
/// let mut red = Red::new(5 * 1500, 15 * 1500, 0.5, 1);
/// let low = PortSnapshot::builder(1).queue_bytes(0, 3 * 1500).build();
/// assert!(!red.should_mark(&low, 0).is_mark()); // below min_th: never
/// let high = PortSnapshot::builder(1).queue_bytes(0, 20 * 1500).build();
/// assert!(red.should_mark(&high, 0).is_mark()); // above max_th: always
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Red {
    min_bytes: u64,
    max_bytes: u64,
    max_p: f64,
    /// Eligible packets seen since the last mark, per queue.
    since_mark: Vec<u64>,
}

impl Red {
    /// Creates the scheme for `num_queues` queues.
    ///
    /// # Panics
    ///
    /// Panics unless `min_bytes < max_bytes`, `0 < max_p <= 1`, and
    /// `num_queues > 0`.
    pub fn new(min_bytes: u64, max_bytes: u64, max_p: f64, num_queues: usize) -> Self {
        assert!(min_bytes < max_bytes, "RED needs min_th < max_th");
        assert!(
            max_p > 0.0 && max_p <= 1.0,
            "RED max_p must be in (0,1], got {max_p}"
        );
        assert!(num_queues > 0, "RED needs at least one queue");
        Red {
            min_bytes,
            max_bytes,
            max_p,
            since_mark: vec![0; num_queues],
        }
    }

    /// The marking probability at occupancy `occ_bytes`.
    pub fn probability(&self, occ_bytes: u64) -> f64 {
        if occ_bytes < self.min_bytes {
            0.0
        } else if occ_bytes >= self.max_bytes {
            1.0
        } else {
            self.max_p * (occ_bytes - self.min_bytes) as f64
                / (self.max_bytes - self.min_bytes) as f64
        }
    }
}

impl MarkingScheme for Red {
    fn should_mark(&mut self, view: &dyn PortView, queue: usize) -> MarkDecision {
        assert_eq!(
            self.since_mark.len(),
            view.num_queues(),
            "scheme configured for {} queues, port has {}",
            self.since_mark.len(),
            view.num_queues()
        );
        let p = self.probability(view.queue_bytes(queue));
        if p <= 0.0 {
            self.since_mark[queue] = 0;
            return MarkDecision::NoMark;
        }
        if p >= 1.0 {
            self.since_mark[queue] = 0;
            return MarkDecision::Mark;
        }
        // Deterministic uniformization: mark every round(1/p)-th packet.
        self.since_mark[queue] += 1;
        let interval = (1.0 / p).round().max(1.0) as u64;
        if self.since_mark[queue] >= interval {
            self.since_mark[queue] = 0;
            MarkDecision::Mark
        } else {
            MarkDecision::NoMark
        }
    }

    fn name(&self) -> &'static str {
        "red"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: true,
            round_based_scheduler: true,
            early_notification: true,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;
    use pmsb_simcore::rng::SimRng;

    fn occ(bytes: u64) -> PortSnapshot {
        PortSnapshot::builder(1).queue_bytes(0, bytes).build()
    }

    #[test]
    fn never_marks_below_min() {
        let mut red = Red::new(10_000, 20_000, 0.5, 1);
        for _ in 0..100 {
            assert!(!red.should_mark(&occ(9_999), 0).is_mark());
        }
    }

    #[test]
    fn always_marks_at_or_above_max() {
        let mut red = Red::new(10_000, 20_000, 0.5, 1);
        for _ in 0..100 {
            assert!(red.should_mark(&occ(20_000), 0).is_mark());
        }
    }

    #[test]
    fn midpoint_marks_at_the_expected_rate() {
        // At the midpoint p = max_p/2 = 0.25: every 4th packet marked.
        let mut red = Red::new(10_000, 20_000, 0.5, 1);
        let v = occ(15_000);
        let marks: usize = (0..400)
            .filter(|_| red.should_mark(&v, 0).is_mark())
            .count();
        assert_eq!(marks, 100);
    }

    #[test]
    fn probability_ramp_is_linear() {
        let red = Red::new(0, 10_000, 1.0, 1);
        assert_eq!(red.probability(2_500), 0.25);
        assert_eq!(red.probability(5_000), 0.5);
        assert_eq!(red.probability(7_500), 0.75);
    }

    #[test]
    fn counters_are_per_queue() {
        let mut red = Red::new(10_000, 20_000, 1.0, 2);
        // Queue 0 at midpoint (p=0.5 => every 2nd packet), queue 1 idle.
        let v = PortSnapshot::builder(2)
            .queue_bytes(0, 15_000)
            .queue_bytes(1, 0)
            .build();
        let q0: Vec<bool> = (0..4).map(|_| red.should_mark(&v, 0).is_mark()).collect();
        assert_eq!(q0, vec![false, true, false, true]);
        assert!(!red.should_mark(&v, 1).is_mark());
    }

    #[test]
    fn dipping_below_min_resets_the_counter() {
        let mut red = Red::new(10_000, 20_000, 1.0, 1);
        red.should_mark(&occ(15_000), 0); // count 1 of 2
        red.should_mark(&occ(5_000), 0); // resets
        assert!(
            !red.should_mark(&occ(15_000), 0).is_mark(),
            "count restarts"
        );
    }

    #[test]
    #[should_panic(expected = "min_th < max_th")]
    fn rejects_inverted_thresholds() {
        Red::new(10, 10, 0.5, 1);
    }

    /// The long-run mark fraction tracks the configured probability
    /// within one quantization step.
    #[test]
    fn long_run_rate_tracks_probability() {
        let mut rng = SimRng::seed_from(0x2d);
        for _ in 0..24 {
            let occ_frac = 0.05 + rng.uniform() * 0.9;
            let max_p = 0.05 + rng.uniform() * 0.95;
            let min = 10_000u64;
            let max = 50_000u64;
            let occ_bytes = min + ((max - min) as f64 * occ_frac) as u64;
            let mut red = Red::new(min, max, max_p, 1);
            let p = red.probability(occ_bytes);
            if !(p > 0.0 && p < 1.0) {
                continue;
            }
            let v = PortSnapshot::builder(1).queue_bytes(0, occ_bytes).build();
            let n = 10_000;
            let marks = (0..n).filter(|_| red.should_mark(&v, 0).is_mark()).count();
            let achieved = marks as f64 / n as f64;
            let quantized = 1.0 / (1.0 / p).round();
            assert!(
                (achieved - quantized).abs() < 0.01,
                "achieved {achieved} vs quantized target {quantized} (p={p})"
            );
        }
    }
}
