//! TCN — sojourn-time ECN marking over generic schedulers
//! (Bai et al., CoNEXT 2016; Eq. 4 of the PMSB paper).

use crate::marking::{Capabilities, MarkDecision, MarkingScheme};
use crate::PortView;

/// TCN: a packet is marked at dequeue when its *sojourn time* — how long it
/// waited in the buffer — reaches the threshold `T_k = RTT·λ`.
///
/// Because the signal is the time already spent queued, TCN works over any
/// scheduler (no round concept needed), but it cannot deliver congestion
/// information *early*: a packet must first experience the congestion
/// before the mark is produced (Fig. 5 of the paper). At enqueue there is
/// no sojourn yet, so [`Tcn::should_mark`] never marks there.
///
/// # Example
///
/// ```
/// use pmsb::marking::{MarkingScheme, Tcn};
/// use pmsb::PortSnapshot;
///
/// let mut tcn = Tcn::new(19_200); // 19.2 us, = 16 pkts at 1 Gbps
/// let at_dequeue = PortSnapshot::builder(1).sojourn_nanos(25_000).build();
/// assert!(tcn.should_mark(&at_dequeue, 0).is_mark());
///
/// let at_enqueue = PortSnapshot::builder(1).build(); // no sojourn signal
/// assert!(!tcn.should_mark(&at_enqueue, 0).is_mark());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tcn {
    threshold_nanos: u64,
}

impl Tcn {
    /// Creates the scheme with sojourn threshold `T_k` in nanoseconds.
    pub fn new(threshold_nanos: u64) -> Self {
        Tcn { threshold_nanos }
    }

    /// The configured sojourn threshold in nanoseconds.
    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }
}

impl MarkingScheme for Tcn {
    fn should_mark(&mut self, view: &dyn PortView, _queue: usize) -> MarkDecision {
        match view.packet_sojourn_nanos() {
            Some(sojourn) => MarkDecision::from_bool(sojourn >= self.threshold_nanos),
            None => MarkDecision::NoMark,
        }
    }

    fn name(&self) -> &'static str {
        "tcn"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            generic_scheduler: true,
            round_based_scheduler: true,
            early_notification: false,
            no_switch_modification: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSnapshot;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn marks_on_long_sojourn_only() {
        let mut tcn = Tcn::new(19_200);
        let short = PortSnapshot::builder(1).sojourn_nanos(19_199).build();
        let exact = PortSnapshot::builder(1).sojourn_nanos(19_200).build();
        let long = PortSnapshot::builder(1).sojourn_nanos(100_000).build();
        assert!(!tcn.should_mark(&short, 0).is_mark());
        assert!(tcn.should_mark(&exact, 0).is_mark());
        assert!(tcn.should_mark(&long, 0).is_mark());
    }

    #[test]
    fn never_marks_without_sojourn_signal() {
        // Even an arbitrarily congested port: TCN has nothing to act on at
        // enqueue — this is its "no early notification" limitation.
        let mut tcn = Tcn::new(1);
        let v = PortSnapshot::builder(1)
            .queue_bytes(0, u64::MAX / 2)
            .build();
        assert!(!tcn.should_mark(&v, 0).is_mark());
    }

    #[test]
    fn ignores_buffer_occupancy() {
        let mut tcn = Tcn::new(1000);
        // Empty buffer but long sojourn (e.g. scheduler starvation): mark.
        let v = PortSnapshot::builder(1).sojourn_nanos(5000).build();
        assert!(tcn.should_mark(&v, 0).is_mark());
    }

    /// Marking is monotone in sojourn time.
    #[test]
    fn monotone_in_sojourn() {
        let mut rng = SimRng::seed_from(0x7c);
        for _ in 0..64 {
            let t = 1 + rng.below(999_999) as u64;
            let s = rng.below(1_000_000) as u64;
            let d = rng.below(1_000_000) as u64;
            let mut tcn = Tcn::new(t);
            let a = PortSnapshot::builder(1).sojourn_nanos(s).build();
            let b = PortSnapshot::builder(1).sojourn_nanos(s + d).build();
            if tcn.should_mark(&a, 0).is_mark() {
                assert!(tcn.should_mark(&b, 0).is_mark());
            }
        }
    }
}
