//! Deployment profiles: derive and validate a PMSB configuration from
//! fabric parameters.
//!
//! The paper's deployment story (§VI, "Is it hard to determine the
//! parameters for PMSB?"): measure the fabric's `C` and `RTT`, pick queue
//! weights, and the thresholds follow — the per-queue filter thresholds
//! from Eq. 6, their Theorem IV.1 lower bounds from Eq. 12, and the port
//! threshold either as `C·RTT·λ` (Eq. 5) or as the sum of bound-respecting
//! per-queue thresholds. [`PmsbProfile`] encodes that recipe with
//! validation, so a misconfigured deployment is a compile-time/startup
//! error instead of a silent throughput loss.

use crate::analysis;
use crate::endpoint::SelectiveBlindness;
use crate::marking::Pmsb;

/// Errors from [`PmsbProfileBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildProfileError {
    /// No queue weights were given, or they sum to zero.
    EmptyWeights,
    /// A fabric parameter was zero or non-finite.
    BadFabricParameter(&'static str),
    /// The chosen port threshold makes some queue's filter threshold fall
    /// at or below its Theorem IV.1 bound (throughput would be lost).
    /// Carries the offending queue and the minimum safe port threshold.
    ViolatesTheoremIv1 {
        /// Queue whose filter threshold is too small.
        queue: usize,
        /// Smallest port threshold (bytes) that satisfies the bound for
        /// every queue.
        min_port_threshold_bytes: u64,
    },
}

impl std::fmt::Display for BuildProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildProfileError::EmptyWeights => {
                f.write_str("queue weights are empty or sum to zero")
            }
            BuildProfileError::BadFabricParameter(p) => {
                write!(f, "fabric parameter {p} must be positive and finite")
            }
            BuildProfileError::ViolatesTheoremIv1 {
                queue,
                min_port_threshold_bytes,
            } => write!(
                f,
                "queue {queue}'s filter threshold violates Theorem IV.1; \
                 raise the port threshold to at least {min_port_threshold_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for BuildProfileError {}

/// A validated PMSB deployment configuration for one port class.
///
/// # Example
///
/// ```
/// use pmsb::profile::PmsbProfile;
///
/// // The paper's large-scale fabric: 10 Gbps, 85.2 us RTT, 8 equal queues.
/// let profile = PmsbProfile::builder()
///     .link_rate_bps(10_000_000_000)
///     .rtt_nanos(85_200)
///     .weights(vec![1; 8])
///     .build()?;
/// // Thresholds respect Theorem IV.1 by construction.
/// assert!(profile.port_threshold_bytes() > 0);
/// let _scheme = profile.marking_scheme();
/// let _rule = profile.endpoint_rule();
/// # Ok::<(), pmsb::profile::BuildProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PmsbProfile {
    link_rate_bps: u64,
    rtt_nanos: u64,
    weights: Vec<u64>,
    port_threshold_bytes: u64,
    rtt_threshold_nanos: u64,
}

impl PmsbProfile {
    /// Starts building a profile.
    pub fn builder() -> PmsbProfileBuilder {
        PmsbProfileBuilder {
            link_rate_bps: 10_000_000_000,
            rtt_nanos: 0,
            weights: Vec::new(),
            lambda: None,
            margin: 1.2,
            rtt_headroom: 1.2,
        }
    }

    /// The derived per-port threshold in bytes.
    pub fn port_threshold_bytes(&self) -> u64 {
        self.port_threshold_bytes
    }

    /// The per-queue filter threshold for `queue` in bytes (Eq. 6).
    pub fn queue_threshold_bytes(&self, queue: usize) -> u64 {
        let sum: u64 = self.weights.iter().sum();
        ((self.weights[queue] as u128 * self.port_threshold_bytes as u128) / sum as u128) as u64
    }

    /// The queue weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The PMSB(e) RTT threshold in nanoseconds (base RTT × headroom).
    pub fn rtt_threshold_nanos(&self) -> u64 {
        self.rtt_threshold_nanos
    }

    /// Instantiates the switch-side marking scheme (Algorithm 1).
    pub fn marking_scheme(&self) -> Pmsb {
        Pmsb::new(self.port_threshold_bytes, self.weights.clone())
    }

    /// Instantiates the end-host rule (Algorithm 2, PMSB(e)).
    pub fn endpoint_rule(&self) -> SelectiveBlindness {
        SelectiveBlindness::new(self.rtt_threshold_nanos)
    }

    /// The Theorem IV.1 safety margin of `queue`: its filter threshold
    /// divided by the `γ·C·RTT/7` bound (must exceed 1).
    pub fn bound_margin(&self, queue: usize) -> f64 {
        let sum: u64 = self.weights.iter().sum();
        let bound = analysis::theorem_iv1_min_threshold_bytes(
            self.weights[queue],
            sum,
            self.link_rate_bps,
            self.rtt_nanos,
        );
        self.queue_threshold_bytes(queue) as f64 / bound
    }
}

/// Builder for [`PmsbProfile`]; see [`PmsbProfile::builder`].
#[derive(Debug, Clone)]
pub struct PmsbProfileBuilder {
    link_rate_bps: u64,
    rtt_nanos: u64,
    weights: Vec<u64>,
    lambda: Option<f64>,
    margin: f64,
    rtt_headroom: f64,
}

impl PmsbProfileBuilder {
    /// Sets the bottleneck link rate in bits per second (default 10 Gbps).
    pub fn link_rate_bps(mut self, bps: u64) -> Self {
        self.link_rate_bps = bps;
        self
    }

    /// Sets the fabric's measured base RTT in nanoseconds (required).
    pub fn rtt_nanos(mut self, nanos: u64) -> Self {
        self.rtt_nanos = nanos;
        self
    }

    /// Sets the per-queue scheduling weights (required).
    pub fn weights(mut self, weights: Vec<u64>) -> Self {
        self.weights = weights;
        self
    }

    /// Derives the port threshold as `C·RTT·λ` (Eq. 5) instead of the
    /// default sum-of-bounds recipe.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Margin applied over each queue's Theorem IV.1 bound in the default
    /// (sum-of-bounds) recipe; must be > 1 (default 1.2).
    pub fn bound_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// PMSB(e) RTT threshold as a multiple of the base RTT (default 1.2).
    pub fn rtt_headroom(mut self, factor: f64) -> Self {
        self.rtt_headroom = factor;
        self
    }

    /// Validates and builds the profile.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProfileError`] when parameters are missing/invalid
    /// or the derived thresholds violate Theorem IV.1.
    pub fn build(self) -> Result<PmsbProfile, BuildProfileError> {
        let weight_sum: u64 = self.weights.iter().sum();
        if self.weights.is_empty() || weight_sum == 0 {
            return Err(BuildProfileError::EmptyWeights);
        }
        if self.link_rate_bps == 0 {
            return Err(BuildProfileError::BadFabricParameter("link_rate_bps"));
        }
        if self.rtt_nanos == 0 {
            return Err(BuildProfileError::BadFabricParameter("rtt_nanos"));
        }
        if !(self.margin.is_finite() && self.margin > 1.0) {
            return Err(BuildProfileError::BadFabricParameter("bound_margin"));
        }
        if !(self.rtt_headroom.is_finite() && self.rtt_headroom > 1.0) {
            return Err(BuildProfileError::BadFabricParameter("rtt_headroom"));
        }
        if let Some(l) = self.lambda {
            if !(l.is_finite() && l > 0.0) {
                return Err(BuildProfileError::BadFabricParameter("lambda"));
            }
        }

        let port_threshold_bytes = match self.lambda {
            Some(l) => analysis::standard_threshold_bytes(self.link_rate_bps, self.rtt_nanos, l),
            None => analysis::pmsb_port_threshold_bytes(
                &self.weights,
                self.link_rate_bps,
                self.rtt_nanos,
                self.margin,
            ),
        };

        // Validate every queue's filter threshold against its bound, and
        // compute the smallest admissible port threshold for diagnostics.
        let mut min_port = 0u64;
        for (q, w) in self.weights.iter().enumerate() {
            let bound = analysis::theorem_iv1_min_threshold_bytes(
                *w,
                weight_sum,
                self.link_rate_bps,
                self.rtt_nanos,
            );
            let filter = (*w as u128 * port_threshold_bytes as u128 / weight_sum as u128) as f64;
            // filter = (w/sum)·port, bound = (w/sum)·CRTT/7: the implied
            // minimum port threshold is the same for every queue, but we
            // check each to report the first offender.
            let implied = (bound * weight_sum as f64 / *w as f64).ceil() as u64 + 1;
            min_port = min_port.max(implied);
            if filter <= bound {
                return Err(BuildProfileError::ViolatesTheoremIv1 {
                    queue: q,
                    min_port_threshold_bytes: min_port,
                });
            }
        }

        Ok(PmsbProfile {
            link_rate_bps: self.link_rate_bps,
            rtt_nanos: self.rtt_nanos,
            weights: self.weights,
            port_threshold_bytes,
            rtt_threshold_nanos: (self.rtt_nanos as f64 * self.rtt_headroom).round() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    fn paper_builder() -> PmsbProfileBuilder {
        PmsbProfile::builder()
            .link_rate_bps(10_000_000_000)
            .rtt_nanos(85_200)
            .weights(vec![1; 8])
    }

    #[test]
    fn paper_fabric_profile_builds() {
        let p = paper_builder().build().unwrap();
        // Sum-of-bounds recipe with margin 1.2: 8 × ceil(1902·1.2) bytes.
        assert!(p.port_threshold_bytes() >= 8 * 1902);
        for q in 0..8 {
            assert!(p.bound_margin(q) > 1.0, "queue {q} must clear the bound");
        }
        assert_eq!(p.rtt_threshold_nanos(), 102_240); // 85.2 us × 1.2
        assert_eq!(p.marking_scheme().weights(), &[1; 8]);
        assert_eq!(p.endpoint_rule().rtt_threshold_nanos(), 102_240);
    }

    #[test]
    fn lambda_recipe_gives_standard_threshold() {
        let p = paper_builder().lambda(1.0).build().unwrap();
        // C·RTT·λ = 10G × 85.2 us = 106,500 bytes (~71 pkts).
        assert_eq!(p.port_threshold_bytes(), 106_500);
    }

    #[test]
    fn too_small_lambda_is_rejected_with_fix() {
        // λ tiny => port threshold below the sum of bounds.
        let err = paper_builder().lambda(0.05).build().unwrap_err();
        match err {
            BuildProfileError::ViolatesTheoremIv1 {
                min_port_threshold_bytes,
                ..
            } => {
                // Retrying with the suggested threshold (as λ) succeeds.
                let lam = min_port_threshold_bytes as f64 / 106_500.0 + 0.01;
                assert!(paper_builder().lambda(lam).build().is_ok());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_parameters() {
        assert_eq!(
            PmsbProfile::builder().weights(vec![1]).build().unwrap_err(),
            BuildProfileError::BadFabricParameter("rtt_nanos")
        );
        assert_eq!(
            PmsbProfile::builder().rtt_nanos(1000).build().unwrap_err(),
            BuildProfileError::EmptyWeights
        );
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = BuildProfileError::ViolatesTheoremIv1 {
            queue: 3,
            min_port_threshold_bytes: 9000,
        };
        let msg = e.to_string();
        assert!(msg.contains("queue 3") && msg.contains("9000"), "{msg}");
    }

    /// Every successfully built profile clears the Theorem IV.1 bound
    /// on every queue.
    #[test]
    fn built_profiles_always_respect_the_bound() {
        let mut rng = SimRng::seed_from(0x6f);
        for _ in 0..32 {
            let n = 1 + rng.below(7);
            let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(15) as u64).collect();
            let rtt_us = 10 + rng.below(490) as u64;
            let margin = 1.01 + rng.uniform() * 2.99;
            let p = PmsbProfile::builder()
                .link_rate_bps(10_000_000_000)
                .rtt_nanos(rtt_us * 1000)
                .weights(weights.clone())
                .bound_margin(margin)
                .build()
                .unwrap();
            for q in 0..weights.len() {
                assert!(p.bound_margin(q) > 1.0);
            }
        }
    }
}
