//! The port-state view that marking schemes decide over.
//!
//! A [`PortView`] exposes exactly the switch state the marking disciplines
//! in [`crate::marking`] consult: per-queue and per-port buffer occupancy,
//! the shared-pool occupancy, the link rate, and — for schemes that need
//! them — the departing packet's sojourn time (TCN) and the scheduler's
//! smoothed round time (MQ-ECN). Keeping this behind a trait lets the same
//! scheme objects run inside the packet simulator and in pure unit tests
//! (via [`PortSnapshot`]).

/// Read-only snapshot of a switch port's state at a marking decision point.
pub trait PortView {
    /// Number of service queues configured on this port.
    fn num_queues(&self) -> usize;

    /// Total bytes buffered across all queues of this port.
    fn port_bytes(&self) -> u64;

    /// Bytes buffered in queue `q`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `q >= num_queues()`.
    fn queue_bytes(&self, q: usize) -> u64;

    /// Bytes buffered in the service pool this port draws from (for
    /// per-service-pool marking). Defaults to the port occupancy, which is
    /// exact when the pool serves a single port.
    fn pool_bytes(&self) -> u64 {
        self.port_bytes()
    }

    /// Capacity of the attached link in bits per second.
    fn link_rate_bps(&self) -> u64;

    /// Sojourn time (nanoseconds) of the packet under decision, i.e. how
    /// long it has waited in the buffer. Only meaningful at dequeue;
    /// `None` at enqueue. TCN returns "don't mark" without it.
    fn packet_sojourn_nanos(&self) -> Option<u64> {
        None
    }

    /// The scheduler's smoothed round time `T_round` in nanoseconds, if the
    /// scheduler is round-based (WRR/DWRR). `None` for schedulers without a
    /// round concept (WFQ, SP) — MQ-ECN cannot operate there and falls back
    /// to its standard threshold.
    fn round_time_nanos(&self) -> Option<u64> {
        None
    }
}

/// A concrete, owned [`PortView`] for tests and offline evaluation.
///
/// Built with [`PortSnapshot::builder`]; the port occupancy defaults to the
/// sum of the queue occupancies unless overridden.
///
/// # Example
///
/// ```
/// use pmsb::{PortSnapshot, PortView};
///
/// let snap = PortSnapshot::builder(3)
///     .queue_bytes(0, 3000)
///     .queue_bytes(2, 1500)
///     .link_rate_bps(10_000_000_000)
///     .build();
/// assert_eq!(snap.port_bytes(), 4500);
/// assert_eq!(snap.queue_bytes(1), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSnapshot {
    queues: Vec<u64>,
    port_bytes: u64,
    pool_bytes: u64,
    link_rate_bps: u64,
    sojourn_nanos: Option<u64>,
    round_time_nanos: Option<u64>,
}

impl PortSnapshot {
    /// Starts building a snapshot of a port with `num_queues` queues.
    pub fn builder(num_queues: usize) -> PortSnapshotBuilder {
        PortSnapshotBuilder {
            queues: vec![0; num_queues],
            port_bytes: None,
            pool_bytes: None,
            link_rate_bps: 10_000_000_000,
            sojourn_nanos: None,
            round_time_nanos: None,
        }
    }
}

/// Builder for [`PortSnapshot`]; see [`PortSnapshot::builder`].
#[derive(Debug, Clone)]
pub struct PortSnapshotBuilder {
    queues: Vec<u64>,
    port_bytes: Option<u64>,
    pool_bytes: Option<u64>,
    link_rate_bps: u64,
    sojourn_nanos: Option<u64>,
    round_time_nanos: Option<u64>,
}

impl PortSnapshotBuilder {
    /// Sets the occupancy of queue `q` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn queue_bytes(mut self, q: usize, bytes: u64) -> Self {
        self.queues[q] = bytes;
        self
    }

    /// Overrides the port occupancy (defaults to the sum of queues).
    pub fn port_bytes(mut self, bytes: u64) -> Self {
        self.port_bytes = Some(bytes);
        self
    }

    /// Overrides the service-pool occupancy (defaults to the port occupancy).
    pub fn pool_bytes(mut self, bytes: u64) -> Self {
        self.pool_bytes = Some(bytes);
        self
    }

    /// Sets the link rate in bits per second (default 10 Gbps).
    pub fn link_rate_bps(mut self, bps: u64) -> Self {
        self.link_rate_bps = bps;
        self
    }

    /// Sets the sojourn time of the packet under decision.
    pub fn sojourn_nanos(mut self, nanos: u64) -> Self {
        self.sojourn_nanos = Some(nanos);
        self
    }

    /// Sets the scheduler's smoothed round time.
    pub fn round_time_nanos(mut self, nanos: u64) -> Self {
        self.round_time_nanos = Some(nanos);
        self
    }

    /// Finishes the snapshot.
    pub fn build(self) -> PortSnapshot {
        let sum: u64 = self.queues.iter().sum();
        let port_bytes = self.port_bytes.unwrap_or(sum);
        PortSnapshot {
            pool_bytes: self.pool_bytes.unwrap_or(port_bytes),
            queues: self.queues,
            port_bytes,
            link_rate_bps: self.link_rate_bps,
            sojourn_nanos: self.sojourn_nanos,
            round_time_nanos: self.round_time_nanos,
        }
    }
}

impl PortView for PortSnapshot {
    fn num_queues(&self) -> usize {
        self.queues.len()
    }
    fn port_bytes(&self) -> u64 {
        self.port_bytes
    }
    fn queue_bytes(&self, q: usize) -> u64 {
        self.queues[q]
    }
    fn pool_bytes(&self) -> u64 {
        self.pool_bytes
    }
    fn link_rate_bps(&self) -> u64 {
        self.link_rate_bps
    }
    fn packet_sojourn_nanos(&self) -> Option<u64> {
        self.sojourn_nanos
    }
    fn round_time_nanos(&self) -> Option<u64> {
        self.round_time_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_bytes_defaults_to_queue_sum() {
        let s = PortSnapshot::builder(2)
            .queue_bytes(0, 100)
            .queue_bytes(1, 200)
            .build();
        assert_eq!(s.port_bytes(), 300);
        assert_eq!(s.pool_bytes(), 300);
    }

    #[test]
    fn overrides_are_respected() {
        let s = PortSnapshot::builder(1)
            .queue_bytes(0, 100)
            .port_bytes(500)
            .pool_bytes(900)
            .sojourn_nanos(42)
            .round_time_nanos(7)
            .link_rate_bps(1_000_000_000)
            .build();
        assert_eq!(s.port_bytes(), 500);
        assert_eq!(s.pool_bytes(), 900);
        assert_eq!(s.packet_sojourn_nanos(), Some(42));
        assert_eq!(s.round_time_nanos(), Some(7));
        assert_eq!(s.link_rate_bps(), 1_000_000_000);
    }

    #[test]
    fn defaults_for_optional_signals_are_none() {
        let s = PortSnapshot::builder(1).build();
        assert_eq!(s.packet_sojourn_nanos(), None);
        assert_eq!(s.round_time_nanos(), None);
    }
}
