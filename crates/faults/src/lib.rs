#![warn(missing_docs)]

//! Deterministic fault injection for the PMSB simulator.
//!
//! The paper evaluates PMSB on ideal links; this crate supplies the
//! misbehaving network. A [`FaultSchedule`] is a declarative list of
//! timed [`FaultEvent`]s — link down/up, rate degradation, probabilistic
//! per-link packet loss and corruption, and switch buffer shrink — that
//! the simulator (`pmsb-netsim`) replays while a workload runs.
//!
//! Two properties make schedules safe to use in campaigns:
//!
//! * **Determinism.** All randomness (the loss/corruption coin flips)
//!   comes from the schedule's own xoshiro256** streams, derived from
//!   [`FaultSchedule::seed`] via [`FaultSchedule::stream`]: one
//!   independent stream per directed link, consumed in event order.
//!   Workload RNG is never touched, so the same seed + schedule replays
//!   byte-identically, and attaching a loss probability to one link does
//!   not perturb the coin flips of another.
//! * **Serializability.** A schedule round-trips through a line-oriented
//!   text format ([`FaultSchedule::to_text`] / [`FaultSchedule::parse`]),
//!   so campaigns can store the fault scenario next to their results and
//!   the CLI can load one with `--fault-schedule <file>`.
//!
//! # Example
//!
//! ```
//! use pmsb_faults::{FaultSchedule, FaultTarget};
//!
//! let uplink = FaultTarget::SwitchLink { switch: 0, port: 12 };
//! let mut sched = FaultSchedule::new(7);
//! sched.loss(uplink, 0, 0.001); // 0.1% loss from t=0
//! sched.link_flap(uplink, 10_000_000, 20_000_000); // down 10ms..20ms
//! let text = sched.to_text();
//! assert_eq!(FaultSchedule::parse(&text).unwrap(), sched);
//! ```

use pmsb_simcore::rng::SimRng;

mod text;

/// Which link (or switch) a fault applies to.
///
/// Link targets name one *end* of a bidirectional link; the injector
/// applies the fault to both directions (a failed cable fails both ways).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The access link of host `h` (host NIC ↔ its edge switch).
    HostLink(usize),
    /// The link attached to port `port` of switch `switch`.
    SwitchLink {
        /// Switch index.
        switch: usize,
        /// Port index on that switch.
        port: usize,
    },
    /// A whole switch (valid only for [`FaultKind::BufferBytes`]).
    Switch(usize),
}

/// What happens to the target at the event's time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link goes down: both ends stop serializing new packets
    /// (queued packets wait; packets already on the wire still arrive).
    LinkDown,
    /// The link comes back up and resumes draining its queues. ECMP
    /// re-converges: flows hash back onto their original paths.
    LinkUp,
    /// Overrides the link rate in bits/second (`None` restores the
    /// configured rate). Models auto-negotiation drops or brown-outs.
    Rate(Option<u64>),
    /// Independent per-packet loss probability in `[0, 1]` on this link
    /// (`0` disables). Lost packets vanish after serialization.
    Loss(f64),
    /// Independent per-packet corruption probability in `[0, 1]`.
    /// Corrupted packets are delivered but fail the next hop's checksum
    /// and are discarded there (they consume wire bandwidth; lost
    /// packets also do in this store-and-forward model, but the two are
    /// counted separately).
    Corrupt(f64),
    /// Shrinks (or grows) every port buffer of the target switch to
    /// this many bytes. Already-buffered packets are not evicted; the
    /// new cap gates admission only.
    BufferBytes(u64),
}

/// One timed fault: at `at_nanos`, apply `kind` to `target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulation time in nanoseconds.
    pub at_nanos: u64,
    /// The link or switch affected.
    pub target: FaultTarget,
    /// The state change.
    pub kind: FaultKind,
}

/// A declarative, serializable schedule of timed fault events.
///
/// Events may be declared in any order; the injector replays them in
/// time order (stable for ties, i.e. declaration order breaks them).
/// See the [crate docs](self) for the determinism contract and an
/// example, and [`FaultSchedule::parse`] for the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule whose loss/corruption streams derive from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed all fault randomness derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The events in declaration order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events sorted by time (stable: declaration order breaks
    /// ties) — the order the injector replays them in.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at_nanos);
        evs
    }

    /// Number of declared events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are declared.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The independent random stream for `salt` (one per directed link,
    /// by the injector's convention). Streams for different salts are
    /// statistically independent and never touch workload RNG.
    pub fn stream(&self, salt: u64) -> SimRng {
        SimRng::seed_from(self.seed).fork(salt)
    }

    /// Adds a validated event.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]` or not finite, if a
    /// rate override is zero, or if the target/kind combination is
    /// invalid ([`FaultTarget::Switch`] pairs only with
    /// [`FaultKind::BufferBytes`], and vice versa).
    pub fn push(&mut self, event: FaultEvent) {
        if let Err(e) = validate(&event) {
            panic!("invalid fault event: {e}");
        }
        self.events.push(event);
    }

    /// Takes the link down at `at_nanos`.
    pub fn link_down(&mut self, target: FaultTarget, at_nanos: u64) {
        self.push(FaultEvent {
            at_nanos,
            target,
            kind: FaultKind::LinkDown,
        });
    }

    /// Brings the link up at `at_nanos`.
    pub fn link_up(&mut self, target: FaultTarget, at_nanos: u64) {
        self.push(FaultEvent {
            at_nanos,
            target,
            kind: FaultKind::LinkUp,
        });
    }

    /// One down/up cycle: down at `down_nanos`, back up at `up_nanos`.
    ///
    /// # Panics
    ///
    /// Panics unless `down_nanos < up_nanos`.
    pub fn link_flap(&mut self, target: FaultTarget, down_nanos: u64, up_nanos: u64) {
        assert!(
            down_nanos < up_nanos,
            "flap must come back up after it goes down ({down_nanos} >= {up_nanos})"
        );
        self.link_down(target, down_nanos);
        self.link_up(target, up_nanos);
    }

    /// Degrades the link to `rate_bps` at `at_nanos`.
    pub fn rate_limit(&mut self, target: FaultTarget, at_nanos: u64, rate_bps: u64) {
        self.push(FaultEvent {
            at_nanos,
            target,
            kind: FaultKind::Rate(Some(rate_bps)),
        });
    }

    /// Restores the configured link rate at `at_nanos`.
    pub fn restore_rate(&mut self, target: FaultTarget, at_nanos: u64) {
        self.push(FaultEvent {
            at_nanos,
            target,
            kind: FaultKind::Rate(None),
        });
    }

    /// Sets the link's per-packet loss probability from `at_nanos` on.
    pub fn loss(&mut self, target: FaultTarget, at_nanos: u64, probability: f64) {
        self.push(FaultEvent {
            at_nanos,
            target,
            kind: FaultKind::Loss(probability),
        });
    }

    /// Sets the link's per-packet corruption probability from
    /// `at_nanos` on.
    pub fn corrupt(&mut self, target: FaultTarget, at_nanos: u64, probability: f64) {
        self.push(FaultEvent {
            at_nanos,
            target,
            kind: FaultKind::Corrupt(probability),
        });
    }

    /// Caps every port buffer of `switch` at `bytes` from `at_nanos` on.
    pub fn shrink_buffer(&mut self, switch: usize, at_nanos: u64, bytes: u64) {
        self.push(FaultEvent {
            at_nanos,
            target: FaultTarget::Switch(switch),
            kind: FaultKind::BufferBytes(bytes),
        });
    }

    /// Parses the text format produced by [`FaultSchedule::to_text`].
    ///
    /// The format is line-oriented; `#` starts a comment and blank
    /// lines are ignored:
    ///
    /// ```text
    /// seed 7
    /// at 10ms  link-down switch:0:12
    /// at 20ms  link-up   switch:0:12
    /// at 0     loss      switch:0:13 0.001
    /// at 0     corrupt   host:3      0.0001
    /// at 5ms   rate      host:3      1gbps
    /// at 8ms   rate      host:3      restore
    /// at 30ms  buffer    switch:1    150000
    /// ```
    ///
    /// Times accept `ns` (default), `us`, `ms`, `s` suffixes; rates
    /// accept plain bits/second or `kbps`/`mbps`/`gbps`. Targets are
    /// `host:<h>`, `switch:<s>:<p>` (a link), or `switch:<s>` (buffer
    /// events only).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any syntax or
    /// validation error.
    pub fn parse(input: &str) -> Result<FaultSchedule, String> {
        text::parse(input)
    }

    /// Serializes to the canonical text form (`parse(to_text(s)) == s`).
    pub fn to_text(&self) -> String {
        text::to_text(self)
    }

    pub(crate) fn from_parts(seed: u64, events: Vec<FaultEvent>) -> Result<Self, String> {
        for (i, e) in events.iter().enumerate() {
            validate(e).map_err(|msg| format!("event {i}: {msg}"))?;
        }
        Ok(FaultSchedule { seed, events })
    }
}

fn validate(event: &FaultEvent) -> Result<(), String> {
    let switch_wide = matches!(event.target, FaultTarget::Switch(_));
    let buffer_kind = matches!(event.kind, FaultKind::BufferBytes(_));
    if switch_wide != buffer_kind {
        return Err(format!(
            "target {:?} cannot carry {:?}: whole-switch targets pair only \
             with buffer events",
            event.target, event.kind
        ));
    }
    match event.kind {
        FaultKind::Loss(p) | FaultKind::Corrupt(p)
            if !p.is_finite() || !(0.0..=1.0).contains(&p) =>
        {
            return Err(format!("probability {p} outside [0, 1]"));
        }
        FaultKind::Rate(Some(0)) => {
            return Err("rate override must be positive (use link-down for a dead link)".into());
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uplink() -> FaultTarget {
        FaultTarget::SwitchLink { switch: 0, port: 4 }
    }

    #[test]
    fn builders_accumulate_events_in_declaration_order() {
        let mut s = FaultSchedule::new(1);
        s.link_flap(uplink(), 10, 20);
        s.loss(FaultTarget::HostLink(3), 0, 0.5);
        s.shrink_buffer(1, 30, 4096);
        assert_eq!(s.len(), 4);
        assert_eq!(s.events()[0].kind, FaultKind::LinkDown);
        assert_eq!(s.events()[1].kind, FaultKind::LinkUp);
        assert_eq!(s.events()[2].kind, FaultKind::Loss(0.5));
        assert_eq!(s.events()[3].kind, FaultKind::BufferBytes(4096));
    }

    #[test]
    fn sorted_events_is_stable_on_ties() {
        let mut s = FaultSchedule::new(1);
        s.loss(uplink(), 5, 0.1);
        s.corrupt(uplink(), 5, 0.2);
        s.link_down(uplink(), 2);
        let sorted = s.sorted_events();
        assert_eq!(sorted[0].kind, FaultKind::LinkDown);
        assert_eq!(sorted[1].kind, FaultKind::Loss(0.1));
        assert_eq!(sorted[2].kind, FaultKind::Corrupt(0.2));
    }

    #[test]
    fn streams_are_deterministic_and_independent_per_salt() {
        let s = FaultSchedule::new(42);
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = s.stream(1);
                move |_| r.next_u64()
            })
            .collect();
        let a2: Vec<u64> = (0..8)
            .map({
                let mut r = s.stream(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = s.stream(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, a2, "same salt replays the same stream");
        assert_ne!(a, b, "different salts are independent");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_out_of_range_probability() {
        FaultSchedule::new(0).loss(uplink(), 0, 1.5);
    }

    #[test]
    #[should_panic(expected = "whole-switch")]
    fn rejects_link_kind_on_switch_target() {
        FaultSchedule::new(0).link_down(FaultTarget::Switch(0), 0);
    }

    #[test]
    #[should_panic(expected = "rate override must be positive")]
    fn rejects_zero_rate() {
        FaultSchedule::new(0).rate_limit(uplink(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "flap must come back up")]
    fn rejects_inverted_flap() {
        FaultSchedule::new(0).link_flap(uplink(), 20, 10);
    }
}
