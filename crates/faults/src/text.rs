//! The line-oriented schedule text format (see
//! [`FaultSchedule::parse`] for the grammar).

use crate::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};

pub(crate) fn parse(input: &str) -> Result<FaultSchedule, String> {
    let mut seed = 0u64;
    let mut events = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("seed") => {
                let v = words
                    .next()
                    .ok_or_else(|| format!("line {lineno}: seed needs a value"))?;
                seed = v
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad seed {v:?}"))?;
            }
            Some("at") => {
                events.push(parse_event(lineno, &mut words)?);
            }
            Some(other) => {
                return Err(format!(
                    "line {lineno}: expected `seed` or `at`, got {other:?}"
                ));
            }
            None => unreachable!("non-empty line has a first word"),
        }
        if let Some(extra) = words.next() {
            return Err(format!("line {lineno}: trailing {extra:?}"));
        }
    }
    FaultSchedule::from_parts(seed, events)
}

fn parse_event<'a>(
    lineno: usize,
    words: &mut impl Iterator<Item = &'a str>,
) -> Result<FaultEvent, String> {
    let time = words
        .next()
        .ok_or_else(|| format!("line {lineno}: `at` needs a time"))?;
    let at_nanos = parse_time_nanos(time).map_err(|e| format!("line {lineno}: {e}"))?;
    let verb = words
        .next()
        .ok_or_else(|| format!("line {lineno}: missing event kind"))?;
    let target_word = words
        .next()
        .ok_or_else(|| format!("line {lineno}: missing target"))?;
    let target = parse_target(target_word).map_err(|e| format!("line {lineno}: {e}"))?;
    let mut arg = || {
        words
            .next()
            .ok_or_else(|| format!("line {lineno}: {verb} needs an argument"))
    };
    let kind = match verb {
        "link-down" => FaultKind::LinkDown,
        "link-up" => FaultKind::LinkUp,
        "rate" => {
            let a = arg()?;
            if a == "restore" {
                FaultKind::Rate(None)
            } else {
                FaultKind::Rate(Some(
                    parse_rate_bps(a).map_err(|e| format!("line {lineno}: {e}"))?,
                ))
            }
        }
        "loss" => FaultKind::Loss(parse_probability(lineno, arg()?)?),
        "corrupt" => FaultKind::Corrupt(parse_probability(lineno, arg()?)?),
        "buffer" => {
            let a = arg()?;
            FaultKind::BufferBytes(
                a.parse()
                    .map_err(|_| format!("line {lineno}: bad byte count {a:?}"))?,
            )
        }
        other => {
            return Err(format!(
                "line {lineno}: unknown event {other:?} (expected link-down, \
                 link-up, rate, loss, corrupt, or buffer)"
            ));
        }
    };
    Ok(FaultEvent {
        at_nanos,
        target,
        kind,
    })
}

fn parse_probability(lineno: usize, word: &str) -> Result<f64, String> {
    word.parse::<f64>()
        .map_err(|_| format!("line {lineno}: bad probability {word:?}"))
}

fn parse_target(word: &str) -> Result<FaultTarget, String> {
    let mut parts = word.split(':');
    let kind = parts.next().unwrap_or("");
    let index = |p: Option<&str>| -> Result<usize, String> {
        let p = p.ok_or_else(|| format!("target {word:?} is missing an index"))?;
        p.parse()
            .map_err(|_| format!("bad index {p:?} in target {word:?}"))
    };
    let target = match kind {
        "host" => FaultTarget::HostLink(index(parts.next())?),
        "switch" => {
            let switch = index(parts.next())?;
            match parts.next() {
                Some(p) => FaultTarget::SwitchLink {
                    switch,
                    port: p
                        .parse()
                        .map_err(|_| format!("bad port {p:?} in target {word:?}"))?,
                },
                None => FaultTarget::Switch(switch),
            }
        }
        _ => {
            return Err(format!(
                "target {word:?} must start with `host:` or `switch:`"
            ));
        }
    };
    if parts.next().is_some() {
        return Err(format!("target {word:?} has too many components"));
    }
    Ok(target)
}

/// `123`, `123ns`, `5us`, `10ms`, `2s` → nanoseconds.
fn parse_time_nanos(word: &str) -> Result<u64, String> {
    let (digits, mult) = match word {
        w if w.ends_with("ns") => (&w[..w.len() - 2], 1u64),
        w if w.ends_with("us") => (&w[..w.len() - 2], 1_000),
        w if w.ends_with("ms") => (&w[..w.len() - 2], 1_000_000),
        w if w.ends_with('s') => (&w[..w.len() - 1], 1_000_000_000),
        w => (w, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad time {word:?} (use e.g. 1500, 5us, 10ms)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("time {word:?} overflows nanoseconds"))
}

/// `1000000000`, `10kbps`, `100mbps`, `1gbps` → bits/second.
fn parse_rate_bps(word: &str) -> Result<u64, String> {
    let lower = word.to_ascii_lowercase();
    let (digits, mult) = match lower.as_str() {
        w if w.ends_with("gbps") => (&w[..w.len() - 4], 1_000_000_000u64),
        w if w.ends_with("mbps") => (&w[..w.len() - 4], 1_000_000),
        w if w.ends_with("kbps") => (&w[..w.len() - 4], 1_000),
        w if w.ends_with("bps") => (&w[..w.len() - 3], 1),
        w => (w, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad rate {word:?} (use e.g. 1gbps, 100mbps, 1000000)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("rate {word:?} overflows"))
}

pub(crate) fn to_text(sched: &FaultSchedule) -> String {
    let mut out = String::from("# pmsb-faults schedule\n");
    out.push_str(&format!("seed {}\n", sched.seed()));
    for e in sched.events() {
        let target = match e.target {
            FaultTarget::HostLink(h) => format!("host:{h}"),
            FaultTarget::SwitchLink { switch, port } => format!("switch:{switch}:{port}"),
            FaultTarget::Switch(s) => format!("switch:{s}"),
        };
        let line = match e.kind {
            FaultKind::LinkDown => format!("at {} link-down {target}", e.at_nanos),
            FaultKind::LinkUp => format!("at {} link-up {target}", e.at_nanos),
            FaultKind::Rate(Some(bps)) => format!("at {} rate {target} {bps}", e.at_nanos),
            FaultKind::Rate(None) => format!("at {} rate {target} restore", e.at_nanos),
            FaultKind::Loss(p) => format!("at {} loss {target} {p:?}", e.at_nanos),
            FaultKind::Corrupt(p) => format!("at {} corrupt {target} {p:?}", e.at_nanos),
            FaultKind::BufferBytes(b) => format!("at {} buffer {target} {b}", e.at_nanos),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_schedule() -> FaultSchedule {
        let up = FaultTarget::SwitchLink {
            switch: 0,
            port: 12,
        };
        let mut s = FaultSchedule::new(99);
        s.loss(up, 0, 0.001);
        s.corrupt(FaultTarget::HostLink(3), 1_000, 0.0001);
        s.link_flap(up, 10_000_000, 20_000_000);
        s.rate_limit(FaultTarget::HostLink(2), 5_000, 1_000_000_000);
        s.restore_rate(FaultTarget::HostLink(2), 9_000);
        s.shrink_buffer(1, 30_000_000, 150_000);
        s
    }

    #[test]
    fn round_trips_through_text() {
        let s = full_schedule();
        let text = s.to_text();
        let back = FaultSchedule::parse(&text).expect("canonical text parses");
        assert_eq!(back, s);
        // And the canonical form is a fixed point.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parses_suffixes_comments_and_whitespace() {
        let text = "
            # a fault scenario
            seed 7
            at 10ms   link-down switch:0:12   # uplink dies
            at 20ms   link-up   switch:0:12
            at 0      loss      switch:0:13 0.001
            at 5us    rate      host:3      1gbps
            at 8000ns rate      host:3      restore
            at 1s     buffer    switch:1    4096
        ";
        let s = FaultSchedule::parse(text).unwrap();
        assert_eq!(s.seed(), 7);
        assert_eq!(s.len(), 6);
        assert_eq!(s.events()[0].at_nanos, 10_000_000);
        assert_eq!(s.events()[3].at_nanos, 5_000);
        assert_eq!(s.events()[3].kind, FaultKind::Rate(Some(1_000_000_000)));
        assert_eq!(s.events()[4].at_nanos, 8_000);
        assert_eq!(s.events()[5].at_nanos, 1_000_000_000);
        assert_eq!(
            s.events()[5].target,
            FaultTarget::Switch(1),
            "two-part switch target is switch-wide"
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, needle) in [
            ("at", "needs a time"),
            ("at 5xs link-down host:0", "bad time"),
            ("at 5 explode host:0", "unknown event"),
            ("at 5 link-down rack:0", "must start with"),
            ("at 5 link-down host:0 extra", "trailing"),
            ("at 5 loss host:0 nan0", "bad probability"),
            ("at 5 loss host:0 2.0", "outside [0, 1]"),
            ("at 5 loss switch:1 0.1", "whole-switch"),
            ("at 5 buffer switch:1:2 99", "whole-switch"),
            ("at 5 rate host:0 0", "must be positive"),
            ("at 5 rate host:0", "needs an argument"),
            ("seed", "needs a value"),
            ("frob 1", "expected `seed` or `at`"),
            ("at 5 link-down switch:1:2:3", "too many components"),
        ] {
            let err = FaultSchedule::parse(bad).unwrap_err();
            assert!(
                err.contains(needle),
                "{bad:?} should fail with {needle:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn probability_text_preserves_shortest_round_trip() {
        let mut s = FaultSchedule::new(0);
        s.loss(FaultTarget::HostLink(0), 0, 0.1 + 0.2); // 0.30000000000000004
        let back = FaultSchedule::parse(&s.to_text()).unwrap();
        assert_eq!(back, s, "f64 probabilities survive exactly");
    }
}
