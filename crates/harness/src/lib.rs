//! # pmsb-harness
//!
//! Deterministic parallel experiment campaigns with a resumable result
//! store. This crate is std-only; it orchestrates, it does not
//! simulate.
//!
//! A **campaign** is a named list of **jobs**. Each job is a scenario
//! name, a parameter point, a seed, and a deterministic closure that
//! returns a [`Record`] of scalar results. Running a campaign:
//!
//! 1. opens `results/<campaign>/` and loads any existing
//!    `records.jsonl` — jobs whose key already has a record are
//!    **reused**, not re-executed (resume semantics);
//! 2. fans the remaining jobs across a fixed-size worker pool
//!    (`--jobs`, default [`std::thread::available_parallelism`]), each
//!    under `catch_unwind` so one diverging run reports a failure
//!    instead of killing the suite;
//! 3. appends each finished record to `records.jsonl` as it completes
//!    (crash-safe), then rewrites the file in job-index order and
//!    emits `aggregate.csv` with cross-seed mean/stddev per metric;
//! 4. prints progress and per-job wall time on **stderr** only —
//!    records never contain timing, so the same job yields the same
//!    bytes whether run by 1 worker or 16.
//!
//! ```
//! use pmsb_harness::{Campaign, Job, Record, RunOptions};
//!
//! let mut campaign = Campaign::new("doc-demo");
//! for seed in [1u64, 2] {
//!     campaign.push(
//!         Job::new("square", seed, move || {
//!             Record::new().field("value", (seed * seed) as i64)
//!         })
//!         .param("exponent", 2),
//!     );
//! }
//! let dir = std::env::temp_dir().join("pmsb-harness-doc");
//! let opts = RunOptions { results_root: dir.clone(), quiet: true, ..RunOptions::default() };
//! let out = campaign.run(&opts).unwrap();
//! assert_eq!(out.records.len(), 2);
//! assert_eq!(out.records[0].get_f64("value"), Some(1.0));
//! std::fs::remove_dir_all(dir).ok();
//! ```

pub mod pool;
pub mod record;
pub mod store;

use std::io;
use std::path::PathBuf;
use std::time::Instant;

pub use record::{Record, Value};
pub use store::{aggregate_csv, ResultStore, AGGREGATE_FILE, JOB_KEY_FIELD, RECORDS_FILE};

/// One experiment run: identity (scenario, parameter point, seed) plus
/// the deterministic closure that computes its record.
pub struct Job {
    scenario: String,
    params: Vec<(String, String)>,
    seed: u64,
    run: Box<dyn FnOnce() -> Record + Send + 'static>,
}

impl Job {
    /// A job for `scenario` with the given seed. The closure must be
    /// deterministic: records are cached by key and reused on resume,
    /// so a rerun must have nothing new to say.
    pub fn new(
        scenario: impl Into<String>,
        seed: u64,
        run: impl FnOnce() -> Record + Send + 'static,
    ) -> Job {
        Job {
            scenario: scenario.into(),
            params: Vec::new(),
            seed,
            run: Box::new(run),
        }
    }

    /// Adds one grid-parameter coordinate, builder style. Parameter
    /// order is part of the job key, so keep it consistent across runs.
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Job {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// The scenario name this job belongs to.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// The job's identity within its campaign: scenario, parameters,
    /// and seed. This keys the result store.
    pub fn key(&self) -> String {
        let mut k = self.group();
        k.push_str(&format!(" seed={}", self.seed));
        k
    }

    /// The key minus the seed — the aggregation group, so the same
    /// parameter point with different seeds lands in one CSV row.
    pub fn group(&self) -> String {
        let mut g = self.scenario.clone();
        for (k, v) in &self.params {
            g.push_str(&format!(" {k}={v}"));
        }
        g
    }

    /// Wraps identity fields and the payload into the persisted record.
    fn full_record(
        key: &str,
        scenario: &str,
        params: &[(String, String)],
        seed: u64,
        payload: Record,
    ) -> Record {
        let mut rec = Record::new()
            .field(JOB_KEY_FIELD, key)
            .field("scenario", scenario)
            .field("seed", seed);
        for (k, v) in params {
            rec.push(k, v.as_str());
        }
        for (k, v) in payload.iter() {
            rec.push(k, v.clone());
        }
        rec
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("key", &self.key())
            .finish_non_exhaustive()
    }
}

/// How to run a campaign.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker count; `None` uses available parallelism.
    pub jobs: Option<usize>,
    /// Directory under which `results/<campaign>/` lives.
    pub results_root: PathBuf,
    /// Suppress stderr progress output (tests).
    pub quiet: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: None,
            results_root: PathBuf::from("results"),
            quiet: false,
        }
    }
}

impl RunOptions {
    /// Consumes the harness flags (`--jobs N`, `--results DIR`,
    /// `--quiet`) from a raw argument list and returns the options
    /// plus the arguments it did not recognize, for the caller to
    /// parse. Flag values must not start with `--`.
    pub fn take_flags(args: Vec<String>) -> Result<(RunOptions, Vec<String>), String> {
        let mut opts = RunOptions::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--jobs" => {
                    let v = flag_value(&arg, it.next())?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--jobs expects a number, got {v:?}"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                    opts.jobs = Some(n);
                }
                "--results" => {
                    opts.results_root = PathBuf::from(flag_value(&arg, it.next())?);
                }
                "--quiet" => opts.quiet = true,
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }
}

fn flag_value(flag: &str, next: Option<String>) -> Result<String, String> {
    match next {
        Some(v) if !v.starts_with("--") => Ok(v),
        Some(v) => Err(format!(
            "option {flag} expects a value, got flag-like {v:?}"
        )),
        None => Err(format!("option {flag} expects a value")),
    }
}

/// A job that could not produce a record.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The job's key.
    pub key: String,
    /// The rendered panic payload.
    pub error: String,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// Full records (identity fields + payload) in job-index order.
    /// Failed jobs are absent here and present in `failures`.
    pub records: Vec<Record>,
    /// Jobs that panicked this run.
    pub failures: Vec<JobFailure>,
    /// Jobs freshly executed this run.
    pub executed: usize,
    /// Jobs satisfied from the store without running.
    pub reused: usize,
    /// The campaign directory (`results/<name>/`).
    pub dir: PathBuf,
}

impl CampaignResult {
    /// True when every job has a record.
    pub fn is_success(&self) -> bool {
        self.failures.is_empty()
    }

    /// The human-readable reports (records' `report` field) in
    /// job-index order, for printing to stdout.
    pub fn reports(&self) -> impl Iterator<Item = &str> {
        self.records.iter().filter_map(|r| r.get_str("report"))
    }
}

/// A named batch of jobs sharing one result directory.
pub struct Campaign {
    name: String,
    jobs: Vec<Job>,
}

impl Campaign {
    /// An empty campaign. The name becomes the results subdirectory.
    pub fn new(name: impl Into<String>) -> Campaign {
        Campaign {
            name: name.into(),
            jobs: Vec::new(),
        }
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a job. Submission order defines job-index order in the
    /// final record file.
    pub fn push(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// Number of jobs submitted.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs were submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the campaign to completion: resume, fan out, persist,
    /// aggregate. See the crate docs for the full contract.
    ///
    /// # Panics
    ///
    /// Panics if two jobs share a key — resume semantics would be
    /// ambiguous.
    pub fn run(self, opts: &RunOptions) -> io::Result<CampaignResult> {
        let started = Instant::now();
        let mut store = ResultStore::open(&opts.results_root, &self.name)?;

        struct Slot {
            key: String,
            group: String,
            /// Final serialized line (filled from cache or fresh run).
            line: Option<String>,
        }

        let mut slots: Vec<Slot> = Vec::with_capacity(self.jobs.len());
        // (job index, closure producing the full serialized record)
        let mut pending: Vec<(usize, pool::BoxedJob<Record>)> = Vec::new();
        for (index, job) in self.jobs.into_iter().enumerate() {
            let key = job.key();
            assert!(
                !slots.iter().any(|s| s.key == key),
                "duplicate job key {key:?} in campaign"
            );
            let cached = store.cached_line(&key).map(str::to_string);
            let reused = cached.is_some();
            slots.push(Slot {
                key: key.clone(),
                group: job.group(),
                line: cached,
            });
            if !reused {
                let Job {
                    scenario,
                    params,
                    seed,
                    run,
                } = job;
                pending.push((
                    index,
                    Box::new(move || Job::full_record(&key, &scenario, &params, seed, run())),
                ));
            }
        }

        let reused = slots.len() - pending.len();
        let total_fresh = pending.len();
        let workers = pool::resolve_workers(opts.jobs);
        if !opts.quiet {
            eprintln!(
                "harness: campaign {:?} — {} jobs ({} cached), {} workers",
                self.name,
                slots.len(),
                reused,
                workers
            );
        }

        // The pool indexes jobs by position in the submitted list; map
        // back to campaign job indices.
        let index_map: Vec<usize> = pending.iter().map(|(i, _)| *i).collect();
        let boxed: Vec<pool::BoxedJob<Record>> = pending.into_iter().map(|(_, j)| j).collect();

        let mut failures = Vec::new();
        let mut done = 0usize;
        let results = pool::run_all(boxed, workers, |res| {
            done += 1;
            let job_index = index_map[res.index];
            let key = &slots[job_index].key;
            match &res.result {
                Ok(record) => {
                    // Persist immediately so an interrupted campaign
                    // resumes past this job.
                    let line = record.to_json_line();
                    if let Err(e) = store.append(key, &line) {
                        eprintln!("harness: failed to persist {key:?}: {e}");
                    }
                    if !opts.quiet {
                        eprintln!(
                            "harness: [{done}/{total_fresh}] {key} — ok ({:.2?})",
                            res.elapsed
                        );
                    }
                }
                Err(err) => {
                    if !opts.quiet {
                        eprintln!(
                            "harness: [{done}/{total_fresh}] {key} — FAILED ({:.2?}): {err}",
                            res.elapsed
                        );
                    }
                }
            }
        });

        for res in results {
            let job_index = index_map[res.index];
            match res.result {
                Ok(record) => slots[job_index].line = Some(record.to_json_line()),
                Err(error) => failures.push(JobFailure {
                    key: slots[job_index].key.clone(),
                    error,
                }),
            }
        }

        // Rewrite the record file in job-index order and aggregate.
        let ordered_keys: Vec<String> = slots
            .iter()
            .filter(|s| s.line.is_some())
            .map(|s| s.key.clone())
            .collect();
        store.finalize(&ordered_keys)?;

        let mut records = Vec::new();
        let mut entries = Vec::new();
        for slot in &slots {
            let Some(line) = &slot.line else { continue };
            let record = Record::parse(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("stored record for {:?} is invalid: {e}", slot.key),
                )
            })?;
            entries.push((slot.group.clone(), record.clone()));
            records.push(record);
        }
        store.write_aggregates(&entries)?;

        if !opts.quiet {
            eprintln!(
                "harness: campaign {:?} done in {:.2?} — {} run, {} reused, {} failed",
                self.name,
                started.elapsed(),
                total_fresh - failures.len(),
                reused,
                failures.len()
            );
        }

        Ok(CampaignResult {
            records,
            failures,
            executed: total_fresh,
            reused,
            dir: store.dir().to_path_buf(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pmsb-harness-lib-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quiet(root: &std::path::Path, workers: usize) -> RunOptions {
        RunOptions {
            jobs: Some(workers),
            results_root: root.to_path_buf(),
            quiet: true,
        }
    }

    fn grid_campaign(name: &str) -> Campaign {
        let mut c = Campaign::new(name);
        for load in [3u64, 7] {
            for seed in [1u64, 2, 3] {
                c.push(
                    Job::new("toy", seed, move || {
                        Record::new().field("score", (load * 100 + seed) as i64)
                    })
                    .param("load", load),
                );
            }
        }
        c
    }

    #[test]
    fn job_key_includes_scenario_params_and_seed() {
        let j = Job::new("fig16", 42, Record::new)
            .param("scheduler", "dwrr")
            .param("load", 0.5);
        assert_eq!(j.group(), "fig16 scheduler=dwrr load=0.5");
        assert_eq!(j.key(), "fig16 scheduler=dwrr load=0.5 seed=42");
    }

    #[test]
    fn records_carry_identity_then_payload() {
        let root = temp_root("identity");
        let out = grid_campaign("c").run(&quiet(&root, 2)).unwrap();
        assert_eq!(out.records.len(), 6);
        let first = &out.records[0];
        assert_eq!(first.get_str("scenario"), Some("toy"));
        assert_eq!(first.get_str("load"), Some("3"));
        assert_eq!(first.get_f64("seed"), Some(1.0));
        assert_eq!(first.get_f64("score"), Some(301.0));
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn aggregate_csv_written_per_group() {
        let root = temp_root("agg");
        let out = grid_campaign("c").run(&quiet(&root, 4)).unwrap();
        let csv = fs::read_to_string(out.dir.join(AGGREGATE_FILE)).unwrap();
        // Mean over seeds 1..3 of load*100+seed = load*100 + 2.
        assert!(csv.contains("toy load=3,score,3,302.0"), "csv: {csv}");
        assert!(csv.contains("toy load=7,score,3,702.0"), "csv: {csv}");
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn rerun_reuses_everything() {
        let root = temp_root("rerun");
        let first = grid_campaign("c").run(&quiet(&root, 4)).unwrap();
        assert_eq!(first.executed, 6);
        assert_eq!(first.reused, 0);
        let second = grid_campaign("c").run(&quiet(&root, 4)).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.reused, 6);
        assert_eq!(
            first
                .records
                .iter()
                .map(Record::to_json_line)
                .collect::<Vec<_>>(),
            second
                .records
                .iter()
                .map(Record::to_json_line)
                .collect::<Vec<_>>(),
        );
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn failed_job_reports_and_spares_the_rest() {
        let root = temp_root("fail");
        let mut c = Campaign::new("c");
        c.push(Job::new("ok", 1, || Record::new().field("x", 1i64)));
        c.push(Job::new("bad", 1, || panic!("diverged")));
        c.push(Job::new("ok", 2, || Record::new().field("x", 2i64)));
        let out = c.run(&quiet(&root, 2)).unwrap();
        assert!(!out.is_success());
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].key, "bad seed=1");
        assert!(out.failures[0].error.contains("diverged"));
        // The failed job left no record, so a rerun retries exactly it.
        let mut c2 = Campaign::new("c");
        c2.push(Job::new("ok", 1, || Record::new().field("x", 1i64)));
        c2.push(Job::new("bad", 1, || Record::new().field("x", 9i64)));
        c2.push(Job::new("ok", 2, || Record::new().field("x", 2i64)));
        let out2 = c2.run(&quiet(&root, 2)).unwrap();
        assert!(out2.is_success());
        assert_eq!(out2.executed, 1);
        assert_eq!(out2.reused, 2);
        fs::remove_dir_all(root).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate job key")]
    fn duplicate_keys_rejected() {
        let root = temp_root("dup");
        let mut c = Campaign::new("c");
        c.push(Job::new("a", 1, Record::new));
        c.push(Job::new("a", 1, Record::new));
        let _ = c.run(&quiet(&root, 1));
    }

    #[test]
    fn take_flags_parses_and_passes_through() {
        let (opts, rest) = RunOptions::take_flags(
            [
                "--quick",
                "--jobs",
                "4",
                "--results",
                "/tmp/r",
                "--quiet",
                "extra",
            ]
            .map(String::from)
            .to_vec(),
        )
        .unwrap();
        assert_eq!(opts.jobs, Some(4));
        assert_eq!(opts.results_root, PathBuf::from("/tmp/r"));
        assert!(opts.quiet);
        assert_eq!(rest, vec!["--quick".to_string(), "extra".to_string()]);
    }

    #[test]
    fn take_flags_rejects_flag_like_values_and_zero() {
        for bad in [
            vec!["--jobs", "--quick"],
            vec!["--jobs"],
            vec!["--jobs", "zero"],
            vec!["--jobs", "0"],
            vec!["--results", "--jobs"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(RunOptions::take_flags(args).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reports_surface_in_job_order() {
        let root = temp_root("reports");
        let mut c = Campaign::new("c");
        c.push(Job::new("a", 1, || Record::new().field("report", "first")));
        c.push(Job::new("b", 1, || Record::new().field("report", "second")));
        let out = c.run(&quiet(&root, 2)).unwrap();
        assert_eq!(out.reports().collect::<Vec<_>>(), vec!["first", "second"]);
        fs::remove_dir_all(root).ok();
    }
}
