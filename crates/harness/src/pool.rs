//! A fixed-size worker pool for experiment jobs.
//!
//! Workers are plain `std::thread`s pulling boxed closures off a shared
//! queue; each job runs under `catch_unwind` so a diverging experiment
//! reports a failure instead of killing the whole campaign. Results
//! come back tagged with the job's submission index, and [`run_all`]
//! returns them sorted by that index — output order is deterministic no
//! matter how many workers raced or which finished first.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A unit of work: produces a `T` or panics.
pub type BoxedJob<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// What happened to one job.
#[derive(Debug)]
pub struct JobResult<T> {
    /// Index of the job in the submission order.
    pub index: usize,
    /// The job's output, or the panic payload rendered as text.
    pub result: Result<T, String>,
    /// Wall-clock time the job ran for. Reporting only — never part of
    /// any persisted record.
    pub elapsed: Duration,
}

/// Resolves a worker count: explicit request, else available
/// parallelism, else 1.
pub fn resolve_workers(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs every job on a pool of `workers` threads and returns the
/// results sorted by submission index.
///
/// `on_done` fires once per completed job, in completion order (not
/// index order), from the submitting thread — use it for progress
/// output.
pub fn run_all<T: Send + 'static>(
    jobs: Vec<BoxedJob<T>>,
    workers: usize,
    mut on_done: impl FnMut(&JobResult<T>),
) -> Vec<JobResult<T>> {
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(total);

    let (job_tx, job_rx) = mpsc::channel::<(usize, BoxedJob<T>)>();
    let (res_tx, res_rx) = mpsc::channel::<JobResult<T>>();
    for (index, job) in jobs.into_iter().enumerate() {
        job_tx.send((index, job)).expect("queue send");
    }
    drop(job_tx); // workers drain until the queue closes
    let job_rx = Arc::new(Mutex::new(job_rx));

    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            std::thread::spawn(move || loop {
                // Holding the lock only for the recv keeps pulls serialized
                // while jobs themselves run in parallel.
                let next = job_rx.lock().expect("queue lock").recv();
                let Ok((index, job)) = next else { break };
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("panic with non-string payload")
                        .to_string()
                });
                let sent = res_tx.send(JobResult {
                    index,
                    result,
                    elapsed: start.elapsed(),
                });
                if sent.is_err() {
                    break; // collector is gone; nothing left to report to
                }
            })
        })
        .collect();
    drop(res_tx);

    let mut results: Vec<JobResult<T>> = Vec::with_capacity(total);
    for res in res_rx {
        on_done(&res);
        results.push(res);
    }
    for h in handles {
        let _ = h.join();
    }
    results.sort_by_key(|r| r.index);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn squares(n: usize) -> Vec<BoxedJob<usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as BoxedJob<usize>)
            .collect()
    }

    #[test]
    fn results_sorted_by_index_regardless_of_workers() {
        for workers in [1, 2, 4, 16] {
            let out = run_all(squares(33), workers, |_| {});
            assert_eq!(out.len(), 33);
            for (i, r) in out.iter().enumerate() {
                assert_eq!(r.index, i);
                assert_eq!(*r.result.as_ref().unwrap(), i * i);
            }
        }
    }

    #[test]
    fn panic_is_isolated_to_its_job() {
        let jobs: Vec<BoxedJob<usize>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job two diverged")),
            Box::new(|| 3),
        ];
        let out = run_all(jobs, 2, |_| {});
        assert_eq!(*out[0].result.as_ref().unwrap(), 1);
        assert_eq!(*out[2].result.as_ref().unwrap(), 3);
        let err = out[1].result.as_ref().unwrap_err();
        assert!(err.contains("job two diverged"), "got {err:?}");
    }

    #[test]
    fn on_done_fires_once_per_job() {
        let count = AtomicUsize::new(0);
        let out = run_all(squares(20), 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 20);
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<JobResult<u8>> = run_all(Vec::new(), 4, |_| {});
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_workers_prefers_explicit() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(0)), 1);
        assert!(resolve_workers(None) >= 1);
    }
}
