//! Hand-serialized flat result records.
//!
//! A [`Record`] is an ordered list of `(key, value)` pairs that
//! round-trips through a single JSON object line. The serializer and
//! parser live here, in ~150 lines, so the harness needs no external
//! serialization crate and the byte layout of a record is fully under
//! our control — a prerequisite for the determinism guarantee that the
//! same job produces the same bytes regardless of worker count.
//!
//! Only flat objects are supported (no nesting, no arrays): every
//! experiment result in this workspace is a bag of scalars.

use std::fmt::Write as _;

/// A single scalar field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// UTF-8 text, JSON-escaped on output.
    Str(String),
    /// Signed integer (covers seeds, counts, byte totals in practice).
    Int(i64),
    /// IEEE double, printed with the shortest round-trip form.
    /// Non-finite values serialize as `null`.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Explicit null (also what non-finite floats parse back as).
    Null,
}

impl Value {
    /// Numeric view of the value, if it has one. Used by aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// An ordered set of named scalar fields; one experiment result.
///
/// Field order is preserved and significant: serialization emits fields
/// in insertion order, so identical insert sequences give identical
/// bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Appends a field, builder style.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate key: silently shadowing a field would make
    /// two jobs' records aggregate inconsistently.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.push(key, value);
        self
    }

    /// Appends a field in place.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate key.
    pub fn push(&mut self, key: &str, value: impl Into<Value>) {
        assert!(self.get(key).is_none(), "duplicate record field {key:?}");
        self.fields.push((key.to_string(), value.into()));
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String view of a field, if it is a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Numeric view of a field, if it has one.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes to one JSON object on a single line (no trailing
    /// newline). The output is a pure function of the field sequence.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, k);
            out.push(':');
            match v {
                Value::Str(s) => write_json_str(&mut out, s),
                Value::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Float(f) if f.is_finite() => {
                    // {:?} prints the shortest string that parses back
                    // to the same f64, so round-trips are exact.
                    let _ = write!(out, "{f:?}");
                }
                Value::Float(_) | Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses a line produced by [`Record::to_json_line`].
    ///
    /// Accepts exactly the flat-object subset this module emits; a
    /// nested object or array is an error, as is trailing garbage.
    pub fn parse(line: &str) -> Result<Record, String> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut rec = Record::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                let key = p.parse_string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let value = p.parse_value()?;
                if rec.get(&key).is_some() {
                    return Err(format!("duplicate key {key:?}"));
                }
                rec.fields.push((key, value));
                p.skip_ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(rec)
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume one UTF-8 scalar; the input is a &str so the
            // byte stream is valid UTF-8 by construction.
            let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
            let c = rest.chars().next().ok_or("unterminated string")?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.next().ok_or("unterminated escape")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Records only escape control characters, which
                            // are never surrogates, so no pair handling.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(format!("unexpected value start {:?}", other as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected literal {word:?}"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record::new()
            .field("scenario", "fig16")
            .field("seed", 42u64)
            .field("load", 0.7)
            .field("flows", 4096usize)
            .field("ok", true)
            .field("note", "a \"quoted\"\nline\twith\\slashes")
            .field("missing", Value::Null)
    }

    #[test]
    fn round_trips_exactly() {
        let rec = sample();
        let line = rec.to_json_line();
        let back = Record::parse(&line).unwrap();
        assert_eq!(back.to_json_line(), line);
        assert_eq!(back.get_str("scenario"), Some("fig16"));
        assert_eq!(back.get_f64("seed"), Some(42.0));
        assert_eq!(back.get_f64("load"), Some(0.7));
        assert_eq!(back.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            back.get_str("note"),
            Some("a \"quoted\"\nline\twith\\slashes")
        );
        assert_eq!(back.get("missing"), Some(&Value::Null));
    }

    #[test]
    fn floats_use_shortest_round_trip_form() {
        let line = Record::new().field("x", 0.1).to_json_line();
        assert_eq!(line, "{\"x\":0.1}");
        let back = Record::parse(&line).unwrap();
        assert_eq!(back.get_f64("x"), Some(0.1));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = Record::new()
            .field("a", f64::NAN)
            .field("b", f64::INFINITY)
            .to_json_line();
        assert_eq!(line, "{\"a\":null,\"b\":null}");
        let back = Record::parse(&line).unwrap();
        assert_eq!(back.get("a"), Some(&Value::Null));
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        let line = Record::new().field("c", "\u{1}").to_json_line();
        assert_eq!(line, "{\"c\":\"\\u0001\"}");
        assert_eq!(Record::parse(&line).unwrap().get_str("c"), Some("\u{1}"));
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(Record::parse("{}").unwrap(), Record::new());
        assert_eq!(Record::new().to_json_line(), "{}");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} extra",
            "{\"a\":[1]}",
            "{\"a\":{}}",
            "{\"a\":1,\"a\":2}",
            "{\"a\":tru}",
        ] {
            assert!(Record::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate record field")]
    fn duplicate_push_panics() {
        Record::new().field("k", 1i64).field("k", 2i64);
    }

    #[test]
    fn unicode_text_round_trips() {
        let rec = Record::new().field("s", "héllo — 队列");
        let back = Record::parse(&rec.to_json_line()).unwrap();
        assert_eq!(back, rec);
    }
}
