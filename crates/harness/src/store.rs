//! The resumable result store.
//!
//! Each campaign owns a directory `results/<campaign>/` holding
//!
//! * `records.jsonl` — one [`Record`] line per job, appended the moment
//!   the job finishes (crash-safe) and rewritten in job-index order
//!   when the campaign completes;
//! * `aggregate.csv` — per-(scenario, parameters) statistics of every
//!   numeric field across seeds, computed with
//!   [`pmsb_metrics::Summary`].
//!
//! Resume works off `records.jsonl`: a job whose key already has a line
//! is never re-executed; its cached line is reused byte-for-byte. A
//! torn final line (the process died mid-write) fails to parse and is
//! simply dropped, so that one job reruns.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use pmsb_metrics::Summary;

use crate::record::Record;

/// Name of the per-job record file inside a campaign directory.
pub const RECORDS_FILE: &str = "records.jsonl";
/// Name of the cross-seed aggregate file inside a campaign directory.
pub const AGGREGATE_FILE: &str = "aggregate.csv";
/// Record field that carries the job key (written by the campaign
/// runner, read back on resume).
pub const JOB_KEY_FIELD: &str = "job";

/// On-disk store for one campaign's records.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    cached: HashMap<String, String>,
    appender: Option<File>,
}

impl ResultStore {
    /// Opens (creating if needed) `root/<campaign>/` and loads any
    /// existing records for resume.
    pub fn open(root: &Path, campaign: &str) -> io::Result<ResultStore> {
        let dir = root.join(campaign);
        fs::create_dir_all(&dir)?;
        let mut cached = HashMap::new();
        let records = dir.join(RECORDS_FILE);
        if records.exists() {
            for line in BufReader::new(File::open(&records)?).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                // A malformed line (torn write) loses only that record.
                let Ok(rec) = Record::parse(&line) else {
                    eprintln!("harness: dropping malformed record line in {records:?}");
                    continue;
                };
                if let Some(key) = rec.get_str(JOB_KEY_FIELD) {
                    cached.insert(key.to_string(), line);
                }
            }
        }
        Ok(ResultStore {
            dir,
            cached,
            appender: None,
        })
    }

    /// The campaign directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records currently cached (loaded plus appended).
    pub fn len(&self) -> usize {
        self.cached.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.cached.is_empty()
    }

    /// The stored line for a job key, if one exists.
    pub fn cached_line(&self, key: &str) -> Option<&str> {
        self.cached.get(key).map(String::as_str)
    }

    /// Appends a freshly computed record line and flushes it to disk so
    /// an interrupted campaign resumes past this job.
    pub fn append(&mut self, key: &str, line: &str) -> io::Result<()> {
        if self.appender.is_none() {
            self.appender = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(RECORDS_FILE))?,
            );
        }
        let f = self.appender.as_mut().expect("appender just set");
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()?;
        self.cached.insert(key.to_string(), line.to_string());
        Ok(())
    }

    /// Rewrites `records.jsonl` with the given keys in order (the
    /// campaign's job-index order), dropping any stale lines, via a
    /// temp-file rename.
    pub fn finalize(&mut self, ordered_keys: &[String]) -> io::Result<()> {
        self.appender = None; // close before replacing the file
        let mut body = String::new();
        for key in ordered_keys {
            if let Some(line) = self.cached.get(key) {
                body.push_str(line);
                body.push('\n');
            }
        }
        let tmp = self.dir.join(format!("{RECORDS_FILE}.tmp"));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, self.dir.join(RECORDS_FILE))
    }

    /// Writes `aggregate.csv` from grouped records. See
    /// [`aggregate_csv`] for the format.
    pub fn write_aggregates(&self, entries: &[(String, Record)]) -> io::Result<()> {
        fs::write(self.dir.join(AGGREGATE_FILE), aggregate_csv(entries))
    }
}

/// Builds the cross-seed aggregate table.
///
/// `entries` pairs a group label — scenario plus parameter point,
/// seed excluded — with that job's record. For every numeric field
/// (other than the job key and `seed`) the rows of a group are fed to
/// [`Summary::from_samples`]; output columns are
/// `group,metric,count,mean,stddev,min,max`.
///
/// Groups appear in first-appearance order and metrics in field order,
/// so the CSV is deterministic.
pub fn aggregate_csv(entries: &[(String, Record)]) -> String {
    let mut group_order: Vec<&str> = Vec::new();
    let mut metric_order: HashMap<&str, Vec<&str>> = HashMap::new();
    let mut samples: HashMap<(&str, &str), Vec<f64>> = HashMap::new();

    for (group, rec) in entries {
        if !group_order.contains(&group.as_str()) {
            group_order.push(group);
        }
        for (key, value) in rec.iter() {
            if key == JOB_KEY_FIELD || key == "seed" || key == "scenario" {
                continue;
            }
            let Some(x) = value.as_f64() else { continue };
            let metrics = metric_order.entry(group).or_default();
            if !metrics.contains(&key) {
                metrics.push(key);
            }
            samples.entry((group, key)).or_default().push(x);
        }
    }

    let mut out = String::from("group,metric,count,mean,stddev,min,max\n");
    for group in group_order {
        for metric in metric_order.get(group).map_or(&[][..], Vec::as_slice) {
            let xs = samples[&(group, *metric)].clone();
            let Some(s) = Summary::from_samples(xs) else {
                continue;
            };
            out.push_str(&csv_field(group));
            out.push(',');
            out.push_str(&csv_field(metric));
            out.push_str(&format!(
                ",{},{:?},{:?},{:?},{:?}\n",
                s.count, s.mean, s.stddev, s.min, s.max
            ));
        }
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pmsb-harness-store-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(key: &str, seed: u64, fct: f64) -> Record {
        Record::new()
            .field(JOB_KEY_FIELD, key)
            .field("seed", seed)
            .field("fct_us", fct)
    }

    #[test]
    fn append_then_reopen_resumes() {
        let root = temp_dir("resume");
        let mut store = ResultStore::open(&root, "camp").unwrap();
        assert!(store.is_empty());
        store
            .append("a#1", &rec("a#1", 1, 10.0).to_json_line())
            .unwrap();
        store
            .append("a#2", &rec("a#2", 2, 12.0).to_json_line())
            .unwrap();

        let store2 = ResultStore::open(&root, "camp").unwrap();
        assert_eq!(store2.len(), 2);
        assert_eq!(
            store2.cached_line("a#1"),
            Some(rec("a#1", 1, 10.0).to_json_line().as_str())
        );
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let root = temp_dir("torn");
        let mut store = ResultStore::open(&root, "camp").unwrap();
        store
            .append("a#1", &rec("a#1", 1, 10.0).to_json_line())
            .unwrap();
        drop(store);
        // Simulate a crash mid-append of a second record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(root.join("camp").join(RECORDS_FILE))
            .unwrap();
        f.write_all(b"{\"job\":\"a#2\",\"seed\":2,\"fct_us\":1")
            .unwrap();
        drop(f);

        let store = ResultStore::open(&root, "camp").unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.cached_line("a#2").is_none());
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn finalize_orders_and_drops_stale() {
        let root = temp_dir("finalize");
        let mut store = ResultStore::open(&root, "camp").unwrap();
        // Completion order b, a; stale record c not in the job list.
        store.append("b", &rec("b", 2, 2.0).to_json_line()).unwrap();
        store.append("a", &rec("a", 1, 1.0).to_json_line()).unwrap();
        store.append("c", &rec("c", 3, 3.0).to_json_line()).unwrap();
        store.finalize(&["a".to_string(), "b".to_string()]).unwrap();

        let body = fs::read_to_string(root.join("camp").join(RECORDS_FILE)).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], rec("a", 1, 1.0).to_json_line());
        assert_eq!(lines[1], rec("b", 2, 2.0).to_json_line());
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn aggregate_groups_across_seeds() {
        let entries = vec![
            ("fig load=0.5".to_string(), rec("k1", 1, 10.0)),
            ("fig load=0.5".to_string(), rec("k2", 2, 14.0)),
            ("fig load=0.9".to_string(), rec("k3", 1, 30.0)),
        ];
        let csv = aggregate_csv(&entries);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "group,metric,count,mean,stddev,min,max");
        assert_eq!(lines[1], "fig load=0.5,fct_us,2,12.0,2.0,10.0,14.0");
        assert_eq!(lines[2], "fig load=0.9,fct_us,1,30.0,0.0,30.0,30.0");
    }

    #[test]
    fn aggregate_quotes_commas_in_group_labels() {
        let entries = vec![("fig,load=0.5".to_string(), rec("k", 1, 5.0))];
        let csv = aggregate_csv(&entries);
        assert!(csv.contains("\"fig,load=0.5\",fct_us,1"), "csv: {csv}");
    }

    #[test]
    fn aggregate_skips_non_numeric_and_identity_fields() {
        let record = Record::new()
            .field(JOB_KEY_FIELD, "k")
            .field("scenario", "fig")
            .field("seed", 7u64)
            .field("label", "text")
            .field("value", 1.5);
        let csv = aggregate_csv(&[("g".to_string(), record)]);
        assert!(!csv.contains("seed"));
        assert!(!csv.contains("label"));
        assert!(csv.contains("g,value,1,1.5,0.0,1.5,1.5"), "csv: {csv}");
    }
}
