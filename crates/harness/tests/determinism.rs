//! The harness's headline guarantees, tested end to end:
//!
//! * same seed ⇒ byte-identical records whether the campaign ran with
//!   1 worker or 4, and regardless of job submission order;
//! * resume: delete one record line from `records.jsonl`, rerun, and
//!   exactly that one job re-executes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pmsb_harness::{Campaign, Job, Record, RunOptions, RECORDS_FILE};

fn temp_root(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pmsb-harness-det-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(root: &Path, workers: usize) -> RunOptions {
    RunOptions {
        jobs: Some(workers),
        results_root: root.to_path_buf(),
        quiet: true,
    }
}

/// A toy deterministic "experiment": a small seeded LCG walk, heavy
/// enough that 4 workers genuinely interleave completions.
fn job(scheme: &str, load: u64, seed: u64, runs: &Arc<AtomicUsize>) -> Job {
    let runs = Arc::clone(runs);
    let scheme_owned = scheme.to_string();
    Job::new("toy", seed, move || {
        runs.fetch_add(1, Ordering::Relaxed);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ load;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        Record::new()
            .field("fct_us", (x % 100_000) as f64 / 10.0)
            .field("marks", x % 977)
            .field(
                "report",
                format!("{scheme_owned} load={load} -> {}", x % 977),
            )
    })
    .param("scheme", scheme)
    .param("load", load)
}

fn grid(runs: &Arc<AtomicUsize>, reversed: bool) -> Campaign {
    let mut jobs = Vec::new();
    for scheme in ["pmsb", "tcn"] {
        for load in [3u64, 7, 9] {
            for seed in [1u64, 2] {
                jobs.push(job(scheme, load, seed, runs));
            }
        }
    }
    if reversed {
        jobs.reverse();
    }
    let mut c = Campaign::new("det");
    for j in jobs {
        c.push(j);
    }
    c
}

fn keyed_lines(dir: &Path) -> Vec<(String, String)> {
    let body = fs::read_to_string(dir.join("det").join(RECORDS_FILE)).unwrap();
    let mut out: Vec<(String, String)> = body
        .lines()
        .map(|l| {
            let rec = Record::parse(l).unwrap();
            (rec.get_str("job").unwrap().to_string(), l.to_string())
        })
        .collect();
    out.sort();
    out
}

#[test]
fn records_identical_across_worker_counts() {
    let runs = Arc::new(AtomicUsize::new(0));
    let root1 = temp_root("w1");
    let root4 = temp_root("w4");
    grid(&runs, false).run(&opts(&root1, 1)).unwrap();
    grid(&runs, false).run(&opts(&root4, 4)).unwrap();
    // Byte-identical per job, and identical file order too, since the
    // submission order matched.
    assert_eq!(
        fs::read(root1.join("det").join(RECORDS_FILE)).unwrap(),
        fs::read(root4.join("det").join(RECORDS_FILE)).unwrap()
    );
    fs::remove_dir_all(root1).ok();
    fs::remove_dir_all(root4).ok();
}

#[test]
fn records_identical_across_submission_orderings() {
    let runs = Arc::new(AtomicUsize::new(0));
    let fwd = temp_root("fwd");
    let rev = temp_root("rev");
    grid(&runs, false).run(&opts(&fwd, 4)).unwrap();
    grid(&runs, true).run(&opts(&rev, 4)).unwrap();
    // File order follows submission order, but each job's record line
    // is byte-identical.
    assert_eq!(keyed_lines(&fwd), keyed_lines(&rev));
    fs::remove_dir_all(fwd).ok();
    fs::remove_dir_all(rev).ok();
}

#[test]
fn deleting_one_record_reruns_only_that_job() {
    let runs = Arc::new(AtomicUsize::new(0));
    let root = temp_root("resume");
    let first = grid(&runs, false).run(&opts(&root, 4)).unwrap();
    assert_eq!(first.executed, 12);
    assert_eq!(runs.load(Ordering::Relaxed), 12);

    // Remove the record of one specific job.
    let path = root.join("det").join(RECORDS_FILE);
    let body = fs::read_to_string(&path).unwrap();
    let victim = "toy scheme=tcn load=7 seed=2";
    let kept: Vec<&str> = body
        .lines()
        .filter(|l| Record::parse(l).unwrap().get_str("job") != Some(victim))
        .collect();
    assert_eq!(kept.len(), 11);
    fs::write(&path, kept.join("\n") + "\n").unwrap();

    let second = grid(&runs, false).run(&opts(&root, 4)).unwrap();
    assert_eq!(second.executed, 1, "only the deleted job re-executes");
    assert_eq!(second.reused, 11);
    assert_eq!(runs.load(Ordering::Relaxed), 13);

    // The regenerated file matches the original byte for byte.
    assert_eq!(body, fs::read_to_string(&path).unwrap());

    // And a third run does zero simulation work.
    let third = grid(&runs, false).run(&opts(&root, 4)).unwrap();
    assert_eq!(third.executed, 0);
    assert_eq!(runs.load(Ordering::Relaxed), 13);
    fs::remove_dir_all(root).ok();
}
