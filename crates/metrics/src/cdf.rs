//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples — the representation behind the
/// paper's RTT-distribution figures (Figs. 1 and 9).
///
/// # Example
///
/// ```
/// use pmsb_metrics::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.quantile(0.5), 2.5);
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF, consuming and sorting the samples. Returns `None`
    /// for an empty set.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Cdf> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        Some(Cdf { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `false` by construction (empty sets return `None` from the
    /// constructor), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (`q` in `[0,1]`) with linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::percentile(&self.sorted, q * 100.0)
    }

    /// Fraction of samples strictly below `x` (the CDF evaluated at `x`).
    pub fn fraction_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|s| *s < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `points` evenly spaced `(value, cumulative fraction)` pairs for
    /// plotting, from the minimum to the maximum sample.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn plot_points(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 plot points");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn quantile_endpoints() {
        let cdf = Cdf::from_samples(vec![5.0, 1.0, 3.0]).unwrap();
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn fraction_below_counts_strictly() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.fraction_below(2.0), 0.25);
        assert_eq!(cdf.fraction_below(2.1), 0.75);
        assert_eq!(cdf.fraction_below(100.0), 1.0);
        assert_eq!(cdf.fraction_below(0.0), 0.0);
    }

    #[test]
    fn plot_points_are_monotone() {
        let cdf = Cdf::from_samples((0..100).map(|i| i as f64).collect()).unwrap();
        let pts = cdf.plot_points(11);
        assert_eq!(pts.len(), 11);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn empty_returns_none() {
        assert!(Cdf::from_samples(vec![]).is_none());
    }

    /// quantile and fraction_below are near-inverse, for seeded-random
    /// sample sets.
    #[test]
    fn quantile_fraction_consistency() {
        let mut rng = SimRng::seed_from(0xcd);
        for _ in 0..64 {
            let len = 2 + rng.below(98);
            let xs: Vec<f64> = (0..len).map(|_| rng.uniform() * 1e6).collect();
            let q = rng.uniform();
            let cdf = Cdf::from_samples(xs).unwrap();
            let v = cdf.quantile(q);
            // Fraction strictly below v cannot exceed q by more than one
            // sample's worth.
            let f = cdf.fraction_below(v);
            assert!(f <= q + 1.0 / cdf.len() as f64 + 1e-9);
        }
    }
}
