//! Shared-buffer contention metrics.
//!
//! When a switch's queues carve their backlog out of one shared memory
//! pool (DESIGN.md §12), the interesting counters live at the *pool*,
//! not the flow: how many packets the pool refused, how many of those
//! refusals came from the allocation policy rather than an outright
//! full pool, and how close to capacity the pool ever ran. This module
//! holds the mergeable summary the simulator harvests per switch and
//! campaigns surface as the `shared_drops`/`admit_rejects`/
//! `pool_high_water` record columns.

/// One switch's (or, after merging, one run's) shared-buffer contention
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionSummary {
    /// Packets the pool refused, all causes — these are real drops.
    pub shared_drops: u64,
    /// The subset of `shared_drops` refused by the allocation policy's
    /// per-queue cap while the pool still had free space (DT /
    /// delay-driven shielding other queues).
    pub admit_rejects: u64,
    /// Peak pool occupancy in bytes over the run. After merging across
    /// switches this is the worst single pool's peak, not a sum —
    /// per-switch peaks at different instants don't add.
    pub pool_high_water_bytes: u64,
    /// The largest single pool's capacity, for reading the high-water
    /// mark as a fraction.
    pub pool_total_bytes: u64,
}

impl ContentionSummary {
    /// Folds another switch's (or shard's) counters into this one:
    /// drop counts add, high-water marks and capacities take the max.
    pub fn absorb(&mut self, other: &ContentionSummary) {
        self.shared_drops += other.shared_drops;
        self.admit_rejects += other.admit_rejects;
        self.pool_high_water_bytes = self.pool_high_water_bytes.max(other.pool_high_water_bytes);
        self.pool_total_bytes = self.pool_total_bytes.max(other.pool_total_bytes);
    }

    /// Peak occupancy as a fraction of the pool (0 for an unsized pool).
    pub fn high_water_fraction(&self) -> f64 {
        if self.pool_total_bytes == 0 {
            0.0
        } else {
            self.pool_high_water_bytes as f64 / self.pool_total_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_drops_and_maxes_high_water() {
        let mut a = ContentionSummary {
            shared_drops: 10,
            admit_rejects: 4,
            pool_high_water_bytes: 9_000,
            pool_total_bytes: 10_000,
        };
        let b = ContentionSummary {
            shared_drops: 3,
            admit_rejects: 3,
            pool_high_water_bytes: 12_000,
            pool_total_bytes: 16_000,
        };
        a.absorb(&b);
        assert_eq!(a.shared_drops, 13);
        assert_eq!(a.admit_rejects, 7);
        assert_eq!(a.pool_high_water_bytes, 12_000);
        assert_eq!(a.pool_total_bytes, 16_000);
        assert_eq!(a.high_water_fraction(), 0.75);
    }

    #[test]
    fn absorb_is_commutative() {
        let a = ContentionSummary {
            shared_drops: 5,
            admit_rejects: 1,
            pool_high_water_bytes: 700,
            pool_total_bytes: 1_000,
        };
        let b = ContentionSummary {
            shared_drops: 2,
            admit_rejects: 2,
            pool_high_water_bytes: 900,
            pool_total_bytes: 1_000,
        };
        let mut ab = a;
        ab.absorb(&b);
        let mut ba = b;
        ba.absorb(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn default_is_zero_and_fraction_safe() {
        let z = ContentionSummary::default();
        assert_eq!(z.shared_drops, 0);
        assert_eq!(z.high_water_fraction(), 0.0);
    }
}
