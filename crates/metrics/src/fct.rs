//! Flow-completion-time bookkeeping with the paper's size classes.

use crate::Summary;

/// Flow size classes used throughout the paper's evaluation: small flows
/// under 100 KB, large flows over 10 MB, medium in between, and the
/// all-flows aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// `bytes < 100 KB` — the latency-sensitive class the paper optimizes.
    Small,
    /// `100 KB <= bytes <= 10 MB`.
    Medium,
    /// `bytes > 10 MB` — throughput-intensive flows.
    Large,
    /// Every flow regardless of size.
    Overall,
}

impl SizeClass {
    /// Classifies a flow by its byte size (never returns
    /// [`SizeClass::Overall`]).
    ///
    /// # Example
    ///
    /// ```
    /// use pmsb_metrics::fct::SizeClass;
    ///
    /// assert_eq!(SizeClass::of_bytes(50_000), SizeClass::Small);
    /// assert_eq!(SizeClass::of_bytes(1_000_000), SizeClass::Medium);
    /// assert_eq!(SizeClass::of_bytes(50_000_000), SizeClass::Large);
    /// ```
    pub fn of_bytes(bytes: u64) -> SizeClass {
        if bytes < 100_000 {
            SizeClass::Small
        } else if bytes <= 10_000_000 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizeClass::Small => f.write_str("small"),
            SizeClass::Medium => f.write_str("medium"),
            SizeClass::Large => f.write_str("large"),
            SizeClass::Overall => f.write_str("overall"),
        }
    }
}

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Application-level flow identifier.
    pub flow_id: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Simulation time the flow started, in nanoseconds.
    pub start_nanos: u64,
    /// Simulation time the last byte was acknowledged, in nanoseconds.
    pub end_nanos: u64,
}

impl FlowRecord {
    /// The flow completion time in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the record ends before it starts.
    pub fn fct_nanos(&self) -> u64 {
        debug_assert!(self.end_nanos >= self.start_nanos, "flow ends before start");
        self.end_nanos - self.start_nanos
    }

    /// The flow's size class.
    pub fn size_class(&self) -> SizeClass {
        SizeClass::of_bytes(self.bytes)
    }
}

/// Accumulates [`FlowRecord`]s and reports FCT statistics per size class.
///
/// # Example
///
/// ```
/// use pmsb_metrics::fct::{FctRecorder, FlowRecord, SizeClass};
///
/// let mut rec = FctRecorder::new();
/// for i in 0..10 {
///     rec.record(FlowRecord {
///         flow_id: i,
///         bytes: 10_000,
///         start_nanos: 0,
///         end_nanos: (i + 1) * 1_000,
///     });
/// }
/// let s = rec.stats(SizeClass::Small).unwrap();
/// assert_eq!(s.count, 10);
/// assert_eq!(s.mean, 5_500.0);
/// assert!(rec.stats(SizeClass::Large).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FctRecorder {
    records: Vec<FlowRecord>,
}

impl FctRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FctRecorder::default()
    }

    /// Adds one completed flow.
    pub fn record(&mut self, record: FlowRecord) {
        self.records.push(record);
    }

    /// Number of completed flows recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// FCT samples (nanoseconds) for one size class.
    pub fn fcts_nanos(&self, class: SizeClass) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| class == SizeClass::Overall || r.size_class() == class)
            .map(|r| r.fct_nanos() as f64)
            .collect()
    }

    /// FCT summary statistics for one size class; `None` if the class has
    /// no flows.
    pub fn stats(&self, class: SizeClass) -> Option<Summary> {
        Summary::from_samples(self.fcts_nanos(class))
    }

    /// Aggregate goodput across all recorded flows in bits per second:
    /// total bytes divided by the span from the earliest start to the
    /// latest end. `None` if empty or the span is zero.
    pub fn aggregate_goodput_bps(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let start = self.records.iter().map(|r| r.start_nanos).min().unwrap();
        let end = self.records.iter().map(|r| r.end_nanos).max().unwrap();
        if end == start {
            return None;
        }
        let bytes: u64 = self.records.iter().map(|r| r.bytes).sum();
        Some(bytes as f64 * 8.0 / ((end - start) as f64 / 1e9))
    }
}

impl Extend<FlowRecord> for FctRecorder {
    fn extend<T: IntoIterator<Item = FlowRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<FlowRecord> for FctRecorder {
    fn from_iter<T: IntoIterator<Item = FlowRecord>>(iter: T) -> Self {
        FctRecorder {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    fn rec(bytes: u64, fct: u64) -> FlowRecord {
        FlowRecord {
            flow_id: 0,
            bytes,
            start_nanos: 100,
            end_nanos: 100 + fct,
        }
    }

    #[test]
    fn classes_partition_sizes() {
        assert_eq!(SizeClass::of_bytes(0), SizeClass::Small);
        assert_eq!(SizeClass::of_bytes(99_999), SizeClass::Small);
        assert_eq!(SizeClass::of_bytes(100_000), SizeClass::Medium);
        assert_eq!(SizeClass::of_bytes(10_000_000), SizeClass::Medium);
        assert_eq!(SizeClass::of_bytes(10_000_001), SizeClass::Large);
    }

    #[test]
    fn stats_split_by_class() {
        let mut r = FctRecorder::new();
        r.record(rec(1_000, 10));
        r.record(rec(1_000, 20));
        r.record(rec(20_000_000, 1_000));
        assert_eq!(r.stats(SizeClass::Small).unwrap().count, 2);
        assert_eq!(r.stats(SizeClass::Large).unwrap().count, 1);
        assert!(r.stats(SizeClass::Medium).is_none());
        assert_eq!(r.stats(SizeClass::Overall).unwrap().count, 3);
    }

    #[test]
    fn goodput_spans_first_start_to_last_end() {
        let mut r = FctRecorder::new();
        r.record(FlowRecord {
            flow_id: 1,
            bytes: 1_000_000,
            start_nanos: 0,
            end_nanos: 1_000_000,
        });
        r.record(FlowRecord {
            flow_id: 2,
            bytes: 1_000_000,
            start_nanos: 500_000,
            end_nanos: 2_000_000,
        });
        // 2 MB over 2 ms = 8 Gbps.
        let g = r.aggregate_goodput_bps().unwrap();
        assert!((g - 8e9).abs() < 1e6, "goodput {g}");
    }

    #[test]
    fn empty_recorder_has_no_stats() {
        let r = FctRecorder::new();
        assert!(r.is_empty());
        assert!(r.stats(SizeClass::Overall).is_none());
        assert!(r.aggregate_goodput_bps().is_none());
    }

    #[test]
    fn collects_from_iterator() {
        let r: FctRecorder = (0..5).map(|i| rec(1000 * (i + 1), 10)).collect();
        assert_eq!(r.len(), 5);
    }

    /// Overall count equals the sum of the three class counts, for
    /// seeded-random size sets.
    #[test]
    fn classes_partition_records() {
        let mut rng = SimRng::seed_from(0xFC7);
        for _ in 0..32 {
            let len = 1 + rng.below(49);
            let r: FctRecorder = (0..len)
                .map(|_| rec(1 + rng.below(99_999_999) as u64, 100))
                .collect();
            let total = r.stats(SizeClass::Overall).unwrap().count;
            let parts: usize = [SizeClass::Small, SizeClass::Medium, SizeClass::Large]
                .iter()
                .filter_map(|c| r.stats(*c).map(|s| s.count))
                .sum();
            assert_eq!(total, parts);
        }
    }
}
