#![warn(missing_docs)]

//! Metrics for the PMSB experiments.
//!
//! * [`Summary`] / [`percentile`] — order statistics over raw samples,
//! * [`Cdf`] — empirical CDFs (the paper's RTT distribution figures),
//! * [`fct`] — flow-completion-time records bucketed into the paper's size
//!   classes (small < 100 KB, medium 100 KB–10 MB, large > 10 MB),
//! * [`robustness`] — retransmit/RTO/recovery-time aggregation for fault
//!   campaigns ([`robustness::RobustnessSummary`]),
//! * [`contention`] — shared-buffer pool counters for buffer-contention
//!   campaigns ([`contention::ContentionSummary`]),
//! * [`QuantileSketch`] — fixed-size mergeable log-bucketed FCT sketch for
//!   million-flow streaming runs (hyperscale campaigns),
//! * [`ThroughputSeries`] / [`GaugeSeries`] — binned throughput and sampled
//!   queue-occupancy time series (the paper's throughput/buffer figures).
//!
//! # Example
//!
//! ```
//! use pmsb_metrics::fct::{FctRecorder, FlowRecord, SizeClass};
//!
//! let mut rec = FctRecorder::new();
//! rec.record(FlowRecord { flow_id: 1, bytes: 20_000, start_nanos: 0, end_nanos: 80_000 });
//! rec.record(FlowRecord { flow_id: 2, bytes: 30_000_000, start_nanos: 0, end_nanos: 25_000_000 });
//! let stats = rec.stats(SizeClass::Small).unwrap();
//! assert_eq!(stats.count, 1);
//! assert_eq!(stats.mean, 80_000.0);
//! ```

pub mod cdf;
pub mod contention;
pub mod fct;
pub mod robustness;
pub mod series;
pub mod sketch;
mod summary;

pub use cdf::Cdf;
pub use series::{GaugeSeries, ThroughputSeries};
pub use sketch::QuantileSketch;
pub use summary::{percentile, Summary};
