//! Robustness metrics for fault campaigns.
//!
//! Under injected faults (`pmsb-faults`) the interesting question shifts
//! from "how fast do flows complete" to "how hard does the transport
//! fight": retransmissions, timeouts, time spent recovering, and whether
//! congestion was signalled by ECN marks or by drops. This module folds
//! the per-flow counters the transport exports into one record-friendly
//! aggregate.

use crate::summary::Summary;

/// Per-flow robustness counters (mirrors the transport's sender stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowRobustness {
    /// Segments retransmitted.
    pub retransmissions: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Loss episodes (first loss signal → outstanding window re-acked).
    pub loss_episodes: u64,
    /// Total nanoseconds spent inside loss episodes.
    pub recovery_nanos: u64,
}

/// Aggregated robustness over all flows of a run, plus the run's
/// marks-vs-drops balance.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessSummary {
    /// Flows aggregated.
    pub flows: u64,
    /// Flows that hit at least one loss episode.
    pub flows_with_loss: u64,
    /// Total retransmitted segments.
    pub retransmissions: u64,
    /// Total timeouts.
    pub timeouts: u64,
    /// Total loss episodes.
    pub loss_episodes: u64,
    /// Order statistics of per-flow recovery time in nanoseconds, over
    /// the flows that had at least one episode (`None` when no flow
    /// lost anything).
    pub recovery_nanos: Option<Summary>,
}

impl RobustnessSummary {
    /// Aggregates per-flow counters.
    pub fn collect(flows: impl IntoIterator<Item = FlowRobustness>) -> Self {
        let mut out = RobustnessSummary {
            flows: 0,
            flows_with_loss: 0,
            retransmissions: 0,
            timeouts: 0,
            loss_episodes: 0,
            recovery_nanos: None,
        };
        let mut recovery = Vec::new();
        for f in flows {
            out.flows += 1;
            out.retransmissions += f.retransmissions;
            out.timeouts += f.timeouts;
            out.loss_episodes += f.loss_episodes;
            if f.loss_episodes > 0 {
                out.flows_with_loss += 1;
                recovery.push(f.recovery_nanos as f64);
            }
        }
        out.recovery_nanos = Summary::from_samples(recovery);
        out
    }

    /// Mean per-flow recovery time in nanoseconds (0 when nothing was
    /// lost) — the headline "recovery time" column of fault campaigns.
    pub fn mean_recovery_nanos(&self) -> f64 {
        self.recovery_nanos.as_ref().map_or(0.0, |s| s.mean)
    }

    /// Worst per-flow recovery time in nanoseconds (0 when nothing was
    /// lost).
    pub fn max_recovery_nanos(&self) -> f64 {
        self.recovery_nanos.as_ref().map_or(0.0, |s| s.max)
    }
}

/// CE marks applied per packet lost (marks ÷ drops): how much of the
/// congestion signal arrived as ECN rather than as loss. `marks` when
/// nothing was dropped (every signal was a mark), 0 when neither.
pub fn marks_per_drop(marks: u64, drops: u64) -> f64 {
    if drops == 0 {
        marks as f64
    } else {
        marks as f64 / drops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_summarizes_lossy_flows_only() {
        let flows = [
            FlowRobustness::default(),
            FlowRobustness {
                retransmissions: 3,
                timeouts: 1,
                loss_episodes: 2,
                recovery_nanos: 100_000,
            },
            FlowRobustness {
                retransmissions: 1,
                timeouts: 0,
                loss_episodes: 1,
                recovery_nanos: 300_000,
            },
        ];
        let s = RobustnessSummary::collect(flows);
        assert_eq!(s.flows, 3);
        assert_eq!(s.flows_with_loss, 2);
        assert_eq!(s.retransmissions, 4);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.loss_episodes, 3);
        let rec = s.recovery_nanos.as_ref().unwrap();
        assert_eq!(rec.count, 2);
        assert_eq!(rec.mean, 200_000.0);
        assert_eq!(s.max_recovery_nanos(), 300_000.0);
    }

    #[test]
    fn clean_run_has_no_recovery_summary() {
        let s = RobustnessSummary::collect([FlowRobustness::default(); 4]);
        assert_eq!(s.flows, 4);
        assert_eq!(s.flows_with_loss, 0);
        assert!(s.recovery_nanos.is_none());
        assert_eq!(s.mean_recovery_nanos(), 0.0);
    }

    #[test]
    fn marks_per_drop_handles_zero_drops() {
        assert_eq!(marks_per_drop(120, 0), 120.0);
        assert_eq!(marks_per_drop(120, 40), 3.0);
        assert_eq!(marks_per_drop(0, 0), 0.0);
    }
}
