//! Time series: binned throughput counters and sampled gauges.

/// Bytes-per-interval throughput accounting, reported in Gbps — the
/// representation behind the paper's throughput-versus-time figures
/// (Figs. 3, 8, 13–15).
///
/// # Example
///
/// ```
/// use pmsb_metrics::ThroughputSeries;
///
/// let mut ts = ThroughputSeries::new(1_000_000); // 1 ms bins
/// ts.add(0, 1_250_000);        // 1.25 MB in bin 0 => 10 Gbps
/// ts.add(1_500_000, 625_000);  // bin 1 => 5 Gbps
/// let g = ts.gbps();
/// assert!((g[0] - 10.0).abs() < 1e-9);
/// assert!((g[1] - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputSeries {
    interval_nanos: u64,
    bins: Vec<u64>,
}

impl ThroughputSeries {
    /// Creates a series with the given bin width in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_nanos` is zero.
    pub fn new(interval_nanos: u64) -> Self {
        assert!(interval_nanos > 0, "bin width must be positive");
        ThroughputSeries {
            interval_nanos,
            bins: Vec::new(),
        }
    }

    /// Credits `bytes` delivered at time `at_nanos`.
    pub fn add(&mut self, at_nanos: u64, bytes: u64) {
        let bin = (at_nanos / self.interval_nanos) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += bytes;
    }

    /// The bin width in nanoseconds.
    pub fn interval_nanos(&self) -> u64 {
        self.interval_nanos
    }

    /// Raw per-bin byte counts.
    pub fn bytes_per_bin(&self) -> &[u64] {
        &self.bins
    }

    /// Per-bin throughput in Gbps.
    pub fn gbps(&self) -> Vec<f64> {
        let secs = self.interval_nanos as f64 / 1e9;
        self.bins
            .iter()
            .map(|b| *b as f64 * 8.0 / secs / 1e9)
            .collect()
    }

    /// Mean throughput in Gbps over bins `[from_bin, to_bin)` — used to
    /// report steady-state shares while skipping slow-start bins.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn mean_gbps(&self, from_bin: usize, to_bin: usize) -> f64 {
        assert!(
            from_bin < to_bin && to_bin <= self.bins.len(),
            "bad bin range"
        );
        let g = self.gbps();
        g[from_bin..to_bin].iter().sum::<f64>() / (to_bin - from_bin) as f64
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Number of bins (index of the last active bin + 1).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }
}

/// A sampled gauge — e.g. queue occupancy over time (the paper's buffer
/// figures, Figs. 4, 5, 11, 12).
///
/// # Example
///
/// ```
/// use pmsb_metrics::GaugeSeries;
///
/// let mut g = GaugeSeries::new();
/// g.sample(0, 3.0);
/// g.sample(100, 9.0);
/// assert_eq!(g.peak(), Some(9.0));
/// assert_eq!(g.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GaugeSeries {
    points: Vec<(u64, f64)>,
}

impl GaugeSeries {
    /// Creates an empty gauge series.
    pub fn new() -> Self {
        GaugeSeries::default()
    }

    /// Records `value` at time `at_nanos`. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at_nanos` goes backwards.
    pub fn sample(&mut self, at_nanos: u64, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(t, _)| *t <= at_nanos),
            "gauge samples must be time-ordered"
        );
        self.points.push((at_nanos, value));
    }

    /// The `(time, value)` samples.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The largest sampled value, if any.
    pub fn peak(&self) -> Option<f64> {
        self.points.iter().map(|(_, v)| *v).reduce(f64::max)
    }

    /// Time-weighted mean over the sampled span (each sample holds until
    /// the next). `None` with fewer than two samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0) as f64;
            area += w[0].1 * dt;
        }
        let span = (self.points.last().unwrap().0 - self.points[0].0) as f64;
        (span > 0.0).then(|| area / span)
    }

    /// The largest value at or after `from_nanos` (e.g. post-slow-start
    /// peaks). `None` if no samples qualify.
    pub fn peak_after(&self, from_nanos: u64) -> Option<f64> {
        self.points
            .iter()
            .filter(|(t, _)| *t >= from_nanos)
            .map(|(_, v)| *v)
            .reduce(f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn throughput_bins_accumulate() {
        let mut ts = ThroughputSeries::new(100);
        ts.add(0, 10);
        ts.add(50, 10);
        ts.add(150, 5);
        assert_eq!(ts.bytes_per_bin(), &[20, 5]);
        assert_eq!(ts.total_bytes(), 25);
    }

    #[test]
    fn gbps_conversion() {
        let mut ts = ThroughputSeries::new(1_000_000_000); // 1 s bin
        ts.add(0, 1_250_000_000); // 1.25 GB in 1 s = 10 Gbps
        assert!((ts.gbps()[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_gbps_over_window() {
        let mut ts = ThroughputSeries::new(1_000_000);
        for bin in 0..10u64 {
            ts.add(bin * 1_000_000, 1_250_000); // 10 Gbps each bin
        }
        assert!((ts.mean_gbps(2, 10) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_peak_and_mean() {
        let mut g = GaugeSeries::new();
        g.sample(0, 2.0);
        g.sample(10, 4.0);
        g.sample(20, 0.0);
        assert_eq!(g.peak(), Some(4.0));
        // 2.0 for 10 ns then 4.0 for 10 ns => mean 3.0.
        assert!((g.time_weighted_mean().unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(g.peak_after(10), Some(4.0));
        assert_eq!(g.peak_after(15), Some(0.0));
        assert_eq!(g.peak_after(25), None);
    }

    #[test]
    fn empty_gauge() {
        let g = GaugeSeries::new();
        assert!(g.is_empty());
        assert_eq!(g.peak(), None);
        assert_eq!(g.time_weighted_mean(), None);
    }

    /// Total bytes equals the sum of adds regardless of bin layout, for
    /// seeded-random add sequences.
    #[test]
    fn conservation() {
        let mut rng = SimRng::seed_from(0x5e);
        for _ in 0..32 {
            let interval = 1 + rng.below(9_999) as u64;
            let mut ts = ThroughputSeries::new(interval);
            let mut want = 0u64;
            for _ in 0..(1 + rng.below(99)) {
                let t = rng.below(1_000_000) as u64;
                let b = 1 + rng.below(9_999) as u64;
                ts.add(t, b);
                want += b;
            }
            assert_eq!(ts.total_bytes(), want);
        }
    }
}
