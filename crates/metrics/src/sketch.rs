//! A fixed-size, mergeable quantile sketch for flow-completion times.
//!
//! Million-flow runs cannot afford the exhaustive per-flow sample storage
//! of [`FctRecorder`](crate::fct::FctRecorder) (32 bytes per completed
//! flow, plus a sort per percentile query). [`QuantileSketch`] replaces it
//! with a log-bucketed histogram in the style of HdrHistogram: a value
//! `v` is binned by its highest set bit plus [`QuantileSketch::BITS`]
//! mantissa bits, so every bucket's width is at most a `1/128` fraction
//! of its lower bound. The structure is:
//!
//! * **fixed-size** — 7 424 `u64` counters (~58 KB) regardless of how
//!   many samples are inserted,
//! * **rank-exact, value-approximate** — a quantile query walks the
//!   cumulative counts to the exact target rank and returns the midpoint
//!   of the bucket holding that order statistic, so the reported value is
//!   within relative error [`QuantileSketch::RELATIVE_ERROR`] of the true
//!   order statistic (and the *rank* is never approximated),
//! * **mergeable and order-independent** — merging adds counter arrays,
//!   so any partition of the input over parallel shards, merged in any
//!   order, yields a bit-identical sketch. (This is why the sketch is a
//!   deterministic histogram rather than a KLL/GK rank-error sketch:
//!   those compress adaptively and their state depends on insertion and
//!   merge order, which would break the simulator's guarantee that
//!   `--sim-threads N` produces byte-identical records for every `N`.)
//!
//! Integer bucketing (`leading_zeros` + shifts, no `f64::ln`) keeps the
//! sketch bit-reproducible across platforms.

/// Mergeable log-bucketed quantile sketch over `u64` samples (nanoseconds
/// in the FCT use, but the sketch is unit-agnostic).
///
/// # Example
///
/// ```
/// use pmsb_metrics::QuantileSketch;
///
/// let mut sk = QuantileSketch::new();
/// for v in 1..=1000u64 {
///     sk.insert(v);
/// }
/// let p50 = sk.quantile(0.5).unwrap();
/// // True median order statistic is 500 or 501; the sketch's answer is
/// // within 1/128 relative error of it.
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < QuantileSketch::RELATIVE_ERROR + 0.002);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    /// Exact integer sum — `u128` so the mean is order-independent
    /// (floating-point accumulation would depend on insertion order and
    /// break cross-shard merge determinism).
    sum: u128,
}

impl QuantileSketch {
    /// Mantissa precision: buckets subdivide each power of two into
    /// `2^BITS` steps.
    pub const BITS: u32 = 7;

    /// Documented bound on the relative error of a reported quantile
    /// versus the true order statistic at the same rank: bucket width /
    /// bucket lower bound = `2^-BITS`.
    pub const RELATIVE_ERROR: f64 = 1.0 / (1u64 << Self::BITS) as f64;

    /// Mantissa range per octave.
    const B: u64 = 1 << Self::BITS;

    /// Bucket count covering all of `u64`: octaves `BITS..=63` each
    /// contribute `B` buckets on top of the `2B` exact low buckets.
    const NUM_BUCKETS: usize = ((64 - Self::BITS as usize) + 1) * Self::B as usize;

    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; Self::NUM_BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The bucket index of `v`. Values below `2^(BITS+1)` map to
    /// themselves (exact); above that, to `floor(v / 2^shift)` within the
    /// octave selected by the highest set bit.
    fn index_of(v: u64) -> usize {
        let v = v.max(1);
        let h = 63 - v.leading_zeros();
        let shift = h.saturating_sub(Self::BITS);
        shift as usize * Self::B as usize + (v >> shift) as usize
    }

    /// The inclusive value range `[lo, hi]` a bucket covers.
    fn range_of(index: usize) -> (u64, u64) {
        if index < 2 * Self::B as usize {
            return (index as u64, index as u64);
        }
        let shift = (index as u64 / Self::B) - 1;
        let mantissa = index as u64 - shift * Self::B;
        let lo = mantissa << shift;
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }

    /// Inserts one sample.
    pub fn insert(&mut self, v: u64) {
        self.counts[Self::index_of(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Adds every sample of `other` into `self`. Because buckets are
    /// fixed, `a.merge(&b)` equals inserting the union in any order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of samples inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples were inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean (integer sum over count), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum as f64 / self.count as f64)
    }

    /// The approximate value of the order statistic at quantile `q` in
    /// `[0, 1]`: the rank is `round(q · (n-1))` — the nearest-rank
    /// convention, matching [`crate::summary::percentile`]'s ranks — and
    /// the returned value is the midpoint of the bucket containing that
    /// rank, within [`Self::RELATIVE_ERROR`] of the true sample.
    ///
    /// Returns `None` when the sketch is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let (lo, hi) = Self::range_of(i);
                // Clamp to the exact extremes: the true order statistic
                // can never sit outside [min, max].
                return Some((lo + (hi - lo) / 2).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience wrapper: `percentile(99.0)` = `quantile(0.99)`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.quantile(p / 100.0)
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact nearest-rank order statistic the sketch approximates.
    fn exact_rank(sorted: &[u64], q: f64) -> u64 {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    #[test]
    fn empty_sketch_answers_none() {
        let sk = QuantileSketch::new();
        assert!(sk.is_empty());
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.min(), None);
        assert_eq!(sk.max(), None);
        assert_eq!(sk.mean(), None);
    }

    #[test]
    fn small_values_are_exact() {
        // Values below 2^(BITS+1) = 256 land in unit-width buckets.
        let mut sk = QuantileSketch::new();
        for v in [3u64, 7, 42, 99, 200, 250, 255] {
            sk.insert(v);
        }
        assert_eq!(sk.quantile(0.0), Some(3));
        assert_eq!(sk.quantile(1.0), Some(255));
        assert_eq!(sk.quantile(0.5), Some(99));
    }

    #[test]
    fn buckets_tile_u64_without_gaps() {
        // Every bucket's upper bound + 1 starts the next bucket, and
        // index_of is the inverse of range_of over the whole bucket.
        for i in 0..QuantileSketch::NUM_BUCKETS - 1 {
            let (lo, hi) = QuantileSketch::range_of(i);
            assert!(lo <= hi, "bucket {i}");
            if lo > 0 {
                assert_eq!(QuantileSketch::index_of(lo), i, "lo of bucket {i}");
                assert_eq!(QuantileSketch::index_of(hi), i, "hi of bucket {i}");
            }
            let (next_lo, _) = QuantileSketch::range_of(i + 1);
            assert_eq!(hi + 1, next_lo, "gap after bucket {i}");
        }
        assert_eq!(
            QuantileSketch::index_of(u64::MAX),
            QuantileSketch::NUM_BUCKETS - 1
        );
    }

    #[test]
    fn relative_error_bound_holds_on_log_spread_data() {
        // Samples spanning six decades: every quantile must sit within
        // the documented relative error of the true order statistic.
        let mut sk = QuantileSketch::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 7u64;
        for _ in 0..50_000 {
            // Deterministic LCG spread over [1, ~1e9].
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1 + (x >> 34);
            samples.push(v);
            sk.insert(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let truth = exact_rank(&samples, q) as f64;
            let approx = sk.quantile(q).unwrap() as f64;
            let rel = (approx - truth).abs() / truth;
            assert!(
                rel <= QuantileSketch::RELATIVE_ERROR,
                "q={q}: sketch {approx} vs exact {truth} (rel {rel})"
            );
        }
        assert_eq!(sk.count(), 50_000);
        assert_eq!(sk.min().unwrap(), samples[0]);
        assert_eq!(sk.max().unwrap(), *samples.last().unwrap());
    }

    #[test]
    fn merge_equals_union_for_any_partition() {
        let samples: Vec<u64> = (0..10_000u64).map(|i| 1 + i * i % 999_983).collect();
        let mut whole = QuantileSketch::new();
        for &v in &samples {
            whole.insert(v);
        }
        // Partition into 4 shards round-robin, merge in reverse order.
        let mut shards = vec![QuantileSketch::new(); 4];
        for (i, &v) in samples.iter().enumerate() {
            shards[i % 4].insert(v);
        }
        let mut merged = QuantileSketch::new();
        for sh in shards.iter().rev() {
            merged.merge(sh);
        }
        assert_eq!(merged, whole, "merge must be partition/order independent");
    }

    #[test]
    fn mean_is_exact() {
        let mut sk = QuantileSketch::new();
        for v in [10u64, 20, 30, 40] {
            sk.insert(v);
        }
        assert_eq!(sk.mean(), Some(25.0));
    }
}
