//! Order statistics over raw samples.

/// The `p`-th percentile (0–100) of `sorted` samples with linear
/// interpolation between closest ranks.
///
/// # Example
///
/// ```
/// use pmsb_metrics::percentile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// ```
///
/// # Panics
///
/// Panics if `sorted` is empty, not ascending, or `p` is outside `[0,100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0,100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "samples must be sorted ascending"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Descriptive statistics of a sample set.
///
/// # Example
///
/// ```
/// use pmsb_metrics::Summary;
///
/// let s = Summary::from_samples(vec![10.0, 20.0, 30.0]).unwrap();
/// assert_eq!(s.count, 3);
/// assert_eq!(s.mean, 20.0);
/// assert_eq!(s.max, 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (zero for a single sample).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum (100th percentile).
    pub max: f64,
}

impl Summary {
    /// Builds a summary, consuming and sorting the samples. Returns `None`
    /// for an empty set.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            stddev: variance.sqrt(),
            min: samples[0],
            p50: percentile(&samples, 50.0),
            p95: percentile(&samples, 95.0),
            p99: percentile(&samples, 99.0),
            max: samples[count - 1],
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn single_sample_everything_equal() {
        let s = Summary::from_samples(vec![7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn empty_gives_none() {
        assert!(Summary::from_samples(vec![]).is_none());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::from_samples(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn stddev_matches_population_formula() {
        // Samples 2, 4, 4, 4, 5, 5, 7, 9: the textbook sigma = 2 example.
        let s = Summary::from_samples(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.stddev - 2.0).abs() < 1e-12, "got {}", s.stddev);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    /// Percentiles are monotone in p and bounded by min/max, and the mean
    /// lies within [min, max], for seeded-random sample sets.
    #[test]
    fn percentile_monotone_and_mean_bounded() {
        let mut rng = SimRng::seed_from(0x51);
        for _ in 0..64 {
            let len = 1 + rng.below(99);
            let mut xs: Vec<f64> = (0..len).map(|_| (rng.uniform() - 0.5) * 2e6).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (p1, p2) = (rng.uniform() * 100.0, rng.uniform() * 100.0);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let v1 = percentile(&xs, lo);
            let v2 = percentile(&xs, hi);
            assert!(v1 <= v2 + 1e-9);
            assert!(v1 >= xs[0] - 1e-9);
            assert!(v2 <= xs[xs.len() - 1] + 1e-9);
            let s = Summary::from_samples(xs).unwrap();
            assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        }
    }
}
