//! Per-switch shared-memory buffer pool (DESIGN.md §12).
//!
//! Real datacenter ASICs do not give every port a private buffer: all
//! ports' queues carve their backlog out of one shared memory pool, and
//! an admission policy decides which arrivals may take pool space. This
//! module models that layer *above* the per-port
//! [`MultiQueue`](pmsb_sched::MultiQueue):
//!
//! * [`BufferPolicy::Static`] — today's behaviour and the golden-record
//!   default: every port keeps its private `buffer_bytes` budget and the
//!   pool does nothing (a pure pass-through, byte-identical to the
//!   pre-pool simulator).
//! * [`BufferPolicy::DynamicThreshold`] — DT (Choudhury & Hahne), the
//!   commodity shared-buffer policy: a queue may only grow while its
//!   occupancy stays below `alpha ×` the *remaining free pool*, so no
//!   queue can monopolize the switch and freshly-active queues always
//!   find room.
//! * [`BufferPolicy::DelayDriven`] — BShare-style delay-driven
//!   allocation: each queue's cap is its measured drain rate times a
//!   target delay, so the admitted backlog bounds queueing delay rather
//!   than byte count. A queue draining at line rate earns a deep buffer;
//!   a starved queue is clamped to a couple of MTUs.
//!
//! Under the shared policies the per-port `MultiQueue` caps are lifted
//! (`u64::MAX`) and the pool owns every admission decision; the switch
//! total is the sum of the per-port budgets, so `static` and the shared
//! policies compare at equal total memory. All accounting is plain
//! integer arithmetic on one switch's state — no global maps, no
//! floating-point accumulation across packets — which keeps sharded runs
//! (`--sim-threads N`) byte-identical: a pool is LP-local to the one
//! logical process that owns its switch.

use pmsb_metrics::contention::ContentionSummary;

use crate::packet::MTU_WIRE_BYTES;

/// Default [`BufferPolicy::DelayDriven`] target queueing delay: 100 µs,
/// about one paper-fabric RTT — a queue is allowed to hold roughly one
/// RTT's worth of its own drain rate.
pub const DEFAULT_DELAY_TARGET_NANOS: u64 = 100_000;

/// Floor of the delay-driven per-queue cap: a starved queue may always
/// hold a couple of full-MTU packets, so a fresh queue can start
/// draining (and thereby raise its measured rate) instead of deadlocking
/// at a zero cap.
pub const DELAY_DRIVEN_FLOOR_BYTES: u64 = 2 * MTU_WIRE_BYTES;

/// How a switch's shared memory pool admits arriving packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferPolicy {
    /// Private per-port buffers, no shared pool (the default; keeps every
    /// pre-pool golden record byte-identical).
    Static,
    /// Dynamic Threshold: queue `q` may grow while
    /// `occ(q) + pkt ≤ alpha × (pool_total − pool_used)`.
    DynamicThreshold {
        /// DT scale factor (commodity defaults are 0.5–8).
        alpha: f64,
    },
    /// Delay-driven (BShare-style): queue `q` may grow while
    /// `occ(q) + pkt ≤ max(floor, drain_rate(q) × target_delay)`, with
    /// the drain rate measured per queue by an integer EWMA.
    DelayDriven {
        /// The queueing-delay bound the cap enforces, nanoseconds.
        target_delay_nanos: u64,
    },
}

impl BufferPolicy {
    /// Whether this policy routes admission through the shared pool
    /// (`false` only for [`BufferPolicy::Static`]).
    pub fn is_shared(&self) -> bool {
        !matches!(self, BufferPolicy::Static)
    }

    /// Canonical name, identical to the CLI spelling that parses back to
    /// this policy (`static`, `dt:ALPHA`, `delay:MICROS`).
    pub fn name(&self) -> String {
        match self {
            BufferPolicy::Static => "static".into(),
            BufferPolicy::DynamicThreshold { alpha } => format!("dt:{alpha}"),
            BufferPolicy::DelayDriven { target_delay_nanos } => {
                format!("delay:{}", target_delay_nanos / 1_000)
            }
        }
    }

    /// Parses a CLI buffer-policy spec: `static`, `dt:ALPHA` (DT with
    /// the given positive scale factor), or `delay[:MICROS]` (delay-
    /// driven with the given target in microseconds, default 100).
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad input and listing the accepted
    /// variants.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let bad = || format!("unknown buffer policy '{spec}' (static|dt:ALPHA|delay[:MICROS])");
        match spec.split_once(':') {
            None => match spec {
                "static" => Ok(BufferPolicy::Static),
                "delay" => Ok(BufferPolicy::DelayDriven {
                    target_delay_nanos: DEFAULT_DELAY_TARGET_NANOS,
                }),
                _ => Err(bad()),
            },
            Some(("dt", alpha)) => {
                let alpha: f64 = alpha.parse().map_err(|_| bad())?;
                if alpha > 0.0 && alpha.is_finite() {
                    Ok(BufferPolicy::DynamicThreshold { alpha })
                } else {
                    Err(format!(
                        "buffer policy 'dt' needs a positive finite ALPHA, got '{spec}' \
                         (static|dt:ALPHA|delay[:MICROS])"
                    ))
                }
            }
            Some(("delay", micros)) => {
                let micros: u64 = micros.parse().map_err(|_| bad())?;
                if micros == 0 {
                    return Err(format!(
                        "buffer policy 'delay' needs a positive target in microseconds, \
                         got '{spec}' (static|dt:ALPHA|delay[:MICROS])"
                    ));
                }
                Ok(BufferPolicy::DelayDriven {
                    target_delay_nanos: micros * 1_000,
                })
            }
            Some(_) => Err(bad()),
        }
    }
}

/// What the pool decided for one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Admitted; call [`SharedPool::commit`] once the packet is enqueued.
    Ok,
    /// Rejected: the whole pool is full (any policy).
    PoolFull,
    /// Rejected by the policy's per-queue cap while pool space remained
    /// (DT / delay-driven shielding other queues).
    PolicyCap,
}

/// Per-queue drain-rate estimator for [`BufferPolicy::DelayDriven`]:
/// an integer EWMA (`rate ← (7·rate + inst)/8`) of the instantaneous
/// rate between consecutive dequeues, clamped at the port's line rate
/// and initialized to it (a queue is presumed fast until observed slow).
#[derive(Debug, Clone, Copy)]
struct DrainEstimator {
    rate_bps: u64,
    link_rate_bps: u64,
    last_dequeue_nanos: u64,
}

impl DrainEstimator {
    fn new(link_rate_bps: u64) -> Self {
        DrainEstimator {
            rate_bps: link_rate_bps,
            link_rate_bps,
            last_dequeue_nanos: 0,
        }
    }

    fn on_dequeue(&mut self, bytes: u64, now_nanos: u64) {
        let dt = now_nanos.saturating_sub(self.last_dequeue_nanos);
        if dt > 0 {
            let inst = ((bytes as u128 * 8_000_000_000) / dt as u128)
                .min(self.link_rate_bps as u128) as u64;
            self.rate_bps = (7 * self.rate_bps + inst) / 8;
            self.last_dequeue_nanos = now_nanos;
        }
    }

    /// The backlog this queue may hold to bound its delay at `target`.
    fn cap_bytes(&self, target_delay_nanos: u64) -> u64 {
        let cap = (self.rate_bps as u128 * target_delay_nanos as u128 / 8_000_000_000) as u64;
        cap.max(DELAY_DRIVEN_FLOOR_BYTES)
    }
}

/// One switch's shared memory pool. Created unconfigured; every port
/// wired onto the switch calls [`SharedPool::attach_port`], which grows
/// the pool by the port's byte budget (so the switch total equals the
/// sum of per-port budgets and policies compare at equal memory).
#[derive(Debug)]
pub struct SharedPool {
    policy: BufferPolicy,
    total_bytes: u64,
    used_bytes: u64,
    high_water_bytes: u64,
    shared_drops: u64,
    admit_rejects: u64,
    /// Flattened per-(port, queue) drain estimators (delay-driven only;
    /// empty otherwise). `drain_offset[port] + q` indexes a queue's.
    drains: Vec<DrainEstimator>,
    drain_offset: Vec<u32>,
}

impl SharedPool {
    /// An empty pool with no ports attached yet.
    pub fn new(policy: BufferPolicy) -> Self {
        SharedPool {
            policy,
            total_bytes: 0,
            used_bytes: 0,
            high_water_bytes: 0,
            shared_drops: 0,
            admit_rejects: 0,
            drains: Vec::new(),
            drain_offset: Vec::new(),
        }
    }

    /// Grows the pool by one port's budget. Ports must attach in port-
    /// index order (the wiring order), so the drain-estimator layout
    /// matches the switch's port numbering. The first attach fixes the
    /// pool's policy (switches are built unconfigured, before any port
    /// config is known); mixing policies on one switch is unsupported.
    pub fn attach_port(
        &mut self,
        policy: BufferPolicy,
        port_bytes: u64,
        num_queues: usize,
        link_rate_bps: u64,
    ) {
        if self.drain_offset.is_empty() {
            self.policy = policy;
        } else {
            debug_assert_eq!(self.policy, policy, "one switch cannot mix buffer policies");
        }
        self.total_bytes += port_bytes;
        self.drain_offset.push(self.drains.len() as u32);
        if matches!(self.policy, BufferPolicy::DelayDriven { .. }) {
            self.drains
                .extend((0..num_queues).map(|_| DrainEstimator::new(link_rate_bps)));
        }
    }

    /// Whether this pool owns admission (`false` for
    /// [`BufferPolicy::Static`], where ports keep private buffers).
    pub fn is_shared(&self) -> bool {
        self.policy.is_shared()
    }

    /// The admission policy.
    pub fn policy(&self) -> BufferPolicy {
        self.policy
    }

    /// Total pool memory (the sum of attached ports' budgets).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes currently admitted across all ports of the switch.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Peak pool occupancy over the run.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_bytes
    }

    /// Packets the pool refused (all causes; these are real drops).
    pub fn shared_drops(&self) -> u64 {
        self.shared_drops
    }

    /// Decides admission of a `bytes`-sized packet into queue `q` of
    /// `port`, whose current occupancy is `queue_bytes`. Rejections are
    /// counted here; an [`Admit::Ok`] takes effect only at
    /// [`SharedPool::commit`] (so a packet the per-port queue still
    /// refuses — e.g. under a fault-shrunk cap — never leaks pool space).
    pub fn try_admit(&mut self, port: usize, q: usize, queue_bytes: u64, bytes: u64) -> Admit {
        debug_assert!(self.is_shared(), "static pools never admit");
        if self.used_bytes + bytes > self.total_bytes {
            self.shared_drops += 1;
            return Admit::PoolFull;
        }
        let within_cap = match self.policy {
            BufferPolicy::Static => true,
            BufferPolicy::DynamicThreshold { alpha } => {
                let free = (self.total_bytes - self.used_bytes) as f64;
                (queue_bytes + bytes) as f64 <= alpha * free
            }
            BufferPolicy::DelayDriven { target_delay_nanos } => {
                let est = &self.drains[self.drain_offset[port] as usize + q];
                queue_bytes + bytes <= est.cap_bytes(target_delay_nanos)
            }
        };
        if !within_cap {
            self.shared_drops += 1;
            self.admit_rejects += 1;
            return Admit::PolicyCap;
        }
        Admit::Ok
    }

    /// Books an admitted packet's bytes into the pool.
    pub fn commit(&mut self, bytes: u64) {
        self.used_bytes += bytes;
        self.high_water_bytes = self.high_water_bytes.max(self.used_bytes);
    }

    /// Releases a departing packet's bytes and feeds the queue's drain
    /// estimator (delay-driven only).
    pub fn on_dequeue(&mut self, port: usize, q: usize, bytes: u64, now_nanos: u64) {
        debug_assert!(self.used_bytes >= bytes, "pool accounting underflow");
        self.used_bytes -= bytes;
        if !self.drains.is_empty() {
            self.drains[self.drain_offset[port] as usize + q].on_dequeue(bytes, now_nanos);
        }
    }

    /// This pool's contention counters as a mergeable summary.
    pub fn summary(&self) -> ContentionSummary {
        ContentionSummary {
            shared_drops: self.shared_drops,
            admit_rejects: self.admit_rejects,
            pool_high_water_bytes: self.high_water_bytes,
            pool_total_bytes: self.total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    fn pool_with_ports(policy: BufferPolicy, ports: usize, port_bytes: u64) -> SharedPool {
        let mut pool = SharedPool::new(policy);
        for _ in 0..ports {
            pool.attach_port(policy, port_bytes, 2, 10_000_000_000);
        }
        pool
    }

    #[test]
    fn policy_names_round_trip_through_parse() {
        for policy in [
            BufferPolicy::Static,
            BufferPolicy::DynamicThreshold { alpha: 1.0 },
            BufferPolicy::DynamicThreshold { alpha: 0.5 },
            BufferPolicy::DelayDriven {
                target_delay_nanos: DEFAULT_DELAY_TARGET_NANOS,
            },
            BufferPolicy::DelayDriven {
                target_delay_nanos: 250_000,
            },
        ] {
            assert_eq!(BufferPolicy::parse(&policy.name()), Ok(policy));
        }
        assert_eq!(
            BufferPolicy::parse("delay"),
            Ok(BufferPolicy::DelayDriven {
                target_delay_nanos: DEFAULT_DELAY_TARGET_NANOS
            })
        );
    }

    #[test]
    fn parse_rejects_bad_specs_listing_variants() {
        for bad in [
            "", "shared", "dt", "dt:x", "dt:0", "dt:-1", "delay:0", "delay:x", "df:1",
        ] {
            let err = BufferPolicy::parse(bad).expect_err(bad);
            assert!(
                err.contains("static|dt:ALPHA|delay[:MICROS]"),
                "'{bad}' error must list variants: {err}"
            );
        }
        assert!(BufferPolicy::parse("dtx").unwrap_err().contains("'dtx'"));
    }

    #[test]
    fn static_pools_are_pass_through() {
        let pool = pool_with_ports(BufferPolicy::Static, 4, 1000);
        assert!(!pool.is_shared());
        assert_eq!(pool.total_bytes(), 4000);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn pool_full_rejects_any_policy() {
        let mut pool = pool_with_ports(BufferPolicy::DynamicThreshold { alpha: 8.0 }, 2, 500);
        // alpha is generous: only the hard pool bound can refuse.
        let mut q0 = 0u64;
        while pool.try_admit(0, 0, q0, 100) == Admit::Ok {
            pool.commit(100);
            q0 += 100;
        }
        assert_eq!(pool.used_bytes(), 900, "alpha 8 admits until ~full");
        assert_eq!(pool.try_admit(1, 0, 0, 200), Admit::PoolFull);
        assert!(pool.shared_drops() >= 1);
        assert_eq!(pool.high_water_bytes(), 900);
    }

    #[test]
    fn dt_cap_respected_at_every_enqueue() {
        // Stepwise invariant check: at every single admission, the
        // admitted queue's occupancy must respect the alpha cap computed
        // against the pool state the packet met, and the pool total must
        // never exceed its capacity.
        let alpha = 1.0;
        let mut pool = pool_with_ports(BufferPolicy::DynamicThreshold { alpha }, 4, 1200);
        let mut rng = SimRng::seed_from(7);
        let mut occ = [[0u64; 2]; 4]; // [port][queue]
        let mut backlog: Vec<(usize, usize, u64)> = Vec::new();
        for step in 0..5_000 {
            let port = rng.below(4);
            let q = rng.below(2);
            if rng.below(3) < 2 {
                let bytes = 50 + rng.below(200) as u64;
                let free_before = pool.total_bytes() - pool.used_bytes();
                match pool.try_admit(port, q, occ[port][q], bytes) {
                    Admit::Ok => {
                        assert!(
                            (occ[port][q] + bytes) as f64 <= alpha * free_before as f64,
                            "step {step}: admission violated the DT cap"
                        );
                        pool.commit(bytes);
                        occ[port][q] += bytes;
                        backlog.push((port, q, bytes));
                    }
                    Admit::PoolFull => {
                        assert!(pool.used_bytes() + bytes > pool.total_bytes());
                    }
                    Admit::PolicyCap => {
                        assert!((occ[port][q] + bytes) as f64 > alpha * free_before as f64);
                    }
                }
            } else if !backlog.is_empty() {
                let i = rng.below(backlog.len());
                let (port, q, bytes) = backlog.swap_remove(i);
                pool.on_dequeue(port, q, bytes, step);
                occ[port][q] -= bytes;
            }
            let admitted: u64 = occ.iter().flatten().sum();
            assert_eq!(admitted, pool.used_bytes(), "accounting drift");
            assert!(
                pool.used_bytes() <= pool.total_bytes(),
                "sum of admitted exceeded the pool"
            );
        }
        assert!(pool.shared_drops() > 0, "the workload must stress the pool");
    }

    #[test]
    fn dt_leaves_room_for_a_fresh_queue() {
        // alpha = 1 on an empty pool: one hog queue converges to half the
        // pool, leaving the other half free for newcomers.
        let mut pool = pool_with_ports(BufferPolicy::DynamicThreshold { alpha: 1.0 }, 1, 10_000);
        let mut hog = 0u64;
        while pool.try_admit(0, 0, hog, 100) == Admit::Ok {
            pool.commit(100);
            hog += 100;
        }
        assert_eq!(hog, 5_000, "hog capped at alpha/(1+alpha) of the pool");
        assert_eq!(pool.try_admit(0, 1, 0, 100), Admit::Ok, "newcomer admitted");
    }

    #[test]
    fn delay_driven_caps_follow_measured_drain_rate() {
        let target = 100_000; // 100 µs
        let policy = BufferPolicy::DelayDriven {
            target_delay_nanos: target,
        };
        let mut pool = SharedPool::new(policy);
        pool.attach_port(policy, 1_000_000, 2, 10_000_000_000);
        // At the initial (line-rate) estimate the cap is rate × delay / 8
        // = 125 KB; a full queue below that is admitted.
        assert_eq!(pool.try_admit(0, 0, 100_000, 1_000), Admit::Ok);
        pool.commit(1_000);
        // Starve queue 1: drain 1 KB over 8 ms = 1 Mbps. The EWMA needs a
        // few observations to converge down from 10 Gbps.
        pool.on_dequeue(0, 0, 1_000, 1);
        for i in 1..40u64 {
            pool.commit(1_000);
            pool.on_dequeue(0, 1, 1_000, i * 8_000_000);
        }
        // 1 Mbps × 100 µs = 12.5 bytes → clamped to the 2-MTU floor; a
        // queue already at the floor is refused even though pool space
        // abounds.
        assert_eq!(
            pool.try_admit(0, 1, DELAY_DRIVEN_FLOOR_BYTES, 1_500),
            Admit::PolicyCap
        );
        assert!(pool.used_bytes() < pool.total_bytes() / 2);
        // A fresh queue (still presumed at line rate) is admitted.
        assert_eq!(pool.try_admit(0, 0, 0, 1_500), Admit::Ok);
        assert_eq!(pool.summary().admit_rejects, 1);
    }

    #[test]
    fn summary_carries_every_counter() {
        let mut pool = pool_with_ports(BufferPolicy::DynamicThreshold { alpha: 1.0 }, 1, 1_000);
        assert_eq!(pool.try_admit(0, 0, 0, 400), Admit::Ok);
        pool.commit(400);
        assert_eq!(pool.try_admit(0, 0, 400, 400), Admit::PolicyCap);
        assert_eq!(pool.try_admit(0, 1, 0, 700), Admit::PoolFull);
        let s = pool.summary();
        assert_eq!(s.shared_drops, 2);
        assert_eq!(s.admit_rejects, 1);
        assert_eq!(s.pool_high_water_bytes, 400);
        assert_eq!(s.pool_total_bytes, 1_000);
    }
}
