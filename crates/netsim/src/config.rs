//! Switch, host and transport configuration.

use pmsb::marking::{MarkingScheme, MqEcn, PerPool, PerPort, PerQueue, Pmsb, Red, Tcn};
use pmsb::MarkPoint;
use pmsb_sched::{BufferPolicy, Dwrr, Fifo, HierSpWfq, Scheduler, StrictPriority, Wfq, Wrr};

use crate::packet::MTU_WIRE_BYTES;

/// Which ECN marking discipline switch ports run.
///
/// Thresholds are given in the paper's unit — full-MTU packets (1500 B
/// wire) — and converted to bytes internally.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkingConfig {
    /// ECN disabled (plain drop-tail TCP behaviour).
    None,
    /// Per-queue marking, every queue using the full standard threshold.
    PerQueueStandard {
        /// `K` in packets.
        threshold_pkts: u64,
    },
    /// Per-queue marking with the standard threshold split by weight
    /// (Eq. 2).
    PerQueueFractional {
        /// Total (standard) threshold in packets, apportioned by weight.
        total_pkts: u64,
    },
    /// Plain per-port marking.
    PerPort {
        /// `Port-K` in packets.
        threshold_pkts: u64,
    },
    /// Per-service-pool marking (pool = whole switch).
    PerPool {
        /// Pool threshold in packets.
        threshold_pkts: u64,
    },
    /// MQ-ECN dynamic per-queue thresholds (round-based schedulers only).
    MqEcn {
        /// Standard threshold `C·RTT·λ` in packets.
        standard_pkts: u64,
    },
    /// TCN sojourn-time marking (dequeue only).
    Tcn {
        /// Sojourn threshold `T_k` in nanoseconds.
        threshold_nanos: u64,
    },
    /// PMSB: per-port marking with selective blindness (Algorithm 1).
    Pmsb {
        /// Port threshold in packets; per-queue filters derive from the
        /// scheduler weights (Eq. 6).
        port_threshold_pkts: u64,
    },
    /// Per-queue RED with a linear probability ramp (reference [6]).
    Red {
        /// Lower threshold in packets (no marking below).
        min_pkts: u64,
        /// Upper threshold in packets (always mark at or above).
        max_pkts: u64,
        /// Marking probability at the upper threshold.
        max_p: f64,
    },
}

impl MarkingConfig {
    /// Instantiates the marking scheme for a port with the given scheduler
    /// `weights`. `None` when ECN is disabled.
    pub fn build(&self, weights: &[u64]) -> Option<Box<dyn MarkingScheme>> {
        let pkt = MTU_WIRE_BYTES;
        match self {
            MarkingConfig::None => None,
            MarkingConfig::PerQueueStandard { threshold_pkts } => Some(Box::new(
                PerQueue::standard(threshold_pkts * pkt, weights.len()),
            )),
            MarkingConfig::PerQueueFractional { total_pkts } => {
                Some(Box::new(PerQueue::fractional(total_pkts * pkt, weights)))
            }
            MarkingConfig::PerPort { threshold_pkts } => {
                Some(Box::new(PerPort::new(threshold_pkts * pkt)))
            }
            MarkingConfig::PerPool { threshold_pkts } => {
                Some(Box::new(PerPool::new(threshold_pkts * pkt)))
            }
            MarkingConfig::MqEcn { standard_pkts } => Some(Box::new(MqEcn::new(
                standard_pkts * pkt,
                weights.iter().map(|w| w * pkt).collect(),
            ))),
            MarkingConfig::Tcn { threshold_nanos } => Some(Box::new(Tcn::new(*threshold_nanos))),
            MarkingConfig::Pmsb {
                port_threshold_pkts,
            } => Some(Box::new(Pmsb::new(
                port_threshold_pkts * pkt,
                weights.to_vec(),
            ))),
            MarkingConfig::Red {
                min_pkts,
                max_pkts,
                max_p,
            } => Some(Box::new(Red::new(
                min_pkts * pkt,
                max_pkts * pkt,
                *max_p,
                weights.len(),
            ))),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MarkingConfig::None => "none",
            MarkingConfig::PerQueueStandard { .. } => "per-queue-std",
            MarkingConfig::PerQueueFractional { .. } => "per-queue-frac",
            MarkingConfig::PerPort { .. } => "per-port",
            MarkingConfig::PerPool { .. } => "per-pool",
            MarkingConfig::MqEcn { .. } => "mq-ecn",
            MarkingConfig::Tcn { .. } => "tcn",
            MarkingConfig::Pmsb { .. } => "pmsb",
            MarkingConfig::Red { .. } => "red",
        }
    }
}

/// Which scheduler switch ports run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerConfig {
    /// Single FIFO queue.
    Fifo,
    /// Strict priority over `num_queues` queues (queue 0 highest).
    Sp {
        /// Number of queues.
        num_queues: usize,
    },
    /// Weighted round robin (packets).
    Wrr {
        /// Per-queue packet weights.
        weights: Vec<u64>,
    },
    /// Deficit weighted round robin (bytes).
    Dwrr {
        /// Per-queue weights (quantum = weight × 1 MTU).
        weights: Vec<u64>,
    },
    /// Weighted fair queueing.
    Wfq {
        /// Per-queue weights.
        weights: Vec<u64>,
    },
    /// Strict priority between groups, WFQ inside each group.
    SpWfq {
        /// `group_of[q]` = priority group of queue `q` (0 = highest).
        group_of: Vec<usize>,
        /// WFQ weight of each queue inside its group.
        weights: Vec<u64>,
    },
}

impl SchedulerConfig {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerConfig::Fifo => Box::new(Fifo::new()),
            SchedulerConfig::Sp { num_queues } => Box::new(StrictPriority::new(*num_queues)),
            SchedulerConfig::Wrr { weights } => Box::new(Wrr::new(weights.clone())),
            SchedulerConfig::Dwrr { weights } => {
                Box::new(Dwrr::new(weights.clone(), MTU_WIRE_BYTES))
            }
            SchedulerConfig::Wfq { weights } => Box::new(Wfq::new(weights.clone())),
            SchedulerConfig::SpWfq { group_of, weights } => {
                Box::new(HierSpWfq::new(group_of.clone(), weights.clone()))
            }
        }
    }

    /// The per-queue weights this configuration implies (used to derive
    /// marking thresholds).
    pub fn weights(&self) -> Vec<u64> {
        match self {
            SchedulerConfig::Fifo => vec![1],
            SchedulerConfig::Sp { num_queues } => vec![1; *num_queues],
            SchedulerConfig::Wrr { weights }
            | SchedulerConfig::Dwrr { weights }
            | SchedulerConfig::Wfq { weights }
            | SchedulerConfig::SpWfq { weights, .. } => weights.clone(),
        }
    }

    /// Number of queues per port.
    pub fn num_queues(&self) -> usize {
        self.weights().len()
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerConfig::Fifo => "fifo",
            SchedulerConfig::Sp { .. } => "sp",
            SchedulerConfig::Wrr { .. } => "wrr",
            SchedulerConfig::Dwrr { .. } => "dwrr",
            SchedulerConfig::Wfq { .. } => "wfq",
            SchedulerConfig::SpWfq { .. } => "sp+wfq",
        }
    }
}

/// Per-switch configuration (applied to every output port).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Scheduling policy.
    pub scheduler: SchedulerConfig,
    /// ECN marking discipline.
    pub marking: MarkingConfig,
    /// Where the marking decision runs.
    pub mark_point: MarkPoint,
    /// Buffer budget per output port, in bytes. Under
    /// [`crate::buffer::BufferPolicy::Static`] each port owns this
    /// privately; under the shared policies the switch pool's total is
    /// the sum of its ports' budgets (equal total memory either way).
    pub buffer_bytes: u64,
    /// How the switch's memory is allocated to queues (DESIGN.md §12):
    /// private per-port buffers (the default) or a shared pool with
    /// Dynamic-Threshold or delay-driven admission.
    pub buffer: crate::buffer::BufferPolicy,
}

impl SwitchConfig {
    /// The per-port [`pmsb_sched`] buffer policy this configuration
    /// implies. Under [`crate::buffer::BufferPolicy::Static`] the port
    /// keeps its private tail-drop cap; under the shared policies the
    /// per-port cap is lifted and the switch's [`crate::buffer::SharedPool`]
    /// owns every admission decision instead.
    pub fn port_buffer_policy(&self) -> BufferPolicy {
        BufferPolicy::SharedStatic {
            cap_bytes: if self.buffer.is_shared() {
                u64::MAX
            } else {
                self.buffer_bytes
            },
        }
    }
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            scheduler: SchedulerConfig::Dwrr {
                weights: vec![1; 8],
            },
            marking: MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            mark_point: MarkPoint::Enqueue,
            // 2 MB shared per port: generous for DCTCP's shallow standing
            // queues, small enough that slow-start bursts can drop.
            buffer_bytes: 2 * 1024 * 1024,
            buffer: crate::buffer::BufferPolicy::Static,
        }
    }
}

/// Per-host configuration.
///
/// Host NICs can run the same ECN discipline as switches (a one-queue
/// "port"): this mirrors the common NS-3 setup where the RED/ECN queue
/// disc is installed on every device, and it is what lets a *single* flow
/// at host line rate still see marking — its standing queue sits at its
/// own NIC, not at the (equal-speed) switch.
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// NIC egress buffer in bytes.
    pub nic_buffer_bytes: u64,
    /// ECN marking at the NIC queue ([`MarkingConfig::None`] disables).
    pub nic_marking: MarkingConfig,
    /// Where the NIC marking decision runs.
    pub nic_mark_point: MarkPoint,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            nic_buffer_bytes: 8 * 1024 * 1024,
            nic_marking: MarkingConfig::None,
            nic_mark_point: MarkPoint::Enqueue,
        }
    }
}

/// Which simulation engine an [`Experiment`](crate::Experiment) runs.
///
/// The packet engine simulates every segment through the full
/// switch/transport machinery; the fluid engine replaces the whole run
/// with a flow-level max-min rate solve plus steady-state
/// congestion-control response curves (DESIGN.md §11); the hybrid
/// engine is fluid everywhere except that saturated ports are
/// calibrated by per-port packet micro-simulations running the real
/// scheduler and marking scheme; the regional engine embeds a
/// persistent packet-level region at a selected hot set of switch
/// ports — real scheduler, marking scheme, shared pool and ACK filter
/// — inside an otherwise fluid run (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Full packet-level discrete-event simulation (the default).
    #[default]
    Packet,
    /// Flow-level fluid model with closed-form marking onset.
    Fluid,
    /// Fluid model with packet micro-simulated saturated ports.
    Hybrid,
    /// Fluid model with a persistent packet region at hot switch ports
    /// (select them with [`RegionSpec`]).
    Regional,
}

impl EngineKind {
    /// Short name for reports and CLI values.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Packet => "packet",
            EngineKind::Fluid => "fluid",
            EngineKind::Hybrid => "hybrid",
            EngineKind::Regional => "regional",
        }
    }
}

/// Which switch ports the regional engine promotes to packet-level
/// simulation (ignored by every other [`EngineKind`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RegionSpec {
    /// A deterministic first-pass fluid solve flags the hot set: the
    /// switch ports whose saturated-time integral is within a factor of
    /// four of the busiest port's (the default).
    #[default]
    Auto,
    /// Explicit `(switch, port)` list. An empty list degenerates to the
    /// plain fluid engine (byte-identical results).
    Ports(Vec<(usize, usize)>),
}

impl RegionSpec {
    /// Canonical name, identical to the CLI spelling that parses back to
    /// this spec (`auto`, `ports=SWITCH:PORT[,SWITCH:PORT...]`).
    pub fn name(&self) -> String {
        match self {
            RegionSpec::Auto => "auto".into(),
            RegionSpec::Ports(list) => {
                let pairs: Vec<String> = list.iter().map(|(s, p)| format!("{s}:{p}")).collect();
                format!("ports={}", pairs.join(","))
            }
        }
    }

    /// Parses a CLI region spec: `auto`, or
    /// `ports=SWITCH:PORT[,SWITCH:PORT...]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad input and listing the accepted
    /// variants.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let bad =
            || format!("unknown region spec '{spec}' (auto|ports=SWITCH:PORT[,SWITCH:PORT...])");
        if spec == "auto" {
            return Ok(RegionSpec::Auto);
        }
        let Some(list) = spec.strip_prefix("ports=") else {
            return Err(bad());
        };
        if list.is_empty() {
            return Err(format!(
                "region spec 'ports=' needs at least one SWITCH:PORT pair, got '{spec}' \
                 (auto|ports=SWITCH:PORT[,SWITCH:PORT...])"
            ));
        }
        let mut ports = Vec::new();
        for pair in list.split(',') {
            let parsed = pair
                .split_once(':')
                .and_then(|(s, p)| Some((s.parse().ok()?, p.parse().ok()?)));
            match parsed {
                Some(sp) => ports.push(sp),
                None => {
                    return Err(format!(
                        "region port '{pair}' is not SWITCH:PORT, got '{spec}' \
                         (auto|ports=SWITCH:PORT[,SWITCH:PORT...])"
                    ))
                }
            }
        }
        Ok(RegionSpec::Ports(ports))
    }
}

/// How a sender responds to honoured ECN-Echo signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcnResponse {
    /// DCTCP: estimate the marked fraction `alpha` per window and cut
    /// `cwnd ← cwnd·(1 − α/2)` once per window.
    #[default]
    Dctcp,
    /// Classic ECN (RFC 3168): halve the window once per RTT on any mark,
    /// like a loss. Kept as a contrast baseline for ablations.
    Classic,
}

/// Which end-host transport the simulation runs.
///
/// Selects the concrete state machine behind
/// [`TransportSender`](crate::transport::TransportSender) /
/// [`TransportReceiver`](crate::transport::TransportReceiver); enum
/// dispatch keeps the per-event hot path monomorphic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// DCTCP: per-window `alpha` EWMA with gentle multiplicative decrease.
    #[default]
    Dctcp,
    /// TCP NewReno with the classic RFC 3168 ECN response: halve at most
    /// once per RTT on ECN-Echo, CWR signalling, no `alpha` estimator.
    NewReno,
}

impl TransportKind {
    /// Short name for reports and CLI values.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Dctcp => "dctcp",
            TransportKind::NewReno => "newreno",
        }
    }
}

/// Transport parameters (shared across transport kinds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportConfig {
    /// Which transport state machine endpoints run.
    pub kind: TransportKind,
    /// Maximum segment size (payload bytes).
    pub mss: u64,
    /// Initial congestion window in segments (the paper uses 16).
    pub init_cwnd_pkts: u64,
    /// DCTCP `g` (EWMA gain for `alpha`).
    pub g: f64,
    /// Minimum retransmission timeout, nanoseconds.
    pub rto_min_nanos: u64,
    /// RTO before any RTT sample, nanoseconds.
    pub rto_init_nanos: u64,
    /// Socket send-buffer bound on the congestion window, bytes.
    pub max_cwnd_bytes: u64,
    /// Congestion response to ECN marks.
    pub ecn_response: EcnResponse,
    /// Receiver ACK coalescing: ACK every `m` data packets (1 = ACK every
    /// packet). With `m > 1` the receiver runs the DCTCP delayed-ACK ECE
    /// state machine: any change of the observed CE state forces an
    /// immediate ACK so the mark fraction survives coalescing.
    pub ack_every_packets: u64,
    /// Delayed-ACK flush timeout, nanoseconds (only used when
    /// `ack_every_packets > 1`).
    pub delack_timeout_nanos: u64,
    /// PMSB(e): ignore ECN-Echo when the ACK's measured RTT is below this
    /// threshold (nanoseconds). `None` disables the end-host rule.
    pub pmsbe_rtt_threshold_nanos: Option<u64>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            kind: TransportKind::default(),
            mss: crate::packet::DEFAULT_MSS,
            init_cwnd_pkts: 16,
            g: 1.0 / 16.0,
            rto_min_nanos: 2_000_000,   // 2 ms
            rto_init_nanos: 10_000_000, // 10 ms
            max_cwnd_bytes: 1_500_000,  // ~1000 segments
            ecn_response: EcnResponse::Dctcp,
            ack_every_packets: 1,
            delack_timeout_nanos: 500_000, // 0.5 ms
            pmsbe_rtt_threshold_nanos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_configs_build_the_right_scheme() {
        let w = vec![1u64, 3];
        assert!(MarkingConfig::None.build(&w).is_none());
        let names = [
            (
                MarkingConfig::PerQueueStandard { threshold_pkts: 16 },
                "per-queue",
            ),
            (
                MarkingConfig::PerQueueFractional { total_pkts: 16 },
                "per-queue",
            ),
            (MarkingConfig::PerPort { threshold_pkts: 16 }, "per-port"),
            (MarkingConfig::PerPool { threshold_pkts: 16 }, "per-pool"),
            (MarkingConfig::MqEcn { standard_pkts: 65 }, "mq-ecn"),
            (
                MarkingConfig::Tcn {
                    threshold_nanos: 78_200,
                },
                "tcn",
            ),
            (
                MarkingConfig::Pmsb {
                    port_threshold_pkts: 12,
                },
                "pmsb",
            ),
        ];
        for (cfg, want) in names {
            let m = cfg.build(&w).unwrap();
            assert_eq!(m.name(), want, "{cfg:?}");
        }
    }

    #[test]
    fn scheduler_configs_build_and_report_weights() {
        let cases: Vec<(SchedulerConfig, &str, usize)> = vec![
            (SchedulerConfig::Fifo, "fifo", 1),
            (SchedulerConfig::Sp { num_queues: 3 }, "sp", 3),
            (
                SchedulerConfig::Wrr {
                    weights: vec![1, 2],
                },
                "wrr",
                2,
            ),
            (
                SchedulerConfig::Dwrr {
                    weights: vec![1, 2],
                },
                "dwrr",
                2,
            ),
            (
                SchedulerConfig::Wfq {
                    weights: vec![1, 1],
                },
                "wfq",
                2,
            ),
            (
                SchedulerConfig::SpWfq {
                    group_of: vec![0, 1, 1],
                    weights: vec![1, 1, 1],
                },
                "sp+wfq",
                3,
            ),
        ];
        for (cfg, name, n) in cases {
            let s = cfg.build();
            assert_eq!(s.name(), name);
            assert_eq!(cfg.num_queues(), n);
            assert_eq!(s.num_queues(), n);
        }
    }

    #[test]
    fn round_based_schedulers_expose_round_time() {
        assert!(SchedulerConfig::Dwrr {
            weights: vec![1, 1]
        }
        .build()
        .round_time_nanos()
        .is_some());
        assert!(SchedulerConfig::Wrr {
            weights: vec![1, 1]
        }
        .build()
        .round_time_nanos()
        .is_some());
        assert!(SchedulerConfig::Wfq {
            weights: vec![1, 1]
        }
        .build()
        .round_time_nanos()
        .is_none());
        assert!(SchedulerConfig::Sp { num_queues: 2 }
            .build()
            .round_time_nanos()
            .is_none());
    }

    #[test]
    fn region_specs_round_trip_through_parse() {
        for spec in [
            RegionSpec::Auto,
            RegionSpec::Ports(vec![(0, 2)]),
            RegionSpec::Ports(vec![(3, 1), (0, 0), (12, 25)]),
        ] {
            assert_eq!(RegionSpec::parse(&spec.name()), Ok(spec));
        }
    }

    #[test]
    fn region_spec_parse_rejects_bad_specs_listing_variants() {
        for bad in [
            "",
            "all",
            "ports",
            "ports=",
            "ports=1",
            "ports=1:2:3",
            "ports=x:1",
        ] {
            let err = RegionSpec::parse(bad).expect_err(bad);
            assert!(
                err.contains("auto|ports=SWITCH:PORT[,SWITCH:PORT...]"),
                "'{bad}' error must list variants: {err}"
            );
        }
        assert!(RegionSpec::parse("portsy")
            .unwrap_err()
            .contains("'portsy'"));
        assert!(RegionSpec::parse("ports=1:2,zz")
            .unwrap_err()
            .contains("'zz'"));
    }

    #[test]
    fn defaults_are_sane() {
        let t = TransportConfig::default();
        assert_eq!(t.kind, TransportKind::Dctcp);
        assert_eq!(t.kind.name(), "dctcp");
        assert_eq!(TransportKind::NewReno.name(), "newreno");
        assert_eq!(t.mss, 1460);
        assert_eq!(t.init_cwnd_pkts, 16);
        assert!(t.pmsbe_rtt_threshold_nanos.is_none());
        let s = SwitchConfig::default();
        assert_eq!(s.mark_point, MarkPoint::Enqueue);
        assert!(s.buffer_bytes > 0);
        assert_eq!(s.buffer, crate::buffer::BufferPolicy::Static);
        assert_eq!(
            s.port_buffer_policy(),
            BufferPolicy::SharedStatic {
                cap_bytes: s.buffer_bytes
            }
        );
        let shared = SwitchConfig {
            buffer: crate::buffer::BufferPolicy::DynamicThreshold { alpha: 1.0 },
            ..SwitchConfig::default()
        };
        assert_eq!(
            shared.port_buffer_policy(),
            BufferPolicy::SharedStatic {
                cap_bytes: u64::MAX
            },
            "shared policies lift the per-port cap; the pool admits instead"
        );
    }
}
