//! The engine seam: one dispatch point every simulation engine
//! implements.
//!
//! [`Experiment::run_until_nanos`](crate::Experiment::run_until_nanos)
//! used to hardcode three engine modes inline; this module lifts that
//! into an [`Engine`] trait with one implementation per
//! [`EngineKind`], so capability checks (fault schedules, shared
//! buffer policies, `--sim-threads`) live next to the engine that
//! defines them instead of in a growing if-chain. Adding an engine
//! means adding an impl here — the experiment layer never changes.

use crate::config::EngineKind;
use crate::experiment::{Experiment, Topology};
use crate::world::RunResults;

/// One simulation engine: its capabilities and its run entry point.
pub(crate) trait Engine {
    /// The [`EngineKind`] this engine implements.
    fn kind(&self) -> EngineKind;
    /// Whether the engine honours an attached
    /// [`FaultSchedule`](pmsb_faults::FaultSchedule).
    fn supports_faults(&self) -> bool {
        false
    }
    /// Whether the engine models the shared buffer policies
    /// ([`crate::buffer::BufferPolicy`] other than `Static`).
    fn supports_shared_buffers(&self) -> bool {
        false
    }
    /// Whether `sim_threads > 1` changes how the engine runs. Engines
    /// answering `false` are single-threaded by design; a requested
    /// thread count is ignored (with a stderr note, see [`run`]).
    fn uses_sim_threads(&self) -> bool {
        false
    }
    /// Runs the (validated) experiment until `end_nanos`.
    fn run(&self, e: Experiment, end_nanos: u64) -> RunResults;
}

struct PacketEngine;

impl Engine for PacketEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Packet
    }
    fn supports_faults(&self) -> bool {
        true
    }
    fn supports_shared_buffers(&self) -> bool {
        true
    }
    fn uses_sim_threads(&self) -> bool {
        true
    }
    fn run(&self, e: Experiment, end_nanos: u64) -> RunResults {
        let num_switches = match e.topology {
            Topology::Dumbbell { .. } => 1,
            Topology::LeafSpine { leaves, spines, .. } => leaves + spines,
            Topology::FatTree { k } => 5 * k * k / 4,
        };
        let threads = e.sim_threads.min(num_switches);
        if threads > 1 {
            return crate::parallel::run_sharded(&e, threads, end_nanos);
        }
        e.build_world().run_until_nanos(end_nanos)
    }
}

struct FluidEngine;

impl Engine for FluidEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Fluid
    }
    fn run(&self, e: Experiment, end_nanos: u64) -> RunResults {
        crate::fluid::run(&e, end_nanos)
    }
}

struct HybridEngine;

impl Engine for HybridEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Hybrid
    }
    fn run(&self, e: Experiment, end_nanos: u64) -> RunResults {
        crate::fluid::run(&e, end_nanos)
    }
}

struct RegionalEngine;

impl Engine for RegionalEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Regional
    }
    fn supports_shared_buffers(&self) -> bool {
        // The packet region runs the real `SharedPool` admission at its
        // hot ports; ports outside the region stay fluid (where a
        // standing queue at the marking onset never contends for pool
        // space anyway).
        true
    }
    fn run(&self, e: Experiment, end_nanos: u64) -> RunResults {
        crate::fluid::run(&e, end_nanos)
    }
}

/// The engine implementing `kind`.
fn engine_for(kind: EngineKind) -> &'static dyn Engine {
    match kind {
        EngineKind::Packet => &PacketEngine,
        EngineKind::Fluid => &FluidEngine,
        EngineKind::Hybrid => &HybridEngine,
        EngineKind::Regional => &RegionalEngine,
    }
}

/// Validates `e` against its engine's capabilities and runs it.
///
/// # Panics
///
/// Panics when the experiment asks for a capability its engine does not
/// implement (fault schedules or shared buffer policies on a flow-level
/// engine).
pub(crate) fn run(e: Experiment, end_nanos: u64) -> RunResults {
    let engine = engine_for(e.engine);
    if !engine.supports_faults() {
        assert!(
            e.faults.is_none(),
            "the {} engine does not support fault schedules (packet only)",
            engine.kind().name()
        );
    }
    if !engine.supports_shared_buffers() {
        assert!(
            !e.switch_cfg.buffer.is_shared(),
            "the {} engine supports only the 'static' buffer policy, \
             got '{}' (accepted: static|dt:ALPHA|delay[:MICROS] on the packet and \
             regional engines, static only on fluid/hybrid)",
            engine.kind().name(),
            e.switch_cfg.buffer.name()
        );
    }
    if !engine.uses_sim_threads() && e.sim_threads > 1 {
        eprintln!(
            "note: --sim-threads {} ignored: the {} engine is single-threaded by design \
             (results are byte-identical across thread counts)",
            e.sim_threads,
            engine.kind().name()
        );
    }
    engine.run(e, end_nanos)
}
