//! High-level experiment builder: topology + scheme + flows → results.

use crate::topology;
use pmsb::MarkPoint;
use pmsb_workload::PatternSpec;

pub use crate::config::{
    EngineKind, HostConfig, MarkingConfig, RegionSpec, SchedulerConfig, SwitchConfig,
    TransportConfig, TransportKind,
};
pub use crate::partition::PartitionStrategy;
pub use crate::trace::TraceConfig;
pub use crate::world::{FlowDesc, RunResults, StreamStats};
pub use pmsb_faults::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};

/// What a finished experiment returns; see [`RunResults`] for the fields.
pub type ExperimentResult = RunResults;

/// Which fabric the experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Topology {
    /// `num_senders` senders → 1 receiver through one switch.
    Dumbbell { num_senders: usize },
    /// Leaf–spine fabric.
    LeafSpine {
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
    },
    /// Three-tier fat-tree with parameter `k` (`k³/4` hosts).
    FatTree { k: usize },
}

/// A streaming workload attached to an experiment (see
/// [`Experiment::stream`]).
#[derive(Debug, Clone)]
pub(crate) struct StreamSpec {
    pub(crate) pattern: PatternSpec,
    pub(crate) seed: u64,
    pub(crate) total_flows: u64,
    pub(crate) record_exact: bool,
}

/// A declarative experiment: pick a topology, a marking scheme, a
/// scheduler and flows; run; harvest results.
///
/// # Example
///
/// ```
/// use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};
///
/// let mut exp = Experiment::dumbbell(2, 2)
///     .marking(MarkingConfig::PerPort { threshold_pkts: 16 })
///     .scheduler(SchedulerConfig::Wfq { weights: vec![1, 1] });
/// exp.add_flow(FlowDesc::bulk(0, 2, 0, 100_000));
/// let res = exp.run_for_millis(20);
/// assert_eq!(res.fct.len(), 1);
/// ```
#[derive(Debug)]
pub struct Experiment {
    pub(crate) topology: Topology,
    pub(crate) switch_cfg: SwitchConfig,
    pub(crate) host_cfg: HostConfig,
    pub(crate) transport: TransportConfig,
    pub(crate) link_rate_bps: u64,
    pub(crate) link_delay_nanos: u64,
    trace: TraceConfig,
    pub(crate) flows: Vec<FlowDesc>,
    /// `None` = mirror the switch marking onto host NICs (the NS-3-style
    /// default); `Some(cfg)` overrides it.
    host_nic_marking: Option<MarkingConfig>,
    pub(crate) faults: Option<FaultSchedule>,
    /// Streaming workload; `None` = the static `flows` list.
    pub(crate) stream: Option<StreamSpec>,
    /// Worker threads for the run itself (conservative parallel DES,
    /// DESIGN.md §8). 1 = the plain sequential event loop.
    pub(crate) sim_threads: usize,
    /// Which engine executes the run (DESIGN.md §11).
    pub(crate) engine: EngineKind,
    /// Which switch ports the regional engine promotes to packet level
    /// (DESIGN.md §13); ignored by the other engines.
    pub(crate) region: RegionSpec,
    /// How switches are assigned to LPs when `sim_threads > 1`. The
    /// conservative protocol is byte-identical under any partition, so
    /// this only affects speed, never results.
    pub(crate) partition: PartitionStrategy,
}

impl Experiment {
    /// A dumbbell with `num_senders` senders (hosts `0..num_senders`), one
    /// receiver (host `num_senders`), and `num_queues` equal-weight DWRR
    /// queues per port. 10 Gbps links, 5 µs propagation (≈ 22 µs unloaded
    /// RTT).
    pub fn dumbbell(num_senders: usize, num_queues: usize) -> Self {
        Experiment {
            topology: Topology::Dumbbell { num_senders },
            switch_cfg: SwitchConfig {
                scheduler: SchedulerConfig::Dwrr {
                    weights: vec![1; num_queues],
                },
                ..SwitchConfig::default()
            },
            host_cfg: HostConfig::default(),
            transport: TransportConfig::default(),
            link_rate_bps: 10_000_000_000,
            link_delay_nanos: 5_000,
            trace: TraceConfig::off(),
            flows: Vec::new(),
            host_nic_marking: None,
            faults: None,
            stream: None,
            sim_threads: 1,
            engine: EngineKind::Packet,
            region: RegionSpec::Auto,
            partition: PartitionStrategy::default(),
        }
    }

    /// The paper's §VI-B fabric: 4 leaves × 12 hosts, 4 spines, 10 Gbps,
    /// 8 equal-weight queues. Per-link delay is 9 µs so the unloaded
    /// inter-rack RTT (8 link traversals + serialization ≈ 80 µs) sits
    /// just under the paper's 85.2 µs PMSB(e) threshold — a mark carried
    /// by an unqueued ACK is ignored, any real queueing is honoured.
    pub fn paper_leaf_spine() -> Self {
        Experiment {
            topology: Topology::LeafSpine {
                leaves: 4,
                spines: 4,
                hosts_per_leaf: 12,
            },
            switch_cfg: SwitchConfig {
                scheduler: SchedulerConfig::Dwrr {
                    weights: vec![1; 8],
                },
                ..SwitchConfig::default()
            },
            host_cfg: HostConfig::default(),
            transport: TransportConfig::default(),
            link_rate_bps: 10_000_000_000,
            link_delay_nanos: 9_000,
            trace: TraceConfig::off(),
            flows: Vec::new(),
            host_nic_marking: None,
            faults: None,
            stream: None,
            sim_threads: 1,
            engine: EngineKind::Packet,
            region: RegionSpec::Auto,
            partition: PartitionStrategy::default(),
        }
    }

    /// A `k`-ary fat-tree fabric ([`topology::fat_tree`]): `k³/4` hosts,
    /// `(5/4)k²` switches, full bisection bandwidth with per-flow ECMP
    /// over the `(k/2)²` equal-cost core paths. 10 Gbps links with 1 µs
    /// propagation, 8 equal-weight DWRR queues — the maximum inter-pod
    /// unloaded RTT (12 link traversals ≈ 12 µs plus serialization) stays
    /// well under the PMSB(e) threshold scale, so the selective-blindness
    /// rule keeps its meaning on the deeper fabric.
    ///
    /// # Panics
    ///
    /// Panics (at build time) unless `k` is even and at least 4.
    pub fn fat_tree(k: usize) -> Self {
        let mut e = Experiment::paper_leaf_spine();
        e.topology = Topology::FatTree { k };
        e.link_delay_nanos = 1_000;
        e
    }

    /// A custom leaf–spine fabric.
    pub fn leaf_spine(leaves: usize, spines: usize, hosts_per_leaf: usize) -> Self {
        let mut e = Experiment::paper_leaf_spine();
        e.topology = Topology::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
        };
        e
    }

    /// Sets the ECN marking scheme.
    pub fn marking(mut self, marking: MarkingConfig) -> Self {
        self.switch_cfg.marking = marking;
        self
    }

    /// Sets the packet scheduler (and thereby the queue count/weights).
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.switch_cfg.scheduler = scheduler;
        self
    }

    /// Sets where the marking decision runs (enqueue vs dequeue).
    pub fn mark_point(mut self, point: MarkPoint) -> Self {
        self.switch_cfg.mark_point = point;
        self
    }

    /// Overrides the marking discipline at host NICs. By default hosts
    /// mirror the switch marking (like installing the same queue disc on
    /// every NS-3 device); pass [`MarkingConfig::None`] to disable NIC
    /// marking entirely.
    pub fn host_nic_marking(mut self, marking: MarkingConfig) -> Self {
        self.host_nic_marking = Some(marking);
        self
    }

    /// Overrides the transport parameters.
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Enables PMSB(e) at every sender with the given RTT threshold.
    pub fn pmsbe_rtt_threshold_nanos(mut self, nanos: u64) -> Self {
        self.transport.pmsbe_rtt_threshold_nanos = Some(nanos);
        self
    }

    /// Selects the transport state machine endpoints run (default DCTCP),
    /// keeping the other transport parameters.
    pub fn transport_kind(mut self, kind: TransportKind) -> Self {
        self.transport.kind = kind;
        self
    }

    /// Sets all link rates (default 10 Gbps).
    pub fn link_rate_gbps(mut self, gbps: u64) -> Self {
        self.link_rate_bps = gbps * 1_000_000_000;
        self
    }

    /// Sets all links' propagation delay in nanoseconds.
    pub fn link_delay_nanos(mut self, nanos: u64) -> Self {
        self.link_delay_nanos = nanos;
        self
    }

    /// Sets the per-port buffer budget in bytes (under a shared
    /// [`crate::buffer::BufferPolicy`] the switch pool totals the sum of
    /// its ports' budgets, so policies compare at equal memory).
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.switch_cfg.buffer_bytes = bytes;
        self
    }

    /// Selects the switch buffer allocation policy (default
    /// [`crate::buffer::BufferPolicy::Static`]: private per-port buffers,
    /// byte-identical to the pre-pool simulator). The shared policies —
    /// Dynamic Threshold and delay-driven — route every enqueue through
    /// the switch's memory pool (DESIGN.md §12). Packet engine only.
    pub fn buffer(mut self, policy: crate::buffer::BufferPolicy) -> Self {
        self.switch_cfg.buffer = policy;
        self
    }

    /// Installs a trace configuration.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a fault schedule (link dynamics, loss, corruption, buffer
    /// shrink). Targets are validated against the topology when the world
    /// is built; an out-of-range target panics at run start.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Runs the simulation itself on `n` worker threads (conservative
    /// parallel DES with deterministic lookahead windows, DESIGN.md §8).
    /// Results are byte-identical for any value; `1` (the default) takes
    /// the plain sequential event loop. Capped at the switch count — a
    /// dumbbell always runs sequentially.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Selects how switches are assigned to LPs when `sim_threads > 1`
    /// (default [`PartitionStrategy::Traffic`]). The conservative
    /// protocol is byte-identical under any partition, so this is purely
    /// a performance knob.
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = strategy;
        self
    }

    /// Selects the simulation engine (default [`EngineKind::Packet`]).
    /// The fluid, hybrid, and regional engines replace per-packet
    /// simulation with a flow-level max-min rate solve (DESIGN.md §11,
    /// §13); they support static and streaming workloads but not fault
    /// schedules or port traces, and they run single-threaded
    /// (`sim_threads` is ignored with a stderr note — the solve is
    /// already orders of magnitude faster than the packet engine, and
    /// ignoring it keeps results byte-identical across thread counts by
    /// construction).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects which switch ports the regional engine simulates at
    /// packet level (default [`RegionSpec::Auto`]: a deterministic
    /// first-pass fluid solve flags the hot set). Ignored by the other
    /// engines; an empty explicit port list degenerates to the plain
    /// fluid engine with byte-identical results.
    pub fn region(mut self, spec: RegionSpec) -> Self {
        self.region = spec;
        self
    }

    /// Dumbbell only: watches the bottleneck (receiver-facing) port with
    /// the given occupancy sample interval, keeping any other trace
    /// settings.
    ///
    /// # Panics
    ///
    /// Panics on a non-dumbbell topology.
    pub fn watch_bottleneck(mut self, sample_interval_nanos: u64) -> Self {
        let Topology::Dumbbell { num_senders } = self.topology else {
            panic!("watch_bottleneck only applies to the dumbbell topology");
        };
        self.trace.sample_interval_nanos = Some(sample_interval_nanos);
        self.trace.watch_ports = vec![(0, num_senders)];
        self
    }

    /// Enables per-ACK RTT recording at every sender.
    pub fn record_rtt(mut self) -> Self {
        self.trace.record_rtt = true;
        self
    }

    /// The current transport configuration (for deriving thresholds).
    pub fn transport_config(&self) -> &TransportConfig {
        &self.transport
    }

    /// Number of hosts the chosen topology provides.
    pub fn num_hosts(&self) -> usize {
        match self.topology {
            Topology::Dumbbell { num_senders } => num_senders + 1,
            Topology::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            Topology::FatTree { k } => k * k * k / 4,
        }
    }

    /// Attaches a streaming workload: `total_flows` flows drawn lazily
    /// from `pattern` with `seed`, injected as they arrive and torn down
    /// as they complete, so memory is bounded by the concurrent flow
    /// population. Mutually exclusive with [`Experiment::add_flow`];
    /// results come back in [`RunResults::stream`].
    pub fn stream(mut self, pattern: PatternSpec, seed: u64, total_flows: u64) -> Self {
        assert!(
            self.flows.is_empty(),
            "stream() and add_flow() are mutually exclusive"
        );
        self.stream = Some(StreamSpec {
            pattern,
            seed,
            total_flows,
            record_exact: false,
        });
        self
    }

    /// Additionally records every streamed FCT in the exhaustive
    /// recorder — for differential sketch-vs-exact validation on small
    /// runs. Call after [`Experiment::stream`].
    pub fn stream_record_exact(mut self) -> Self {
        self.stream
            .as_mut()
            .expect("stream_record_exact() requires stream()")
            .record_exact = true;
        self
    }

    /// Registers a flow.
    pub fn add_flow(&mut self, flow: FlowDesc) {
        self.flows.push(flow);
    }

    /// Registers many flows.
    pub fn add_flows(&mut self, flows: impl IntoIterator<Item = FlowDesc>) {
        self.flows.extend(flows);
    }

    /// Builds the world and runs until `end_nanos` on the configured
    /// engine (the dispatch itself lives behind the [`crate::engine`]
    /// seam).
    pub fn run_until_nanos(mut self, end_nanos: u64) -> ExperimentResult {
        self.host_cfg.nic_marking = self
            .host_nic_marking
            .take()
            .unwrap_or_else(|| self.switch_cfg.marking.clone());
        self.host_cfg.nic_mark_point = self.switch_cfg.mark_point;
        crate::engine::run(self, end_nanos)
    }

    /// Builds one fully wired, traced, faulted, flow-loaded world from
    /// this spec. Callable repeatedly: the parallel runner builds one
    /// world per logical process. Expects `host_cfg.nic_marking` to have
    /// been resolved by [`Experiment::run_until_nanos`].
    pub(crate) fn build_world(&self) -> crate::world::World {
        let mut world = match self.topology {
            Topology::Dumbbell { num_senders } => topology::dumbbell(
                num_senders,
                self.link_rate_bps,
                self.link_delay_nanos,
                &self.switch_cfg,
                &self.host_cfg,
                self.transport,
            ),
            Topology::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => topology::leaf_spine(
                leaves,
                spines,
                hosts_per_leaf,
                self.link_rate_bps,
                self.link_delay_nanos,
                &self.switch_cfg,
                &self.host_cfg,
                self.transport,
            ),
            Topology::FatTree { k } => topology::fat_tree(
                k,
                self.link_rate_bps,
                self.link_delay_nanos,
                &self.switch_cfg,
                &self.host_cfg,
                self.transport,
            ),
        };
        world.set_trace(self.trace.clone());
        if let Some(schedule) = &self.faults {
            world.set_faults(schedule.clone());
        }
        for f in &self.flows {
            world.add_flow(*f);
        }
        if let Some(sp) = &self.stream {
            let source = sp
                .pattern
                .flows(self.num_hosts(), sp.seed, sp.total_flows)
                .map(|f| FlowDesc {
                    src_host: f.src_host,
                    dst_host: f.dst_host,
                    service: f.service,
                    size_bytes: f.size_bytes,
                    app_rate_bps: None,
                    start_nanos: f.start_nanos,
                });
            world.set_stream(Box::new(source), sp.record_exact);
        }
        world
    }

    /// Builds the world and runs for `millis` simulated milliseconds.
    pub fn run_for_millis(self, millis: u64) -> ExperimentResult {
        self.run_until_nanos(millis * 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let e = Experiment::dumbbell(4, 2)
            .marking(MarkingConfig::Tcn {
                threshold_nanos: 39_000,
            })
            .scheduler(SchedulerConfig::Wfq {
                weights: vec![1, 1],
            })
            .mark_point(MarkPoint::Dequeue)
            .link_rate_gbps(1)
            .link_delay_nanos(2_000)
            .buffer_bytes(512 * 1024)
            .record_rtt();
        assert_eq!(e.num_hosts(), 5);
    }

    #[test]
    fn dumbbell_bottleneck_watch_runs() {
        let mut e = Experiment::dumbbell(2, 2).watch_bottleneck(50_000);
        e.add_flow(FlowDesc::bulk(0, 2, 0, 500_000));
        e.add_flow(FlowDesc::bulk(1, 2, 1, 500_000));
        let res = e.run_for_millis(20);
        assert_eq!(res.fct.len(), 2);
        let trace = &res.port_traces[&(0, 2)];
        assert!(!trace.port_occupancy_pkts.is_empty());
        assert!(trace.queue_throughput[0].total_bytes() > 0);
    }

    #[test]
    fn paper_leaf_spine_smoke() {
        let mut e = Experiment::paper_leaf_spine();
        assert_eq!(e.num_hosts(), 48);
        e.add_flow(FlowDesc::bulk(0, 47, 3, 200_000));
        e.add_flow(FlowDesc::bulk(13, 25, 5, 200_000));
        let res = e.run_for_millis(50);
        assert_eq!(res.fct.len(), 2);
    }

    #[test]
    fn pmsbe_threshold_flows_through() {
        let mut e = Experiment::dumbbell(2, 2)
            .marking(MarkingConfig::PerPort { threshold_pkts: 12 })
            .pmsbe_rtt_threshold_nanos(40_000);
        e.add_flow(FlowDesc::bulk(0, 2, 0, 300_000));
        let res = e.run_for_millis(20);
        assert_eq!(res.fct.len(), 1);
    }

    #[test]
    #[should_panic(expected = "dumbbell")]
    fn watch_bottleneck_rejects_leaf_spine() {
        let _ = Experiment::paper_leaf_spine().watch_bottleneck(1000);
    }
}
