//! Per-port packet micro-simulation for the hybrid engine.
//!
//! The fluid solve decides *rates*; what it cannot see is how the
//! configured scheduler and marking scheme treat the individual queues
//! of a saturated port — per-queue vs per-port thresholds, PMSB's
//! selective blindness, DWRR interleaving. The hybrid engine recovers
//! that by running a short, deterministic packet simulation of just the
//! saturated port: queues pre-filled to the marking onset, one MTU
//! packet stream per flow at its allocated (bucket-quantized) rate, the
//! real `MultiQueue`/`Scheduler`/`MarkingScheme` objects doing the
//! work. Two measurements come back:
//!
//! * per-queue **mark eligibility** — the fraction of a queue's
//!   arrivals the scheme marked while the port sat at its operating
//!   point (selective blindness shows up here as eligibility ≈ 0),
//! * the **mean port occupancy**, which replaces the closed-form onset
//!   in the queue-delay term of the FCT.
//!
//! The mix is one entry per *active queue* — the queue's aggregate
//! allocated rate quantized to eight buckets of the link rate — not one
//! entry per flow: the marker and scheduler see queue occupancies, so
//! per-flow granularity in the key would only shatter the memoization
//! (every arrival would mint a novel signature) without changing what
//! the calibration measures. Keyed this way, the (highly repetitive)
//! saturated-port populations of incast and shuffle epochs collapse to
//! a handful of distinct calibrations per run. The cache is capped;
//! overflow falls back to the closed-form calibration, never to an
//! unbounded sim population.

use std::collections::HashMap;

use pmsb::marking::MarkingScheme;
use pmsb::MarkPoint;
use pmsb_sched::{MultiQueue, SchedItem};
use pmsb_simcore::{EventQueue, SimTime};

use crate::config::{MarkingConfig, SchedulerConfig};
use crate::packet::MTU_WIRE_BYTES;

/// Rate-quantization buckets per link rate. Coarse on purpose: marking
/// eligibility moves slowly with the rate split, and every extra bucket
/// multiplies the signature space — and therefore the number of
/// micro-sims a run pays for — without moving the measurement.
pub(super) const RATE_BUCKETS: u64 = 8;
/// Total arrivals simulated per calibration.
const TOTAL_ARRIVALS: u64 = 2048;
/// Arrivals ignored while the port settles.
const WARMUP_ARRIVALS: u64 = 512;
/// Memoization cap — a hard bound on calibration work per run; beyond
/// it the closed form takes over.
const CACHE_CAP: usize = 2048;

/// One queue's aggregate packet stream into the micro-simulated port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(super) struct MicroStream {
    /// Destination queue (`service % num_queues`).
    pub(super) queue: u16,
    /// The queue's aggregate allocated rate quantized to `RATE_BUCKETS`
    /// of the link rate.
    pub(super) bucket: u8,
}

/// What one calibration measured.
#[derive(Debug, Clone)]
pub(super) struct PortCal {
    /// Per-queue marked fraction of arrivals, in ppm.
    pub(super) elig_ppm: Vec<u32>,
    /// Mean port occupancy over the measured window, bytes.
    pub(super) mean_occ_bytes: u64,
}

impl PortCal {
    /// The closed-form fallback: every queue fully eligible, occupancy
    /// pinned at the onset.
    pub(super) fn closed_form(num_queues: usize, onset_bytes: u64) -> Self {
        PortCal {
            elig_ppm: vec![1_000_000; num_queues],
            mean_occ_bytes: onset_bytes,
        }
    }
}

/// A fixed-size MTU packet in the micro-sim.
#[derive(Debug)]
struct MicroPkt {
    enqueued_at_nanos: u64,
}

impl SchedItem for MicroPkt {
    fn len_bytes(&self) -> u64 {
        MTU_WIRE_BYTES
    }
}

enum MicroEv {
    Arrival { stream: usize },
    TxDone,
}

/// The micro-sim's marking view: the shared packet-port adapter with
/// the port as its own pool.
type MicroView<'a> = crate::world::port::PacketPortView<'a, MicroPkt>;

/// Memoized micro-sim calibrations for one switch-port configuration.
///
/// Calibrations are arena-stored and handed out as indices: the hot
/// path (one lookup per saturated link per solve) then costs one slice
/// hash — no allocation, no `PortCal` clone.
pub(super) struct MicroCache {
    marking: MarkingConfig,
    scheduler: SchedulerConfig,
    mark_point: MarkPoint,
    buffer_bytes: u64,
    link_rate_bps: u64,
    map: HashMap<Vec<MicroStream>, u32>,
    /// Closed-form fallback entries, keyed by onset.
    closed: HashMap<u64, u32>,
    cals: Vec<PortCal>,
}

impl MicroCache {
    pub(super) fn new(
        marking: MarkingConfig,
        scheduler: SchedulerConfig,
        mark_point: MarkPoint,
        buffer_bytes: u64,
        link_rate_bps: u64,
    ) -> Self {
        MicroCache {
            marking,
            scheduler,
            mark_point,
            buffer_bytes,
            link_rate_bps,
            map: HashMap::new(),
            closed: HashMap::new(),
            cals: Vec::new(),
        }
    }

    /// The calibration behind a handle returned by [`Self::calibrate`].
    pub(super) fn cal(&self, idx: u32) -> &PortCal {
        &self.cals[idx as usize]
    }

    fn closed_form_idx(&mut self, onset_bytes: u64) -> u32 {
        let nq = self.scheduler.num_queues();
        *self.closed.entry(onset_bytes).or_insert_with(|| {
            self.cals.push(PortCal::closed_form(nq, onset_bytes));
            (self.cals.len() - 1) as u32
        })
    }

    /// Calibration handle for a saturated port carrying `mix` (one
    /// ascending-queue entry per active queue). `onset_bytes` seeds the
    /// pre-fill and the closed-form fallback.
    pub(super) fn calibrate(&mut self, mix: &[MicroStream], onset_bytes: u64) -> u32 {
        if mix.is_empty() {
            return self.closed_form_idx(onset_bytes);
        }
        if let Some(&i) = self.map.get(mix) {
            return i;
        }
        if self.map.len() >= CACHE_CAP {
            return self.closed_form_idx(onset_bytes);
        }
        let cal = run_micro(
            &self.marking,
            &self.scheduler,
            self.mark_point,
            self.buffer_bytes,
            self.link_rate_bps,
            mix,
            onset_bytes,
        );
        self.cals.push(cal);
        let idx = (self.cals.len() - 1) as u32;
        self.map.insert(mix.to_vec(), idx);
        idx
    }
}

/// Runs one deterministic port calibration; see the module docs.
fn run_micro(
    marking: &MarkingConfig,
    scheduler: &SchedulerConfig,
    mark_point: MarkPoint,
    buffer_bytes: u64,
    link_rate_bps: u64,
    mix: &[MicroStream],
    onset_bytes: u64,
) -> PortCal {
    let weights = scheduler.weights();
    let nq = weights.len();
    let mut mq: MultiQueue<MicroPkt> = MultiQueue::new(scheduler.build(), buffer_bytes);
    let mut marker: Option<Box<dyn MarkingScheme>> = marking.build(&weights);
    let pkt = MTU_WIRE_BYTES;
    let ser_nanos = (pkt * 8_000_000_000) / link_rate_bps.max(1);

    // Pre-fill the active queues round-robin up to the onset plus a few
    // packets, so step-threshold schemes operate *at* their decision
    // boundary instead of spending the whole run climbing towards it.
    let mut active: Vec<u16> = mix.iter().map(|s| s.queue).collect();
    active.sort_unstable();
    active.dedup();
    let prefill_pkts = onset_bytes / pkt + 4;
    for i in 0..prefill_pkts {
        let q = active[(i % active.len() as u64) as usize] as usize;
        let _ = mq.enqueue(
            q,
            MicroPkt {
                enqueued_at_nanos: 0,
            },
            0,
        );
    }

    // Per-stream arrival periods from the bucket-centre rates, scaled so
    // the offered load is exactly the link rate: the port then holds its
    // operating point instead of draining or overflowing.
    let centre = |b: u8| (b as u64 * 2 + 1) * link_rate_bps / (2 * RATE_BUCKETS);
    let total_rate: u64 = mix.iter().map(|s| centre(s.bucket).max(1)).sum();
    let mut queue: EventQueue<MicroEv> = EventQueue::new();
    let mut periods = Vec::with_capacity(mix.len());
    for (i, s) in mix.iter().enumerate() {
        let share = centre(s.bucket).max(1) as u128;
        // period = pkt_bits / (share/total * C) nanoseconds.
        let period = ((pkt * 8_000_000_000) as u128 * total_rate as u128
            / (share * link_rate_bps.max(1) as u128))
            .max(1) as u64;
        periods.push(period);
        // Prime-ish stagger to decorrelate same-rate streams.
        let offset = (i as u64).wrapping_mul(997) % period;
        queue.push(SimTime::from_nanos(offset), MicroEv::Arrival { stream: i });
    }

    let mut arrivals_by_q = vec![0u64; nq];
    let mut marks_by_q = vec![0u64; nq];
    let mut arrivals_seen = 0u64;
    let mut busy = false;
    let mut measuring = false;
    let mut occ_integral: u128 = 0;
    let mut measure_start = 0u64;
    let mut last_t = 0u64;

    while let Some((at, ev)) = queue.pop() {
        let now = at.as_nanos();
        if measuring {
            occ_integral += mq.port_bytes() as u128 * (now - last_t) as u128;
        }
        last_t = now;
        match ev {
            MicroEv::Arrival { stream } => {
                arrivals_seen += 1;
                if arrivals_seen == WARMUP_ARRIVALS {
                    measuring = true;
                    measure_start = now;
                    occ_integral = 0;
                }
                let s = mix[stream];
                let q = s.queue as usize % nq;
                let mut marked = false;
                if mark_point == MarkPoint::Enqueue {
                    if let Some(m) = marker.as_mut() {
                        let view = MicroView {
                            mq: &mq,
                            link_rate_bps,
                            pool_bytes: None,
                            sojourn_nanos: None,
                        };
                        marked = m.should_mark(&view, q).is_mark();
                    }
                }
                if measuring {
                    arrivals_by_q[q] += 1;
                    if marked {
                        marks_by_q[q] += 1;
                    }
                }
                let _ = mq.enqueue(
                    q,
                    MicroPkt {
                        enqueued_at_nanos: now,
                    },
                    now,
                );
                if !busy {
                    if let Some((dq, dp)) = mq.dequeue(now) {
                        if mark_point == MarkPoint::Dequeue {
                            // Dequeue marking decides per departure; count
                            // departures as the eligibility denominator.
                            if let Some(m) = marker.as_mut() {
                                let view = MicroView {
                                    mq: &mq,
                                    link_rate_bps,
                                    pool_bytes: None,
                                    sojourn_nanos: Some(now.saturating_sub(dp.enqueued_at_nanos)),
                                };
                                let marked = m.should_mark(&view, dq).is_mark();
                                if measuring {
                                    arrivals_by_q[dq] += 1;
                                    if marked {
                                        marks_by_q[dq] += 1;
                                    }
                                }
                            }
                        }
                        busy = true;
                        queue.push(SimTime::from_nanos(now + ser_nanos), MicroEv::TxDone);
                    }
                }
                if arrivals_seen < TOTAL_ARRIVALS {
                    queue.push(
                        SimTime::from_nanos(now + periods[stream]),
                        MicroEv::Arrival { stream },
                    );
                }
            }
            MicroEv::TxDone => {
                busy = false;
                // Stop once the arrival phase is over; the measurement
                // window closes with the last processed event.
                if arrivals_seen >= TOTAL_ARRIVALS {
                    break;
                }
                if let Some((dq, dp)) = mq.dequeue(now) {
                    if mark_point == MarkPoint::Dequeue {
                        if let Some(m) = marker.as_mut() {
                            let view = MicroView {
                                mq: &mq,
                                link_rate_bps,
                                pool_bytes: None,
                                sojourn_nanos: Some(now.saturating_sub(dp.enqueued_at_nanos)),
                            };
                            let marked = m.should_mark(&view, dq).is_mark();
                            if measuring {
                                arrivals_by_q[dq] += 1;
                                if marked {
                                    marks_by_q[dq] += 1;
                                }
                            }
                        }
                    }
                    busy = true;
                    queue.push(SimTime::from_nanos(now + ser_nanos), MicroEv::TxDone);
                }
            }
        }
    }

    let elapsed = last_t.saturating_sub(measure_start).max(1);
    let mean_occ = (occ_integral / elapsed as u128) as u64;
    let elig_ppm = (0..nq)
        .map(|q| {
            match marks_by_q[q]
                .saturating_mul(1_000_000)
                .checked_div(arrivals_by_q[q])
            {
                Some(ppm) => ppm.min(1_000_000) as u32,
                None => 0,
            }
        })
        .collect();
    PortCal {
        elig_ppm,
        mean_occ_bytes: mean_occ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(entries: &[(u16, u8)]) -> Vec<MicroStream> {
        let mut v: Vec<MicroStream> = entries
            .iter()
            .map(|&(queue, bucket)| MicroStream { queue, bucket })
            .collect();
        v.sort();
        v
    }

    fn cache(marking: MarkingConfig) -> MicroCache {
        MicroCache::new(
            marking,
            SchedulerConfig::Dwrr {
                weights: vec![1; 8],
            },
            MarkPoint::Enqueue,
            2 * 1024 * 1024,
            10_000_000_000,
        )
    }

    #[test]
    fn saturated_per_port_marks_every_queue() {
        let mut c = cache(MarkingConfig::PerPort { threshold_pkts: 12 });
        let m = mix(&[(0, 2), (1, 2), (2, 2), (3, 2)]);
        let idx = c.calibrate(&m, 12 * MTU_WIRE_BYTES);
        let cal = c.cal(idx).clone();
        for q in 0..4 {
            assert!(
                cal.elig_ppm[q] > 900_000,
                "queue {q} eligibility {} too low",
                cal.elig_ppm[q]
            );
        }
        assert!(cal.mean_occ_bytes >= 12 * MTU_WIRE_BYTES);
    }

    #[test]
    fn pmsb_blinds_the_small_queue() {
        // One heavy queue and one light queue: PMSB's per-queue filter
        // must leave the light queue (occupancy below its fair share of
        // the threshold) unmarked while the heavy queue stays eligible.
        let mut c = cache(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        let m = mix(&[(0, 6), (1, 1)]);
        let idx = c.calibrate(&m, 12 * MTU_WIRE_BYTES);
        let cal = c.cal(idx).clone();
        assert!(
            cal.elig_ppm[0] > cal.elig_ppm[1],
            "heavy queue {} must out-mark the light one {}",
            cal.elig_ppm[0],
            cal.elig_ppm[1]
        );
    }

    #[test]
    fn calibrations_memoize_and_are_deterministic() {
        let mut c = cache(MarkingConfig::PerPort { threshold_pkts: 12 });
        let m = mix(&[(0, 3), (5, 3)]);
        let a = c.calibrate(&m, 12 * MTU_WIRE_BYTES);
        let b = c.calibrate(&m, 12 * MTU_WIRE_BYTES);
        assert_eq!(a, b, "second call must hit the memoized entry");
    }

    #[test]
    fn empty_mix_takes_the_closed_form() {
        let mut c = cache(MarkingConfig::PerPort { threshold_pkts: 12 });
        let idx = c.calibrate(&[], 12 * MTU_WIRE_BYTES);
        let cal = c.cal(idx).clone();
        assert_eq!(cal.mean_occ_bytes, 12 * MTU_WIRE_BYTES);
        assert!(cal.elig_ppm.iter().all(|&e| e == 1_000_000));
    }
}
