//! Flow-level fluid simulation engine and the packet/fluid hybrid.
//!
//! The packet engine earns its accuracy one event per packet; at
//! hyperscale (millions of flows on a fat-tree) that cost dominates
//! wall-clock. This module trades per-packet fidelity for a flow-level
//! model (DESIGN.md §11) built from three deterministic pieces:
//!
//! 1. **Max-min rate solve** ([`solver`]): between population changes,
//!    every active flow runs at its max-min fair share over the links
//!    of its (ECMP-exact) path — integer water-filling with fixed
//!    iteration order, so rates are byte-stable across runs.
//! 2. **Steady-state marking** ([`onset`]): each saturated link holds a
//!    standing queue at the marking onset `K*`, probed through the real
//!    [`MarkingScheme`](pmsb::marking::MarkingScheme) objects; flows
//!    accumulate marks at the rate the DCTCP (`p ≈ √(2/W)`) or NewReno
//!    (`p ≈ 3/2W²`) steady-state response curve demands at their
//!    allocated window.
//! 3. **Hybrid calibration** ([`microsim`]): the hybrid engine replaces
//!    the closed-form marking of saturated *switch* ports with short
//!    per-port packet micro-simulations running the real scheduler and
//!    marking scheme, recovering per-queue effects (PMSB's selective
//!    blindness, per-queue vs per-port thresholds) the fluid closed
//!    form cannot see.
//! 4. **Regional embedding** ([`region`]): the regional engine goes one
//!    step further and simulates a *hot set* of switch ports at full
//!    packet level inside the fluid run — real scheduler, real marking
//!    objects, real shared-buffer pool, real PMSB(e) ACK filter — with
//!    rate↔packet adapters at the seam (DESIGN.md §13). The hot set is
//!    named explicitly or flagged by a deterministic first-pass fluid
//!    scout; an empty hot set degenerates to the plain fluid engine,
//!    byte for byte.
//!
//! Time advances event-to-event over the *distinct* timestamps of flow
//! arrivals and completions; synchronized workloads (incast epochs,
//! shuffle waves) collapse thousands of flows into one solve, which is
//! where the 10–100× throughput over the packet engine comes from. All
//! arithmetic is integer (work in bit·nanoseconds), the event order is
//! fixed, and the engine is single-threaded by design, so results are
//! byte-identical across runs and `--sim-threads` values.

mod microsim;
mod onset;
mod region;
mod solver;

use std::collections::HashMap;

use pmsb_metrics::fct::{FctRecorder, FlowRecord};
use pmsb_metrics::QuantileSketch;

use crate::config::{EngineKind, MarkingConfig, RegionSpec, SchedulerConfig, TransportKind};
use crate::experiment::Experiment;
use crate::packet::{ACK_WIRE_BYTES, MTU_WIRE_BYTES};
use crate::transport::SenderStats;
use crate::world::{FlowDesc, NodeRef, RunResults, StreamStats, World};

use microsim::{MicroCache, MicroStream, RATE_BUCKETS};
use onset::OnsetCache;
use solver::{Solver, SolverFlow};

/// Population changes within this sim-time window share one rate
/// re-solve. The water-filling solve is the engine's dominant cost at
/// fabric scale, and dense arrival/completion trains re-solve the same
/// near-identical population thousands of times; coalescing bounds the
/// rate staleness to 20 µs — two orders below the millisecond-scale
/// flow completion times the model is judged on — while cutting solves
/// severalfold. A deferred re-solve is woken explicitly, so a burst of
/// arrivals (injected at rate 0 until the next solve) can never stall
/// the clock.
const RESOLVE_QUANTUM_NANOS: u64 = 20_000;

/// Steady-state queue level a port converges to under the given
/// marking/scheduler configuration with the given service classes
/// active — the fluid model's closed-form standing queue, exposed for
/// validation against heavy-traffic queueing theory.
pub fn steady_state_queue_bytes(
    marking: &MarkingConfig,
    scheduler: &SchedulerConfig,
    link_rate_bps: u64,
    buffer_bytes: u64,
    active_services: &[usize],
) -> u64 {
    let weights = scheduler.weights();
    let nq = weights.len();
    let mut mask = 0u16;
    for &s in active_services {
        mask |= 1 << ((s % nq) as u16).min(15);
    }
    let round_based = scheduler.build().round_time_nanos().is_some();
    onset::scan_onset(
        marking,
        &weights,
        round_based,
        link_rate_bps,
        buffer_bytes,
        mask,
    )
}

/// One live flow in the fluid model.
struct FlowState {
    id: u64,
    size_bytes: u64,
    start_nanos: u64,
    /// Queue its packets ride at every switch port (`service % nq`).
    queue: u16,
    /// Real link ids the data path crosses (NIC egress, then one per
    /// switch hop), ECMP-identical to the packet engine.
    path: Vec<u32>,
    /// Unloaded round-trip (propagation + serialization), nanoseconds.
    base_rtt_nanos: u64,
    /// Remaining work in bit·nanoseconds (`bytes · 8 · 10⁹`).
    rem_bitns: u64,
    /// Current max-min allocation, bits/second.
    rate_bps: u64,
    /// The application's offered-rate cap (`u64::MAX` = unlimited), kept
    /// so regional runs can rebuild the solver cap each solve as
    /// `min(app, region rate)` without losing the original bound.
    app_cap_bps: u64,
    /// Current total marking probability along the path, ppm.
    p_ppm: u64,
    /// Current RTT including saturated-link standing queues.
    rtt_nanos: u64,
    /// Accumulated `progress_bitns × p_ppm` — marks in scaled units.
    mark_acc: u128,
    /// The subset of `mark_acc` accrued while the PMSB(e) rule held
    /// (RTT below threshold → the sender ignores the echo).
    ignored_acc: u128,
}

/// Per-saturated-link state for one solve interval.
struct SatLink {
    /// The link id, kept for sparse-clearing `sat_index`.
    link: u32,
    nic: bool,
    /// Active-queue bitmask feeding the onset scan.
    mask: u16,
    /// Aggregate allocated rate per queue, feeding the hybrid
    /// micro-sim's mix signature (switch links only).
    qrate_bps: [u64; 16],
    /// Standing-queue delay this link adds to crossing flows' RTT.
    delay_nanos: u64,
    /// Hybrid: handle to the measured per-queue eligibility in the
    /// micro-sim cache; `None` = closed form.
    cal: Option<u32>,
    /// Whether the link's port marks at all.
    marks: bool,
}

/// The lazily-pulled, time-ordered flow source (static list or
/// streaming pattern), with one-flow lookahead.
struct FlowFeed {
    iter: Box<dyn Iterator<Item = (u64, FlowDesc)>>,
    peeked: Option<(u64, FlowDesc)>,
}

impl FlowFeed {
    fn new(iter: Box<dyn Iterator<Item = (u64, FlowDesc)>>) -> Self {
        let mut f = FlowFeed { iter, peeked: None };
        f.peeked = f.iter.next();
        f
    }

    fn peek_start(&self) -> Option<u64> {
        self.peeked.as_ref().map(|(_, d)| d.start_nanos)
    }

    fn take_if_at(&mut self, t: u64) -> Option<(u64, FlowDesc)> {
        if self.peek_start() == Some(t) {
            let out = self.peeked.take();
            self.peeked = self.iter.next();
            out
        } else {
            None
        }
    }
}

/// `ceil(a / b)` for completion-time rounding.
fn ceil_div(a: u64, b: u64) -> u64 {
    a / b + u64::from(!a.is_multiple_of(b))
}

/// Integer square root (floor).
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u64;
    // Float seeding then exact fix-up keeps this deterministic.
    while x > 0 && x * x > n {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= n {
        x += 1;
    }
    x
}

/// The steady-state marking fraction (ppm) a congestion-controlled flow
/// with window `w_pkts` settles at: DCTCP's fluid model gives
/// `α ≈ √(2/W)`, NewReno's classic-ECN throughput relation gives
/// `p ≈ 3/(2W²)`.
fn curve_p_ppm(kind: TransportKind, w_pkts: u64) -> u64 {
    let w = w_pkts.max(1);
    match kind {
        TransportKind::Dctcp => isqrt(2_000_000_000_000 / w).min(1_000_000),
        TransportKind::NewReno => (1_500_000 / (w.saturating_mul(w))).min(1_000_000),
    }
}

/// NewReno's classic halve-on-mark sawtooth averages 3/4 of the
/// allocated share (the window oscillates between W/2 and W).
const NEWRENO_UTIL_PPM: u64 = 750_000;

struct Engine {
    world: World,
    switch_base: Vec<u32>,
    link_rate_bps: u64,
    link_delay_nanos: u64,
    mss: u64,
    kind: TransportKind,
    pmsbe_threshold_nanos: Option<u64>,
    max_cwnd_bytes: u64,
    num_queues: usize,
    hybrid: bool,
    switch_onset: OnsetCache,
    nic_onset: OnsetCache,
    micro: MicroCache,
    solver: Solver,
    active: Vec<FlowState>,
    /// Solver scratch, kept index-parallel to `active`.
    scratch: Vec<SolverFlow>,
    /// Link id → index into `sats` (`u32::MAX` = not saturated). Dense:
    /// the two hot passes below hit it once per flow-link incidence.
    sat_index: Vec<u32>,
    sats: Vec<SatLink>,
    /// Reusable mix-signature buffer for hybrid calibration lookups.
    mix_scratch: Vec<MicroStream>,
    /// The embedded packet region (regional engine only).
    region: Option<region::PacketRegion>,
}

impl Engine {
    fn new(e: &Experiment) -> Self {
        let world = e.build_world();
        let num_hosts = world.num_hosts();
        let num_switches = world.num_switches();
        let mut switch_base = vec![0u32; num_switches];
        let mut next = num_hosts as u32;
        for (s, base) in switch_base.iter_mut().enumerate() {
            *base = next;
            next += world.num_ports(s) as u32;
        }
        let weights = e.switch_cfg.scheduler.weights();
        let round_based = e.switch_cfg.scheduler.build().round_time_nanos().is_some();
        let switch_onset = OnsetCache::new(
            e.switch_cfg.marking.clone(),
            weights,
            round_based,
            e.link_rate_bps,
            e.switch_cfg.buffer_bytes,
        );
        let nic_onset = OnsetCache::new(
            e.host_cfg.nic_marking.clone(),
            vec![1],
            false,
            e.link_rate_bps,
            e.host_cfg.nic_buffer_bytes,
        );
        let micro = MicroCache::new(
            e.switch_cfg.marking.clone(),
            e.switch_cfg.scheduler.clone(),
            e.switch_cfg.mark_point,
            e.switch_cfg.buffer_bytes,
            e.link_rate_bps,
        );
        Engine {
            switch_base,
            link_rate_bps: e.link_rate_bps,
            link_delay_nanos: e.link_delay_nanos,
            mss: e.transport.mss,
            kind: e.transport.kind,
            pmsbe_threshold_nanos: e.transport.pmsbe_rtt_threshold_nanos,
            max_cwnd_bytes: e.transport.max_cwnd_bytes,
            num_queues: e.switch_cfg.scheduler.num_queues(),
            hybrid: e.engine == EngineKind::Hybrid,
            switch_onset,
            nic_onset,
            micro,
            solver: Solver::new(next as usize),
            active: Vec::new(),
            scratch: Vec::new(),
            sat_index: vec![u32::MAX; next as usize],
            sats: Vec::new(),
            mix_scratch: Vec::new(),
            region: None,
            world,
        }
    }

    /// Promotes `hot` switch ports to packet level (regional engine).
    fn install_region(&mut self, e: &Experiment, hot: &[(usize, usize)]) {
        self.region = Some(region::PacketRegion::new(
            e,
            &self.world,
            &self.switch_base,
            self.sat_index.len(),
            hot,
        ));
    }

    /// The data path as real link ids, using the world's route tables so
    /// ECMP choices match the packet engine exactly.
    fn data_path(&self, src: usize, dst: usize, flow_id: u64) -> Vec<u32> {
        let mut path = Vec::with_capacity(7);
        path.push(src as u32);
        let mut s = self.world.host_switch(src);
        loop {
            let p = self.world.route_port_for(s, dst, flow_id);
            path.push(self.switch_base[s] + p as u32);
            match self.world.port_peer(s, p) {
                NodeRef::Host(h) => {
                    debug_assert_eq!(h, dst, "route table leads to the wrong host");
                    break;
                }
                NodeRef::Switch(t) => s = t,
            }
        }
        path
    }

    fn inject(&mut self, id: u64, desc: &FlowDesc) {
        let path = self.data_path(desc.src_host, desc.dst_host, id);
        let hops = path.len() as u64;
        let c = self.link_rate_bps.max(1);
        let ser = (MTU_WIRE_BYTES + ACK_WIRE_BYTES) * 8_000_000_000 / c;
        let base_rtt = hops * (2 * self.link_delay_nanos + ser);
        self.scratch.push(SolverFlow {
            path: path.clone(),
            cap_bps: desc.app_rate_bps.unwrap_or(u64::MAX),
            rate_bps: 0,
        });
        self.active.push(FlowState {
            id,
            size_bytes: desc.size_bytes,
            start_nanos: desc.start_nanos,
            queue: (desc.service % self.num_queues) as u16,
            path,
            base_rtt_nanos: base_rtt,
            rem_bitns: desc
                .size_bytes
                .saturating_mul(8)
                .saturating_mul(1_000_000_000),
            rate_bps: 1,
            app_cap_bps: desc.app_rate_bps.unwrap_or(u64::MAX),
            p_ppm: 0,
            rtt_nanos: base_rtt,
            mark_acc: 0,
            ignored_acc: 0,
        });
        if let Some(r) = self.region.as_mut() {
            let f = self.active.last().expect("just pushed");
            r.on_inject(id, &f.path, f.queue);
        }
    }

    /// Accrues `dt` nanoseconds of progress and marks on every flow.
    fn advance(&mut self, dt: u64) {
        for f in &mut self.active {
            let prog = ((f.rate_bps as u128) * (dt as u128)).min(f.rem_bitns as u128) as u64;
            f.rem_bitns -= prog;
            if f.p_ppm > 0 {
                let acc = prog as u128 * f.p_ppm as u128;
                f.mark_acc += acc;
                if self
                    .pmsbe_threshold_nanos
                    .is_some_and(|th| f.rtt_nanos < th)
                {
                    f.ignored_acc += acc;
                }
            }
        }
    }

    /// Re-solves rates and marking state after a population change.
    fn resolve(&mut self, now: u64) {
        // Regional: the measured per-flow region rates enter the solve as
        // app-rate caps, so the fluid ledger drains each flow's bytes at
        // the rate the real hot-port queues grant it.
        if let Some(r) = self.region.as_ref() {
            for (f, sf) in self.active.iter().zip(self.scratch.iter_mut()) {
                sf.cap_bps = f.app_cap_bps.min(r.cap_bps(f.id));
            }
        }
        let saturated = self.solver.solve(&mut self.scratch, self.link_rate_bps);
        for (f, sf) in self.active.iter_mut().zip(&self.scratch) {
            f.rate_bps = sf.rate_bps.max(1);
        }
        // Index the saturated links and gather their queue masks / mixes.
        for s in &self.sats {
            self.sat_index[s.link as usize] = u32::MAX;
        }
        self.sats.clear();
        let num_hosts = self.world.num_hosts() as u32;
        for l in saturated {
            self.sat_index[l as usize] = self.sats.len() as u32;
            self.sats.push(SatLink {
                link: l,
                nic: l < num_hosts,
                mask: 0,
                qrate_bps: [0; 16],
                delay_nanos: 0,
                cal: None,
                marks: false,
            });
        }
        for f in &self.active {
            for l in &f.path {
                let i = self.sat_index[*l as usize];
                if i != u32::MAX {
                    let s = &mut self.sats[i as usize];
                    let q = if s.nic { 0 } else { f.queue };
                    s.mask |= 1 << q.min(15);
                    if self.hybrid && !s.nic {
                        let slot = &mut s.qrate_bps[q.min(15) as usize];
                        *slot = slot.saturating_add(f.rate_bps);
                    }
                }
            }
        }
        // Standing queue and eligibility per saturated link.
        for s in &mut self.sats {
            if self.region.as_ref().is_some_and(|r| r.is_hot(s.link)) {
                // The real port owns this link: marks arrive by
                // measurement and delay by live occupancy, not closed
                // form — leaving it in the statistical path would count
                // its congestion twice.
                s.marks = false;
                s.delay_nanos = 0;
                s.cal = None;
                continue;
            }
            let cache = if s.nic {
                &mut self.nic_onset
            } else {
                &mut self.switch_onset
            };
            s.marks = cache.has_marking();
            let onset = cache.onset_bytes(s.mask);
            // Without marking the standing queue is bounded by what the
            // senders can keep in flight, not the whole buffer.
            let occ = if s.marks {
                onset
            } else {
                onset.min(self.max_cwnd_bytes)
            };
            if self.hybrid && !s.nic && s.marks {
                // One signature entry per active queue: its aggregate
                // rate, bucket-quantized. Ascending queue order keeps
                // equal loads hitting the same memoized calibration; the
                // buffer is reused so a cache hit allocates nothing.
                self.mix_scratch.clear();
                for (q, &r) in s.qrate_bps.iter().enumerate() {
                    if r > 0 {
                        self.mix_scratch.push(MicroStream {
                            queue: q as u16,
                            bucket: (r.saturating_mul(RATE_BUCKETS) / self.link_rate_bps.max(1))
                                .min(RATE_BUCKETS - 1) as u8,
                        });
                    }
                }
                let idx = self.micro.calibrate(&self.mix_scratch, onset);
                s.delay_nanos = self
                    .micro
                    .cal(idx)
                    .mean_occ_bytes
                    .saturating_mul(8_000_000_000)
                    / self.link_rate_bps.max(1);
                s.cal = Some(idx);
            } else {
                s.delay_nanos = occ.saturating_mul(8_000_000_000) / self.link_rate_bps.max(1);
            }
        }
        // Per-flow RTT and marking probability under the new allocation.
        for f in &mut self.active {
            let mut rtt = f.base_rtt_nanos;
            for l in &f.path {
                let i = self.sat_index[*l as usize];
                if i != u32::MAX {
                    rtt += self.sats[i as usize].delay_nanos;
                }
                if let Some(r) = self.region.as_ref() {
                    // Hot hops add their *measured* standing queue,
                    // saturated or not (the hot sat entry above was
                    // zeroed, so this never double-counts).
                    rtt += r.delay_nanos(*l);
                }
            }
            f.rtt_nanos = rtt;
            let w_pkts = ((f.rate_bps as u128 * rtt as u128)
                / (8_000_000_000u128 * self.mss as u128))
                .min(u64::MAX as u128) as u64;
            let p_base = curve_p_ppm(self.kind, w_pkts);
            let mut p = 0u64;
            for l in &f.path {
                let i = self.sat_index[*l as usize];
                if i != u32::MAX {
                    let s = &self.sats[i as usize];
                    if !s.marks {
                        continue;
                    }
                    let elig = match s.cal {
                        Some(idx) => self.micro.cal(idx).elig_ppm[f.queue as usize] as u64,
                        None => 1_000_000,
                    };
                    p += p_base * elig / 1_000_000;
                }
            }
            f.p_ppm = p;
            if self.kind == TransportKind::NewReno && p > 0 {
                // The halve-on-mark sawtooth leaves capacity unused.
                f.rate_bps = (f.rate_bps / 1_000_000 * NEWRENO_UTIL_PPM
                    + f.rate_bps % 1_000_000 * NEWRENO_UTIL_PPM / 1_000_000)
                    .max(1);
            }
            if let Some(r) = self.region.as_mut() {
                r.set_alloc(f.id, f.rate_bps, f.rtt_nanos, now);
            }
        }
    }

    /// Marks accumulated so far, in packets: `(seen, ignored)`.
    fn marks_of(&self, f: &FlowState) -> (u64, u64) {
        let unit = 1_000_000u128 * self.mss as u128 * 8_000_000_000u128;
        ((f.mark_acc / unit) as u64, (f.ignored_acc / unit) as u64)
    }
}

/// Runs `e` under the fluid, hybrid, or regional engine until
/// `end_nanos`.
pub(crate) fn run(e: &Experiment, end_nanos: u64) -> RunResults {
    if e.engine != EngineKind::Regional {
        return run_pass(e, end_nanos, None, None);
    }
    let hot = match &e.region {
        RegionSpec::Ports(list) => list.clone(),
        RegionSpec::Auto => scout_hot_ports(e, end_nanos),
    };
    if hot.is_empty() {
        // No hot ports: the regional engine *is* the fluid engine, byte
        // for byte.
        return run_pass(e, end_nanos, None, None);
    }
    run_pass(e, end_nanos, Some(&hot), None)
}

/// Auto region selection: a full-horizon fluid scout pass accumulates
/// each link's saturated dwell time, then the busiest switch ports —
/// every port within a quarter of the longest dwell, capped at 128 —
/// become the hot set. Purely integer bookkeeping over a deterministic
/// pass, so the selection is itself deterministic.
fn scout_hot_ports(e: &Experiment, end_nanos: u64) -> Vec<(usize, usize)> {
    let world = e.build_world();
    let num_hosts = world.num_hosts();
    let mut switch_base = vec![0u32; world.num_switches()];
    let mut next = num_hosts as u32;
    for (s, base) in switch_base.iter_mut().enumerate() {
        *base = next;
        next += world.num_ports(s) as u32;
    }
    drop(world);
    let mut dwell: Vec<u128> = Vec::new();
    run_pass(e, end_nanos, None, Some(&mut dwell));
    let max = (num_hosts..next as usize)
        .map(|l| dwell[l])
        .max()
        .unwrap_or(0);
    if max == 0 {
        return Vec::new();
    }
    let mut cand: Vec<(u128, u32)> = (num_hosts..next as usize)
        .filter(|&l| dwell[l] > 0 && dwell[l] >= max / 4)
        .map(|l| (dwell[l], l as u32))
        .collect();
    cand.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    cand.truncate(128);
    let mut hot: Vec<(usize, usize)> = cand
        .into_iter()
        .map(|(_, l)| {
            let s = switch_base.partition_point(|&b| b <= l) - 1;
            (s, (l - switch_base[s]) as usize)
        })
        .collect();
    hot.sort_unstable();
    hot
}

/// One fluid pass: the event loop shared by all three flow-level
/// engines. `hot` embeds a packet region (regional engine); `scout`
/// accumulates per-link saturated dwell (nanoseconds, indexed by link
/// id) for auto region selection.
fn run_pass(
    e: &Experiment,
    end_nanos: u64,
    hot: Option<&[(usize, usize)]>,
    mut scout: Option<&mut Vec<u128>>,
) -> RunResults {
    let streaming = e.stream.is_some();
    let record_exact = e.stream.as_ref().map(|s| s.record_exact).unwrap_or(true);
    let feed_iter: Box<dyn Iterator<Item = (u64, FlowDesc)>> = match &e.stream {
        Some(sp) => Box::new(
            sp.pattern
                .flows(e.num_hosts(), sp.seed, sp.total_flows)
                .map(|f| FlowDesc {
                    src_host: f.src_host,
                    dst_host: f.dst_host,
                    service: f.service,
                    size_bytes: f.size_bytes,
                    app_rate_bps: None,
                    start_nanos: f.start_nanos,
                })
                .enumerate()
                .map(|(i, d)| (i as u64, d)),
        ),
        None => {
            let mut flows: Vec<(u64, FlowDesc)> = e
                .flows
                .iter()
                .enumerate()
                .map(|(i, d)| (i as u64, *d))
                .collect();
            flows.sort_by_key(|(id, d)| (d.start_nanos, *id));
            Box::new(flows.into_iter())
        }
    };
    let mut feed = FlowFeed::new(feed_iter);
    let mut eng = Engine::new(e);
    if let Some(h) = hot {
        eng.install_region(e, h);
    }
    if let Some(sc) = scout.as_deref_mut() {
        sc.clear();
        sc.resize(eng.sat_index.len(), 0);
    }

    let mut fct = FctRecorder::new();
    let mut sketch = QuantileSketch::new();
    let mut sender_stats: HashMap<u64, SenderStats> = HashMap::new();
    let mut agg = SenderStats::default();
    let mut injected = 0u64;
    let mut completed = 0u64;
    let mut bytes_completed = 0u64;
    let mut marks_total = 0u64;
    let mut deliveries = 0u64;
    let mut events = 0u64;
    let mut slab_high_water = 0u64;
    let mut done: Vec<(u64, usize)> = Vec::new();

    let mut t = 0u64;
    // Resolve coalescing: `dirty` marks a deferred re-solve, allowed
    // again from `next_resolve` (zero = allowed immediately).
    let mut dirty = false;
    let mut next_resolve = 0u64;
    // Earliest completion over the active set. Absolute completion
    // times are invariant while rates hold (`advance` drains work at
    // exactly the allocated rate), so this only needs recomputing after
    // a re-solve or a completion batch — not on every event.
    let mut next_completion = u64::MAX;
    loop {
        // Next distinct timestamp: arrival, completion, a deferred
        // re-solve, or the horizon.
        let mut target = end_nanos;
        if let Some(a) = feed.peek_start() {
            if a < target {
                target = a.max(t);
            }
        }
        if dirty && next_resolve < target {
            target = next_resolve.max(t);
        }
        if next_completion < target {
            target = next_completion.max(t);
        }
        if let Some(r) = eng.region.as_mut() {
            // A region window roll can change a solver cap, so the clock
            // may not step past the earliest one.
            let at = r.next_rate_event();
            if at < target {
                target = at.max(t);
            }
        }
        if target > t {
            let dt = target - t;
            eng.advance(dt);
            if let Some(sc) = scout.as_deref_mut() {
                for s in &eng.sats {
                    sc[s.link as usize] += dt as u128;
                }
            }
            t = target;
        }
        if let Some(r) = eng.region.as_mut() {
            r.advance_to(t);
        }
        if t >= end_nanos {
            break;
        }
        events += 1;
        let mut changed = false;

        // Completions at t — batched, recorded in ascending flow id.
        done.clear();
        if t >= next_completion {
            for (i, f) in eng.active.iter().enumerate() {
                if f.rem_bitns == 0 {
                    done.push((f.id, i));
                }
            }
        }
        if !done.is_empty() {
            done.sort_unstable();
            for &(id, i) in &done {
                let f = &eng.active[i];
                let (mut seen, mut ignored) = eng.marks_of(f);
                if let Some(r) = eng.region.as_mut() {
                    // Measured hot-port marks ride on top of the
                    // statistical accrual from the rest of the path.
                    let (rs, ri) = r.remove_flow(id);
                    seen += rs;
                    ignored += ri;
                }
                marks_total += seen;
                deliveries += f.size_bytes.div_ceil(eng.mss.max(1));
                let end = t + f.rtt_nanos;
                let rec = FlowRecord {
                    flow_id: id,
                    bytes: f.size_bytes,
                    start_nanos: f.start_nanos,
                    end_nanos: end,
                };
                if streaming {
                    sketch.insert(rec.fct_nanos());
                    completed += 1;
                    bytes_completed += f.size_bytes;
                    agg.marks_seen += seen;
                    agg.marks_ignored += ignored;
                    if record_exact {
                        fct.record(rec);
                    }
                } else {
                    fct.record(rec);
                    let st = sender_stats.entry(id).or_default();
                    st.marks_seen = seen;
                    st.marks_ignored = ignored;
                }
            }
            // Remove by descending index so swaps stay valid.
            let mut idx: Vec<usize> = done.iter().map(|&(_, i)| i).collect();
            idx.sort_unstable_by(|a, b| b.cmp(a));
            for i in idx {
                eng.active.swap_remove(i);
                eng.scratch.swap_remove(i);
            }
            changed = true;
            next_completion = u64::MAX;
            for f in &eng.active {
                let at = t.saturating_add(ceil_div(f.rem_bitns, f.rate_bps.max(1)));
                next_completion = next_completion.min(at);
            }
        }

        // Arrivals at t.
        while let Some((id, desc)) = feed.take_if_at(t) {
            eng.inject(id, &desc);
            injected += 1;
            changed = true;
            events += 1;
        }
        slab_high_water = slab_high_water.max(eng.active.len() as u64);

        // Region window rolls since the last iteration changed caps.
        if eng.region.as_mut().is_some_and(|r| r.take_rates_changed()) {
            changed = true;
        }

        if (changed || dirty) && t >= next_resolve {
            eng.resolve(t);
            dirty = false;
            next_resolve = t + RESOLVE_QUANTUM_NANOS;
            next_completion = u64::MAX;
            for f in &eng.active {
                let at = t.saturating_add(ceil_div(f.rem_bitns, f.rate_bps.max(1)));
                next_completion = next_completion.min(at);
            }
        } else if changed {
            dirty = true;
        }
    }

    // Flows still live at the horizon: their marks so far belong in the
    // aggregates, exactly like the packet harvest of live senders.
    for f in &eng.active {
        let (mut seen, mut ignored) = eng.marks_of(f);
        if let Some(r) = eng.region.as_mut() {
            let (rs, ri) = r.remove_flow(f.id);
            seen += rs;
            ignored += ri;
        }
        marks_total += seen;
        if streaming {
            agg.marks_seen += seen;
            agg.marks_ignored += ignored;
        } else {
            let st = sender_stats.entry(f.id).or_default();
            st.marks_seen = seen;
            st.marks_ignored = ignored;
        }
    }

    // Fold the region's own counters in: ghost drops at hot ports, marks
    // on ghosts of already-departed flows, and pool contention.
    let mut drops = 0u64;
    let mut shared_buffer = None;
    if let Some(r) = eng.region.take() {
        let s = r.finish();
        drops = s.drops;
        marks_total += s.orphan_marks;
        events += s.events;
        shared_buffer = s.shared;
    }

    RunResults {
        fct,
        rtt_nanos_by_flow: HashMap::new(),
        port_traces: HashMap::new(),
        sender_stats,
        drops,
        marks: marks_total,
        end_nanos,
        events,
        deliveries,
        faults: None,
        stream: if streaming {
            Some(StreamStats {
                sketch,
                injected,
                completed,
                bytes_completed,
                agg_sender: agg,
                slab_high_water,
            })
        } else {
            None
        },
        // Fluid/hybrid runs reject shared buffer policies up front; on a
        // regional run the hot-port pools report their contention.
        shared_buffer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarkingConfig;
    use crate::experiment::Experiment;

    #[test]
    fn isqrt_is_exact() {
        for n in [0u64, 1, 2, 3, 4, 15, 16, 17, 1_000_000, u32::MAX as u64] {
            let r = isqrt(n);
            assert!(r * r <= n);
            assert!((r + 1).saturating_mul(r + 1) > n);
        }
    }

    #[test]
    fn response_curves_are_monotone() {
        let mut prev = u64::MAX;
        for w in [1u64, 2, 4, 16, 64, 256, 1024] {
            let p = curve_p_ppm(TransportKind::Dctcp, w);
            assert!(p <= prev, "DCTCP p must fall with W");
            prev = p;
        }
        assert!(
            curve_p_ppm(TransportKind::NewReno, 10) < curve_p_ppm(TransportKind::Dctcp, 10),
            "at equal W, NewReno needs far fewer marks than DCTCP"
        );
    }

    #[test]
    fn fluid_dumbbell_completes_flows() {
        let mut e = Experiment::dumbbell(2, 2).engine(EngineKind::Fluid);
        e.add_flow(FlowDesc::bulk(0, 2, 0, 1_000_000));
        e.add_flow(FlowDesc::bulk(1, 2, 1, 1_000_000));
        let res = e.run_for_millis(50);
        assert_eq!(res.fct.len(), 2);
        assert!(res.marks > 0, "a congested dumbbell must mark");
        assert_eq!(res.drops, 0);
        // Both flows share the bottleneck equally: ~1.6 ms each.
        for r in res.fct.records() {
            let fct = r.fct_nanos();
            assert!(fct > 1_000_000, "FCT {fct} too fast for a shared link");
            assert!(fct < 10_000_000, "FCT {fct} too slow");
        }
    }

    #[test]
    fn fluid_run_is_deterministic() {
        let run = || {
            let mut e = Experiment::dumbbell(4, 4).engine(EngineKind::Fluid);
            for i in 0..4 {
                e.add_flow(
                    FlowDesc::bulk(i, 4, i, 500_000 + i as u64 * 10_000)
                        .starting_at(i as u64 * 50_000),
                );
            }
            let res = e.run_for_millis(50);
            res.fct
                .records()
                .iter()
                .map(|r| (r.flow_id, r.end_nanos))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hybrid_matches_fluid_population_but_calibrates_marks() {
        let run = |engine| {
            let mut e = Experiment::dumbbell(4, 4)
                .marking(MarkingConfig::Pmsb {
                    port_threshold_pkts: 12,
                })
                .engine(engine);
            for i in 0..4 {
                e.add_flow(FlowDesc::bulk(i, 4, i, 2_000_000));
            }
            e.run_for_millis(100)
        };
        let fluid = run(EngineKind::Fluid);
        let hybrid = run(EngineKind::Hybrid);
        assert_eq!(fluid.fct.len(), 4);
        assert_eq!(hybrid.fct.len(), 4);
        assert!(hybrid.marks > 0);
    }

    #[test]
    fn regional_empty_hot_set_is_fluid_byte_for_byte() {
        use crate::config::RegionSpec;
        let run = |engine, spec: Option<RegionSpec>| {
            let mut e = Experiment::dumbbell(4, 4).engine(engine);
            if let Some(s) = spec {
                e = e.region(s);
            }
            for i in 0..4 {
                e.add_flow(FlowDesc::bulk(i, 4, i, 1_000_000));
            }
            let res = e.run_for_millis(50);
            (
                res.fct
                    .records()
                    .iter()
                    .map(|r| (r.flow_id, r.end_nanos))
                    .collect::<Vec<_>>(),
                res.marks,
                res.drops,
            )
        };
        let fluid = run(EngineKind::Fluid, None);
        let regional = run(EngineKind::Regional, Some(RegionSpec::Ports(Vec::new())));
        assert_eq!(fluid, regional);
    }

    #[test]
    fn regional_hot_port_measures_marks_and_shifts_fcts() {
        use crate::config::RegionSpec;
        let run = |engine, spec| {
            let mut e = Experiment::dumbbell(4, 4)
                .marking(MarkingConfig::Pmsb {
                    port_threshold_pkts: 12,
                })
                .engine(engine)
                .region(spec);
            for i in 0..4 {
                e.add_flow(FlowDesc::bulk(i, 4, i, 2_000_000));
            }
            e.run_for_millis(100)
        };
        // The dumbbell bottleneck is switch 0's port facing the receiver
        // (host index 4 = port 4).
        let res = run(EngineKind::Regional, RegionSpec::Ports(vec![(0, 4)]));
        assert_eq!(res.fct.len(), 4, "all flows must still complete");
        assert!(res.marks > 0, "the hot port must mark ghosts");
        let fluid = run(EngineKind::Fluid, RegionSpec::Auto);
        let f_end: Vec<u64> = fluid.fct.records().iter().map(|r| r.end_nanos).collect();
        let r_end: Vec<u64> = res.fct.records().iter().map(|r| r.end_nanos).collect();
        assert_ne!(
            f_end, r_end,
            "the measured region must perturb completion times"
        );
    }

    #[test]
    fn regional_auto_selects_the_bottleneck() {
        use crate::config::RegionSpec;
        let hot = scout_hot_ports(
            &{
                let mut e = Experiment::dumbbell(4, 4).engine(EngineKind::Regional);
                for i in 0..4 {
                    e.add_flow(FlowDesc::bulk(i, 4, i, 2_000_000));
                }
                e
            },
            100_000_000,
        );
        assert!(
            hot.contains(&(0, 4)),
            "the dumbbell bottleneck port must be hot, got {hot:?}"
        );
        // And the auto run completes end to end.
        let mut e = Experiment::dumbbell(4, 4)
            .engine(EngineKind::Regional)
            .region(RegionSpec::Auto);
        for i in 0..4 {
            e.add_flow(FlowDesc::bulk(i, 4, i, 2_000_000));
        }
        let res = e.run_for_millis(100);
        assert_eq!(res.fct.len(), 4);
    }

    #[test]
    fn regional_run_is_deterministic() {
        use crate::config::RegionSpec;
        let run = || {
            let mut e = Experiment::dumbbell(4, 4)
                .engine(EngineKind::Regional)
                .region(RegionSpec::Auto);
            for i in 0..4 {
                e.add_flow(
                    FlowDesc::bulk(i, 4, i, 500_000 + i as u64 * 10_000)
                        .starting_at(i as u64 * 50_000),
                );
            }
            let res = e.run_for_millis(50);
            (
                res.fct
                    .records()
                    .iter()
                    .map(|r| (r.flow_id, r.end_nanos))
                    .collect::<Vec<_>>(),
                res.marks,
                res.events,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn app_rate_cap_is_respected() {
        let mut e = Experiment::dumbbell(2, 2).engine(EngineKind::Fluid);
        e.add_flow(FlowDesc::bulk(0, 2, 0, 1_000_000).with_app_rate_bps(1_000_000_000));
        let res = e.run_for_millis(100);
        assert_eq!(res.fct.len(), 1);
        // 1 MB at 1 Gb/s is 8 ms; an uncapped flow would finish in ~1 ms.
        let fct = res.fct.records()[0].fct_nanos();
        assert!(fct >= 8_000_000, "cap ignored: FCT {fct}");
    }

    #[test]
    fn streaming_mode_produces_stream_stats() {
        use pmsb_workload::PatternSpec;
        let e = Experiment::dumbbell(8, 8).engine(EngineKind::Fluid).stream(
            PatternSpec::Incast {
                fan_in: 4,
                request_bytes: 100_000,
                epoch_nanos: 1_000_000,
            },
            7,
            64,
        );
        let res = e.run_until_nanos(1_000_000_000);
        let st = res.stream.expect("streaming results");
        assert_eq!(st.injected, 64);
        assert_eq!(st.completed, 64, "all incast flows finish in 1 s");
        assert!(st.sketch.count() == 64);
        assert!(st.slab_high_water >= 4);
        assert!(res.fct.is_empty(), "no exact records unless requested");
    }
}
