//! Marking-onset estimation: the port occupancy at which a marking
//! scheme starts signalling, probed through the *real* scheme objects.
//!
//! The fluid model needs one number per (port kind, active-queue set):
//! the standing-queue level `K*` a steady congestion-controlled load
//! converges to. Rather than re-deriving each scheme's threshold
//! algebra (and silently diverging from the packet engine), the scan
//! instantiates the configured [`MarkingScheme`] and walks the port
//! occupancy upward one MTU at a time — bytes spread evenly over the
//! active queues, sojourn and round-time signals set to what that
//! occupancy implies at the port's link rate — until the scheme marks.
//! The first marking occupancy is `K*`; a scheme that never marks (or
//! [`MarkingConfig::None`]) yields the buffer size, i.e. "no onset".
//!
//! Results are memoized per active-queue mask, so the scan runs a
//! handful of times per experiment regardless of flow count.

use std::collections::HashMap;

use pmsb::PortSnapshot;

use crate::config::MarkingConfig;
use crate::packet::MTU_WIRE_BYTES;

/// Memoized onset scans for one port configuration (marking scheme +
/// scheduler weights + link rate + buffer).
pub(super) struct OnsetCache {
    marking: MarkingConfig,
    weights: Vec<u64>,
    link_rate_bps: u64,
    buffer_bytes: u64,
    /// Whether the scheduler is round-based (DWRR/WRR), which decides if
    /// the probe snapshots carry a round-time signal (mirrors
    /// `Scheduler::round_time_nanos`).
    round_based: bool,
    map: HashMap<u16, u64>,
}

impl OnsetCache {
    pub(super) fn new(
        marking: MarkingConfig,
        weights: Vec<u64>,
        round_based: bool,
        link_rate_bps: u64,
        buffer_bytes: u64,
    ) -> Self {
        OnsetCache {
            marking,
            weights,
            link_rate_bps,
            buffer_bytes,
            round_based,
            map: HashMap::new(),
        }
    }

    /// Whether the port marks at all ([`MarkingConfig::None`] does not).
    pub(super) fn has_marking(&self) -> bool {
        !matches!(self.marking, MarkingConfig::None)
    }

    /// Onset occupancy in bytes for the given active-queue bitmask
    /// (bit `q` set = queue `q` carries traffic). An empty mask is
    /// treated as one active queue 0.
    pub(super) fn onset_bytes(&mut self, active_queues: u16) -> u64 {
        let mask = if active_queues == 0 { 1 } else { active_queues };
        if let Some(&k) = self.map.get(&mask) {
            return k;
        }
        let k = scan_onset(
            &self.marking,
            &self.weights,
            self.round_based,
            self.link_rate_bps,
            self.buffer_bytes,
            mask,
        );
        self.map.insert(mask, k);
        k
    }
}

/// Walks port occupancy upward until the scheme marks; see the module
/// docs. Returns `buffer_bytes` when the scheme never marks.
pub(super) fn scan_onset(
    marking: &MarkingConfig,
    weights: &[u64],
    round_based: bool,
    link_rate_bps: u64,
    buffer_bytes: u64,
    active_queues: u16,
) -> u64 {
    let Some(mut marker) = marking.build(weights) else {
        return buffer_bytes;
    };
    let nq = weights.len();
    let active: Vec<usize> = (0..nq.min(16))
        .filter(|q| active_queues & (1 << q) != 0)
        .collect();
    let active = if active.is_empty() { vec![0] } else { active };
    let m = active.len() as u64;
    let pkt = MTU_WIRE_BYTES;
    let max_pkts = (buffer_bytes / pkt).max(1);
    for n in 1..=max_pkts {
        let total = n * pkt;
        let mut b = PortSnapshot::builder(nq)
            .port_bytes(total)
            .pool_bytes(total)
            .link_rate_bps(link_rate_bps)
            // A packet admitted now waits for the whole backlog to drain.
            .sojourn_nanos(total.saturating_mul(8_000_000_000) / link_rate_bps.max(1));
        if round_based {
            // One quantum (1 MTU) per active queue per scheduler round.
            b = b.round_time_nanos(m * pkt * 8_000_000_000 / link_rate_bps.max(1));
        }
        // Spread the occupancy evenly; the remainder goes to the lowest
        // active queues so per-queue bytes always sum to `total`.
        let base = total / m;
        let rem = (total % m) as usize;
        for (i, &q) in active.iter().enumerate() {
            let extra = if i < rem { 1 } else { 0 };
            b = b.queue_bytes(q, base + extra);
        }
        let snap = b.build();
        if active
            .iter()
            .any(|&q| marker.should_mark(&snap, q).is_mark())
        {
            return total;
        }
    }
    buffer_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: u64 = 10_000_000_000;
    const BUF: u64 = 2 * 1024 * 1024;

    fn scan(marking: MarkingConfig, mask: u16) -> u64 {
        scan_onset(&marking, &[1; 8], true, RATE, BUF, mask)
    }

    #[test]
    fn per_port_onset_is_the_port_threshold() {
        let k = scan(MarkingConfig::PerPort { threshold_pkts: 12 }, 0b1111_1111);
        assert_eq!(k, 12 * MTU_WIRE_BYTES);
        // Independent of how many queues carry the load.
        let k1 = scan(MarkingConfig::PerPort { threshold_pkts: 12 }, 0b1);
        assert_eq!(k1, k);
    }

    #[test]
    fn per_queue_onset_scales_with_active_queues() {
        // Each queue marks at its own K, so with m equally loaded queues
        // the port sits at ~m*K when the first queue crosses.
        let k1 = scan(MarkingConfig::PerQueueStandard { threshold_pkts: 65 }, 0b1);
        let k4 = scan(
            MarkingConfig::PerQueueStandard { threshold_pkts: 65 },
            0b1111,
        );
        assert_eq!(k1, 65 * MTU_WIRE_BYTES);
        assert!(k4 >= 4 * k1 - 4 * MTU_WIRE_BYTES, "k4 {k4} vs k1 {k1}");
        assert!(k4 <= 4 * k1 + 4 * MTU_WIRE_BYTES);
    }

    #[test]
    fn pmsb_matches_per_port_under_symmetric_load() {
        // Equal weights and equal queue loads pass every blindness
        // filter, so PMSB's onset coincides with plain per-port marking.
        let pmsb = scan(
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            0b1111_1111,
        );
        let pp = scan(MarkingConfig::PerPort { threshold_pkts: 12 }, 0b1111_1111);
        assert_eq!(pmsb, pp);
    }

    #[test]
    fn no_marking_means_no_onset() {
        assert_eq!(scan(MarkingConfig::None, 0b1), BUF);
    }

    #[test]
    fn cache_memoizes_per_mask() {
        let mut c = OnsetCache::new(
            MarkingConfig::PerPort { threshold_pkts: 12 },
            vec![1; 8],
            true,
            RATE,
            BUF,
        );
        assert_eq!(c.onset_bytes(0b1), c.onset_bytes(0b1));
        assert_eq!(c.onset_bytes(0), c.onset_bytes(0b1), "empty mask = queue 0");
    }
}
