//! The packet region of the regional engine (DESIGN.md §13): real
//! packet-level ports embedded inside a fluid run.
//!
//! A small *hot set* of switch ports — flagged by a deterministic
//! first-pass fluid solve, or named explicitly — is simulated with the
//! real machinery: the configured scheduler inside a real
//! [`MultiQueue`], the real [`MarkingScheme`] objects at the configured
//! mark point, the real [`SharedPool`] admission, and the real PMSB(e)
//! [`SelectiveBlindness`] ACK rule. Everything else stays fluid.
//!
//! **Boundary adapters.** Fluid → packet: each flow crossing a hot port
//! runs one MTU-paced ghost-arrival chain per hot hop, paced at the
//! flow's region rate, so the port sees the per-queue arrival process
//! the rate implies. Packet → fluid: the marks those ghosts draw feed a
//! per-flow DCTCP/NewReno window loop whose rate is handed back to the
//! max-min solver as an app-rate cap. The ghosts are *signal* packets:
//! flow progress is accounted exclusively by the fluid byte ledger, so
//! byte conservation at the seam holds by construction — the region can
//! shift *when* a flow's bits drain (via its cap) but never create or
//! destroy bits.
//!
//! The region rate intentionally probes *above* the fair share
//! (additive increase per RTT, like the real transport): the overshoot
//! is what builds the standing queue to the marking scheme's operating
//! point, which is where per-queue blindness — invisible to the fluid
//! closed form — reappears in the dynamics.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use pmsb::endpoint::SelectiveBlindness;
use pmsb::marking::MarkingScheme;
use pmsb::MarkPoint;
use pmsb_sched::{MultiQueue, SchedItem};

use crate::buffer::{Admit, SharedPool};
use crate::config::TransportKind;
use crate::experiment::Experiment;
use crate::packet::MTU_WIRE_BYTES;
use crate::world::port::PacketPortView;
use crate::world::World;

/// Floor of the per-flow region rate: a stalled flow keeps probing at
/// 1 Mb/s instead of parking at zero, like a transport's minimum window.
const MIN_RATE_BPS: u64 = 1_000_000;

/// Ceiling on the ghost pacing period. A very slow flow still lands a
/// probe every 250 µs, so its marking feedback never goes fully dark.
const MAX_PERIOD_NANOS: u64 = 250_000;

/// Ghost pacing period for `rate_bps`: one MTU per `MTU/rate`, clamped
/// between wire speed and the probe ceiling.
fn pacing_period(rate_bps: u64, ser_nanos: u64) -> u64 {
    if rate_bps == 0 {
        return MAX_PERIOD_NANOS;
    }
    (MTU_WIRE_BYTES * 8_000_000_000 / rate_bps).clamp(ser_nanos.max(1), MAX_PERIOD_NANOS)
}

/// A ghost packet: one MTU of signal riding a hot port's real queues.
#[derive(Debug)]
struct RegionPkt {
    enqueued_at_nanos: u64,
    flow_id: u64,
    /// Set when enqueue-point marking fired (dequeue marking then skips
    /// it, exactly like the CE bit on a real packet).
    ce: bool,
}

impl SchedItem for RegionPkt {
    fn len_bytes(&self) -> u64 {
        MTU_WIRE_BYTES
    }
}

/// One hot port: the real per-port machinery, minus the wire.
struct RegionPort {
    mq: MultiQueue<RegionPkt>,
    marker: Option<Box<dyn MarkingScheme>>,
    mark_point: MarkPoint,
    busy: bool,
    link_rate_bps: u64,
    /// Index into [`PacketRegion::pools`].
    pool: u32,
    /// This port's index within its pool's attach order.
    pool_port: u32,
}

/// One switch's shared memory pool, spanning its hot ports only (ports
/// outside the region hold fluid standing queues that never contend for
/// pool space — the documented approximation of DESIGN.md §13).
struct RegionPool {
    pool: SharedPool,
    /// Indices into [`PacketRegion::ports`] attached to this pool.
    ports: Vec<u32>,
}

/// One flow with at least one hot hop: its ghost pacers and its
/// measured-mark window loop.
struct RegionFlow {
    /// Hot hops as indices into [`PacketRegion::ports`], in path order.
    hops: Vec<u32>,
    queue: u16,
    /// Region rate the ghosts pace at and the solver cap reports;
    /// 0 = not yet seeded by the first solve.
    cur_rate_bps: u64,
    /// Latest solver RTT (base + standing queues), driving the PMSB(e)
    /// rule and the additive-increase step.
    rtt_nanos: u64,
    /// End of the current congestion window (the Win event time; a
    /// heap entry with a different time is stale).
    window_end: u64,
    window_pkts: u32,
    window_marks: u32,
    /// DCTCP mark-fraction EWMA, ppm (gain 1/16).
    alpha_ppm: u64,
    marks_seen: u64,
    marks_ignored: u64,
}

/// Counters the region hands back when the run ends.
pub(super) struct RegionSummary {
    /// Ghost packets tail-dropped or pool-rejected at hot ports.
    pub(super) drops: u64,
    /// Marks applied to ghosts of already-departed flows.
    pub(super) orphan_marks: u64,
    /// Region events processed (arrivals, transmits, window rolls).
    pub(super) events: u64,
    /// Shared-pool contention at hot ports, when the policy is shared.
    pub(super) shared: Option<pmsb_metrics::contention::ContentionSummary>,
}

/// Heap event kinds (packed into plain tuples so ordering is explicit).
const EV_ARRIVAL: u8 = 0;
const EV_TX_DONE: u8 = 1;

/// One packet event: `(time, seq, kind, a, b)` — `Arr(flow, hop)` or
/// `TxDone(port)`. Plain tuple so the ordering (min-time, then FIFO by
/// push sequence) is explicit and `Ord`-derived.
type PktEvent = (u64, u64, u8, u64, u32);

/// The embedded packet region. See the module docs for the model.
pub(super) struct PacketRegion {
    ports: Vec<RegionPort>,
    pools: Vec<RegionPool>,
    /// Link id → index into `ports` (`u32::MAX` = not hot).
    link_to_port: Vec<u32>,
    /// Flows with hot hops, keyed by flow id (B-tree for deterministic
    /// iteration-free determinism — lookups only, but no hash state).
    flows: BTreeMap<u64, RegionFlow>,
    /// Packet events; the push sequence number breaks time ties FIFO,
    /// mirroring the packet engine's event list.
    heap: BinaryHeap<Reverse<PktEvent>>,
    /// Window-roll events `(window_end, flow)`, lazily invalidated: an
    /// entry is live iff it matches the flow's current `window_end`.
    win_heap: BinaryHeap<Reverse<(u64, u64)>>,
    seq: u64,
    rates_changed: bool,
    orphan_marks: u64,
    events: u64,
    mss: u64,
    kind: TransportKind,
    pmsbe: Option<SelectiveBlindness>,
    link_rate_bps: u64,
    ser_nanos: u64,
}

impl PacketRegion {
    /// Builds the region over `hot` switch ports (validated against the
    /// world, deduplicated, pool-attached in port order).
    ///
    /// # Panics
    ///
    /// Panics when a hot port names a switch or port outside the
    /// topology.
    pub(super) fn new(
        e: &Experiment,
        world: &World,
        switch_base: &[u32],
        num_links: usize,
        hot: &[(usize, usize)],
    ) -> Self {
        let mut hot: Vec<(usize, usize)> = hot.to_vec();
        hot.sort_unstable();
        hot.dedup();
        let cfg = &e.switch_cfg;
        let weights = cfg.scheduler.weights();
        let mut ports = Vec::with_capacity(hot.len());
        let mut pools: Vec<RegionPool> = Vec::new();
        let mut link_to_port = vec![u32::MAX; num_links];
        let mut pool_of_switch: BTreeMap<usize, u32> = BTreeMap::new();
        for &(s, p) in &hot {
            assert!(
                s < world.num_switches(),
                "region port {s}:{p} names switch {s}, but the topology has {} switches",
                world.num_switches()
            );
            assert!(
                p < world.num_ports(s),
                "region port {s}:{p} names port {p}, but switch {s} has {} ports",
                world.num_ports(s)
            );
            let pool_idx = *pool_of_switch.entry(s).or_insert_with(|| {
                pools.push(RegionPool {
                    pool: SharedPool::new(cfg.buffer),
                    ports: Vec::new(),
                });
                (pools.len() - 1) as u32
            });
            let pool = &mut pools[pool_idx as usize];
            let pool_port = pool.ports.len() as u32;
            pool.pool.attach_port(
                cfg.buffer,
                cfg.buffer_bytes,
                cfg.scheduler.num_queues(),
                e.link_rate_bps,
            );
            pool.ports.push(ports.len() as u32);
            link_to_port[(switch_base[s] + p as u32) as usize] = ports.len() as u32;
            ports.push(RegionPort {
                mq: MultiQueue::with_policy(cfg.scheduler.build(), cfg.port_buffer_policy()),
                marker: cfg.marking.build(&weights),
                mark_point: cfg.mark_point,
                busy: false,
                link_rate_bps: e.link_rate_bps,
                pool: pool_idx,
                pool_port,
            });
        }
        let c = e.link_rate_bps.max(1);
        PacketRegion {
            ports,
            pools,
            link_to_port,
            flows: BTreeMap::new(),
            heap: BinaryHeap::new(),
            win_heap: BinaryHeap::new(),
            seq: 0,
            rates_changed: false,
            orphan_marks: 0,
            events: 0,
            mss: e.transport.mss,
            kind: e.transport.kind,
            pmsbe: e
                .transport
                .pmsbe_rtt_threshold_nanos
                .map(SelectiveBlindness::new),
            link_rate_bps: e.link_rate_bps,
            ser_nanos: MTU_WIRE_BYTES * 8_000_000_000 / c,
        }
    }

    /// Whether `link` is one of the region's hot ports.
    pub(super) fn is_hot(&self, link: u32) -> bool {
        self.link_to_port[link as usize] != u32::MAX
    }

    /// Measured standing-queue delay of hot `link` (0 when not hot):
    /// the real queue's occupancy drained at line rate.
    pub(super) fn delay_nanos(&self, link: u32) -> u64 {
        let pi = self.link_to_port[link as usize];
        if pi == u32::MAX {
            return 0;
        }
        self.ports[pi as usize]
            .mq
            .port_bytes()
            .saturating_mul(8_000_000_000)
            / self.link_rate_bps.max(1)
    }

    /// Registers an arriving flow whose `path` crosses hot ports.
    pub(super) fn on_inject(&mut self, id: u64, path: &[u32], queue: u16) {
        let mut hops = Vec::new();
        for &l in path {
            let pi = self.link_to_port[l as usize];
            if pi != u32::MAX {
                hops.push(pi);
            }
        }
        if hops.is_empty() {
            return;
        }
        self.flows.insert(
            id,
            RegionFlow {
                hops,
                queue,
                cur_rate_bps: 0,
                rtt_nanos: 0,
                window_end: 0,
                window_pkts: 0,
                window_marks: 0,
                alpha_ppm: 1_000_000,
                marks_seen: 0,
                marks_ignored: 0,
            },
        );
    }

    /// The cap this flow's region rate imposes on the solver
    /// (`u64::MAX` = unconstrained: not a region flow, or not seeded).
    pub(super) fn cap_bps(&self, id: u64) -> u64 {
        match self.flows.get(&id) {
            Some(f) if f.cur_rate_bps > 0 => f.cur_rate_bps,
            _ => u64::MAX,
        }
    }

    /// Feeds one solve's outcome back: refreshes the flow's RTT and, on
    /// the first solve after arrival, seeds the region rate at the fair
    /// share (DCTCP init: α = 1) and starts the ghost pacers.
    pub(super) fn set_alloc(&mut self, id: u64, alloc_bps: u64, rtt_nanos: u64, now: u64) {
        let link_rate = self.link_rate_bps;
        let Some(f) = self.flows.get_mut(&id) else {
            return;
        };
        f.rtt_nanos = rtt_nanos;
        if f.cur_rate_bps != 0 {
            return;
        }
        f.cur_rate_bps = alloc_bps.clamp(MIN_RATE_BPS, link_rate);
        f.window_end = now + rtt_nanos.max(1_000);
        let window_end = f.window_end;
        let num_hops = f.hops.len();
        self.win_heap.push(Reverse((window_end, id)));
        for h in 0..num_hops {
            self.seq += 1;
            self.heap.push(Reverse((
                now + 1 + h as u64,
                self.seq,
                EV_ARRIVAL,
                id,
                h as u32,
            )));
        }
    }

    /// Earliest pending window roll — the only region event that can
    /// change a solver cap, so the fluid loop bounds its targets by it.
    pub(super) fn next_rate_event(&mut self) -> u64 {
        while let Some(&Reverse((at, id))) = self.win_heap.peek() {
            match self.flows.get(&id) {
                Some(f) if f.window_end == at => return at,
                _ => {
                    self.win_heap.pop(); // stale: flow gone or window moved
                }
            }
        }
        u64::MAX
    }

    /// True once since the last call iff a window roll changed a rate.
    pub(super) fn take_rates_changed(&mut self) -> bool {
        std::mem::take(&mut self.rates_changed)
    }

    /// Removes a departing flow, returning its `(seen, ignored)` mark
    /// counters. Its pending events go stale and drain lazily.
    pub(super) fn remove_flow(&mut self, id: u64) -> (u64, u64) {
        match self.flows.remove(&id) {
            Some(f) => (f.marks_seen, f.marks_ignored),
            None => (0, 0),
        }
    }

    /// Processes every region event up to and including `t`, in
    /// deterministic `(time, seq)` order with window rolls merged in.
    pub(super) fn advance_to(&mut self, t: u64) {
        loop {
            let pkt_at = self.heap.peek().map_or(u64::MAX, |r| r.0 .0);
            let win_at = self.next_rate_event();
            if pkt_at.min(win_at) > t {
                return;
            }
            if win_at <= pkt_at {
                let Reverse((now, id)) = self.win_heap.pop().expect("validated peek");
                self.events += 1;
                self.roll_window(id, now);
            } else {
                let Reverse((now, _seq, kind, a, b)) = self.heap.pop().expect("peeked");
                self.events += 1;
                match kind {
                    EV_ARRIVAL => self.on_arrival(a, b as usize, now),
                    _ => {
                        self.ports[a as usize].busy = false;
                        self.try_transmit(a as usize, now);
                    }
                }
            }
        }
    }

    /// One DCTCP/NewReno window boundary: fold the measured mark
    /// fraction into α, cut or grow the region rate, open the next
    /// window.
    fn roll_window(&mut self, id: u64, now: u64) {
        let (mss, kind, link_rate) = (self.mss, self.kind, self.link_rate_bps);
        let Some(f) = self.flows.get_mut(&id) else {
            return;
        };
        let frac_ppm = if f.window_pkts > 0 {
            f.window_marks as u64 * 1_000_000 / f.window_pkts as u64
        } else {
            0
        };
        f.alpha_ppm = (f.alpha_ppm * 15 + frac_ppm) / 16;
        let rtt = f.rtt_nanos.max(1_000);
        if f.window_marks > 0 {
            f.cur_rate_bps = match kind {
                TransportKind::Dctcp => f.cur_rate_bps.saturating_sub(
                    (f.cur_rate_bps as u128 * f.alpha_ppm as u128 / 2_000_000) as u64,
                ),
                TransportKind::NewReno => f.cur_rate_bps / 2,
            };
        } else {
            // One MSS per RTT of additive probing, like the real sender;
            // the overshoot past the fair share is what sustains the
            // queue at the marking onset.
            f.cur_rate_bps = f.cur_rate_bps.saturating_add(mss * 8_000_000_000 / rtt);
        }
        f.cur_rate_bps = f.cur_rate_bps.clamp(MIN_RATE_BPS, link_rate);
        f.window_pkts = 0;
        f.window_marks = 0;
        f.window_end = now + rtt;
        let window_end = f.window_end;
        self.win_heap.push(Reverse((window_end, id)));
        self.rates_changed = true;
    }

    /// One ghost arrival of `flow` at hot hop `hop`: real enqueue-point
    /// marking, real pool admission, then the pacer reschedules itself.
    fn on_arrival(&mut self, flow_id: u64, hop: usize, now: u64) {
        let Some(f) = self.flows.get(&flow_id) else {
            return; // stale pacer of a departed flow
        };
        let pi = f.hops[hop] as usize;
        let (queue, rate, rtt) = (f.queue, f.cur_rate_bps, f.rtt_nanos);
        self.seq += 1;
        self.heap.push(Reverse((
            now + pacing_period(rate, self.ser_nanos),
            self.seq,
            EV_ARRIVAL,
            flow_id,
            hop as u32,
        )));
        // Pool occupancy mirrors `deliver_to_switch`: the shared pool's
        // O(1) book-keeping, or the hot ports' sum for a per-pool scheme
        // under static buffers.
        let pool_idx = self.ports[pi].pool as usize;
        let pool_occ: u64 = if self.pools[pool_idx].pool.is_shared() {
            self.pools[pool_idx].pool.used_bytes()
        } else {
            match self.ports[pi].marker.as_ref() {
                Some(m) if m.reads_pool() => self.pools[pool_idx]
                    .ports
                    .iter()
                    .map(|&i| self.ports[i as usize].mq.port_bytes())
                    .sum(),
                _ => 0,
            }
        };
        let mut marked = false;
        {
            let p = &mut self.ports[pi];
            let q = queue as usize % p.mq.num_queues();
            let mut pkt = RegionPkt {
                enqueued_at_nanos: now,
                flow_id,
                ce: false,
            };
            if p.mark_point == MarkPoint::Enqueue {
                if let Some(marker) = p.marker.as_mut() {
                    let view = PacketPortView {
                        mq: &p.mq,
                        link_rate_bps: p.link_rate_bps,
                        pool_bytes: Some(pool_occ),
                        sojourn_nanos: None,
                    };
                    if marker.should_mark(&view, q).is_mark() {
                        pkt.ce = true;
                        marked = true;
                    }
                }
            }
            let pool = &mut self.pools[pool_idx].pool;
            if pool.is_shared() {
                if pool.try_admit(p.pool_port as usize, q, p.mq.queue_bytes(q), MTU_WIRE_BYTES)
                    == Admit::Ok
                    && p.mq.enqueue(q, pkt, now).is_ok()
                {
                    pool.commit(MTU_WIRE_BYTES);
                }
            } else {
                let _ = p.mq.enqueue(q, pkt, now); // drop counted in the MultiQueue
            }
        }
        if marked {
            self.attribute_mark(flow_id, rtt);
        }
        if let Some(f) = self.flows.get_mut(&flow_id) {
            f.window_pkts += 1;
        }
        self.try_transmit(pi, now);
    }

    /// Real dequeue + dequeue-point marking, exactly the switch port's
    /// transmit path — minus the wire, since ghosts die at the egress.
    fn try_transmit(&mut self, pi: usize, now: u64) {
        if self.ports[pi].busy {
            return;
        }
        let Some((q, pkt)) = self.ports[pi].mq.dequeue(now) else {
            return;
        };
        let pool_idx = self.ports[pi].pool as usize;
        let pool_port = self.ports[pi].pool_port as usize;
        if self.pools[pool_idx].pool.is_shared() {
            self.pools[pool_idx]
                .pool
                .on_dequeue(pool_port, q, MTU_WIRE_BYTES, now);
        }
        let mut marked_flow = None;
        {
            let pool_used = {
                let pool = &self.pools[pool_idx].pool;
                pool.is_shared().then(|| pool.used_bytes())
            };
            let p = &mut self.ports[pi];
            if p.mark_point == MarkPoint::Dequeue && !pkt.ce {
                if let Some(marker) = p.marker.as_mut() {
                    let view = PacketPortView {
                        mq: &p.mq,
                        link_rate_bps: p.link_rate_bps,
                        pool_bytes: pool_used,
                        sojourn_nanos: Some(now.saturating_sub(pkt.enqueued_at_nanos)),
                    };
                    if marker.should_mark(&view, q).is_mark() {
                        marked_flow = Some(pkt.flow_id);
                    }
                }
            }
            p.busy = true;
        }
        self.seq += 1;
        self.heap.push(Reverse((
            now + self.ser_nanos,
            self.seq,
            EV_TX_DONE,
            pi as u64,
            0,
        )));
        if let Some(fid) = marked_flow {
            match self.flows.get(&fid) {
                Some(f) => {
                    let rtt = f.rtt_nanos;
                    self.attribute_mark(fid, rtt);
                }
                None => self.orphan_marks += 1,
            }
        }
    }

    /// Books one applied mark on a live flow, running the real PMSB(e)
    /// ACK rule: an ignored echo still counts as seen (the switch did
    /// mark) but never reaches the window loop — blindness in action.
    fn attribute_mark(&mut self, flow_id: u64, rtt_nanos: u64) {
        let ignore = self
            .pmsbe
            .is_some_and(|rule| rule.ignore_mark(true, rtt_nanos));
        let Some(f) = self.flows.get_mut(&flow_id) else {
            self.orphan_marks += 1;
            return;
        };
        f.marks_seen += 1;
        if ignore {
            f.marks_ignored += 1;
        } else {
            f.window_marks += 1;
        }
    }

    /// Final counters once the run ends.
    pub(super) fn finish(self) -> RegionSummary {
        let mut drops = 0u64;
        for p in &self.ports {
            drops += p.mq.dropped_items();
        }
        let mut shared = None;
        for rp in &self.pools {
            if rp.pool.is_shared() {
                drops += rp.pool.shared_drops();
                shared
                    .get_or_insert_with(pmsb_metrics::contention::ContentionSummary::default)
                    .absorb(&rp.pool.summary());
            }
        }
        RegionSummary {
            drops,
            orphan_marks: self.orphan_marks,
            events: self.events,
            shared,
        }
    }
}
