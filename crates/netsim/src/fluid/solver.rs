//! Deterministic integer max-min bandwidth sharing (water-filling).
//!
//! Each solve distributes every directed link's capacity over the active
//! flows crossing it: repeatedly find the link with the smallest fair
//! share (remaining capacity / unfrozen flows, ties broken towards the
//! lowest link id), freeze its flows at that share, subtract, repeat.
//! All arithmetic is integer (bits/second), and the iteration order is
//! fixed, so the resulting rate vector is byte-stable across runs and
//! platforms.
//!
//! The bottleneck search is a lazy min-heap rather than a per-round
//! rescan: freezing a bottleneck's flows can only *raise* the fair
//! share of every other link (the frozen rate is the global minimum),
//! so a heap entry keyed by the share at push time is a lower bound.
//! Popping the minimum either finds the entry still current — its
//! `(cap, nflows)` snapshot matches the link's live state, making it
//! the true global minimum — or stale, in which case the link is
//! re-pushed under its raised share and the pop retries. This turns the
//! O(rounds × links) scan (the measured hot spot at fabric scale: ~30
//! rounds over ~2k touched links per solve) into O(links log links)
//! plus one re-push per staleness event.
//!
//! Application rate caps are modelled as one virtual single-flow link
//! per capped flow, appended after the real link id space; the uniform
//! algorithm then handles caps with no special cases. Virtual links are
//! excluded from the returned saturated set (a flow pinned at its own
//! application cap is not congested).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-solve view of one flow: which links it crosses and, on output,
/// the max-min rate it was frozen at.
#[derive(Debug)]
pub(super) struct SolverFlow {
    /// Real link ids the flow's data path crosses.
    pub(super) path: Vec<u32>,
    /// Application rate cap in bits/second (`u64::MAX` = uncapped).
    pub(super) cap_bps: u64,
    /// Output: allocated rate in bits/second (always ≥ 1).
    pub(super) rate_bps: u64,
}

/// Reusable water-filling state, sized to the link id space once and
/// reset sparsely (only touched links) between solves.
pub(super) struct Solver {
    num_real_links: usize,
    /// Remaining capacity per link, bits/second.
    cap: Vec<u64>,
    /// Unfrozen flows currently crossing each link.
    nflows: Vec<u32>,
    /// Per-link flow membership in CSR form, rebuilt per solve:
    /// `members[offset[l]..offset[l] + count(l)]` are the flow indices
    /// crossing link `l`. Contiguous storage keeps the rebuild two
    /// streaming passes instead of thousands of scattered `Vec` pushes.
    offset: Vec<u32>,
    count: Vec<u32>,
    members: Vec<u32>,
    /// Links touched by the current solve, for sparse reset.
    touched: Vec<u32>,
    /// Bottleneck candidates: `(share, link, cap, nflows)` — the fair
    /// share and the state snapshot it was computed from. Reused across
    /// solves to keep its allocation warm.
    heap: BinaryHeap<Reverse<(u64, u32, u64, u32)>>,
}

impl Solver {
    /// `num_real_links` directed links, shared by flows of up to
    /// `max_concurrent` — virtual cap links grow the arrays on demand.
    pub(super) fn new(num_real_links: usize) -> Self {
        Solver {
            num_real_links,
            cap: vec![0; num_real_links],
            nflows: vec![0; num_real_links],
            offset: vec![0; num_real_links],
            count: vec![0; num_real_links],
            members: Vec::new(),
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Computes the max-min allocation for `flows`, writing each flow's
    /// `rate_bps`. Returns the saturated **real** links in freeze order
    /// (each appears once).
    pub(super) fn solve(&mut self, flows: &mut [SolverFlow], link_rate_bps: u64) -> Vec<u32> {
        // Sparse reset of the previous solve's state.
        for &l in &self.touched {
            self.nflows[l as usize] = 0;
        }
        self.touched.clear();

        // Pass 1: count flows per link. Virtual links for application
        // caps live past the real id space.
        let mut next_virtual = self.num_real_links;
        let mut virtual_of: Vec<usize> = vec![usize::MAX; flows.len()]; // flow → vlink
        for (i, f) in flows.iter_mut().enumerate() {
            f.rate_bps = 0; // 0 = unfrozen sentinel
            for &l in &f.path {
                let l = l as usize;
                if self.nflows[l] == 0 {
                    self.cap[l] = link_rate_bps;
                    self.touched.push(l as u32);
                }
                self.nflows[l] += 1;
            }
            if f.cap_bps != u64::MAX {
                if next_virtual == self.cap.len() {
                    self.cap.push(0);
                    self.nflows.push(0);
                    self.offset.push(0);
                    self.count.push(0);
                }
                let v = next_virtual;
                next_virtual += 1;
                self.cap[v] = f.cap_bps.max(1);
                self.nflows[v] = 1;
                self.touched.push(v as u32);
                virtual_of[i] = v;
            }
        }

        // CSR offsets, then pass 2 fills the membership slices. After
        // the fill, `offset[l]` is the END of l's slice and `count[l]`
        // its (pristine) length — `nflows` decays during freezing.
        let mut total = 0u32;
        for &lt in &self.touched {
            let l = lt as usize;
            self.offset[l] = total;
            self.count[l] = self.nflows[l];
            total += self.nflows[l];
        }
        self.members.clear();
        self.members.resize(total as usize, 0);
        for (i, f) in flows.iter().enumerate() {
            for &l in &f.path {
                let l = l as usize;
                self.members[self.offset[l] as usize] = i as u32;
                self.offset[l] += 1;
            }
            let v = virtual_of[i];
            if v != usize::MAX {
                self.members[self.offset[v] as usize] = i as u32;
                self.offset[v] += 1;
            }
        }

        // Only links that can constrain anything enter the heap: shared
        // links, and capped (virtual) links. A link carrying one flow at
        // full line rate has the maximum possible fair share — it can
        // only freeze last, at line rate, which the leftover pass below
        // reproduces exactly for uniform link capacity.
        let mut saturated = Vec::new();
        self.heap.clear();
        for &lt in &self.touched {
            let l = lt as usize;
            if self.nflows[l] > 1 || self.cap[l] != link_rate_bps {
                let share = (self.cap[l] / self.nflows[l] as u64).max(1);
                self.heap
                    .push(Reverse((share, lt, self.cap[l], self.nflows[l])));
            }
        }
        while let Some(Reverse((_, lt, snap_cap, snap_nflows))) = self.heap.pop() {
            let l = lt as usize;
            if self.nflows[l] == 0 {
                continue; // fully frozen since the entry was pushed
            }
            if self.cap[l] != snap_cap || self.nflows[l] != snap_nflows {
                // Stale lower bound: freezing other bottlenecks raised
                // this link's share. Re-push at its live level.
                let share = (self.cap[l] / self.nflows[l] as u64).max(1);
                self.heap
                    .push(Reverse((share, lt, self.cap[l], self.nflows[l])));
                continue;
            }
            // Current and minimal (every other entry is a lower bound of
            // its link's live share): this is the bottleneck. Freeze
            // every unfrozen flow crossing it.
            let share = (self.cap[l] / self.nflows[l] as u64).max(1);
            let end = self.offset[l] as usize;
            let start = end - self.count[l] as usize;
            for m in start..end {
                let fi = self.members[m];
                let f = &mut flows[fi as usize];
                if f.rate_bps != 0 {
                    continue;
                }
                f.rate_bps = share;
                for &pl in &f.path {
                    let pl = pl as usize;
                    self.nflows[pl] -= 1;
                    self.cap[pl] = self.cap[pl].saturating_sub(share);
                }
                if f.cap_bps != u64::MAX {
                    // Its virtual cap link too.
                    let v = virtual_of[fi as usize];
                    self.nflows[v] -= 1;
                    self.cap[v] = self.cap[v].saturating_sub(share);
                }
            }
            if l < self.num_real_links {
                saturated.push(lt);
            }
        }

        // Leftover flows cross only links they have to themselves (any
        // shared or capped link would have frozen them above), so each
        // runs at the smallest remaining capacity on its path; its
        // lowest-capacity link — lowest id on ties — saturates.
        let mut leftovers: Vec<u32> = Vec::new();
        for f in flows.iter_mut() {
            if f.rate_bps != 0 {
                continue;
            }
            let mut rate = u64::MAX;
            let mut sat_l = u32::MAX;
            for &l in &f.path {
                let c = self.cap[l as usize];
                if c < rate || (c == rate && l < sat_l) {
                    rate = c;
                    sat_l = l;
                }
            }
            f.rate_bps = rate.max(1);
            if sat_l != u32::MAX {
                leftovers.push(sat_l);
            }
        }
        leftovers.sort_unstable();
        saturated.extend(leftovers);
        saturated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(path: &[u32]) -> SolverFlow {
        SolverFlow {
            path: path.to_vec(),
            cap_bps: u64::MAX,
            rate_bps: 0,
        }
    }

    #[test]
    fn single_bottleneck_splits_evenly() {
        let mut s = Solver::new(4);
        let mut flows = vec![flow(&[0, 3]), flow(&[1, 3]), flow(&[2, 3])];
        let sat = s.solve(&mut flows, 9_000_000_000);
        assert_eq!(sat, vec![3]);
        for f in &flows {
            assert_eq!(f.rate_bps, 3_000_000_000);
        }
    }

    #[test]
    fn max_min_fills_the_unconstrained_flow() {
        // A and B share link 0; B and C are pinned at 2 Gb/s by
        // application caps, so max-min must hand A the remaining 8 Gb/s.
        let mut s = Solver::new(2);
        let mut flows = vec![flow(&[0]), flow(&[0, 1]), flow(&[1])];
        flows[1].cap_bps = 2_000_000_000;
        flows[2].cap_bps = 2_000_000_000;
        let sat = s.solve(&mut flows, 10_000_000_000);
        assert_eq!(flows[1].rate_bps, 2_000_000_000);
        assert_eq!(flows[2].rate_bps, 2_000_000_000);
        assert_eq!(flows[0].rate_bps, 8_000_000_000);
        assert_eq!(sat, vec![0], "link 0 is the only saturated real link");
    }

    #[test]
    fn deterministic_across_identical_solves() {
        let mut paths = Vec::new();
        for i in 0..64u32 {
            paths.push(vec![i % 8, 8 + (i % 4), 12]);
        }
        let run = || {
            let mut s = Solver::new(16);
            let mut flows: Vec<SolverFlow> = paths.iter().map(|p| flow(p)).collect();
            let sat = s.solve(&mut flows, 10_000_000_000);
            (sat, flows.iter().map(|f| f.rate_bps).collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn solver_state_resets_between_solves() {
        let mut s = Solver::new(4);
        let mut a = vec![flow(&[0, 3]), flow(&[1, 3])];
        let first = s.solve(&mut a, 10_000_000_000);
        let mut b = vec![flow(&[0, 3]), flow(&[1, 3])];
        let second = s.solve(&mut b, 10_000_000_000);
        assert_eq!(first, second);
        assert_eq!(a[0].rate_bps, b[0].rate_bps);
        assert_eq!(a[0].rate_bps, 5_000_000_000);
    }
}
