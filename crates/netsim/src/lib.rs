#![warn(missing_docs)]

//! A packet-level discrete-event datacenter network simulator.
//!
//! This crate is the evaluation substrate for PMSB — the role NS-3 plays in
//! the paper. It models:
//!
//! * store-and-forward **switches** with multi-queue output ports
//!   ([`pmsb_sched`] schedulers), per-switch shared memory pools with
//!   pluggable allocation ([`buffer::BufferPolicy`]: static, Dynamic
//!   Threshold, delay-driven), and pluggable ECN marking
//!   ([`pmsb::marking`]) at enqueue or dequeue,
//! * **hosts** running DCTCP ([`transport`]) with per-packet ACKs,
//!   timestamp-echo RTT measurement, fast retransmit/recovery and RTO,
//!   optionally applying the PMSB(e) end-host rule,
//! * point-to-point **links** with serialization and propagation delay,
//! * static routing with per-flow **ECMP**, and the paper's topologies
//!   ([`topology::dumbbell`], [`topology::leaf_spine`]),
//! * deterministic **fault injection** ([`pmsb_faults::FaultSchedule`]
//!   via [`experiment::Experiment::faults`]): link down/up, rate
//!   degradation, probabilistic loss/corruption, buffer shrink — with
//!   ECMP re-hashing around dead links,
//! * tracing: per-queue throughput, buffer occupancy, RTT samples, flow
//!   completion times.
//!
//! The high-level entry point is [`experiment::Experiment`]:
//!
//! ```
//! use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};
//!
//! // 2 senders -> 1 receiver through one switch; PMSB marking over DWRR.
//! let mut exp = Experiment::dumbbell(2, 2)
//!     .marking(MarkingConfig::Pmsb { port_threshold_pkts: 12 })
//!     .scheduler(SchedulerConfig::Dwrr { weights: vec![1, 1] });
//! exp.add_flow(FlowDesc::bulk(0, 2, 0, 200_000)); // host 0 -> host 2, queue 0
//! exp.add_flow(FlowDesc::bulk(1, 2, 1, 200_000)); // host 1 -> host 2, queue 1
//! let result = exp.run_for_millis(50);
//! assert_eq!(result.fct.len(), 2); // both flows completed
//! ```

pub mod buffer;
pub mod config;
mod engine;
pub mod experiment;
pub mod fluid;
pub mod packet;
mod parallel;
mod partition;
pub mod routing;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod world;

pub use buffer::BufferPolicy;
pub use config::{
    EngineKind, HostConfig, MarkingConfig, RegionSpec, SchedulerConfig, SwitchConfig,
    TransportConfig,
};
pub use experiment::{Experiment, ExperimentResult, FlowDesc};
pub use packet::{Packet, PacketKind};
pub use partition::PartitionStrategy;
pub use world::{Event, StreamStats, World};
