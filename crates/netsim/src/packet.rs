//! Packets on the wire.

use pmsb_sched::SchedItem;

/// IP/TCP header bytes added to every segment's payload on the wire.
pub const HEADER_BYTES: u64 = 40;
/// Wire size of a pure ACK.
pub const ACK_WIRE_BYTES: u64 = 64;
/// Default maximum segment size (payload bytes); 1460 + 40 = a 1500-byte
/// MTU frame, matching the paper's packet-denominated thresholds.
pub const DEFAULT_MSS: u64 = 1460;
/// Wire bytes of one full-MSS frame (the paper's "packet" unit).
pub const MTU_WIRE_BYTES: u64 = DEFAULT_MSS + HEADER_BYTES;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment covering payload bytes `[seq, seq + len)`.
    Data {
        /// First payload byte number.
        seq: u64,
        /// Payload length in bytes.
        len: u64,
    },
    /// A cumulative acknowledgement.
    Ack {
        /// All payload bytes below this number have been received.
        cum_ack: u64,
        /// ECN-Echo: the acknowledged segment carried a CE mark.
        ece: bool,
    },
    /// Connection teardown notice (streaming mode only). Sent by the
    /// source host once its sender half has completed, so the destination
    /// host can free the receiver half of the flow's slab slot. Fins ride
    /// the normal data path — same routing, queueing and tie-breaking as
    /// every other packet — which is what keeps slot reclamation
    /// byte-identical between sequential and sharded runs. A dropped Fin
    /// merely leaks one slot, identically in both modes.
    Fin,
}

/// One packet in flight.
///
/// Packets carry two timestamps: `sent_at_nanos` (set by the data sender
/// and echoed back on the ACK, giving the sender an exact per-ACK RTT —
/// the signal PMSB(e) needs) and `enqueued_at_nanos` (stamped at each
/// switch queue admission, giving TCN its sojourn time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow_id: u64,
    /// Originating host (node id).
    pub src_host: usize,
    /// Destination host (node id).
    pub dst_host: usize,
    /// Service class; switches map it onto a queue.
    pub service: usize,
    /// Payload + headers as buffered and serialized.
    pub wire_bytes: u64,
    /// ECN-Capable Transport: eligible for CE marking.
    pub ect: bool,
    /// Congestion Experienced: set by a switch's marking scheme.
    pub ce: bool,
    /// Congestion Window Reduced (RFC 3168): set by a classic-ECN sender
    /// on the first data segment after a reduction, telling the receiver
    /// to stop echoing ECE. DCTCP does not use it.
    pub cwr: bool,
    /// Payload damaged in flight (fault injection): the next hop's
    /// checksum fails and the packet is discarded on arrival.
    pub corrupted: bool,
    /// When the data sender emitted the segment this packet (or the
    /// segment an ACK acknowledges) left the sender; echoed in ACKs.
    pub sent_at_nanos: u64,
    /// When this packet entered the current switch queue (per-hop).
    pub enqueued_at_nanos: u64,
    /// Payload descriptor.
    pub kind: PacketKind,
}

impl Packet {
    /// Builds a data segment of `len` payload bytes.
    pub fn data(
        flow_id: u64,
        src_host: usize,
        dst_host: usize,
        service: usize,
        seq: u64,
        len: u64,
        now_nanos: u64,
    ) -> Packet {
        Packet {
            flow_id,
            src_host,
            dst_host,
            service,
            wire_bytes: len + HEADER_BYTES,
            ect: true,
            ce: false,
            cwr: false,
            corrupted: false,
            sent_at_nanos: now_nanos,
            enqueued_at_nanos: now_nanos,
            kind: PacketKind::Data { seq, len },
        }
    }

    /// Builds the ACK for a received segment. ACKs are not ECT (they are
    /// never CE-marked), as in standard ECN.
    pub fn ack(
        flow_id: u64,
        src_host: usize,
        dst_host: usize,
        service: usize,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
    ) -> Packet {
        Packet {
            flow_id,
            src_host,
            dst_host,
            service,
            wire_bytes: ACK_WIRE_BYTES,
            ect: false,
            ce: false,
            cwr: false,
            corrupted: false,
            sent_at_nanos: echo_sent_at_nanos,
            enqueued_at_nanos: echo_sent_at_nanos,
            kind: PacketKind::Ack { cum_ack, ece },
        }
    }

    /// Builds a teardown notice for a completed flow. Fin packets are
    /// ACK-sized and, like ACKs, not ECT.
    pub fn fin(
        flow_id: u64,
        src_host: usize,
        dst_host: usize,
        service: usize,
        now_nanos: u64,
    ) -> Packet {
        Packet {
            flow_id,
            src_host,
            dst_host,
            service,
            wire_bytes: ACK_WIRE_BYTES,
            ect: false,
            ce: false,
            cwr: false,
            corrupted: false,
            sent_at_nanos: now_nanos,
            enqueued_at_nanos: now_nanos,
            kind: PacketKind::Fin,
        }
    }

    /// `true` for data segments.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

impl SchedItem for Packet {
    fn len_bytes(&self) -> u64 {
        self.wire_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_wire_size_includes_header() {
        let p = Packet::data(1, 0, 2, 0, 0, DEFAULT_MSS, 5);
        assert_eq!(p.wire_bytes, MTU_WIRE_BYTES);
        assert!(p.ect);
        assert!(!p.ce);
        assert!(p.is_data());
        assert_eq!(p.len_bytes(), 1500);
    }

    #[test]
    fn ack_is_small_and_not_ect() {
        let a = Packet::ack(1, 2, 0, 0, 1460, true, 42);
        assert_eq!(a.wire_bytes, ACK_WIRE_BYTES);
        assert!(!a.ect);
        assert!(!a.is_data());
        assert_eq!(a.sent_at_nanos, 42, "ACK echoes the data timestamp");
        match a.kind {
            PacketKind::Ack { cum_ack, ece } => {
                assert_eq!(cum_ack, 1460);
                assert!(ece);
            }
            _ => panic!("not an ack"),
        }
    }
}
