//! Conservative parallel execution of a sharded [`World`] (DESIGN.md §8).
//!
//! The network is partitioned by switch into logical processes — every LP
//! owns a set of switches plus the hosts attached to them, chosen by the
//! experiment's [`PartitionStrategy`](crate::partition::PartitionStrategy)
//! — and driven by [`pmsb_simcore::run_conservative_matrix`]:
//! barrier-synchronized windows with *per-LP horizons*. Each LP's horizon
//! is bounded by its peers' pending times plus the pairwise minimum
//! propagation delay (closed over multi-hop paths), so distant and idle
//! LPs stop throttling busy ones. Cross-LP packets travel through
//! preallocated per-(src,dst) lanes swapped at each barrier, and the
//! deterministic `(time, src_lp, emission order)` merge at each
//! destination makes the event schedule — and therefore every record —
//! byte-identical to the sequential run for any thread count and any
//! partition.

use pmsb_metrics::fct::{FctRecorder, FlowRecord};
use pmsb_simcore::{
    run_conservative_matrix, EventHandler, LogicalProcess, LookaheadMatrix, LpMessage, SimTime,
    Simulation, TieKey,
};

use crate::experiment::Experiment;
use crate::partition::{contiguous_partition, traffic_partition, PartitionStrategy};
use crate::world::{Event, RunResults, World};

/// One logical process: a full [`World`] copy that simulates only its
/// own partition, with its private FEL.
struct ShardLp {
    sim: Simulation<World>,
}

impl LogicalProcess for ShardLp {
    /// A packet delivery tagged with the sender-side tie key; replaying
    /// the key on insertion sorts the message among same-time local
    /// events exactly where the sequential run's push (made mid-handling
    /// at the send instant) would have placed it.
    type Message = (TieKey, Event);

    fn next_time(&self) -> Option<SimTime> {
        self.sim.queue.peek_time()
    }

    fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<(TieKey, Event)>>) {
        // Peek-then-pop (not `pop_at_or_before`): a declined pop must not
        // advance the FEL clock past the horizon, or the messages pushed
        // at the next barrier would land in this LP's past.
        while self.sim.queue.peek_time().is_some_and(|t| t < horizon) {
            let (now, event) = self.sim.queue.pop().expect("peeked a pending event");
            self.sim.handler.handle(now, event, &mut self.sim.queue);
        }
        self.sim.handler.drain_outbox(outbox);
    }

    fn receive(&mut self, at: SimTime, src: u32, (key, event): (TieKey, Event)) {
        self.sim.queue.push_ordered(at, key, src, event);
    }
}

/// Runs `exp` to `end_nanos` on `k` logical processes. Falls back to the
/// sequential path when the partition cuts a zero-delay link (no safe
/// lookahead window exists across it).
pub(crate) fn run_sharded(exp: &Experiment, k: usize, end_nanos: u64) -> RunResults {
    let mut worlds: Vec<World> = (0..k).map(|_| exp.build_world()).collect();
    let owner = match exp.partition {
        PartitionStrategy::Contiguous => contiguous_partition(worlds[0].num_switches(), k),
        PartitionStrategy::Traffic => traffic_partition(&worlds[0], exp, k),
    };
    let direct = worlds[0].lp_delay_matrix(&owner, k);
    if direct.contains(&0) {
        return worlds.swap_remove(0).run_until_nanos(end_nanos);
    }
    let lookahead = LookaheadMatrix::from_direct(k, direct);
    let mut lps: Vec<ShardLp> = worlds
        .into_iter()
        .enumerate()
        .map(|(lp, mut w)| {
            w.set_shard(lp, owner.clone());
            ShardLp {
                sim: w.prepare(end_nanos),
            }
        })
        .collect();
    run_conservative_matrix(&mut lps, &lookahead, SimTime::from_nanos(end_nanos));
    // The tie-key window resolves cross-LP message order wherever the
    // causal chains differ within it, but two chains in lockstep (e.g.
    // ports serializing identical packets at the same instants) can
    // collide through any bounded window. Every such collision is
    // counted at pop time; zero collisions proves the schedule matched
    // the sequential run, so a non-zero count discards the sharded
    // results and reruns sequentially — correctness over speed.
    let ambiguous: u64 = lps.iter().map(|lp| lp.sim.queue.ambiguous_ties()).sum();
    if ambiguous > 0 {
        return exp.build_world().run_until_nanos(end_nanos);
    }
    let parts = lps
        .into_iter()
        .map(|lp| {
            // Subtract the pushes a sequential run would not have made
            // (replicated fault events, duplicate trace chains) so the
            // merged total matches the sequential `events` exactly.
            let events = lp.sim.queue.scheduled_count() - lp.sim.handler.shard_extra_pushes();
            lp.sim.handler.harvest(end_nanos, events)
        })
        .collect();
    merge(parts)
}

/// Folds per-LP results into the sequential run's shape. Ownership is
/// disjoint — each flow, sender, and watched port is harvested by
/// exactly one LP — so maps union, counters sum, and the completion
/// records re-sort into the sequential `(end, flow)` order. Fault
/// schedule bookkeeping (timeline log, link up/down counts) is identical
/// on every LP; per-packet fault drops happen on one LP each and sum.
fn merge(parts: Vec<RunResults>) -> RunResults {
    let mut it = parts.into_iter();
    let mut acc = it.next().expect("at least one LP");
    let mut records: Vec<FlowRecord> = acc.fct.records().to_vec();
    for p in it {
        records.extend_from_slice(p.fct.records());
        acc.rtt_nanos_by_flow.extend(p.rtt_nanos_by_flow);
        acc.port_traces.extend(p.port_traces);
        acc.sender_stats.extend(p.sender_stats);
        acc.drops += p.drops;
        acc.marks += p.marks;
        acc.events += p.events;
        acc.deliveries += p.deliveries;
        if let (Some(a), Some(b)) = (acc.shared_buffer.as_mut(), p.shared_buffer.as_ref()) {
            // Each switch's pool sees traffic on exactly one LP (the
            // owner); other LPs fold zeros. Drops sum, peaks max.
            a.absorb(b);
        }
        if let (Some(a), Some(b)) = (acc.faults.as_mut(), p.faults.as_ref()) {
            a.injected_drops += b.injected_drops;
            a.corrupt_drops += b.corrupt_drops;
            a.unroutable_drops += b.unroutable_drops;
        }
        if let (Some(a), Some(b)) = (acc.stream.as_mut(), p.stream.as_ref()) {
            // Each flow's sender lives on exactly one LP, so counts sum
            // and the sketches merge losslessly (order-independent). The
            // high-water marks peak at different instants per LP; their
            // sum is an upper bound on the global concurrent population.
            a.sketch.merge(&b.sketch);
            a.injected += b.injected;
            a.completed += b.completed;
            a.bytes_completed += b.bytes_completed;
            crate::world::add_sender_stats(&mut a.agg_sender, &b.agg_sender);
            a.slab_high_water += b.slab_high_water;
        }
    }
    records.sort_unstable_by_key(|r| (r.end_nanos, r.flow_id));
    let mut fct = FctRecorder::new();
    for r in records {
        fct.record(r);
    }
    acc.fct = fct;
    acc
}
