//! Switch-graph partitioning for sharded parallel runs (DESIGN.md §8).
//!
//! A parallel run assigns every switch (and the hosts attached to it) to
//! one logical process. The assignment never changes the results — the
//! conservative protocol is byte-identical for any disjoint+complete
//! owner array — but it decides the wall clock: unbalanced partitions
//! leave workers idling at the barrier, and heavily-cut partitions pay
//! for every packet crossing an LP boundary.
//!
//! Two strategies:
//!
//! * [`PartitionStrategy::Contiguous`] — `k` contiguous switch-index
//!   ranges, sizes within one switch of each other. Oblivious to both
//!   topology and workload; kept as the stable reference point for
//!   byte-compare gates and as the zero-information fallback.
//! * [`PartitionStrategy::Traffic`] — greedy balanced growth over the
//!   switch graph, weighted by the workload's expected traffic: the
//!   experiment's flows (static list or a deterministic sample of the
//!   streaming pattern) are walked along their ECMP routes, the two
//!   endpoint switches accumulate node weight and every switch-to-switch
//!   hop accumulates edge weight. Partitions grow to a balanced share of
//!   the total node weight while preferring the unassigned switch most
//!   connected to the partition so far — balancing LP load and keeping
//!   heavy links internal. With no flows attached the weights fall back
//!   to topology degree (node = port count, edge = 1), which still beats
//!   index ranges on fabrics whose tiers interleave in the index space.
//!
//! Both strategies are pure functions of the experiment, so the owner
//! array — like everything downstream of it — is deterministic.

use crate::experiment::Experiment;
use crate::world::{NodeRef, World};

/// How `--sim-threads N` splits the switches across logical processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Contiguous switch-index ranges (the byte-compare reference).
    Contiguous,
    /// Traffic-weighted greedy balanced growth (the default).
    #[default]
    Traffic,
}

/// Flows sampled from a workload when estimating per-link traffic; keeps
/// partition planning O(sample · path) even for million-flow streams.
const SAMPLE_FLOWS: u64 = 4096;

/// Routing-walk guard: no sane fabric routes a flow through more hops.
const MAX_HOPS: usize = 64;

/// Long-lived flows report `u64::MAX` bytes; weigh them as a large but
/// finite transfer so one immortal flow cannot erase every other signal.
const LONG_LIVED_WEIGHT_BYTES: u64 = 100_000_000;

/// Owning LP per switch: `k` contiguous ranges, remainder spread over
/// the first ranges (sizes differ by at most one).
pub(crate) fn contiguous_partition(num_switches: usize, k: usize) -> Vec<u32> {
    let base = num_switches / k;
    let extra = num_switches % k;
    let mut owner = Vec::with_capacity(num_switches);
    for lp in 0..k {
        let size = base + usize::from(lp < extra);
        owner.extend(std::iter::repeat_n(lp as u32, size));
    }
    owner
}

/// The switch-graph weights the traffic partitioner balances:
/// `node[s]` is the bytes sourced or sunk by hosts attached to switch
/// `s`, `adj[s]` the neighboring switches with the bytes expected to
/// transit each link. Nodes carry endpoint traffic only — counting
/// transit bytes on nodes would let a hub switch (a spine crossed by
/// every pair) swallow a partition's whole quota by itself, even though
/// hubs are exactly the switches that should ride along with whichever
/// endpoint group absorbs them.
struct SwitchGraph {
    node: Vec<u64>,
    adj: Vec<Vec<(usize, u64)>>,
}

impl SwitchGraph {
    fn add_edge_weight(&mut self, s: usize, t: usize, w: u64) {
        match self.adj[s].iter_mut().find(|(peer, _)| *peer == t) {
            Some((_, acc)) => *acc += w,
            None => self.adj[s].push((t, w)),
        }
    }
}

/// Builds the weighted switch graph for `exp`'s workload on `world`.
///
/// Every flow in the sample is walked along its ECMP route; its byte
/// count lands on the two endpoint switches and on each traversed
/// switch-to-switch hop (both directions — data and its reverse ACK
/// stream cross the same links). When the experiment carries no flows
/// at all, weights fall back to topology degree.
fn traffic_graph(world: &World, exp: &Experiment) -> SwitchGraph {
    let n = world.num_switches();
    let mut g = SwitchGraph {
        node: vec![0; n],
        adj: vec![Vec::new(); n],
    };
    // The link skeleton first (weight 0): keeps the adjacency complete
    // even where the sample routes no traffic, which the degree
    // fallback and the growth step both rely on.
    for s in 0..n {
        for p in 0..world.num_ports(s) {
            if let NodeRef::Switch(t) = world.port_peer(s, p) {
                g.add_edge_weight(s, t, 0);
            }
        }
    }
    let mut route = |src: usize, dst: usize, bytes: u64, flow_id: u64| {
        if src == dst {
            return;
        }
        let bytes = bytes.clamp(1, LONG_LIVED_WEIGHT_BYTES);
        let mut sw = world.host_switch(src);
        g.node[sw] += bytes;
        g.node[world.host_switch(dst)] += bytes;
        for _ in 0..MAX_HOPS {
            match world.port_peer(sw, world.route_port_for(sw, dst, flow_id)) {
                NodeRef::Host(_) => break,
                NodeRef::Switch(t) => {
                    g.add_edge_weight(sw, t, bytes);
                    g.add_edge_weight(t, sw, bytes);
                    sw = t;
                }
            }
        }
    };
    for (id, f) in exp.flows.iter().take(SAMPLE_FLOWS as usize).enumerate() {
        route(f.src_host, f.dst_host, f.size_bytes, id as u64);
    }
    if let Some(sp) = &exp.stream {
        let sample = sp.total_flows.min(SAMPLE_FLOWS);
        for f in sp.pattern.flows(world.num_hosts(), sp.seed, sample) {
            route(f.src_host, f.dst_host, f.size_bytes, f.flow_id);
        }
    }
    if g.node.iter().all(|&w| w == 0) {
        // No workload attached: weight by degree so dense tiers (cores,
        // spines) spread across LPs instead of pooling in one range.
        for s in 0..n {
            g.node[s] = world.num_ports(s) as u64;
            for e in &mut g.adj[s] {
                e.1 = 1;
            }
        }
    }
    // A floor of one keeps zero-traffic switches countable, so balance
    // still distributes them instead of dumping them all on one LP.
    for w in &mut g.node {
        *w += 1;
    }
    g
}

/// Greedy balanced growth: each partition seeds at the heaviest
/// unassigned switch, then repeatedly absorbs the unassigned switch
/// with the strongest edge connection to it (ties: heavier node, lower
/// index) until it reaches a balanced share of the remaining node
/// weight. A candidate that would overshoot the share by more than it
/// undershoots is declined, so every partition lands within one switch
/// weight of its target; the last partition takes the remainder, and a
/// count guard keeps every partition nonempty.
pub(crate) fn traffic_partition(world: &World, exp: &Experiment, k: usize) -> Vec<u32> {
    /// Assigns `s` to `lp` and folds its edges into the frontier
    /// connectivity of the partition currently growing.
    fn absorb(
        s: usize,
        lp: u32,
        g: &SwitchGraph,
        owner: &mut [u32],
        conn: &mut [u64],
        unassigned: &mut usize,
        grown: &mut u64,
    ) {
        owner[s] = lp;
        *unassigned -= 1;
        *grown += g.node[s];
        conn[s] = 0;
        for &(t, w) in &g.adj[s] {
            if owner[t] == u32::MAX {
                // Even a zero-traffic link counts as adjacency, so the
                // partition keeps growing along the topology when the
                // sampled traffic runs out of frontier links.
                conn[t] += w.max(1);
            }
        }
    }

    let g = traffic_graph(world, exp);
    let n = g.node.len();
    debug_assert!(k >= 1 && n >= k, "threads are clamped to the switch count");
    let mut owner = vec![u32::MAX; n];
    let mut unassigned = n;
    let mut remaining_weight: u64 = g.node.iter().sum();
    // conn[s] = total edge weight from unassigned switch s into the
    // partition currently growing.
    let mut conn = vec![0u64; n];
    for lp in 0..k as u32 {
        let parts_left = k as u32 - lp;
        if parts_left == 1 {
            for o in owner.iter_mut().filter(|o| **o == u32::MAX) {
                *o = lp;
            }
            break;
        }
        let target = remaining_weight / parts_left as u64;
        let seed = (0..n)
            .filter(|&s| owner[s] == u32::MAX)
            .max_by_key(|&s| (g.node[s], std::cmp::Reverse(s)))
            .expect("count guard keeps switches available");
        let mut grown = 0u64;
        absorb(
            seed,
            lp,
            &g,
            &mut owner,
            &mut conn,
            &mut unassigned,
            &mut grown,
        );
        while grown < target && unassigned > (parts_left - 1) as usize {
            let next = (0..n)
                .filter(|&s| owner[s] == u32::MAX)
                .max_by_key(|&s| (conn[s], g.node[s], std::cmp::Reverse(s)))
                .expect("count guard keeps switches available");
            let overshoot = (grown + g.node[next]).saturating_sub(target);
            if overshoot > target - grown {
                break;
            }
            absorb(
                next,
                lp,
                &g,
                &mut owner,
                &mut conn,
                &mut unassigned,
                &mut grown,
            );
        }
        remaining_weight -= grown;
        conn.fill(0);
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, FlowDesc};
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn contiguous_is_contiguous_and_balanced() {
        assert_eq!(contiguous_partition(8, 4), vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(contiguous_partition(5, 2), vec![0, 0, 0, 1, 1]);
        assert_eq!(contiguous_partition(3, 3), vec![0, 1, 2]);
        assert_eq!(contiguous_partition(7, 3), vec![0, 0, 0, 1, 1, 2, 2]);
    }

    /// A randomized leaf-spine experiment with `flows` bulk flows drawn
    /// from `rng` (deterministic per seed).
    fn random_experiment(rng: &mut SimRng, flows: usize) -> Experiment {
        let leaves = 2 + (rng.next_u64() % 7) as usize; // 2..=8
        let spines = 1 + (rng.next_u64() % 4) as usize; // 1..=4
        let hosts_per_leaf = 2 + (rng.next_u64() % 3) as usize; // 2..=4
        let num_hosts = leaves * hosts_per_leaf;
        let mut e = Experiment::leaf_spine(leaves, spines, hosts_per_leaf);
        for _ in 0..flows {
            let src = (rng.next_u64() % num_hosts as u64) as usize;
            let mut dst = (rng.next_u64() % num_hosts as u64) as usize;
            if dst == src {
                dst = (dst + 1) % num_hosts;
            }
            let bytes = 1_000 + rng.next_u64() % 1_000_000;
            e.add_flow(FlowDesc::bulk(src, dst, 0, bytes));
        }
        e
    }

    /// Property suite over random fabrics and workloads: ownership is
    /// disjoint and complete, every LP is nonempty, the assignment is
    /// deterministic for a fixed seed, and the per-LP node weight stays
    /// within one switch weight of the balanced share.
    #[test]
    fn traffic_partition_properties() {
        let mut rng = SimRng::seed_from(7);
        for trial in 0..24 {
            let flows = (trial % 5) * 12; // includes the zero-flow fallback
            let exp = random_experiment(&mut rng, flows);
            let world = exp.build_world();
            let n = world.num_switches();
            for k in [1, 2, 3, 4] {
                if k > n {
                    continue;
                }
                let owner = traffic_partition(&world, &exp, k);
                // Complete: every switch owned by a real LP.
                assert_eq!(owner.len(), n);
                assert!(
                    owner.iter().all(|&o| (o as usize) < k),
                    "trial {trial} k {k}"
                );
                // Nonempty: every LP owns at least one switch (disjoint
                // is implied: one owner entry per switch).
                for lp in 0..k as u32 {
                    assert!(
                        owner.contains(&lp),
                        "trial {trial}: LP {lp}/{k} owns nothing: {owner:?}"
                    );
                }
                // Deterministic: same experiment, same partition.
                assert_eq!(owner, traffic_partition(&world, &exp, k));
                // Balanced within one switch weight of the ideal share.
                let g = traffic_graph(&world, &exp);
                let total: u64 = g.node.iter().sum();
                let max_node = *g.node.iter().max().expect("nonempty fabric");
                let share = total / k as u64;
                for lp in 0..k as u32 {
                    let w: u64 = (0..n).filter(|&s| owner[s] == lp).map(|s| g.node[s]).sum();
                    assert!(
                        w <= share + max_node && w + max_node >= share,
                        "trial {trial} k {k} lp {lp}: weight {w} vs share {share} \
                         (max switch {max_node}): {owner:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn traffic_partition_keeps_heavy_pairs_together() {
        // All traffic flows inside leaf 0 <-> leaf 1 (via the single
        // spine) and inside leaf 2 <-> leaf 3; a 2-way traffic split
        // must not pair a busy leaf with an idle one.
        let mut e = Experiment::leaf_spine(4, 1, 2);
        // Hosts 0..=1 on leaf 0, 2..=3 on leaf 1, etc.
        for _ in 0..8 {
            e.add_flow(FlowDesc::bulk(0, 3, 0, 1_000_000));
            e.add_flow(FlowDesc::bulk(4, 7, 0, 1_000_000));
        }
        let world = e.build_world();
        let owner = traffic_partition(&world, &e, 2);
        // Switches: leaves 0..=3, spine 4. The two busy pairs must land
        // on different LPs (both include the spine's LP somewhere).
        assert_eq!(owner[0], owner[1], "busy pair 0-1 split: {owner:?}");
        assert_eq!(owner[2], owner[3], "busy pair 2-3 split: {owner:?}");
        assert_ne!(
            owner[0], owner[2],
            "independent pairs share an LP: {owner:?}"
        );
    }
}
