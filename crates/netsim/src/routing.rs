//! Static routing with per-flow ECMP.

/// A switch's forwarding table: for each destination host, the candidate
/// output ports. Multiple candidates (leaf uplinks) are load-balanced by
/// per-flow ECMP hashing, so one flow always takes one path (no packet
/// reordering from the fabric).
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// `routes[dst_host]` = candidate output ports.
    routes: Vec<Vec<usize>>,
}

impl RouteTable {
    /// Creates a table covering `num_hosts` destinations with no routes.
    pub fn new(num_hosts: usize) -> Self {
        RouteTable {
            routes: vec![Vec::new(); num_hosts],
        }
    }

    /// Sets the candidate ports for `dst_host`, growing the table as
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty.
    pub fn set(&mut self, dst_host: usize, ports: Vec<usize>) {
        assert!(!ports.is_empty(), "a route needs at least one port");
        if dst_host >= self.routes.len() {
            self.routes.resize(dst_host + 1, Vec::new());
        }
        self.routes[dst_host] = ports;
    }

    /// The output port for `flow_id` towards `dst_host` (ECMP over the
    /// candidates).
    ///
    /// # Panics
    ///
    /// Panics if no route to `dst_host` exists.
    pub fn port_for(&self, dst_host: usize, flow_id: u64) -> usize {
        let candidates = self.routes.get(dst_host).map(Vec::as_slice).unwrap_or(&[]);
        assert!(
            !candidates.is_empty(),
            "no route to host {dst_host} (flow {flow_id})"
        );
        candidates[ecmp_hash(flow_id) as usize % candidates.len()]
    }

    /// The candidate ports for `dst_host` (for tests/diagnostics).
    pub fn candidates(&self, dst_host: usize) -> &[usize] {
        self.routes.get(dst_host).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The output port for `flow_id` towards `dst_host`, skipping
    /// candidates for which `is_up` is false (dead links during fault
    /// injection). `None` when every candidate is down.
    ///
    /// The selection re-hashes deterministically over the surviving
    /// candidates in table order: two runs with the same topology, flow
    /// ids, and fault schedule pick identical paths. With every
    /// candidate up the choice equals [`RouteTable::port_for`], so ECMP
    /// re-converges to the original paths when a link recovers.
    ///
    /// # Panics
    ///
    /// Panics if no route to `dst_host` exists.
    pub fn port_for_masked(
        &self,
        dst_host: usize,
        flow_id: u64,
        is_up: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let candidates = self.routes.get(dst_host).map(Vec::as_slice).unwrap_or(&[]);
        assert!(
            !candidates.is_empty(),
            "no route to host {dst_host} (flow {flow_id})"
        );
        let live = candidates.iter().filter(|&&p| is_up(p)).count();
        if live == 0 {
            return None;
        }
        let k = ecmp_hash(flow_id) as usize % live;
        candidates.iter().filter(|&&p| is_up(p)).nth(k).copied()
    }
}

/// Deterministic per-flow hash (SplitMix64 finalizer) used for ECMP path
/// selection: uniform across flows, stable across packets of one flow.
pub fn ecmp_hash(flow_id: u64) -> u64 {
    let mut z = flow_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn single_route_always_used() {
        let mut t = RouteTable::new(4);
        t.set(2, vec![7]);
        for flow in 0..100 {
            assert_eq!(t.port_for(2, flow), 7);
        }
    }

    #[test]
    fn ecmp_spreads_flows_roughly_evenly() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for flow in 0..4000 {
            counts[t.port_for(0, flow)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "uneven ECMP spread: {counts:?}");
        }
    }

    #[test]
    fn same_flow_same_path() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![0, 1, 2, 3]);
        for flow in 0..50 {
            let first = t.port_for(0, flow);
            for _ in 0..10 {
                assert_eq!(t.port_for(0, flow), first);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        RouteTable::new(2).port_for(1, 0);
    }

    /// The hash is deterministic for any flow id.
    #[test]
    fn hash_deterministic() {
        let mut rng = SimRng::seed_from(0xec);
        for _ in 0..128 {
            let flow = rng.next_u64();
            assert_eq!(ecmp_hash(flow), ecmp_hash(flow));
        }
    }

    /// Two tables built from the same topology make identical choices
    /// for every flow: path selection depends only on (table, flow id).
    #[test]
    fn identical_tables_pick_identical_paths() {
        let build = || {
            let mut t = RouteTable::new(8);
            for dst in 0..8 {
                t.set(dst, vec![4, 5, 6, 7]);
            }
            t
        };
        let (a, b) = (build(), build());
        let mut rng = SimRng::seed_from(0x31);
        for _ in 0..512 {
            let flow = rng.next_u64();
            let dst = rng.below(8);
            assert_eq!(a.port_for(dst, flow), b.port_for(dst, flow));
        }
    }

    /// With every candidate up, the masked selection equals the
    /// unmasked one — fault-free runs are unperturbed.
    #[test]
    fn masked_selection_matches_unmasked_when_all_up() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![2, 3, 4, 5]);
        for flow in 0..1000 {
            assert_eq!(
                t.port_for_masked(0, flow, |_| true),
                Some(t.port_for(0, flow))
            );
        }
    }

    /// Re-selection around a dead link is deterministic, never picks the
    /// dead port, and re-converges to the original path on recovery.
    #[test]
    fn rehash_avoids_dead_link_and_reconverges() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![2, 3, 4, 5]);
        let dead = 4usize;
        let mut moved = 0;
        for flow in 0..1000u64 {
            let before = t.port_for(0, flow);
            let during = t
                .port_for_masked(0, flow, |p| p != dead)
                .expect("three candidates still live");
            assert_ne!(during, dead, "flow {flow} routed onto the dead link");
            let replay = t.port_for_masked(0, flow, |p| p != dead).unwrap();
            assert_eq!(during, replay, "re-selection must be deterministic");
            if before != dead {
                // Unaffected flows may still re-hash, but whatever they
                // pick must be stable; affected flows must move.
            } else {
                moved += 1;
            }
            let after = t.port_for_masked(0, flow, |_| true).unwrap();
            assert_eq!(after, before, "recovery restores the original path");
        }
        assert!(
            moved > 150,
            "about a quarter of flows crossed the dead link"
        );
    }

    /// All candidates dead: no route, never a panic mid-run.
    #[test]
    fn fully_dead_candidate_set_yields_none() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![1, 2]);
        assert_eq!(t.port_for_masked(0, 7, |_| false), None);
    }
}
