//! Static routing with per-flow ECMP.

/// A switch's forwarding table: for each destination host, the candidate
/// output ports. Multiple candidates (leaf uplinks) are load-balanced by
/// per-flow ECMP hashing, so one flow always takes one path (no packet
/// reordering from the fabric).
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// `routes[dst_host]` = candidate output ports.
    routes: Vec<Vec<usize>>,
}

impl RouteTable {
    /// Creates a table covering `num_hosts` destinations with no routes.
    pub fn new(num_hosts: usize) -> Self {
        RouteTable {
            routes: vec![Vec::new(); num_hosts],
        }
    }

    /// Sets the candidate ports for `dst_host`, growing the table as
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty.
    pub fn set(&mut self, dst_host: usize, ports: Vec<usize>) {
        assert!(!ports.is_empty(), "a route needs at least one port");
        if dst_host >= self.routes.len() {
            self.routes.resize(dst_host + 1, Vec::new());
        }
        self.routes[dst_host] = ports;
    }

    /// The output port for `flow_id` towards `dst_host` (ECMP over the
    /// candidates).
    ///
    /// # Panics
    ///
    /// Panics if no route to `dst_host` exists.
    pub fn port_for(&self, dst_host: usize, flow_id: u64) -> usize {
        let candidates = self.routes.get(dst_host).map(Vec::as_slice).unwrap_or(&[]);
        assert!(
            !candidates.is_empty(),
            "no route to host {dst_host} (flow {flow_id})"
        );
        candidates[ecmp_hash(flow_id) as usize % candidates.len()]
    }

    /// The candidate ports for `dst_host` (for tests/diagnostics).
    pub fn candidates(&self, dst_host: usize) -> &[usize] {
        self.routes.get(dst_host).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Deterministic per-flow hash (SplitMix64 finalizer) used for ECMP path
/// selection: uniform across flows, stable across packets of one flow.
pub fn ecmp_hash(flow_id: u64) -> u64 {
    let mut z = flow_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn single_route_always_used() {
        let mut t = RouteTable::new(4);
        t.set(2, vec![7]);
        for flow in 0..100 {
            assert_eq!(t.port_for(2, flow), 7);
        }
    }

    #[test]
    fn ecmp_spreads_flows_roughly_evenly() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for flow in 0..4000 {
            counts[t.port_for(0, flow)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "uneven ECMP spread: {counts:?}");
        }
    }

    #[test]
    fn same_flow_same_path() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![0, 1, 2, 3]);
        for flow in 0..50 {
            let first = t.port_for(0, flow);
            for _ in 0..10 {
                assert_eq!(t.port_for(0, flow), first);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        RouteTable::new(2).port_for(1, 0);
    }

    /// The hash is deterministic for any flow id.
    #[test]
    fn hash_deterministic() {
        let mut rng = SimRng::seed_from(0xec);
        for _ in 0..128 {
            let flow = rng.next_u64();
            assert_eq!(ecmp_hash(flow), ecmp_hash(flow));
        }
    }
}
