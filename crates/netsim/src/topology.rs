//! Topology builders: the paper's dumbbell and leaf–spine fabrics, plus
//! the hyperscale `fat_tree(k)` Clos.

use crate::config::{HostConfig, SwitchConfig, TransportConfig};
use crate::world::World;

/// Builds an `n`-sender dumbbell: hosts `0..n` are senders, host `n` is
/// the receiver, all attached to one switch. The bottleneck is the
/// receiver-facing port, **port `n` of switch 0** — watch that port for
/// queue traces.
///
/// Every link runs at `rate_bps` with `delay_nanos` propagation delay,
/// so the unloaded RTT is `4 × delay` plus serialization.
///
/// # Example
///
/// ```
/// use pmsb_netsim::config::{HostConfig, SwitchConfig, TransportConfig};
/// use pmsb_netsim::topology::dumbbell;
///
/// let w = dumbbell(
///     8,
///     10_000_000_000,
///     5_000,
///     &SwitchConfig::default(),
///     &HostConfig::default(),
///     TransportConfig::default(),
/// );
/// drop(w);
/// ```
pub fn dumbbell(
    num_senders: usize,
    rate_bps: u64,
    delay_nanos: u64,
    switch_cfg: &SwitchConfig,
    host_cfg: &HostConfig,
    transport: TransportConfig,
) -> World {
    assert!(num_senders >= 1, "need at least one sender");
    let mut w = World::new(transport);
    let mut hosts = Vec::new();
    for _ in 0..=num_senders {
        hosts.push(w.add_host(host_cfg.clone()));
    }
    let s = w.add_switch();
    for &h in &hosts {
        let port = w.wire_host(h, s, rate_bps, delay_nanos, switch_cfg);
        w.set_route(s, h, vec![port]);
    }
    w
}

/// Builds the paper's leaf–spine fabric: `leaves × hosts_per_leaf` hosts,
/// each leaf with `hosts_per_leaf` downlinks and one uplink per spine,
/// per-flow ECMP over the uplinks. The paper's §VI-B topology is
/// `leaf_spine(4, 4, 12, …)`: 48 hosts, non-blocking at 10 Gbps.
///
/// Host `h` sits under leaf `h / hosts_per_leaf`. Leaf `l`'s ports
/// `0..hosts_per_leaf` face its hosts; ports
/// `hosts_per_leaf..hosts_per_leaf+spines` face spines `0..spines`.
/// Spine `s`'s port `l` faces leaf `l`.
#[allow(clippy::too_many_arguments)]
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    rate_bps: u64,
    delay_nanos: u64,
    switch_cfg: &SwitchConfig,
    host_cfg: &HostConfig,
    transport: TransportConfig,
) -> World {
    assert!(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1);
    let mut w = World::new(transport);
    let num_hosts = leaves * hosts_per_leaf;
    for _ in 0..num_hosts {
        w.add_host(host_cfg.clone());
    }
    let leaf_idx: Vec<usize> = (0..leaves).map(|_| w.add_switch()).collect();
    let spine_idx: Vec<usize> = (0..spines).map(|_| w.add_switch()).collect();

    // Host downlinks: leaf l port h%hosts_per_leaf.
    for h in 0..num_hosts {
        let l = h / hosts_per_leaf;
        w.wire_host(h, leaf_idx[l], rate_bps, delay_nanos, switch_cfg);
    }
    // Uplinks: leaf l ports hosts_per_leaf..hosts_per_leaf+spines;
    // spine s collects port l per leaf (wired in leaf order).
    for &l in &leaf_idx {
        for &s in &spine_idx {
            w.wire_switch_pair(l, s, rate_bps, delay_nanos, switch_cfg);
        }
    }
    // Routes.
    for dst in 0..num_hosts {
        let dst_leaf = dst / hosts_per_leaf;
        for (l, &leaf) in leaf_idx.iter().enumerate() {
            if l == dst_leaf {
                w.set_route(leaf, dst, vec![dst % hosts_per_leaf]);
            } else {
                let uplinks: Vec<usize> = (hosts_per_leaf..hosts_per_leaf + spines).collect();
                w.set_route(leaf, dst, uplinks);
            }
        }
        for &spine in &spine_idx {
            w.set_route(spine, dst, vec![dst_leaf]);
        }
    }
    w
}

/// Builds a `k`-ary fat tree (Al-Fares et al.): `k` pods of `k/2` edge
/// and `k/2` aggregation switches plus `(k/2)²` cores — `k³/4` hosts on
/// `(5/4)k²` switches, with full per-flow ECMP over the `(k/2)²`
/// equal-cost core paths between hosts in different pods. `fat_tree(4)`
/// is the 16-host smoke fabric; `fat_tree(16)` is the 1024-host
/// hyperscale fabric.
///
/// Index layout (all dense, pods outermost):
///
/// * host `h`: pod `h / (k²/4)`, edge `(h % (k²/4)) / (k/2)` within the
///   pod, edge port `h % (k/2)`,
/// * switch `p·(k/2)+i` = edge `i` of pod `p`; switch `k²/2 + p·(k/2)+j`
///   = aggregation `j` of pod `p`; switch `k² + j·(k/2)+c` = core
///   `(j, c)` — reachable from aggregation `j` of every pod,
/// * edge ports `0..k/2` face hosts, `k/2..k` face aggregations `0..k/2`;
///   aggregation ports `0..k/2` face edges `0..k/2`, `k/2..k` face cores
///   `(j, 0..k/2)`; core `(j, c)` port `p` faces pod `p`.
///
/// Every link runs at `rate_bps` — a non-blocking (1:1 oversubscription)
/// Clos, like the paper's leaf–spine.
///
/// # Panics
///
/// Panics unless `k` is even and at least 4.
pub fn fat_tree(
    k: usize,
    rate_bps: u64,
    delay_nanos: u64,
    switch_cfg: &SwitchConfig,
    host_cfg: &HostConfig,
    transport: TransportConfig,
) -> World {
    assert!(
        k >= 4 && k.is_multiple_of(2),
        "fat-tree k must be even and >= 4, got {k}"
    );
    let half = k / 2;
    let hosts_per_pod = half * half;
    let num_hosts = k * hosts_per_pod;
    let mut w = World::new(transport);
    for _ in 0..num_hosts {
        w.add_host(host_cfg.clone());
    }
    // Switch index ranges (see the layout above).
    let edge = |p: usize, i: usize| p * half + i;
    let agg = |p: usize, j: usize| k * half + p * half + j;
    let core = |j: usize, c: usize| k * k + j * half + c;
    for _ in 0..(k * half * 2 + half * half) {
        w.add_switch();
    }
    // Host downlinks first, so edge ports 0..k/2 are host-facing.
    for h in 0..num_hosts {
        let p = h / hosts_per_pod;
        let i = (h % hosts_per_pod) / half;
        w.wire_host(h, edge(p, i), rate_bps, delay_nanos, switch_cfg);
    }
    // Pod meshes: edge i port k/2+j <-> aggregation j port i.
    for p in 0..k {
        for i in 0..half {
            for j in 0..half {
                w.wire_switch_pair(edge(p, i), agg(p, j), rate_bps, delay_nanos, switch_cfg);
            }
        }
    }
    // Core uplinks: aggregation j port k/2+c <-> core (j, c) port p.
    for p in 0..k {
        for j in 0..half {
            for c in 0..half {
                w.wire_switch_pair(agg(p, j), core(j, c), rate_bps, delay_nanos, switch_cfg);
            }
        }
    }
    // Routes: downward paths are unique, upward paths fan out over every
    // uplink (per-flow ECMP picks one deterministically by flow id).
    let uplinks: Vec<usize> = (half..k).collect();
    for dst in 0..num_hosts {
        let dp = dst / hosts_per_pod;
        let di = (dst % hosts_per_pod) / half;
        for p in 0..k {
            for i in 0..half {
                let e = edge(p, i);
                if p == dp && i == di {
                    w.set_route(e, dst, vec![dst % half]);
                } else {
                    w.set_route(e, dst, uplinks.clone());
                }
            }
            for j in 0..half {
                let a = agg(p, j);
                if p == dp {
                    w.set_route(a, dst, vec![di]);
                } else {
                    w.set_route(a, dst, uplinks.clone());
                }
            }
        }
        for j in 0..half {
            for c in 0..half {
                w.set_route(core(j, c), dst, vec![dp]);
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MarkingConfig, SchedulerConfig};
    use crate::world::FlowDesc;

    fn cfg() -> SwitchConfig {
        SwitchConfig {
            scheduler: SchedulerConfig::Dwrr {
                weights: vec![1; 8],
            },
            marking: MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            ..SwitchConfig::default()
        }
    }

    #[test]
    fn dumbbell_delivers_between_any_pair() {
        let mut w = dumbbell(
            3,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // Senders to receiver and sender-to-sender both route.
        w.add_flow(FlowDesc::bulk(0, 3, 0, 50_000));
        w.add_flow(FlowDesc::bulk(1, 3, 1, 50_000));
        w.add_flow(FlowDesc::bulk(2, 0, 2, 50_000));
        let res = w.run_until_nanos(50_000_000);
        assert_eq!(res.fct.len(), 3);
    }

    #[test]
    fn leaf_spine_intra_and_inter_rack() {
        let mut w = leaf_spine(
            2,
            2,
            3,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // Intra-rack: hosts 0 -> 2 (same leaf). Inter-rack: 0 -> 5.
        w.add_flow(FlowDesc::bulk(0, 2, 0, 100_000));
        w.add_flow(FlowDesc::bulk(0, 5, 1, 100_000));
        w.add_flow(FlowDesc::bulk(4, 1, 2, 100_000));
        let res = w.run_until_nanos(100_000_000);
        assert_eq!(res.fct.len(), 3, "all flows complete across the fabric");
        assert_eq!(res.drops, 0);
    }

    #[test]
    fn paper_topology_shape_48_hosts() {
        let mut w = leaf_spine(
            4,
            4,
            12,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // A far corner-to-corner flow works: host 0 (leaf 0) -> host 47
        // (leaf 3).
        w.add_flow(FlowDesc::bulk(0, 47, 7, 1_000_000));
        let res = w.run_until_nanos(100_000_000);
        assert_eq!(res.fct.len(), 1);
    }

    #[test]
    fn fat_tree_smoke_all_tiers_route() {
        let mut w = fat_tree(
            4,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // Same edge, same pod different edge, different pods.
        w.add_flow(FlowDesc::bulk(0, 1, 0, 100_000));
        w.add_flow(FlowDesc::bulk(0, 3, 1, 100_000));
        w.add_flow(FlowDesc::bulk(0, 15, 2, 100_000));
        w.add_flow(FlowDesc::bulk(14, 2, 3, 100_000));
        let res = w.run_until_nanos(100_000_000);
        assert_eq!(res.fct.len(), 4, "all tiers deliver");
        assert_eq!(res.drops, 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_rejects_odd_k() {
        fat_tree(
            5,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
    }

    #[test]
    fn inter_rack_rtt_exceeds_intra_rack() {
        // The spine detour adds two links each way.
        let run = |src: usize, dst: usize| {
            let mut w = leaf_spine(
                2,
                1,
                2,
                10_000_000_000,
                5_000,
                &cfg(),
                &HostConfig::default(),
                TransportConfig::default(),
            );
            w.add_flow(FlowDesc::bulk(src, dst, 0, 1_000));
            let res = w.run_until_nanos(10_000_000);
            res.fct.records()[0].fct_nanos()
        };
        let intra = run(0, 1);
        let inter = run(0, 3);
        assert!(
            inter > intra + 15_000,
            "inter-rack {inter} vs intra-rack {intra}"
        );
    }
}
