//! Topology builders: the paper's dumbbell and leaf–spine fabrics.

use crate::config::{HostConfig, SwitchConfig, TransportConfig};
use crate::world::World;

/// Builds an `n`-sender dumbbell: hosts `0..n` are senders, host `n` is
/// the receiver, all attached to one switch. The bottleneck is the
/// receiver-facing port, **port `n` of switch 0** — watch that port for
/// queue traces.
///
/// Every link runs at `rate_bps` with `delay_nanos` propagation delay,
/// so the unloaded RTT is `4 × delay` plus serialization.
///
/// # Example
///
/// ```
/// use pmsb_netsim::config::{HostConfig, SwitchConfig, TransportConfig};
/// use pmsb_netsim::topology::dumbbell;
///
/// let w = dumbbell(
///     8,
///     10_000_000_000,
///     5_000,
///     &SwitchConfig::default(),
///     &HostConfig::default(),
///     TransportConfig::default(),
/// );
/// drop(w);
/// ```
pub fn dumbbell(
    num_senders: usize,
    rate_bps: u64,
    delay_nanos: u64,
    switch_cfg: &SwitchConfig,
    host_cfg: &HostConfig,
    transport: TransportConfig,
) -> World {
    assert!(num_senders >= 1, "need at least one sender");
    let mut w = World::new(transport);
    let mut hosts = Vec::new();
    for _ in 0..=num_senders {
        hosts.push(w.add_host(host_cfg.clone()));
    }
    let s = w.add_switch();
    for &h in &hosts {
        let port = w.wire_host(h, s, rate_bps, delay_nanos, switch_cfg);
        w.set_route(s, h, vec![port]);
    }
    w
}

/// Builds the paper's leaf–spine fabric: `leaves × hosts_per_leaf` hosts,
/// each leaf with `hosts_per_leaf` downlinks and one uplink per spine,
/// per-flow ECMP over the uplinks. The paper's §VI-B topology is
/// `leaf_spine(4, 4, 12, …)`: 48 hosts, non-blocking at 10 Gbps.
///
/// Host `h` sits under leaf `h / hosts_per_leaf`. Leaf `l`'s ports
/// `0..hosts_per_leaf` face its hosts; ports
/// `hosts_per_leaf..hosts_per_leaf+spines` face spines `0..spines`.
/// Spine `s`'s port `l` faces leaf `l`.
#[allow(clippy::too_many_arguments)]
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    rate_bps: u64,
    delay_nanos: u64,
    switch_cfg: &SwitchConfig,
    host_cfg: &HostConfig,
    transport: TransportConfig,
) -> World {
    assert!(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1);
    let mut w = World::new(transport);
    let num_hosts = leaves * hosts_per_leaf;
    for _ in 0..num_hosts {
        w.add_host(host_cfg.clone());
    }
    let leaf_idx: Vec<usize> = (0..leaves).map(|_| w.add_switch()).collect();
    let spine_idx: Vec<usize> = (0..spines).map(|_| w.add_switch()).collect();

    // Host downlinks: leaf l port h%hosts_per_leaf.
    for h in 0..num_hosts {
        let l = h / hosts_per_leaf;
        w.wire_host(h, leaf_idx[l], rate_bps, delay_nanos, switch_cfg);
    }
    // Uplinks: leaf l ports hosts_per_leaf..hosts_per_leaf+spines;
    // spine s collects port l per leaf (wired in leaf order).
    for &l in &leaf_idx {
        for &s in &spine_idx {
            w.wire_switch_pair(l, s, rate_bps, delay_nanos, switch_cfg);
        }
    }
    // Routes.
    for dst in 0..num_hosts {
        let dst_leaf = dst / hosts_per_leaf;
        for (l, &leaf) in leaf_idx.iter().enumerate() {
            if l == dst_leaf {
                w.set_route(leaf, dst, vec![dst % hosts_per_leaf]);
            } else {
                let uplinks: Vec<usize> = (hosts_per_leaf..hosts_per_leaf + spines).collect();
                w.set_route(leaf, dst, uplinks);
            }
        }
        for &spine in &spine_idx {
            w.set_route(spine, dst, vec![dst_leaf]);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MarkingConfig, SchedulerConfig};
    use crate::world::FlowDesc;

    fn cfg() -> SwitchConfig {
        SwitchConfig {
            scheduler: SchedulerConfig::Dwrr {
                weights: vec![1; 8],
            },
            marking: MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
            ..SwitchConfig::default()
        }
    }

    #[test]
    fn dumbbell_delivers_between_any_pair() {
        let mut w = dumbbell(
            3,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // Senders to receiver and sender-to-sender both route.
        w.add_flow(FlowDesc::bulk(0, 3, 0, 50_000));
        w.add_flow(FlowDesc::bulk(1, 3, 1, 50_000));
        w.add_flow(FlowDesc::bulk(2, 0, 2, 50_000));
        let res = w.run_until_nanos(50_000_000);
        assert_eq!(res.fct.len(), 3);
    }

    #[test]
    fn leaf_spine_intra_and_inter_rack() {
        let mut w = leaf_spine(
            2,
            2,
            3,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // Intra-rack: hosts 0 -> 2 (same leaf). Inter-rack: 0 -> 5.
        w.add_flow(FlowDesc::bulk(0, 2, 0, 100_000));
        w.add_flow(FlowDesc::bulk(0, 5, 1, 100_000));
        w.add_flow(FlowDesc::bulk(4, 1, 2, 100_000));
        let res = w.run_until_nanos(100_000_000);
        assert_eq!(res.fct.len(), 3, "all flows complete across the fabric");
        assert_eq!(res.drops, 0);
    }

    #[test]
    fn paper_topology_shape_48_hosts() {
        let mut w = leaf_spine(
            4,
            4,
            12,
            10_000_000_000,
            5_000,
            &cfg(),
            &HostConfig::default(),
            TransportConfig::default(),
        );
        // A far corner-to-corner flow works: host 0 (leaf 0) -> host 47
        // (leaf 3).
        w.add_flow(FlowDesc::bulk(0, 47, 7, 1_000_000));
        let res = w.run_until_nanos(100_000_000);
        assert_eq!(res.fct.len(), 1);
    }

    #[test]
    fn inter_rack_rtt_exceeds_intra_rack() {
        // The spine detour adds two links each way.
        let run = |src: usize, dst: usize| {
            let mut w = leaf_spine(
                2,
                1,
                2,
                10_000_000_000,
                5_000,
                &cfg(),
                &HostConfig::default(),
                TransportConfig::default(),
            );
            w.add_flow(FlowDesc::bulk(src, dst, 0, 1_000));
            let res = w.run_until_nanos(10_000_000);
            res.fct.records()[0].fct_nanos()
        };
        let intra = run(0, 1);
        let inter = run(0, 3);
        assert!(
            inter > intra + 15_000,
            "inter-rack {inter} vs intra-rack {intra}"
        );
    }
}
