//! Run-time tracing: what to watch and what was collected.

use pmsb_metrics::{GaugeSeries, ThroughputSeries};

/// What to record during a run.
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Sample watched ports' queue occupancy every this many nanoseconds
    /// (`None` disables occupancy sampling).
    pub sample_interval_nanos: Option<u64>,
    /// Switch ports to watch, as `(switch_index, port_index)` — switch
    /// index is topology-local (0-based), not the global node id.
    pub watch_ports: Vec<(usize, usize)>,
    /// Record every ACK's RTT at each sender.
    pub record_rtt: bool,
    /// Bin width for per-queue throughput accounting at watched ports.
    pub throughput_bin_nanos: u64,
}

impl TraceConfig {
    /// A config that watches nothing (fast path for large runs).
    pub fn off() -> Self {
        TraceConfig {
            sample_interval_nanos: None,
            watch_ports: Vec::new(),
            record_rtt: false,
            throughput_bin_nanos: 1_000_000,
        }
    }

    /// Watches one port with occupancy samples every `interval_nanos` and
    /// 1 ms throughput bins.
    pub fn watch_port(switch: usize, port: usize, interval_nanos: u64) -> Self {
        TraceConfig {
            sample_interval_nanos: Some(interval_nanos),
            watch_ports: vec![(switch, port)],
            record_rtt: false,
            throughput_bin_nanos: 1_000_000,
        }
    }

    /// Enables per-ACK RTT recording at every sender.
    pub fn with_rtt(mut self) -> Self {
        self.record_rtt = true;
        self
    }
}

/// What fault injection did to a run: injector counters plus a
/// timestamped log of every applied fault event. Present in
/// [`crate::world::RunResults`] only when a schedule was attached, so
/// fault-free runs carry no trace of the machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Packets destroyed by injected loss (after serialization, before
    /// delivery). Not counted in the buffer-drop total.
    pub injected_drops: u64,
    /// Packets corrupted in flight and discarded at the next hop's
    /// checksum.
    pub corrupt_drops: u64,
    /// Packets dropped at a switch because every ECMP candidate towards
    /// the destination was down.
    pub unroutable_drops: u64,
    /// Link-down events applied.
    pub link_down_events: u64,
    /// Link-up events applied.
    pub link_up_events: u64,
    /// Every applied fault event as `(at_nanos, description)`, in
    /// application order — the run's fault timeline for reports.
    pub log: Vec<(u64, String)>,
}

impl FaultReport {
    /// All packets the injector itself destroyed (loss + corruption +
    /// unroutable), as opposed to congestive buffer drops.
    pub fn fault_drops(&self) -> u64 {
        self.injected_drops + self.corrupt_drops + self.unroutable_drops
    }
}

/// Everything collected at one watched switch port.
#[derive(Debug, Clone)]
pub struct PortTrace {
    /// Occupancy of each queue in packets (full-MTU equivalents), sampled
    /// on the trace interval.
    pub queue_occupancy_pkts: Vec<GaugeSeries>,
    /// Total port occupancy in packets.
    pub port_occupancy_pkts: GaugeSeries,
    /// Bytes dequeued per queue, binned.
    pub queue_throughput: Vec<ThroughputSeries>,
}

impl PortTrace {
    /// Creates an empty trace for a port with `num_queues` queues.
    pub fn new(num_queues: usize, throughput_bin_nanos: u64) -> Self {
        PortTrace {
            queue_occupancy_pkts: (0..num_queues).map(|_| GaugeSeries::new()).collect(),
            port_occupancy_pkts: GaugeSeries::new(),
            queue_throughput: (0..num_queues)
                .map(|_| ThroughputSeries::new(throughput_bin_nanos))
                .collect(),
        }
    }

    /// Steady-state mean throughput of `queue` in Gbps over
    /// `[from_bin, to_bin)`.
    pub fn mean_queue_gbps(&self, queue: usize, from_bin: usize, to_bin: usize) -> f64 {
        self.queue_throughput[queue].mean_gbps(from_bin, to_bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_watches_nothing() {
        let t = TraceConfig::off();
        assert!(t.watch_ports.is_empty());
        assert!(t.sample_interval_nanos.is_none());
        assert!(!t.record_rtt);
    }

    #[test]
    fn port_trace_shape() {
        let p = PortTrace::new(3, 1000);
        assert_eq!(p.queue_occupancy_pkts.len(), 3);
        assert_eq!(p.queue_throughput.len(), 3);
        assert!(p.port_occupancy_pkts.is_empty());
    }
}
