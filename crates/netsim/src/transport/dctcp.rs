//! DCTCP transport endpoints.
//!
//! [`DctcpSender`] implements the sender side of DCTCP (Alizadeh et al.):
//! slow start, congestion avoidance, per-window ECN fraction `alpha` with
//! gentle multiplicative decrease `cwnd ← cwnd·(1 − α/2)`, NewReno-style
//! fast retransmit/recovery on triple duplicate ACKs, and RTO with
//! exponential backoff. [`DctcpReceiver`] ACKs every data segment,
//! reassembles out-of-order arrivals, and echoes both the CE codepoint
//! (ECN-Echo) and the sender's timestamp (exact per-ACK RTT).
//!
//! PMSB(e) filtering is *not* implemented here: the
//! [`TransportSender`](super::TransportSender) wrapper applies selective
//! blindness to the ECN-Echo flag before any transport sees the ACK.

use std::collections::BTreeMap;

use crate::config::{EcnResponse, TransportConfig};
use crate::packet::{Packet, PacketKind};

use super::{Receiver, ReceiverOutput, Sender, SenderOutput, SenderStats, TimerArm};

/// The DCTCP sender state machine for one flow.
#[derive(Debug)]
pub struct DctcpSender {
    // Identity.
    flow_id: u64,
    src_host: usize,
    dst_host: usize,
    service: usize,
    size_bytes: u64,
    app_rate_bps: Option<u64>,
    start_nanos: u64,
    // Configuration.
    mss: u64,
    g: f64,
    rto_min_nanos: u64,
    max_cwnd: f64,
    ecn_response: EcnResponse,
    // Congestion state (bytes).
    cwnd: f64,
    ssthresh: f64,
    snd_nxt: u64,
    snd_una: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    /// Open loss episode, if any: `(start_nanos, target)` — closed (and
    /// counted into [`SenderStats`]) once `snd_una` reaches `target`.
    episode: Option<(u64, u64)>,
    // DCTCP alpha accounting, one observation window per RTT.
    alpha: f64,
    win_end: u64,
    acked_in_win: u64,
    marked_in_win: u64,
    /// Congestion-window-reduced state: a mark was honoured this window,
    /// so growth is suspended until the window closes (TCP CWR).
    cwr_this_win: bool,
    // RTT estimation / RTO.
    srtt_nanos: Option<f64>,
    rttvar_nanos: f64,
    rto_nanos: u64,
    backoff: u32,
    rto_gen: u64,
    rto_armed: bool,
    rto_deadline_nanos: u64,
    app_gen: u64,
    completed: bool,
    // Optional RTT trace.
    rtt_samples: Option<Vec<u64>>,
    stats: SenderStats,
    /// Recycled packet buffer handed out through [`SenderOutput::packets`]
    /// and returned via [`DctcpSender::recycle`], so the steady-state
    /// event path does not allocate per ACK.
    spare_buf: Vec<Packet>,
}

impl DctcpSender {
    /// Creates a sender for a flow of `size_bytes` (use [`u64::MAX`] for a
    /// long-lived flow) starting at `start_nanos`. `app_rate_bps` caps the
    /// application's offered rate (the paper's "start a 5 Gbps TCP flow").
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow_id: u64,
        src_host: usize,
        dst_host: usize,
        service: usize,
        size_bytes: u64,
        app_rate_bps: Option<u64>,
        start_nanos: u64,
        config: &TransportConfig,
    ) -> Self {
        let init_cwnd = (config.init_cwnd_pkts * config.mss) as f64;
        DctcpSender {
            flow_id,
            src_host,
            dst_host,
            service,
            size_bytes,
            app_rate_bps,
            start_nanos,
            mss: config.mss,
            g: config.g,
            rto_min_nanos: config.rto_min_nanos,
            max_cwnd: config.max_cwnd_bytes.max(config.mss) as f64,
            ecn_response: config.ecn_response,
            cwnd: init_cwnd,
            ssthresh: f64::INFINITY,
            snd_nxt: 0,
            snd_una: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            episode: None,
            alpha: 0.0,
            win_end: 0,
            acked_in_win: 0,
            marked_in_win: 0,
            cwr_this_win: false,
            srtt_nanos: None,
            rttvar_nanos: 0.0,
            rto_nanos: config.rto_init_nanos,
            backoff: 0,
            rto_gen: 0,
            rto_armed: false,
            rto_deadline_nanos: 0,
            app_gen: 0,
            completed: false,
            rtt_samples: None,
            stats: SenderStats::default(),
            spare_buf: Vec::new(),
        }
    }

    /// A fresh [`SenderOutput`] backed by the recycled packet buffer.
    fn new_output(&mut self) -> SenderOutput {
        SenderOutput {
            packets: std::mem::take(&mut self.spare_buf),
            ..SenderOutput::default()
        }
    }

    /// Hands a drained [`SenderOutput::packets`] buffer back for reuse.
    pub fn recycle(&mut self, mut buf: Vec<Packet>) {
        buf.clear();
        if buf.capacity() > self.spare_buf.capacity() {
            self.spare_buf = buf;
        }
    }

    /// Turns on per-ACK RTT sampling (for the RTT-distribution figures).
    pub fn enable_rtt_trace(&mut self) {
        self.rtt_samples = Some(Vec::new());
    }

    /// Collected RTT samples in nanoseconds, if tracing was enabled.
    pub fn rtt_samples(&self) -> Option<&[u64]> {
        self.rtt_samples.as_deref()
    }

    /// Per-flow counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The flow identifier.
    pub fn flow_id(&self) -> u64 {
        self.flow_id
    }

    /// Total bytes this flow transfers (`u64::MAX` = unbounded).
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// The flow's start time in nanoseconds.
    pub fn start_nanos(&self) -> u64 {
        self.start_nanos
    }

    /// `true` once every byte has been acknowledged.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Current congestion window in bytes (for tests/diagnostics).
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    /// Current DCTCP `alpha` estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Smoothed RTT in nanoseconds, if any sample arrived.
    pub fn srtt_nanos(&self) -> Option<f64> {
        self.srtt_nanos
    }

    /// Begins transmission: the initial-window burst plus timers.
    pub fn start(&mut self, now_nanos: u64) -> SenderOutput {
        let mut out = self.new_output();
        self.emit_new(now_nanos, &mut out);
        self.win_end = self.snd_nxt;
        self.arm_rto(now_nanos, &mut out);
        out
    }

    /// Processes a cumulative ACK (`cum_ack`, ECN-Echo `ece`, echoed send
    /// timestamp `echo_sent_at_nanos`) arriving at `now_nanos`.
    pub fn on_ack(
        &mut self,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
        now_nanos: u64,
    ) -> SenderOutput {
        let mut out = self.new_output();
        if self.completed {
            return out;
        }
        // Exact per-ACK RTT from the timestamp echo.
        let rtt = now_nanos.saturating_sub(echo_sent_at_nanos);
        self.update_rtt(rtt);
        if let Some(samples) = self.rtt_samples.as_mut() {
            samples.push(rtt);
        }

        if cum_ack > self.snd_una {
            let newly = cum_ack - self.snd_una;
            self.snd_una = cum_ack;
            self.dup_acks = 0;
            self.backoff = 0;
            // Close the loss episode once the window outstanding at its
            // start is fully acknowledged: recovery is complete.
            if let Some((start, target)) = self.episode {
                if self.snd_una >= target {
                    self.stats.loss_episodes += 1;
                    self.stats.recovery_nanos += now_nanos.saturating_sub(start);
                    self.episode = None;
                }
            }
            // DCTCP per-window mark fraction.
            self.acked_in_win += newly;
            if ece {
                self.marked_in_win += newly;
                self.cwr_this_win = true;
            }
            if self.in_recovery {
                if self.snd_una >= self.recover {
                    self.in_recovery = false;
                    // Deflate to ssthresh after recovery.
                    self.cwnd = self.ssthresh.max(self.mss as f64);
                } else {
                    // NewReno partial ACK: the next segment is also lost.
                    self.retransmit_head(now_nanos, &mut out);
                }
            } else if self.cwr_this_win {
                // CWR: a mark was honoured this window; no growth until
                // the window closes (one congestion response per RTT).
            } else if self.cwnd < self.ssthresh {
                self.cwnd += newly as f64; // slow start
            } else {
                self.cwnd += self.mss as f64 * newly as f64 / self.cwnd; // CA
            }
            self.cwnd = self.cwnd.min(self.max_cwnd);
            if cum_ack >= self.win_end {
                self.end_alpha_window();
            }
            if self.snd_una >= self.size_bytes {
                self.completed = true;
                self.cancel_timers();
                out.completed = true;
                return out;
            }
            self.emit_new(now_nanos, &mut out);
            self.arm_rto(now_nanos, &mut out);
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery && self.snd_nxt > self.snd_una {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.begin_episode(now_nanos);
                self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
                self.cwnd = self.ssthresh;
                self.retransmit_head(now_nanos, &mut out);
                self.arm_rto(now_nanos, &mut out);
            }
        }
        out
    }

    /// Handles a retransmission timeout with generation `gen`.
    pub fn on_rto(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        let mut out = self.new_output();
        if self.completed || gen != self.rto_gen || !self.rto_armed {
            return out; // stale timer
        }
        self.stats.timeouts += 1;
        self.begin_episode(now_nanos);
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.cwnd = self.mss as f64;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.backoff = (self.backoff + 1).min(10);
        self.retransmit_head(now_nanos, &mut out);
        self.arm_rto(now_nanos, &mut out);
        out
    }

    /// Handles an application-rate resume tick with generation `gen`.
    pub fn on_app_resume(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        let mut out = self.new_output();
        if self.completed || gen != self.app_gen {
            return out;
        }
        self.emit_new(now_nanos, &mut out);
        if self.snd_nxt > self.snd_una {
            self.arm_rto(now_nanos, &mut out);
        }
        out
    }

    /// Bytes the application has made available by `now` (rate-limited
    /// sources accrue credit linearly; unbounded otherwise).
    fn app_allowed_bytes(&self, now_nanos: u64) -> u64 {
        match self.app_rate_bps {
            None => self.size_bytes,
            Some(rate) => {
                let elapsed = now_nanos.saturating_sub(self.start_nanos) as u128;
                let bytes = rate as u128 * elapsed / 8 / 1_000_000_000;
                (bytes.min(self.size_bytes as u128)) as u64
            }
        }
    }

    /// Emits as many new full segments as the window and application
    /// allow; schedules an app-resume tick if the application is the
    /// binding constraint.
    fn emit_new(&mut self, now_nanos: u64, out: &mut SenderOutput) {
        let win_limit = self.snd_una + self.cwnd.min(self.max_cwnd) as u64;
        let app_limit = self.app_allowed_bytes(now_nanos);
        loop {
            let len = self.mss.min(self.size_bytes - self.snd_nxt);
            if len == 0 || self.snd_nxt + len > win_limit {
                return; // done, or window-limited (ACK clock will resume)
            }
            if self.snd_nxt + len > app_limit {
                break; // application-limited: need a timer
            }
            out.packets.push(Packet::data(
                self.flow_id,
                self.src_host,
                self.dst_host,
                self.service,
                self.snd_nxt,
                len,
                now_nanos,
            ));
            self.snd_nxt += len;
        }
        // Application-limited: wake when credit for one segment accrues.
        if let Some(rate) = self.app_rate_bps {
            let target = self.snd_nxt + self.mss.min(self.size_bytes - self.snd_nxt);
            let at =
                self.start_nanos + (target as u128 * 8 * 1_000_000_000 / rate as u128) as u64 + 1;
            self.app_gen += 1;
            out.app_resume = Some(TimerArm {
                gen: self.app_gen,
                at_nanos: at.max(now_nanos + 1),
            });
        }
    }

    /// Opens a loss episode at the first loss signal; a signal during an
    /// open episode extends nothing (the episode already covers it).
    fn begin_episode(&mut self, now_nanos: u64) {
        if self.episode.is_none() {
            self.episode = Some((now_nanos, self.snd_nxt));
        }
    }

    /// Retransmits the segment at `snd_una`.
    fn retransmit_head(&mut self, now_nanos: u64, out: &mut SenderOutput) {
        let len = self.mss.min(self.size_bytes - self.snd_una);
        debug_assert!(len > 0, "retransmit with nothing outstanding");
        out.packets.push(Packet::data(
            self.flow_id,
            self.src_host,
            self.dst_host,
            self.service,
            self.snd_una,
            len,
            now_nanos,
        ));
        self.stats.retransmissions += 1;
    }

    /// Closes one observation window: update `alpha`, apply the ECN
    /// response (DCTCP's `(1 − α/2)` or classic halving) if any byte was
    /// marked, open the next window.
    fn end_alpha_window(&mut self) {
        if self.acked_in_win > 0 {
            let f = self.marked_in_win as f64 / self.acked_in_win as f64;
            self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            if self.marked_in_win > 0 {
                let factor = match self.ecn_response {
                    EcnResponse::Dctcp => 1.0 - self.alpha / 2.0,
                    EcnResponse::Classic => 0.5,
                };
                self.cwnd = (self.cwnd * factor).max(self.mss as f64);
                self.ssthresh = self.cwnd;
            }
        }
        self.win_end = self.snd_nxt;
        self.acked_in_win = 0;
        self.marked_in_win = 0;
        self.cwr_this_win = false;
    }

    fn update_rtt(&mut self, rtt_nanos: u64) {
        let r = rtt_nanos as f64;
        match self.srtt_nanos {
            None => {
                self.srtt_nanos = Some(r);
                self.rttvar_nanos = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar_nanos = 0.75 * self.rttvar_nanos + 0.25 * (srtt - r).abs();
                self.srtt_nanos = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let base = self.srtt_nanos.unwrap() + 4.0 * self.rttvar_nanos;
        self.rto_nanos = (base as u64).max(self.rto_min_nanos).min(1_000_000_000);
    }

    fn arm_rto(&mut self, now_nanos: u64, out: &mut SenderOutput) {
        if self.snd_nxt == self.snd_una {
            // Nothing outstanding: no timer.
            self.rto_armed = false;
            self.rto_gen += 1;
            return;
        }
        self.rto_gen += 1;
        self.rto_armed = true;
        let deadline = now_nanos + (self.rto_nanos << self.backoff).min(4_000_000_000);
        self.rto_deadline_nanos = deadline;
        out.rto = Some(TimerArm {
            gen: self.rto_gen,
            at_nanos: deadline,
        });
    }

    /// The currently armed retransmission deadline, if any.
    ///
    /// Lets a driver keep a single outstanding timer event per flow:
    /// when a timer event fires with a stale generation, consult this to
    /// re-arm at the live deadline instead of scheduling one event per
    /// ACK (the common ACK-clocked case re-arms on every ACK, which
    /// would otherwise flood the future-event list with no-op events).
    pub fn rto_deadline(&self) -> Option<TimerArm> {
        if self.rto_armed && !self.completed {
            Some(TimerArm {
                gen: self.rto_gen,
                at_nanos: self.rto_deadline_nanos,
            })
        } else {
            None
        }
    }

    fn cancel_timers(&mut self) {
        self.rto_gen += 1;
        self.rto_armed = false;
        self.app_gen += 1;
    }
}

impl Sender for DctcpSender {
    fn start(&mut self, now_nanos: u64) -> SenderOutput {
        DctcpSender::start(self, now_nanos)
    }

    fn on_ack(
        &mut self,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
        now_nanos: u64,
    ) -> SenderOutput {
        DctcpSender::on_ack(self, cum_ack, ece, echo_sent_at_nanos, now_nanos)
    }

    fn on_rto(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        DctcpSender::on_rto(self, gen, now_nanos)
    }

    fn on_app_resume(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        DctcpSender::on_app_resume(self, gen, now_nanos)
    }

    fn rto_deadline(&self) -> Option<TimerArm> {
        DctcpSender::rto_deadline(self)
    }

    fn recycle(&mut self, buf: Vec<Packet>) {
        DctcpSender::recycle(self, buf)
    }

    fn enable_rtt_trace(&mut self) {
        DctcpSender::enable_rtt_trace(self)
    }

    fn rtt_samples(&self) -> Option<&[u64]> {
        DctcpSender::rtt_samples(self)
    }

    fn stats(&self) -> SenderStats {
        DctcpSender::stats(self)
    }

    fn stats_mut(&mut self) -> &mut SenderStats {
        &mut self.stats
    }

    fn flow_id(&self) -> u64 {
        DctcpSender::flow_id(self)
    }

    fn size_bytes(&self) -> u64 {
        DctcpSender::size_bytes(self)
    }

    fn start_nanos(&self) -> u64 {
        DctcpSender::start_nanos(self)
    }

    fn is_completed(&self) -> bool {
        DctcpSender::is_completed(self)
    }

    fn cwnd_bytes(&self) -> f64 {
        DctcpSender::cwnd_bytes(self)
    }
}

/// The DCTCP receiver for one flow: reassembles segments and generates
/// cumulative ACKs with ECN-Echo and timestamp echo.
///
/// With `ack_every = 1` (the default) every data packet is ACKed
/// immediately. With `ack_every = m > 1` the receiver coalesces ACKs and
/// runs the DCTCP delayed-ACK ECE state machine: a change in the observed
/// CE state, an out-of-order arrival, or the flush timer force an
/// immediate ACK, so the sender's `alpha` estimate stays faithful.
#[derive(Debug)]
pub struct DctcpReceiver {
    flow_id: u64,
    rcv_nxt: u64,
    /// Out-of-order intervals `start → end` beyond `rcv_nxt`.
    ooo: BTreeMap<u64, u64>,
    bytes_in_order: u64,
    ce_received: u64,
    packets_received: u64,
    // Delayed-ACK state.
    ack_every: u64,
    delack_timeout_nanos: u64,
    pending: u64,
    ce_state: bool,
    delack_gen: u64,
    /// Addressing/timestamp template from the latest data packet, for
    /// timer-generated ACKs: `(src, dst, service, sent_at)`.
    last_data: Option<(usize, usize, usize, u64)>,
}

impl DctcpReceiver {
    /// Creates a receiver for `flow_id` that ACKs every packet.
    pub fn new(flow_id: u64) -> Self {
        DctcpReceiver::with_delack(flow_id, 1, 500_000)
    }

    /// Creates a receiver coalescing ACKs to one per `ack_every` data
    /// packets, flushed after `delack_timeout_nanos` of silence.
    ///
    /// # Panics
    ///
    /// Panics if `ack_every` is zero.
    pub fn with_delack(flow_id: u64, ack_every: u64, delack_timeout_nanos: u64) -> Self {
        assert!(ack_every > 0, "ack_every must be at least 1");
        DctcpReceiver {
            flow_id,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            bytes_in_order: 0,
            ce_received: 0,
            packets_received: 0,
            ack_every,
            delack_timeout_nanos,
            pending: 0,
            ce_state: false,
            delack_gen: 0,
            last_data: None,
        }
    }

    /// Highest in-order byte received so far.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Data packets that arrived CE-marked.
    pub fn ce_received(&self) -> u64 {
        self.ce_received
    }

    /// Total data packets received.
    pub fn packets_received(&self) -> u64 {
        self.packets_received
    }

    /// Processes a data packet arriving at `now_nanos`; returns the ACK
    /// to send (if any) and a delayed-ACK timer to arm.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a data segment of this flow.
    pub fn on_data(&mut self, pkt: &Packet, now_nanos: u64) -> ReceiverOutput {
        assert_eq!(pkt.flow_id, self.flow_id, "packet for wrong flow");
        let PacketKind::Data { seq, len } = pkt.kind else {
            panic!("receiver got a non-data packet");
        };
        self.packets_received += 1;
        if pkt.ce {
            self.ce_received += 1;
        }
        let in_order = seq == self.rcv_nxt;
        let had_gap = !self.ooo.is_empty();
        let end = seq + len;
        if end > self.rcv_nxt {
            // Record the new interval (may overlap existing ones).
            let entry = self.ooo.entry(seq.max(self.rcv_nxt)).or_insert(0);
            *entry = (*entry).max(end);
            // Advance rcv_nxt over any now-contiguous intervals.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s <= self.rcv_nxt {
                    if e > self.rcv_nxt {
                        self.bytes_in_order += e - self.rcv_nxt;
                        self.rcv_nxt = e;
                    }
                    self.ooo.pop_first();
                } else {
                    break;
                }
            }
        }
        self.last_data = Some((pkt.src_host, pkt.dst_host, pkt.service, pkt.sent_at_nanos));
        self.pending += 1;
        // Immediate-ACK triggers: per-packet mode, coalescing quota
        // reached, CE state change (the DCTCP ECE machine), or anything
        // that looks like loss/reordering (dup, gap, or gap-fill) —
        // those ACKs drive fast retransmit and must not be delayed.
        let ce_changed = pkt.ce != self.ce_state;
        self.ce_state = pkt.ce;
        let immediate = self.pending >= self.ack_every
            || ce_changed
            || !in_order
            || had_gap
            || !self.ooo.is_empty();
        if immediate {
            ReceiverOutput {
                ack: Some(self.make_ack(pkt.ce)),
                delack: None,
            }
        } else {
            self.delack_gen += 1;
            ReceiverOutput {
                ack: None,
                delack: Some(TimerArm {
                    gen: self.delack_gen,
                    at_nanos: now_nanos + self.delack_timeout_nanos,
                }),
            }
        }
    }

    /// Handles the delayed-ACK flush timer; emits the pending ACK if the
    /// generation is current and packets are still unacknowledged.
    pub fn on_delack_timer(&mut self, gen: u64) -> Option<Packet> {
        if gen != self.delack_gen || self.pending == 0 {
            return None;
        }
        Some(self.make_ack(self.ce_state))
    }

    /// Builds a cumulative ACK with ECN-Echo `ece`, consuming the pending
    /// count and invalidating any armed timer.
    fn make_ack(&mut self, ece: bool) -> Packet {
        self.pending = 0;
        self.delack_gen += 1;
        let (src, dst, service, sent_at) = self
            .last_data
            .expect("ACK generated before any data packet");
        // ACK travels dst -> src, echoing CE (ECN-Echo) and the timestamp.
        Packet::ack(self.flow_id, dst, src, service, self.rcv_nxt, ece, sent_at)
    }
}

impl Receiver for DctcpReceiver {
    fn on_data(&mut self, pkt: &Packet, now_nanos: u64) -> ReceiverOutput {
        DctcpReceiver::on_data(self, pkt, now_nanos)
    }

    fn on_delack_timer(&mut self, gen: u64) -> Option<Packet> {
        DctcpReceiver::on_delack_timer(self, gen)
    }

    fn rcv_nxt(&self) -> u64 {
        DctcpReceiver::rcv_nxt(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(size: u64) -> DctcpSender {
        let cfg = TransportConfig {
            init_cwnd_pkts: 2,
            ..TransportConfig::default()
        };
        DctcpSender::new(1, 0, 9, 0, size, None, 0, &cfg)
    }

    /// Drives sender + receiver back-to-back with a fixed one-way delay,
    /// returning the number of ACK round trips until completion.
    fn run_loopback(mut s: DctcpSender, mut marks: impl FnMut(u64) -> bool) -> u64 {
        let mut r = DctcpReceiver::new(1);
        let mut now = 0u64;
        let mut in_flight: Vec<Packet> = s.start(now).packets;
        let mut rounds = 0;
        while !s.is_completed() {
            rounds += 1;
            assert!(rounds < 100_000, "transfer did not complete");
            now += 10_000; // 10 us one-way
            let mut acks = Vec::new();
            for mut p in in_flight.drain(..) {
                if p.ect && marks(now) {
                    p.ce = true;
                }
                acks.push(r.on_data(&p, now).ack.expect("per-packet ACKs"));
            }
            now += 10_000;
            let mut next = Vec::new();
            for a in acks {
                let PacketKind::Ack { cum_ack, ece } = a.kind else {
                    unreachable!()
                };
                let out = s.on_ack(cum_ack, ece, a.sent_at_nanos, now);
                next.extend(out.packets);
            }
            in_flight = next;
        }
        rounds
    }

    #[test]
    fn initial_window_burst() {
        let mut s = sender(100 * 1460);
        let out = s.start(0);
        assert_eq!(out.packets.len(), 2, "init cwnd of 2 segments");
        assert!(out.rto.is_some());
        assert!(!out.completed);
    }

    #[test]
    fn completes_short_flow_in_loopback() {
        let s = sender(10 * 1460);
        let rounds = run_loopback(s, |_| false);
        assert!(rounds < 20, "10 segments with doubling cwnd: few rounds");
    }

    #[test]
    fn completes_sub_mss_flow() {
        let s = sender(500);
        run_loopback(s, |_| false);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender(u64::MAX / 2);
        let cfg_cwnd = s.cwnd_bytes();
        let out = s.start(0);
        let mut cum = 0;
        // ACK the whole initial window: cwnd should double.
        for p in &out.packets {
            let PacketKind::Data { seq, len } = p.kind else {
                unreachable!()
            };
            cum = cum.max(seq + len);
            s.on_ack(cum, false, p.sent_at_nanos, 100_000);
        }
        assert!((s.cwnd_bytes() - 2.0 * cfg_cwnd).abs() < 1.0);
    }

    #[test]
    fn dctcp_alpha_rises_under_full_marking_and_decays_clean() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        let mut now = 100_000;
        let mut cum = 0u64;
        let mut packets = out.packets;
        // Several fully-marked windows: alpha -> 1.
        for _ in 0..60 {
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, true, p.sent_at_nanos, now).packets);
            }
            now += 100_000;
            packets = next;
            assert!(!packets.is_empty(), "window must never stall");
        }
        assert!(s.alpha() > 0.5, "alpha {} should approach 1", s.alpha());
        let alpha_hi = s.alpha();
        // Unmarked windows: alpha decays geometrically.
        for _ in 0..40 {
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, false, p.sent_at_nanos, now).packets);
            }
            now += 100_000;
            packets = next;
        }
        assert!(s.alpha() < alpha_hi / 4.0, "alpha must decay");
    }

    #[test]
    fn marked_windows_shrink_cwnd_gently() {
        // With alpha small, DCTCP's cut is much gentler than halving.
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        // Grow for a while unmarked.
        let mut now = 100_000;
        let mut cum = 0u64;
        let mut packets = out.packets;
        for _ in 0..6 {
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, false, p.sent_at_nanos, now).packets);
            }
            now += 100_000;
            packets = next;
        }
        let before = s.cwnd_bytes();
        // One window with a single marked ACK.
        let mut marked_one = false;
        let mut next = Vec::new();
        for p in &packets {
            let PacketKind::Data { seq, len } = p.kind else {
                unreachable!()
            };
            cum = cum.max(seq + len);
            let ece = !marked_one;
            marked_one = true;
            next.extend(s.on_ack(cum, ece, p.sent_at_nanos, now).packets);
        }
        let after = s.cwnd_bytes();
        assert!(
            after < before * 1.01,
            "cwnd should not grow through a marked window"
        );
        assert!(
            after > before * 0.5,
            "DCTCP cut must be gentler than halving"
        );
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        assert!(out.packets.len() >= 2);
        // First segment lost: receiver dup-ACKs at 0.
        let ts = out.packets[0].sent_at_nanos;
        assert!(s.on_ack(0, false, ts, 1000).packets.is_empty());
        assert!(s.on_ack(0, false, ts, 1100).packets.is_empty());
        let third = s.on_ack(0, false, ts, 1200);
        assert_eq!(third.packets.len(), 1, "fast retransmit on 3rd dupack");
        match third.packets[0].kind {
            PacketKind::Data { seq, .. } => assert_eq!(seq, 0),
            _ => panic!("expected data"),
        }
        assert_eq!(s.stats().retransmissions, 1);
    }

    #[test]
    fn rto_fires_and_stale_timers_ignored() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        let arm = out.rto.unwrap();
        // A stale generation does nothing.
        assert!(s.on_rto(arm.gen + 5, arm.at_nanos).packets.is_empty());
        // The armed generation retransmits the head and re-arms.
        let fired = s.on_rto(arm.gen, arm.at_nanos);
        assert_eq!(fired.packets.len(), 1);
        assert!(fired.rto.is_some());
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(s.cwnd_bytes(), 1460.0, "RTO collapses cwnd to 1 MSS");
    }

    #[test]
    fn loss_episode_measures_recovery_time() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        assert_eq!(out.packets.len(), 2);
        let ts = out.packets[0].sent_at_nanos;
        // Head lost: the third dup ACK opens an episode at t=1200 with
        // target snd_nxt = 2 segments.
        s.on_ack(0, false, ts, 1000);
        s.on_ack(0, false, ts, 1100);
        s.on_ack(0, false, ts, 1200);
        assert_eq!(s.stats().loss_episodes, 0, "episode still open");
        // An RTO during the open episode must not restart the clock.
        let arm = s.rto_deadline().unwrap();
        s.on_rto(arm.gen, 10_000);
        // The cumulative ACK covering the outstanding window closes it.
        s.on_ack(2 * 1460, false, ts, 51_200);
        let st = s.stats();
        assert_eq!(st.loss_episodes, 1);
        assert_eq!(st.recovery_nanos, 50_000, "measured from the first signal");
        // Clean traffic afterwards opens no new episode.
        s.on_ack(3 * 1460, false, ts, 60_000);
        assert_eq!(s.stats().loss_episodes, 1);
    }

    #[test]
    fn recovery_via_loss_in_loopback() {
        // Drop every 50th data packet inside the harness by marking it
        // undeliverable: emulate by skipping delivery.
        let cfg = TransportConfig {
            init_cwnd_pkts: 4,
            ..TransportConfig::default()
        };
        let mut s = DctcpSender::new(1, 0, 9, 0, 200 * 1460, None, 0, &cfg);
        let mut r = DctcpReceiver::new(1);
        let mut now = 0u64;
        let mut in_flight = s.start(now).packets;
        let mut counter = 0u64;
        let mut rto_arm: Option<TimerArm> = None;
        let mut iterations = 0;
        while !s.is_completed() {
            iterations += 1;
            assert!(iterations < 10_000, "did not complete under loss");
            now += 10_000;
            let mut acks = Vec::new();
            for p in in_flight.drain(..) {
                counter += 1;
                if counter.is_multiple_of(50) {
                    continue; // dropped
                }
                acks.push(r.on_data(&p, now).ack.expect("per-packet ACKs"));
            }
            now += 10_000;
            let mut next = Vec::new();
            if acks.is_empty() {
                // Deliver an RTO if armed (simulating timer machinery).
                if let Some(arm) = rto_arm.take() {
                    now = now.max(arm.at_nanos);
                    let out = s.on_rto(arm.gen, now);
                    next.extend(out.packets);
                    rto_arm = out.rto;
                }
            }
            for a in acks {
                let PacketKind::Ack { cum_ack, ece } = a.kind else {
                    unreachable!()
                };
                let out = s.on_ack(cum_ack, ece, a.sent_at_nanos, now);
                next.extend(out.packets);
                if out.rto.is_some() {
                    rto_arm = out.rto;
                }
            }
            in_flight = next;
        }
        assert!(s.stats().retransmissions > 0);
        assert_eq!(r.rcv_nxt(), 200 * 1460);
    }

    #[test]
    fn app_rate_limited_flow_paces() {
        let cfg = TransportConfig::default();
        // 1 Gbps app rate: one 1460-B segment every ~11.68 us.
        let mut s = DctcpSender::new(1, 0, 9, 0, u64::MAX / 2, Some(1_000_000_000), 0, &cfg);
        let out = s.start(0);
        // At t=0 no credit has accrued yet: nothing to send, but an
        // app-resume timer must be armed.
        assert!(out.packets.is_empty());
        let arm = out.app_resume.expect("app resume timer");
        assert!(arm.at_nanos > 0);
        // At the resume tick one segment goes out.
        let out = s.on_app_resume(arm.gen, arm.at_nanos);
        assert_eq!(out.packets.len(), 1);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut r = DctcpReceiver::new(7);
        let p2 = Packet::data(7, 0, 1, 0, 1460, 1460, 10);
        let ack = r.on_data(&p2, 10).ack.unwrap();
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 0, "gap: dup ack at 0"),
            _ => panic!(),
        }
        let p1 = Packet::data(7, 0, 1, 0, 0, 1460, 20);
        let ack = r.on_data(&p1, 20).ack.unwrap();
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 2920, "hole filled"),
            _ => panic!(),
        }
    }

    #[test]
    fn receiver_echoes_ce_and_timestamp() {
        let mut r = DctcpReceiver::new(7);
        let mut p = Packet::data(7, 0, 1, 0, 0, 1460, 1234);
        p.ce = true;
        let ack = r.on_data(&p, 2000).ack.unwrap();
        assert_eq!(ack.sent_at_nanos, 1234);
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(ece),
            _ => panic!(),
        }
        assert_eq!(r.ce_received(), 1);
        // Reverse direction addressing.
        assert_eq!(ack.src_host, 1);
        assert_eq!(ack.dst_host, 0);
    }

    #[test]
    fn receiver_tolerates_duplicates() {
        let mut r = DctcpReceiver::new(7);
        let p = Packet::data(7, 0, 1, 0, 0, 1460, 0);
        r.on_data(&p, 0);
        let ack = r.on_data(&p, 1).ack.unwrap(); // duplicate
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 1460),
            _ => panic!(),
        }
        assert_eq!(r.rcv_nxt(), 1460);
    }

    #[test]
    fn delayed_acks_coalesce_and_flush_on_timer() {
        let mut r = DctcpReceiver::with_delack(7, 4, 500_000);
        let mut last_arm = None;
        // Three in-order unmarked packets: no ACK yet, timer armed.
        for i in 0..3u64 {
            let p = Packet::data(7, 0, 1, 0, i * 1460, 1460, i * 1000);
            let out = r.on_data(&p, i * 1000);
            assert!(out.ack.is_none(), "packet {i} must be coalesced");
            last_arm = out.delack;
        }
        // Fourth packet reaches the quota: immediate cumulative ACK.
        let p = Packet::data(7, 0, 1, 0, 3 * 1460, 1460, 3000);
        let out = r.on_data(&p, 3000);
        let ack = out.ack.expect("quota reached");
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 4 * 1460),
            _ => panic!(),
        }
        // The earlier timer is now stale.
        assert!(r.on_delack_timer(last_arm.unwrap().gen).is_none());
        // Two more packets, then the timer flushes them.
        r.on_data(&Packet::data(7, 0, 1, 0, 4 * 1460, 1460, 4000), 4000);
        let out = r.on_data(&Packet::data(7, 0, 1, 0, 5 * 1460, 1460, 5000), 5000);
        let arm = out.delack.expect("timer armed");
        let ack = r.on_delack_timer(arm.gen).expect("flush");
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 6 * 1460),
            _ => panic!(),
        }
        // Nothing pending: a re-fired timer does nothing.
        assert!(r.on_delack_timer(arm.gen + 1).is_none());
    }

    #[test]
    fn delayed_acks_break_on_ce_state_change() {
        // The DCTCP ECE machine: a CE transition forces an immediate ACK
        // even mid-coalescing, in both directions.
        let mut r = DctcpReceiver::with_delack(7, 16, 500_000);
        let unmarked = Packet::data(7, 0, 1, 0, 0, 1460, 0);
        assert!(r.on_data(&unmarked, 0).ack.is_none(), "coalesced");
        let mut marked = Packet::data(7, 0, 1, 0, 1460, 1460, 1);
        marked.ce = true;
        let ack = r.on_data(&marked, 1).ack.expect("CE 0->1 forces ACK");
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(ece),
            _ => panic!(),
        }
        let mut marked2 = Packet::data(7, 0, 1, 0, 2 * 1460, 1460, 2);
        marked2.ce = true;
        assert!(r.on_data(&marked2, 2).ack.is_none(), "steady CE: coalesced");
        let unmarked2 = Packet::data(7, 0, 1, 0, 3 * 1460, 1460, 3);
        let ack = r.on_data(&unmarked2, 3).ack.expect("CE 1->0 forces ACK");
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(!ece),
            _ => panic!(),
        }
    }

    #[test]
    fn delayed_acks_never_delay_dupacks() {
        let mut r = DctcpReceiver::with_delack(7, 16, 500_000);
        // A gap: segment 1 missing; segment 2 arrives out of order.
        r.on_data(&Packet::data(7, 0, 1, 0, 0, 1460, 0), 0);
        let out = r.on_data(&Packet::data(7, 0, 1, 0, 2 * 1460, 1460, 1), 1);
        let ack = out.ack.expect("out-of-order arrival must ACK at once");
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 1460, "dup ack"),
            _ => panic!(),
        }
    }

    #[test]
    fn marked_loopback_keeps_low_alpha_flow_completing() {
        // Mark everything: the flow still completes (alpha-based backoff
        // never deadlocks).
        let s = sender(50 * 1460);
        run_loopback(s, |_| true);
    }

    #[test]
    fn classic_ecn_halves_where_dctcp_cuts_gently() {
        let respond = |resp: EcnResponse| -> f64 {
            let cfg = TransportConfig {
                init_cwnd_pkts: 2,
                ecn_response: resp,
                ..TransportConfig::default()
            };
            let mut s = DctcpSender::new(1, 0, 9, 0, u64::MAX / 2, None, 0, &cfg);
            let out = s.start(0);
            let mut now = 100_000;
            let mut cum = 0u64;
            let mut packets = out.packets;
            // Grow unmarked for several windows.
            for _ in 0..6 {
                let mut next = Vec::new();
                for p in &packets {
                    let PacketKind::Data { seq, len } = p.kind else {
                        unreachable!()
                    };
                    cum = cum.max(seq + len);
                    next.extend(s.on_ack(cum, false, p.sent_at_nanos, now).packets);
                }
                now += 100_000;
                packets = next;
            }
            let before = s.cwnd_bytes();
            // One fully marked window.
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, true, p.sent_at_nanos, now).packets);
            }
            s.cwnd_bytes() / before
        };
        let classic = respond(EcnResponse::Classic);
        let dctcp = respond(EcnResponse::Dctcp);
        assert!((classic - 0.5).abs() < 0.01, "classic ratio {classic}");
        assert!(dctcp > 0.9, "dctcp's first-window cut is gentle: {dctcp}");
    }

    mod properties {
        use super::*;
        use pmsb_simcore::rng::SimRng;

        /// The receiver reassembles any arrival order of the segments
        /// of a transfer, including duplicates, to the exact length.
        #[test]
        fn receiver_reassembles_any_permutation() {
            let mut rng = SimRng::seed_from(0x7a);
            for _ in 0..32 {
                let mss = 1460u64;
                let total = 20 * mss;
                let mut r = DctcpReceiver::new(9);
                let mut delivered = [false; 20];
                for _ in 0..(30 + rng.below(30)) {
                    let idx = rng.below(20);
                    delivered[idx] = true;
                    let p = Packet::data(9, 0, 1, 0, idx as u64 * mss, mss, 0);
                    r.on_data(&p, 0);
                }
                // Deliver whatever the random order missed, in order.
                for (idx, seen) in delivered.iter().enumerate() {
                    if !seen {
                        let p = Packet::data(9, 0, 1, 0, idx as u64 * mss, mss, 0);
                        r.on_data(&p, 0);
                    }
                }
                assert_eq!(r.rcv_nxt(), total);
            }
        }

        /// Transfers complete in loopback under any deterministic
        /// periodic marking pattern.
        #[test]
        fn completes_under_any_periodic_marking() {
            let mut rng = SimRng::seed_from(0x7b);
            for _ in 0..12 {
                let period = 1 + rng.below(19) as u64;
                let segs = 1 + rng.below(79) as u64;
                let s = sender(segs * 1460);
                let mut n = 0u64;
                run_loopback(s, move |_| {
                    n += 1;
                    n.is_multiple_of(period)
                });
            }
        }

        /// cwnd never decays below one MSS no matter the marking.
        #[test]
        fn cwnd_floor_is_one_mss() {
            let mut rng = SimRng::seed_from(0x7c);
            for _ in 0..8 {
                let marks: Vec<bool> = (0..(1 + rng.below(199)))
                    .map(|_| rng.below(2) == 1)
                    .collect();
                let mut s = sender(u64::MAX / 2);
                let out = s.start(0);
                let mut now = 100_000u64;
                let mut cum = 0u64;
                let mut packets = out.packets;
                let mut it = marks.iter().cycle();
                for _ in 0..30 {
                    let mut next = Vec::new();
                    for p in &packets {
                        let PacketKind::Data { seq, len } = p.kind else {
                            unreachable!()
                        };
                        cum = cum.max(seq + len);
                        let ece = *it.next().unwrap();
                        next.extend(s.on_ack(cum, ece, p.sent_at_nanos, now).packets);
                        assert!(s.cwnd_bytes() >= 1460.0);
                    }
                    now += 100_000;
                    if next.is_empty() {
                        break;
                    }
                    packets = next;
                }
            }
        }

        /// Alpha stays a valid EWMA in [0, 1].
        #[test]
        fn alpha_stays_in_unit_interval() {
            let mut rng = SimRng::seed_from(0x7d);
            for _ in 0..8 {
                let marks: Vec<bool> = (0..(1 + rng.below(99)))
                    .map(|_| rng.below(2) == 1)
                    .collect();
                let mut s = sender(u64::MAX / 2);
                let out = s.start(0);
                let mut now = 100_000u64;
                let mut cum = 0u64;
                let mut packets = out.packets;
                let mut it = marks.iter().cycle();
                for _ in 0..20 {
                    let mut next = Vec::new();
                    for p in &packets {
                        let PacketKind::Data { seq, len } = p.kind else {
                            unreachable!()
                        };
                        cum = cum.max(seq + len);
                        next.extend(
                            s.on_ack(cum, *it.next().unwrap(), p.sent_at_nanos, now)
                                .packets,
                        );
                        assert!((0.0..=1.0).contains(&s.alpha()));
                    }
                    now += 100_000;
                    packets = next;
                }
            }
        }
    }
}
