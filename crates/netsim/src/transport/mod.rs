//! Pluggable transport endpoints: the [`Sender`]/[`Receiver`] contract,
//! the concrete state machines, and the enum-dispatched wrappers the
//! simulator drives.
//!
//! The endpoints are pure state machines: methods consume events and
//! return [`SenderOutput`] describing packets to emit and timers to arm,
//! so every transport is unit-testable without the simulator. Two
//! implementations ship today:
//!
//! * [`dctcp`] — DCTCP (Alizadeh et al.): per-window ECN fraction
//!   `alpha` with gentle multiplicative decrease, the delayed-ACK ECE
//!   state machine, NewReno-style loss recovery;
//! * [`newreno`] — TCP NewReno with the classic RFC 3168 ECN response:
//!   halve the window at most once per RTT on ECN-Echo, signal CWR,
//!   no `alpha` estimator.
//!
//! The simulator stores [`TransportSender`]/[`TransportReceiver`] —
//! enums over the concrete machines selected by
//! [`TransportKind`](crate::config::TransportKind) — rather than trait
//! objects, so the per-event hot path stays monomorphic (no vtable
//! dispatch on the ACK path).
//!
//! **PMSB(e)** (Algorithm 2 of the paper) is an end-host rule about
//! *which marks to honour*, not a congestion-control algorithm — so it
//! composes in front of any transport rather than living inside one:
//! [`TransportSender`] applies
//! [`SelectiveBlindness`](pmsb::endpoint::SelectiveBlindness) to the
//! ECN-Echo flag (counting [`SenderStats::marks_seen`] and
//! [`SenderStats::marks_ignored`]) before the inner state machine ever
//! sees the ACK. DCTCP and NewReno get selective blindness for free,
//! and a third transport would too.

pub mod dctcp;
pub mod newreno;

pub use dctcp::{DctcpReceiver, DctcpSender};
pub use newreno::{NewRenoReceiver, NewRenoSender};

use pmsb::endpoint::SelectiveBlindness;

use crate::config::{TransportConfig, TransportKind};
use crate::packet::Packet;

/// A timer (re)arm request: fire `RtoTimer`/`AppResume` with this
/// generation at the given absolute time. Stale generations are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerArm {
    /// Generation to match when the timer fires.
    pub gen: u64,
    /// Absolute deadline in nanoseconds.
    pub at_nanos: u64,
}

/// What a sender wants done after processing an event.
#[derive(Debug, Default)]
pub struct SenderOutput {
    /// Packets to hand to the host NIC.
    pub packets: Vec<Packet>,
    /// Rearm the retransmission timer (if `Some`).
    pub rto: Option<TimerArm>,
    /// Schedule an application-rate resume tick (if `Some`).
    pub app_resume: Option<TimerArm>,
    /// The flow just completed (all bytes acknowledged).
    pub completed: bool,
}

/// Counters the experiments report per flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// ECN-Echo marks seen on ACKs.
    pub marks_seen: u64,
    /// Marks ignored by the PMSB(e) rule.
    pub marks_ignored: u64,
    /// Segments retransmitted (fast retransmit + partial ACKs).
    pub retransmissions: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Loss episodes: contiguous stretches from a first loss signal
    /// (fast retransmit or RTO) until the window outstanding at that
    /// moment was fully acknowledged.
    pub loss_episodes: u64,
    /// Total nanoseconds spent inside loss episodes — the flow's
    /// recovery time under faults.
    pub recovery_nanos: u64,
}

/// What a receiver wants done after an event.
#[derive(Debug, Default)]
pub struct ReceiverOutput {
    /// ACK to send back, if any.
    pub ack: Option<Packet>,
    /// Arm the delayed-ACK flush timer (if `Some`).
    pub delack: Option<TimerArm>,
}

/// The sender half of a transport: a pure state machine consuming
/// ACK/timer events and emitting [`SenderOutput`].
///
/// Implementations must keep at most one live retransmission timer
/// generation (see [`Sender::rto_deadline`]) and treat stale generations
/// as no-ops, so a driver can coalesce timer events.
pub trait Sender {
    /// Begins transmission: the initial-window burst plus timers.
    fn start(&mut self, now_nanos: u64) -> SenderOutput;
    /// Processes a cumulative ACK (`cum_ack`, ECN-Echo `ece`, echoed
    /// send timestamp `echo_sent_at_nanos`) arriving at `now_nanos`.
    fn on_ack(
        &mut self,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
        now_nanos: u64,
    ) -> SenderOutput;
    /// Handles a retransmission timeout with generation `gen`.
    fn on_rto(&mut self, gen: u64, now_nanos: u64) -> SenderOutput;
    /// Handles an application-rate resume tick with generation `gen`.
    fn on_app_resume(&mut self, gen: u64, now_nanos: u64) -> SenderOutput;
    /// The currently armed retransmission deadline, if any. Lets a
    /// driver keep a single outstanding timer event per flow: a stale
    /// fire consults this to re-arm at the live deadline.
    fn rto_deadline(&self) -> Option<TimerArm>;
    /// Hands a drained [`SenderOutput::packets`] buffer back for reuse.
    fn recycle(&mut self, buf: Vec<Packet>);
    /// Turns on per-ACK RTT sampling (for the RTT-distribution figures).
    fn enable_rtt_trace(&mut self);
    /// Collected RTT samples in nanoseconds, if tracing was enabled.
    fn rtt_samples(&self) -> Option<&[u64]>;
    /// Per-flow counters.
    fn stats(&self) -> SenderStats;
    /// Mutable access to the counters, for composition layers (the
    /// PMSB(e) wrapper accounts filtered marks here).
    fn stats_mut(&mut self) -> &mut SenderStats;
    /// The flow identifier.
    fn flow_id(&self) -> u64;
    /// Total bytes this flow transfers (`u64::MAX` = unbounded).
    fn size_bytes(&self) -> u64;
    /// The flow's start time in nanoseconds.
    fn start_nanos(&self) -> u64;
    /// `true` once every byte has been acknowledged.
    fn is_completed(&self) -> bool;
    /// Current congestion window in bytes (for tests/diagnostics).
    fn cwnd_bytes(&self) -> f64;
}

/// The receiver half of a transport: reassembles segments and generates
/// cumulative ACKs with the transport's ECN-Echo semantics.
pub trait Receiver {
    /// Processes a data packet arriving at `now_nanos`; returns the ACK
    /// to send (if any) and a delayed-ACK timer to arm.
    fn on_data(&mut self, pkt: &Packet, now_nanos: u64) -> ReceiverOutput;
    /// Handles the delayed-ACK flush timer; emits the pending ACK if the
    /// generation is current and packets are still unacknowledged.
    fn on_delack_timer(&mut self, gen: u64) -> Option<Packet>;
    /// Highest in-order byte received so far.
    fn rcv_nxt(&self) -> u64;
}

/// The enum the wrapper dispatches over; kept private so call sites go
/// through [`TransportSender`]'s PMSB(e) composition.
#[derive(Debug)]
enum SenderImpl {
    Dctcp(DctcpSender),
    NewReno(NewRenoSender),
}

/// The sender the simulator stores per flow: one of the concrete
/// transport machines (enum dispatch, monomorphic hot path) behind the
/// PMSB(e) selective-blindness filter.
///
/// [`Sender::on_ack`] applies Algorithm 2 *before* the inner transport
/// sees the ACK: a mark whose measured RTT is below the threshold is a
/// victim of per-port marking, not congestion, so its ECN-Echo flag is
/// cleared (and counted in [`SenderStats::marks_ignored`]).
#[derive(Debug)]
pub struct TransportSender {
    pmsbe: Option<SelectiveBlindness>,
    inner: SenderImpl,
}

impl TransportSender {
    /// Creates the sender selected by
    /// [`TransportConfig::kind`] for a flow of `size_bytes` (use
    /// [`u64::MAX`] for a long-lived flow) starting at `start_nanos`.
    /// `app_rate_bps` caps the application's offered rate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow_id: u64,
        src_host: usize,
        dst_host: usize,
        service: usize,
        size_bytes: u64,
        app_rate_bps: Option<u64>,
        start_nanos: u64,
        config: &TransportConfig,
    ) -> Self {
        let inner = match config.kind {
            TransportKind::Dctcp => SenderImpl::Dctcp(DctcpSender::new(
                flow_id,
                src_host,
                dst_host,
                service,
                size_bytes,
                app_rate_bps,
                start_nanos,
                config,
            )),
            TransportKind::NewReno => SenderImpl::NewReno(NewRenoSender::new(
                flow_id,
                src_host,
                dst_host,
                service,
                size_bytes,
                app_rate_bps,
                start_nanos,
                config,
            )),
        };
        TransportSender {
            pmsbe: config
                .pmsbe_rtt_threshold_nanos
                .map(SelectiveBlindness::new),
            inner,
        }
    }
}

/// Forwards a `&self`/`&mut self` method through the sender enum.
macro_rules! delegate_sender {
    ($self:ident, $inner:ident => $body:expr) => {
        match &$self.inner {
            SenderImpl::Dctcp($inner) => $body,
            SenderImpl::NewReno($inner) => $body,
        }
    };
    (mut $self:ident, $inner:ident => $body:expr) => {
        match &mut $self.inner {
            SenderImpl::Dctcp($inner) => $body,
            SenderImpl::NewReno($inner) => $body,
        }
    };
}

impl Sender for TransportSender {
    fn start(&mut self, now_nanos: u64) -> SenderOutput {
        delegate_sender!(mut self, s => s.start(now_nanos))
    }

    fn on_ack(
        &mut self,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
        now_nanos: u64,
    ) -> SenderOutput {
        // PMSB(e), Algorithm 2: the exact per-ACK RTT from the timestamp
        // echo decides whether the mark is honoured, independent of the
        // inner transport's congestion response.
        let mut ece = ece;
        if ece && !self.is_completed() {
            self.stats_mut().marks_seen += 1;
            if let Some(rule) = self.pmsbe {
                let rtt = now_nanos.saturating_sub(echo_sent_at_nanos);
                if rule.ignore_mark(true, rtt) {
                    ece = false;
                    self.stats_mut().marks_ignored += 1;
                }
            }
        }
        delegate_sender!(mut self, s => s.on_ack(cum_ack, ece, echo_sent_at_nanos, now_nanos))
    }

    fn on_rto(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        delegate_sender!(mut self, s => s.on_rto(gen, now_nanos))
    }

    fn on_app_resume(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        delegate_sender!(mut self, s => s.on_app_resume(gen, now_nanos))
    }

    fn rto_deadline(&self) -> Option<TimerArm> {
        delegate_sender!(self, s => s.rto_deadline())
    }

    fn recycle(&mut self, buf: Vec<Packet>) {
        delegate_sender!(mut self, s => s.recycle(buf))
    }

    fn enable_rtt_trace(&mut self) {
        delegate_sender!(mut self, s => s.enable_rtt_trace())
    }

    fn rtt_samples(&self) -> Option<&[u64]> {
        delegate_sender!(self, s => s.rtt_samples())
    }

    fn stats(&self) -> SenderStats {
        delegate_sender!(self, s => s.stats())
    }

    fn stats_mut(&mut self) -> &mut SenderStats {
        delegate_sender!(mut self, s => s.stats_mut())
    }

    fn flow_id(&self) -> u64 {
        delegate_sender!(self, s => s.flow_id())
    }

    fn size_bytes(&self) -> u64 {
        delegate_sender!(self, s => s.size_bytes())
    }

    fn start_nanos(&self) -> u64 {
        delegate_sender!(self, s => s.start_nanos())
    }

    fn is_completed(&self) -> bool {
        delegate_sender!(self, s => s.is_completed())
    }

    fn cwnd_bytes(&self) -> f64 {
        delegate_sender!(self, s => s.cwnd_bytes())
    }
}

/// The receiver the simulator stores per flow: enum dispatch over the
/// concrete transport receivers (selected by [`TransportConfig::kind`]).
#[derive(Debug)]
pub enum TransportReceiver {
    /// DCTCP receiver: per-packet ECN-Echo with the delayed-ACK ECE
    /// state machine.
    Dctcp(DctcpReceiver),
    /// NewReno receiver: RFC 3168 ECE latch, cleared by CWR.
    NewReno(NewRenoReceiver),
}

impl TransportReceiver {
    /// Creates the receiver selected by [`TransportConfig::kind`] with
    /// the configured ACK coalescing.
    pub fn new(flow_id: u64, config: &TransportConfig) -> Self {
        match config.kind {
            TransportKind::Dctcp => TransportReceiver::Dctcp(DctcpReceiver::with_delack(
                flow_id,
                config.ack_every_packets,
                config.delack_timeout_nanos,
            )),
            TransportKind::NewReno => TransportReceiver::NewReno(NewRenoReceiver::with_delack(
                flow_id,
                config.ack_every_packets,
                config.delack_timeout_nanos,
            )),
        }
    }
}

impl Receiver for TransportReceiver {
    fn on_data(&mut self, pkt: &Packet, now_nanos: u64) -> ReceiverOutput {
        match self {
            TransportReceiver::Dctcp(r) => r.on_data(pkt, now_nanos),
            TransportReceiver::NewReno(r) => r.on_data(pkt, now_nanos),
        }
    }

    fn on_delack_timer(&mut self, gen: u64) -> Option<Packet> {
        match self {
            TransportReceiver::Dctcp(r) => r.on_delack_timer(gen),
            TransportReceiver::NewReno(r) => r.on_delack_timer(gen),
        }
    }

    fn rcv_nxt(&self) -> u64 {
        match self {
            TransportReceiver::Dctcp(r) => r.rcv_nxt(),
            TransportReceiver::NewReno(r) => r.rcv_nxt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn wrapped(kind: TransportKind, pmsbe: Option<u64>) -> TransportSender {
        let cfg = TransportConfig {
            kind,
            init_cwnd_pkts: 4,
            pmsbe_rtt_threshold_nanos: pmsbe,
            ..TransportConfig::default()
        };
        TransportSender::new(1, 0, 9, 0, u64::MAX / 2, None, 0, &cfg)
    }

    #[test]
    fn pmsbe_ignores_low_rtt_marks_for_any_transport() {
        for kind in [TransportKind::Dctcp, TransportKind::NewReno] {
            let mut s = wrapped(kind, Some(50_000));
            let out = s.start(0);
            let before = s.cwnd_bytes();
            let mut cum = 0;
            // All ACKs marked but RTT is only 20 us (< 50 us threshold):
            // PMSB(e) ignores every mark, so cwnd grows as if unmarked.
            for p in &out.packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                s.on_ack(cum, true, p.sent_at_nanos, p.sent_at_nanos + 20_000);
            }
            assert!(s.cwnd_bytes() > before, "{kind:?}: marks must be ignored");
            assert_eq!(s.stats().marks_seen, 4, "{kind:?}");
            assert_eq!(s.stats().marks_ignored, 4, "{kind:?}");
        }
    }

    #[test]
    fn pmsbe_honours_high_rtt_marks_for_any_transport() {
        for kind in [TransportKind::Dctcp, TransportKind::NewReno] {
            let mut s = wrapped(kind, Some(50_000));
            let out = s.start(0);
            let before = s.cwnd_bytes();
            let mut cum = 0;
            for p in &out.packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                // RTT 200 us >= threshold: honour.
                s.on_ack(cum, true, p.sent_at_nanos, p.sent_at_nanos + 200_000);
            }
            assert_eq!(s.stats().marks_ignored, 0, "{kind:?}");
            assert!(
                s.cwnd_bytes() <= before,
                "{kind:?}: an honoured mark must not grow the window"
            );
        }
    }

    #[test]
    fn pmsbe_disabled_counts_marks_but_ignores_none() {
        let mut s = wrapped(TransportKind::Dctcp, None);
        let out = s.start(0);
        let p = &out.packets[0];
        let PacketKind::Data { seq, len } = p.kind else {
            unreachable!()
        };
        s.on_ack(seq + len, true, p.sent_at_nanos, p.sent_at_nanos + 1_000);
        assert_eq!(s.stats().marks_seen, 1);
        assert_eq!(s.stats().marks_ignored, 0);
    }

    /// Satellite edge-case suite, written against the [`Sender`] /
    /// [`Receiver`] traits so every transport runs the same cases.
    mod shared_suite {
        use super::*;

        fn sender(kind: TransportKind, size_bytes: u64) -> TransportSender {
            let cfg = TransportConfig {
                kind,
                init_cwnd_pkts: 2,
                ..TransportConfig::default()
            };
            TransportSender::new(1, 0, 9, 0, size_bytes, None, 0, &cfg)
        }

        fn receiver(kind: TransportKind, ack_every: u64) -> TransportReceiver {
            let cfg = TransportConfig {
                kind,
                ack_every_packets: ack_every,
                ..TransportConfig::default()
            };
            TransportReceiver::new(7, &cfg)
        }

        const KINDS: [TransportKind; 2] = [TransportKind::Dctcp, TransportKind::NewReno];

        /// Repeated timeouts back the RTO off exponentially, but the
        /// inter-fire gap is capped (backoff shift ≤ 10, deadline step
        /// ≤ 4 s), so a dead path never silences a flow for minutes.
        #[test]
        fn rto_backoff_reaches_a_ceiling() {
            for kind in KINDS {
                let mut s = sender(kind, u64::MAX / 2);
                let mut arm = s.start(0).rto.expect("initial window arms the timer");
                let mut gaps = Vec::new();
                for _ in 0..16 {
                    let now = arm.at_nanos;
                    let out = s.on_rto(arm.gen, now);
                    assert_eq!(out.packets.len(), 1, "{kind:?}: RTO retransmits the head");
                    let next = out.rto.expect("timer re-arms");
                    gaps.push(next.at_nanos - now);
                    arm = next;
                }
                for w in gaps.windows(2) {
                    assert!(w[1] >= w[0], "{kind:?}: backoff must not shrink: {gaps:?}");
                }
                assert!(
                    gaps.iter().all(|g| *g <= 4_000_000_000),
                    "{kind:?}: backoff ceiling 4s: {gaps:?}"
                );
                let last = *gaps.last().unwrap();
                assert_eq!(
                    last,
                    gaps[gaps.len() - 2],
                    "{kind:?}: the ceiling must hold steady: {gaps:?}"
                );
                assert_eq!(s.stats().timeouts, 16, "{kind:?}");
            }
        }

        /// Duplicate-ACK counting across a retransmitted segment: the
        /// third dup-ACK fast-retransmits once; further dup-ACKs during
        /// recovery never retransmit the head again, and the cumulative
        /// ACK covering the hole exits recovery cleanly.
        #[test]
        fn dup_acks_across_a_retransmitted_segment() {
            for kind in KINDS {
                let mut s = sender(kind, u64::MAX / 2);
                let out = s.start(0);
                assert_eq!(out.packets.len(), 2);
                let ts = out.packets[0].sent_at_nanos;
                assert!(s.on_ack(0, false, ts, 1_000).packets.is_empty(), "{kind:?}");
                assert!(s.on_ack(0, false, ts, 1_100).packets.is_empty(), "{kind:?}");
                let third = s.on_ack(0, false, ts, 1_200);
                assert_eq!(third.packets.len(), 1, "{kind:?}: fast retransmit");
                match third.packets[0].kind {
                    PacketKind::Data { seq, .. } => assert_eq!(seq, 0, "{kind:?}"),
                    _ => panic!("{kind:?}: expected data"),
                }
                assert_eq!(s.stats().retransmissions, 1, "{kind:?}");
                // Dup-ACKs keep arriving while the retransmit is in
                // flight: no second retransmission of the same head.
                for t in [1_300, 1_400, 1_500] {
                    assert!(
                        s.on_ack(0, false, ts, t).packets.is_empty(),
                        "{kind:?}: recovery absorbs further dup-ACKs"
                    );
                }
                assert_eq!(s.stats().retransmissions, 1, "{kind:?}");
                // The cumulative ACK for the whole outstanding window
                // (2 segments) exits recovery and resumes sending.
                let out = s.on_ack(2 * 1460, false, ts, 50_000);
                assert!(!out.packets.is_empty(), "{kind:?}: sending resumes");
                assert_eq!(s.stats().loss_episodes, 1, "{kind:?}: episode closed");
            }
        }

        /// Delayed-ACK reassembly of out-of-order arrivals: a gap forces
        /// an immediate dup-ACK (never delayed), the fill ACKs the whole
        /// contiguous prefix immediately, and coalescing resumes after.
        #[test]
        fn delayed_acks_reassemble_out_of_order_arrivals() {
            for kind in KINDS {
                let mut r = receiver(kind, 4);
                // Segment 0 in order: coalesced, timer armed.
                let p0 = Packet::data(7, 0, 1, 0, 0, 1460, 0);
                let out = r.on_data(&p0, 0);
                assert!(out.ack.is_none(), "{kind:?}: in-order arrival coalesces");
                assert!(out.delack.is_some(), "{kind:?}");
                // Segment 2 arrives before segment 1: immediate dup-ACK.
                let p2 = Packet::data(7, 0, 1, 0, 2 * 1460, 1460, 10);
                let out = r.on_data(&p2, 10);
                let ack = out.ack.expect("gap must ACK at once");
                match ack.kind {
                    PacketKind::Ack { cum_ack, .. } => {
                        assert_eq!(cum_ack, 1460, "{kind:?}: dup-ACK at the hole")
                    }
                    _ => panic!(),
                }
                // The fill: cumulative ACK over the reassembled prefix.
                let p1 = Packet::data(7, 0, 1, 0, 1460, 1460, 20);
                let out = r.on_data(&p1, 20);
                let ack = out.ack.expect("gap fill must ACK at once");
                match ack.kind {
                    PacketKind::Ack { cum_ack, .. } => {
                        assert_eq!(cum_ack, 3 * 1460, "{kind:?}: hole filled")
                    }
                    _ => panic!(),
                }
                assert_eq!(r.rcv_nxt(), 3 * 1460, "{kind:?}");
                // Back in order: coalescing resumes, flush timer drains.
                let p3 = Packet::data(7, 0, 1, 0, 3 * 1460, 1460, 30);
                let out = r.on_data(&p3, 30);
                assert!(out.ack.is_none(), "{kind:?}: coalescing resumes");
                let arm = out.delack.expect("timer armed");
                let ack = r.on_delack_timer(arm.gen).expect("flush");
                match ack.kind {
                    PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 4 * 1460, "{kind:?}"),
                    _ => panic!(),
                }
            }
        }

        /// A duplicate of an already-delivered segment still produces an
        /// immediate ACK at the current edge for both transports.
        #[test]
        fn duplicate_delivery_acks_at_the_edge() {
            for kind in KINDS {
                let mut r = receiver(kind, 1);
                let p = Packet::data(7, 0, 1, 0, 0, 1460, 0);
                r.on_data(&p, 0);
                let ack = r.on_data(&p, 1).ack.expect("per-packet ACKs");
                match ack.kind {
                    PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 1460, "{kind:?}"),
                    _ => panic!(),
                }
                assert_eq!(r.rcv_nxt(), 1460, "{kind:?}");
            }
        }
    }
}
