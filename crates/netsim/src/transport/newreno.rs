//! TCP NewReno endpoints with the classic RFC 3168 ECN response.
//!
//! [`NewRenoSender`] shares DCTCP's loss machinery — slow start,
//! congestion avoidance, fast retransmit/recovery on triple duplicate
//! ACKs, NewReno partial ACKs, RTO with exponential backoff, loss-episode
//! accounting — but responds to ECN the way RFC 3168 §6.1.2 prescribes:
//! on an ECN-Echo the congestion window is **halved**, at most once per
//! round trip (tracked by `cwr_end`, the `snd_nxt` at the reduction), and
//! the next outgoing data segment carries the CWR flag so the receiver
//! stops echoing. There is no `alpha` estimator: every honoured mark
//! costs half the window, which is exactly the over-reaction PMSB's
//! per-port marking inflicts on short-RTT flows — and what PMSB(e)'s
//! selective blindness (applied by the
//! [`TransportSender`](super::TransportSender) wrapper) repairs.
//!
//! [`NewRenoReceiver`] reassembles like the DCTCP receiver but implements
//! the RFC 3168 ECE latch: once a CE-marked segment arrives, every ACK
//! carries ECN-Echo until a data segment with CWR set is received. The
//! latch survives ACK coalescing, so (unlike DCTCP's ECE state machine)
//! a CE transition does not need to force an immediate ACK.

use std::collections::BTreeMap;

use crate::config::TransportConfig;
use crate::packet::{Packet, PacketKind};

use super::{Receiver, ReceiverOutput, Sender, SenderOutput, SenderStats, TimerArm};

/// The TCP NewReno sender state machine for one flow.
#[derive(Debug)]
pub struct NewRenoSender {
    // Identity.
    flow_id: u64,
    src_host: usize,
    dst_host: usize,
    service: usize,
    size_bytes: u64,
    app_rate_bps: Option<u64>,
    start_nanos: u64,
    // Configuration.
    mss: u64,
    rto_min_nanos: u64,
    max_cwnd: f64,
    // Congestion state (bytes).
    cwnd: f64,
    ssthresh: f64,
    snd_nxt: u64,
    snd_una: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    /// Open loss episode, if any: `(start_nanos, target)` — closed (and
    /// counted into [`SenderStats`]) once `snd_una` reaches `target`.
    episode: Option<(u64, u64)>,
    /// The window was already reduced this round trip: while
    /// `snd_una < cwr_end` further ECN-Echo is ignored and growth stays
    /// suspended (RFC 3168: react at most once per window of data).
    cwr_end: u64,
    /// Set after an ECE-triggered reduction: the next outgoing data
    /// segment carries CWR so the receiver stops echoing.
    signal_cwr: bool,
    // RTT estimation / RTO.
    srtt_nanos: Option<f64>,
    rttvar_nanos: f64,
    rto_nanos: u64,
    backoff: u32,
    rto_gen: u64,
    rto_armed: bool,
    rto_deadline_nanos: u64,
    app_gen: u64,
    completed: bool,
    // Optional RTT trace.
    rtt_samples: Option<Vec<u64>>,
    stats: SenderStats,
    /// Recycled packet buffer, as in the DCTCP sender: the steady-state
    /// event path does not allocate per ACK.
    spare_buf: Vec<Packet>,
}

impl NewRenoSender {
    /// Creates a sender for a flow of `size_bytes` (use [`u64::MAX`] for a
    /// long-lived flow) starting at `start_nanos`. `app_rate_bps` caps the
    /// application's offered rate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow_id: u64,
        src_host: usize,
        dst_host: usize,
        service: usize,
        size_bytes: u64,
        app_rate_bps: Option<u64>,
        start_nanos: u64,
        config: &TransportConfig,
    ) -> Self {
        let init_cwnd = (config.init_cwnd_pkts * config.mss) as f64;
        NewRenoSender {
            flow_id,
            src_host,
            dst_host,
            service,
            size_bytes,
            app_rate_bps,
            start_nanos,
            mss: config.mss,
            rto_min_nanos: config.rto_min_nanos,
            max_cwnd: config.max_cwnd_bytes.max(config.mss) as f64,
            cwnd: init_cwnd,
            ssthresh: f64::INFINITY,
            snd_nxt: 0,
            snd_una: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            episode: None,
            cwr_end: 0,
            signal_cwr: false,
            srtt_nanos: None,
            rttvar_nanos: 0.0,
            rto_nanos: config.rto_init_nanos,
            backoff: 0,
            rto_gen: 0,
            rto_armed: false,
            rto_deadline_nanos: 0,
            app_gen: 0,
            completed: false,
            rtt_samples: None,
            stats: SenderStats::default(),
            spare_buf: Vec::new(),
        }
    }

    /// A fresh [`SenderOutput`] backed by the recycled packet buffer.
    fn new_output(&mut self) -> SenderOutput {
        SenderOutput {
            packets: std::mem::take(&mut self.spare_buf),
            ..SenderOutput::default()
        }
    }

    /// Hands a drained [`SenderOutput::packets`] buffer back for reuse.
    pub fn recycle(&mut self, mut buf: Vec<Packet>) {
        buf.clear();
        if buf.capacity() > self.spare_buf.capacity() {
            self.spare_buf = buf;
        }
    }

    /// Turns on per-ACK RTT sampling.
    pub fn enable_rtt_trace(&mut self) {
        self.rtt_samples = Some(Vec::new());
    }

    /// Collected RTT samples in nanoseconds, if tracing was enabled.
    pub fn rtt_samples(&self) -> Option<&[u64]> {
        self.rtt_samples.as_deref()
    }

    /// Per-flow counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The flow identifier.
    pub fn flow_id(&self) -> u64 {
        self.flow_id
    }

    /// Total bytes this flow transfers (`u64::MAX` = unbounded).
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// The flow's start time in nanoseconds.
    pub fn start_nanos(&self) -> u64 {
        self.start_nanos
    }

    /// `true` once every byte has been acknowledged.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Current congestion window in bytes (for tests/diagnostics).
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT in nanoseconds, if any sample arrived.
    pub fn srtt_nanos(&self) -> Option<f64> {
        self.srtt_nanos
    }

    /// Begins transmission: the initial-window burst plus timers.
    pub fn start(&mut self, now_nanos: u64) -> SenderOutput {
        let mut out = self.new_output();
        self.emit_new(now_nanos, &mut out);
        self.arm_rto(now_nanos, &mut out);
        out
    }

    /// Processes a cumulative ACK (`cum_ack`, ECN-Echo `ece`, echoed send
    /// timestamp `echo_sent_at_nanos`) arriving at `now_nanos`.
    pub fn on_ack(
        &mut self,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
        now_nanos: u64,
    ) -> SenderOutput {
        let mut out = self.new_output();
        if self.completed {
            return out;
        }
        // Exact per-ACK RTT from the timestamp echo.
        let rtt = now_nanos.saturating_sub(echo_sent_at_nanos);
        self.update_rtt(rtt);
        if let Some(samples) = self.rtt_samples.as_mut() {
            samples.push(rtt);
        }
        // RFC 3168 §6.1.2: halve on ECN-Echo, at most once per round
        // trip. Loss recovery already reduced the window, so an ECE
        // during recovery adds nothing.
        let mut reduced_now = false;
        if ece && !self.in_recovery && self.snd_una >= self.cwr_end {
            self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
            self.cwnd = self.ssthresh;
            self.cwr_end = self.snd_nxt;
            self.signal_cwr = true;
            reduced_now = true;
        }

        if cum_ack > self.snd_una {
            let newly = cum_ack - self.snd_una;
            self.snd_una = cum_ack;
            self.dup_acks = 0;
            self.backoff = 0;
            // Close the loss episode once the window outstanding at its
            // start is fully acknowledged: recovery is complete.
            if let Some((start, target)) = self.episode {
                if self.snd_una >= target {
                    self.stats.loss_episodes += 1;
                    self.stats.recovery_nanos += now_nanos.saturating_sub(start);
                    self.episode = None;
                }
            }
            if self.in_recovery {
                if self.snd_una >= self.recover {
                    self.in_recovery = false;
                    // Deflate to ssthresh after recovery.
                    self.cwnd = self.ssthresh.max(self.mss as f64);
                } else {
                    // NewReno partial ACK: the next segment is also lost.
                    self.retransmit_head(now_nanos, &mut out);
                }
            } else if reduced_now || self.snd_una < self.cwr_end {
                // The window was reduced this round trip (CWR): no
                // growth until the reduced window is fully acknowledged.
            } else if self.cwnd < self.ssthresh {
                self.cwnd += newly as f64; // slow start
            } else {
                self.cwnd += self.mss as f64 * newly as f64 / self.cwnd; // CA
            }
            self.cwnd = self.cwnd.min(self.max_cwnd);
            if self.snd_una >= self.size_bytes {
                self.completed = true;
                self.cancel_timers();
                out.completed = true;
                return out;
            }
            self.emit_new(now_nanos, &mut out);
            self.arm_rto(now_nanos, &mut out);
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery && self.snd_nxt > self.snd_una {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.begin_episode(now_nanos);
                self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
                self.cwnd = self.ssthresh;
                // The loss reduction covers this window of data: a
                // subsequent ECE before `recover` must not halve again.
                self.cwr_end = self.recover;
                self.retransmit_head(now_nanos, &mut out);
                self.arm_rto(now_nanos, &mut out);
            }
        }
        out
    }

    /// Handles a retransmission timeout with generation `gen`.
    pub fn on_rto(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        let mut out = self.new_output();
        if self.completed || gen != self.rto_gen || !self.rto_armed {
            return out; // stale timer
        }
        self.stats.timeouts += 1;
        self.begin_episode(now_nanos);
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.cwnd = self.mss as f64;
        self.in_recovery = false;
        self.dup_acks = 0;
        // The collapse to one MSS is a reduction for this window too.
        self.cwr_end = self.snd_nxt;
        self.backoff = (self.backoff + 1).min(10);
        self.retransmit_head(now_nanos, &mut out);
        self.arm_rto(now_nanos, &mut out);
        out
    }

    /// Handles an application-rate resume tick with generation `gen`.
    pub fn on_app_resume(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        let mut out = self.new_output();
        if self.completed || gen != self.app_gen {
            return out;
        }
        self.emit_new(now_nanos, &mut out);
        if self.snd_nxt > self.snd_una {
            self.arm_rto(now_nanos, &mut out);
        }
        out
    }

    /// Bytes the application has made available by `now` (rate-limited
    /// sources accrue credit linearly; unbounded otherwise).
    fn app_allowed_bytes(&self, now_nanos: u64) -> u64 {
        match self.app_rate_bps {
            None => self.size_bytes,
            Some(rate) => {
                let elapsed = now_nanos.saturating_sub(self.start_nanos) as u128;
                let bytes = rate as u128 * elapsed / 8 / 1_000_000_000;
                (bytes.min(self.size_bytes as u128)) as u64
            }
        }
    }

    /// Stamps CWR on `pkt` if a reduction is waiting to be signalled.
    fn stamp_cwr(&mut self, pkt: &mut Packet) {
        if self.signal_cwr {
            pkt.cwr = true;
            self.signal_cwr = false;
        }
    }

    /// Emits as many new full segments as the window and application
    /// allow; schedules an app-resume tick if the application is the
    /// binding constraint.
    fn emit_new(&mut self, now_nanos: u64, out: &mut SenderOutput) {
        let win_limit = self.snd_una + self.cwnd.min(self.max_cwnd) as u64;
        let app_limit = self.app_allowed_bytes(now_nanos);
        loop {
            let len = self.mss.min(self.size_bytes - self.snd_nxt);
            if len == 0 || self.snd_nxt + len > win_limit {
                return; // done, or window-limited (ACK clock will resume)
            }
            if self.snd_nxt + len > app_limit {
                break; // application-limited: need a timer
            }
            let mut pkt = Packet::data(
                self.flow_id,
                self.src_host,
                self.dst_host,
                self.service,
                self.snd_nxt,
                len,
                now_nanos,
            );
            self.stamp_cwr(&mut pkt);
            out.packets.push(pkt);
            self.snd_nxt += len;
        }
        // Application-limited: wake when credit for one segment accrues.
        if let Some(rate) = self.app_rate_bps {
            let target = self.snd_nxt + self.mss.min(self.size_bytes - self.snd_nxt);
            let at =
                self.start_nanos + (target as u128 * 8 * 1_000_000_000 / rate as u128) as u64 + 1;
            self.app_gen += 1;
            out.app_resume = Some(TimerArm {
                gen: self.app_gen,
                at_nanos: at.max(now_nanos + 1),
            });
        }
    }

    /// Opens a loss episode at the first loss signal; a signal during an
    /// open episode extends nothing (the episode already covers it).
    fn begin_episode(&mut self, now_nanos: u64) {
        if self.episode.is_none() {
            self.episode = Some((now_nanos, self.snd_nxt));
        }
    }

    /// Retransmits the segment at `snd_una`.
    fn retransmit_head(&mut self, now_nanos: u64, out: &mut SenderOutput) {
        let len = self.mss.min(self.size_bytes - self.snd_una);
        debug_assert!(len > 0, "retransmit with nothing outstanding");
        let mut pkt = Packet::data(
            self.flow_id,
            self.src_host,
            self.dst_host,
            self.service,
            self.snd_una,
            len,
            now_nanos,
        );
        self.stamp_cwr(&mut pkt);
        out.packets.push(pkt);
        self.stats.retransmissions += 1;
    }

    fn update_rtt(&mut self, rtt_nanos: u64) {
        let r = rtt_nanos as f64;
        match self.srtt_nanos {
            None => {
                self.srtt_nanos = Some(r);
                self.rttvar_nanos = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar_nanos = 0.75 * self.rttvar_nanos + 0.25 * (srtt - r).abs();
                self.srtt_nanos = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let base = self.srtt_nanos.unwrap() + 4.0 * self.rttvar_nanos;
        self.rto_nanos = (base as u64).max(self.rto_min_nanos).min(1_000_000_000);
    }

    fn arm_rto(&mut self, now_nanos: u64, out: &mut SenderOutput) {
        if self.snd_nxt == self.snd_una {
            // Nothing outstanding: no timer.
            self.rto_armed = false;
            self.rto_gen += 1;
            return;
        }
        self.rto_gen += 1;
        self.rto_armed = true;
        let deadline = now_nanos + (self.rto_nanos << self.backoff).min(4_000_000_000);
        self.rto_deadline_nanos = deadline;
        out.rto = Some(TimerArm {
            gen: self.rto_gen,
            at_nanos: deadline,
        });
    }

    /// The currently armed retransmission deadline, if any (see
    /// [`DctcpSender::rto_deadline`](super::DctcpSender::rto_deadline)).
    pub fn rto_deadline(&self) -> Option<TimerArm> {
        if self.rto_armed && !self.completed {
            Some(TimerArm {
                gen: self.rto_gen,
                at_nanos: self.rto_deadline_nanos,
            })
        } else {
            None
        }
    }

    fn cancel_timers(&mut self) {
        self.rto_gen += 1;
        self.rto_armed = false;
        self.app_gen += 1;
    }
}

impl Sender for NewRenoSender {
    fn start(&mut self, now_nanos: u64) -> SenderOutput {
        NewRenoSender::start(self, now_nanos)
    }

    fn on_ack(
        &mut self,
        cum_ack: u64,
        ece: bool,
        echo_sent_at_nanos: u64,
        now_nanos: u64,
    ) -> SenderOutput {
        NewRenoSender::on_ack(self, cum_ack, ece, echo_sent_at_nanos, now_nanos)
    }

    fn on_rto(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        NewRenoSender::on_rto(self, gen, now_nanos)
    }

    fn on_app_resume(&mut self, gen: u64, now_nanos: u64) -> SenderOutput {
        NewRenoSender::on_app_resume(self, gen, now_nanos)
    }

    fn rto_deadline(&self) -> Option<TimerArm> {
        NewRenoSender::rto_deadline(self)
    }

    fn recycle(&mut self, buf: Vec<Packet>) {
        NewRenoSender::recycle(self, buf)
    }

    fn enable_rtt_trace(&mut self) {
        NewRenoSender::enable_rtt_trace(self)
    }

    fn rtt_samples(&self) -> Option<&[u64]> {
        NewRenoSender::rtt_samples(self)
    }

    fn stats(&self) -> SenderStats {
        NewRenoSender::stats(self)
    }

    fn stats_mut(&mut self) -> &mut SenderStats {
        &mut self.stats
    }

    fn flow_id(&self) -> u64 {
        NewRenoSender::flow_id(self)
    }

    fn size_bytes(&self) -> u64 {
        NewRenoSender::size_bytes(self)
    }

    fn start_nanos(&self) -> u64 {
        NewRenoSender::start_nanos(self)
    }

    fn is_completed(&self) -> bool {
        NewRenoSender::is_completed(self)
    }

    fn cwnd_bytes(&self) -> f64 {
        NewRenoSender::cwnd_bytes(self)
    }
}

/// The NewReno receiver for one flow: reassembles segments and generates
/// cumulative ACKs with the RFC 3168 ECE latch.
///
/// Once a CE-marked segment arrives, every ACK carries ECN-Echo until a
/// data segment with CWR set is received; the latch (not a per-packet CE
/// echo) is what makes classic ECN robust to ACK coalescing.
#[derive(Debug)]
pub struct NewRenoReceiver {
    flow_id: u64,
    rcv_nxt: u64,
    /// Out-of-order intervals `start → end` beyond `rcv_nxt`.
    ooo: BTreeMap<u64, u64>,
    bytes_in_order: u64,
    ce_received: u64,
    packets_received: u64,
    // Delayed-ACK state.
    ack_every: u64,
    delack_timeout_nanos: u64,
    pending: u64,
    /// RFC 3168 ECE latch: set by CE, cleared by CWR.
    ece_latched: bool,
    delack_gen: u64,
    /// Addressing/timestamp template from the latest data packet, for
    /// timer-generated ACKs: `(src, dst, service, sent_at)`.
    last_data: Option<(usize, usize, usize, u64)>,
}

impl NewRenoReceiver {
    /// Creates a receiver for `flow_id` that ACKs every packet.
    pub fn new(flow_id: u64) -> Self {
        NewRenoReceiver::with_delack(flow_id, 1, 500_000)
    }

    /// Creates a receiver coalescing ACKs to one per `ack_every` data
    /// packets, flushed after `delack_timeout_nanos` of silence.
    ///
    /// # Panics
    ///
    /// Panics if `ack_every` is zero.
    pub fn with_delack(flow_id: u64, ack_every: u64, delack_timeout_nanos: u64) -> Self {
        assert!(ack_every > 0, "ack_every must be at least 1");
        NewRenoReceiver {
            flow_id,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            bytes_in_order: 0,
            ce_received: 0,
            packets_received: 0,
            ack_every,
            delack_timeout_nanos,
            pending: 0,
            ece_latched: false,
            delack_gen: 0,
            last_data: None,
        }
    }

    /// Highest in-order byte received so far.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Data packets that arrived CE-marked.
    pub fn ce_received(&self) -> u64 {
        self.ce_received
    }

    /// Total data packets received.
    pub fn packets_received(&self) -> u64 {
        self.packets_received
    }

    /// Processes a data packet arriving at `now_nanos`; returns the ACK
    /// to send (if any) and a delayed-ACK timer to arm.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a data segment of this flow.
    pub fn on_data(&mut self, pkt: &Packet, now_nanos: u64) -> ReceiverOutput {
        assert_eq!(pkt.flow_id, self.flow_id, "packet for wrong flow");
        let PacketKind::Data { seq, len } = pkt.kind else {
            panic!("receiver got a non-data packet");
        };
        self.packets_received += 1;
        if pkt.ce {
            self.ce_received += 1;
        }
        // RFC 3168: CWR acknowledges the echo (clear first, so a segment
        // carrying both CWR and a fresh CE mark re-latches).
        if pkt.cwr {
            self.ece_latched = false;
        }
        if pkt.ce {
            self.ece_latched = true;
        }
        let in_order = seq == self.rcv_nxt;
        let had_gap = !self.ooo.is_empty();
        let end = seq + len;
        if end > self.rcv_nxt {
            // Record the new interval (may overlap existing ones).
            let entry = self.ooo.entry(seq.max(self.rcv_nxt)).or_insert(0);
            *entry = (*entry).max(end);
            // Advance rcv_nxt over any now-contiguous intervals.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s <= self.rcv_nxt {
                    if e > self.rcv_nxt {
                        self.bytes_in_order += e - self.rcv_nxt;
                        self.rcv_nxt = e;
                    }
                    self.ooo.pop_first();
                } else {
                    break;
                }
            }
        }
        self.last_data = Some((pkt.src_host, pkt.dst_host, pkt.service, pkt.sent_at_nanos));
        self.pending += 1;
        // Immediate-ACK triggers: per-packet mode, coalescing quota
        // reached, or anything that looks like loss/reordering (dup,
        // gap, or gap-fill) — those ACKs drive fast retransmit and must
        // not be delayed. Unlike DCTCP there is no CE-transition
        // trigger: the latch carries the signal through coalescing.
        let immediate =
            self.pending >= self.ack_every || !in_order || had_gap || !self.ooo.is_empty();
        if immediate {
            ReceiverOutput {
                ack: Some(self.make_ack()),
                delack: None,
            }
        } else {
            self.delack_gen += 1;
            ReceiverOutput {
                ack: None,
                delack: Some(TimerArm {
                    gen: self.delack_gen,
                    at_nanos: now_nanos + self.delack_timeout_nanos,
                }),
            }
        }
    }

    /// Handles the delayed-ACK flush timer; emits the pending ACK if the
    /// generation is current and packets are still unacknowledged.
    pub fn on_delack_timer(&mut self, gen: u64) -> Option<Packet> {
        if gen != self.delack_gen || self.pending == 0 {
            return None;
        }
        Some(self.make_ack())
    }

    /// Builds a cumulative ACK carrying the current ECE latch, consuming
    /// the pending count and invalidating any armed timer.
    fn make_ack(&mut self) -> Packet {
        self.pending = 0;
        self.delack_gen += 1;
        let (src, dst, service, sent_at) = self
            .last_data
            .expect("ACK generated before any data packet");
        // ACK travels dst -> src, echoing the latch and the timestamp.
        Packet::ack(
            self.flow_id,
            dst,
            src,
            service,
            self.rcv_nxt,
            self.ece_latched,
            sent_at,
        )
    }
}

impl Receiver for NewRenoReceiver {
    fn on_data(&mut self, pkt: &Packet, now_nanos: u64) -> ReceiverOutput {
        NewRenoReceiver::on_data(self, pkt, now_nanos)
    }

    fn on_delack_timer(&mut self, gen: u64) -> Option<Packet> {
        NewRenoReceiver::on_delack_timer(self, gen)
    }

    fn rcv_nxt(&self) -> u64 {
        NewRenoReceiver::rcv_nxt(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(size: u64) -> NewRenoSender {
        let cfg = TransportConfig {
            init_cwnd_pkts: 2,
            ..TransportConfig::default()
        };
        NewRenoSender::new(1, 0, 9, 0, size, None, 0, &cfg)
    }

    /// Drives sender + receiver back-to-back with a fixed one-way delay,
    /// CE-marking data packets per `marks`, until completion.
    fn run_loopback(mut s: NewRenoSender, mut marks: impl FnMut(u64) -> bool) -> u64 {
        let mut r = NewRenoReceiver::new(1);
        let mut now = 0u64;
        let mut in_flight: Vec<Packet> = s.start(now).packets;
        let mut rounds = 0;
        while !s.is_completed() {
            rounds += 1;
            assert!(rounds < 100_000, "transfer did not complete");
            now += 10_000; // 10 us one-way
            let mut acks = Vec::new();
            for mut p in in_flight.drain(..) {
                if p.ect && marks(now) {
                    p.ce = true;
                }
                acks.push(r.on_data(&p, now).ack.expect("per-packet ACKs"));
            }
            now += 10_000;
            let mut next = Vec::new();
            for a in acks {
                let PacketKind::Ack { cum_ack, ece } = a.kind else {
                    unreachable!()
                };
                let out = s.on_ack(cum_ack, ece, a.sent_at_nanos, now);
                next.extend(out.packets);
            }
            in_flight = next;
        }
        rounds
    }

    #[test]
    fn initial_window_burst() {
        let mut s = sender(100 * 1460);
        let out = s.start(0);
        assert_eq!(out.packets.len(), 2, "init cwnd of 2 segments");
        assert!(out.rto.is_some());
        assert!(!out.completed);
    }

    #[test]
    fn completes_short_flow_in_loopback() {
        let s = sender(10 * 1460);
        let rounds = run_loopback(s, |_| false);
        assert!(rounds < 20, "10 segments with doubling cwnd: few rounds");
    }

    #[test]
    fn completes_under_continuous_marking() {
        // Every packet CE-marked: halving once per RTT never deadlocks.
        let s = sender(50 * 1460);
        run_loopback(s, |_| true);
    }

    #[test]
    fn ece_halves_cwnd_at_most_once_per_rtt() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        // Grow unmarked for several windows.
        let mut now = 100_000;
        let mut cum = 0u64;
        let mut packets = out.packets;
        for _ in 0..6 {
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, false, p.sent_at_nanos, now).packets);
            }
            now += 100_000;
            packets = next;
        }
        let before = s.cwnd_bytes();
        assert!(packets.len() >= 4, "window should have opened up");
        // EVERY ACK of this window carries ECE: exactly one halving.
        for p in &packets {
            let PacketKind::Data { seq, len } = p.kind else {
                unreachable!()
            };
            cum = cum.max(seq + len);
            s.on_ack(cum, true, p.sent_at_nanos, now);
        }
        let ratio = s.cwnd_bytes() / before;
        assert!(
            (ratio - 0.5).abs() < 0.01,
            "one halving per RTT, got ratio {ratio}"
        );
    }

    #[test]
    fn second_rtt_with_ece_halves_again() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        let mut now = 100_000;
        let mut cum = 0u64;
        let mut packets = out.packets;
        for _ in 0..6 {
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, false, p.sent_at_nanos, now).packets);
            }
            now += 100_000;
            packets = next;
        }
        let before = s.cwnd_bytes();
        // Two full marked round trips: two halvings compound.
        for _ in 0..2 {
            let mut next = Vec::new();
            for p in &packets {
                let PacketKind::Data { seq, len } = p.kind else {
                    unreachable!()
                };
                cum = cum.max(seq + len);
                next.extend(s.on_ack(cum, true, p.sent_at_nanos, now).packets);
            }
            now += 100_000;
            packets = next;
            assert!(!packets.is_empty(), "window must never stall");
        }
        let ratio = s.cwnd_bytes() / before;
        assert!(
            (0.2..=0.3).contains(&ratio),
            "two RTTs of marks halve twice, got ratio {ratio}"
        );
    }

    #[test]
    fn cwr_is_signalled_once_after_a_reduction() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        let p = &out.packets[0];
        assert!(!p.cwr, "no reduction yet");
        let PacketKind::Data { seq, len } = p.kind else {
            unreachable!()
        };
        // A marked ACK triggers the halving; the next data segment must
        // carry CWR, and only that one.
        let out = s.on_ack(seq + len, true, p.sent_at_nanos, 100_000);
        let sent: Vec<bool> = out.packets.iter().map(|p| p.cwr).collect();
        assert!(!sent.is_empty(), "reduced window still sends");
        assert!(sent[0], "first segment after reduction carries CWR");
        assert!(
            sent[1..].iter().all(|c| !c),
            "CWR is a one-shot signal: {sent:?}"
        );
    }

    #[test]
    fn receiver_latches_ece_until_cwr() {
        let mut r = NewRenoReceiver::new(7);
        let mut p0 = Packet::data(7, 0, 1, 0, 0, 1460, 0);
        p0.ce = true;
        let ack = r.on_data(&p0, 0).ack.unwrap();
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(ece, "CE latches ECE"),
            _ => panic!(),
        }
        // An unmarked segment without CWR: the latch holds.
        let p1 = Packet::data(7, 0, 1, 0, 1460, 1460, 1);
        let ack = r.on_data(&p1, 1).ack.unwrap();
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(ece, "latch holds until CWR"),
            _ => panic!(),
        }
        // CWR clears the latch.
        let mut p2 = Packet::data(7, 0, 1, 0, 2 * 1460, 1460, 2);
        p2.cwr = true;
        let ack = r.on_data(&p2, 2).ack.unwrap();
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(!ece, "CWR clears the latch"),
            _ => panic!(),
        }
    }

    #[test]
    fn cwr_with_fresh_ce_relatches() {
        // A segment carrying both CWR and a new CE mark must leave the
        // latch set: the new mark happened after the sender reduced.
        let mut r = NewRenoReceiver::new(7);
        let mut p = Packet::data(7, 0, 1, 0, 0, 1460, 0);
        p.cwr = true;
        p.ce = true;
        let ack = r.on_data(&p, 0).ack.unwrap();
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(ece, "fresh CE wins over CWR"),
            _ => panic!(),
        }
    }

    #[test]
    fn loss_reduction_suppresses_ece_for_the_same_window() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        let ts = out.packets[0].sent_at_nanos;
        // Triple dup-ACK: fast retransmit halves the window.
        s.on_ack(0, false, ts, 1_000);
        s.on_ack(0, false, ts, 1_100);
        s.on_ack(0, false, ts, 1_200);
        let halved = s.cwnd_bytes();
        assert_eq!(s.stats().retransmissions, 1);
        // A marked partial/duplicate ACK inside the same window must not
        // halve again on top of the loss response.
        s.on_ack(0, true, ts, 1_300);
        assert_eq!(s.cwnd_bytes(), halved, "no double reduction");
    }

    #[test]
    fn ece_on_the_recovery_exit_ack_does_not_double_cut() {
        let mut s = sender(u64::MAX / 2);
        let out = s.start(0);
        let ts = out.packets[0].sent_at_nanos;
        s.on_ack(0, false, ts, 1_000);
        s.on_ack(0, false, ts, 1_100);
        s.on_ack(0, false, ts, 1_200);
        let halved = s.cwnd_bytes();
        // The cumulative ACK that exits recovery carries ECE; the loss
        // reduction already covered this window of data.
        let out = s.on_ack(2 * 1460, true, ts, 50_000);
        assert!(!out.packets.is_empty(), "sending resumes after recovery");
        assert!(
            s.cwnd_bytes() >= halved * 0.99,
            "recovery exit must not halve again"
        );
    }

    #[test]
    fn app_rate_limited_flow_paces() {
        let cfg = TransportConfig::default();
        let mut s = NewRenoSender::new(1, 0, 9, 0, u64::MAX / 2, Some(1_000_000_000), 0, &cfg);
        let out = s.start(0);
        assert!(out.packets.is_empty());
        let arm = out.app_resume.expect("app resume timer");
        let out = s.on_app_resume(arm.gen, arm.at_nanos);
        assert_eq!(out.packets.len(), 1);
    }

    #[test]
    fn delayed_acks_preserve_the_latch() {
        // Coalescing must not lose the congestion signal: a CE mark on a
        // coalesced packet surfaces on the eventual cumulative ACK.
        let mut r = NewRenoReceiver::with_delack(7, 4, 500_000);
        let mut p0 = Packet::data(7, 0, 1, 0, 0, 1460, 0);
        p0.ce = true;
        assert!(r.on_data(&p0, 0).ack.is_none(), "coalesced despite CE");
        for i in 1..3u64 {
            let p = Packet::data(7, 0, 1, 0, i * 1460, 1460, i);
            assert!(r.on_data(&p, i).ack.is_none());
        }
        let p3 = Packet::data(7, 0, 1, 0, 3 * 1460, 1460, 3);
        let ack = r.on_data(&p3, 3).ack.expect("quota reached");
        match ack.kind {
            PacketKind::Ack { cum_ack, ece } => {
                assert_eq!(cum_ack, 4 * 1460);
                assert!(ece, "the latch must survive coalescing");
            }
            _ => panic!(),
        }
    }
}
