//! The event pump: the simulator event type and the [`EventHandler`]
//! dispatch that drives the world.

use pmsb_faults::{FaultKind, FaultTarget};
use pmsb_simcore::{EventHandler, EventQueue, SimTime};

use crate::packet::Packet;
use crate::transport::{Receiver as _, Sender as _, TransportSender};

use super::{fault_desc, LinkEnd, NodeRef, SlotRef, World};

/// Simulator events.
#[derive(Debug)]
pub enum Event {
    /// A flow begins transmitting.
    FlowStart {
        /// Index into the world's flow table.
        flow_id: u64,
    },
    /// The next streaming flow arrives (streaming mode only). The world
    /// holds at most one arrival in flight: handling it pulls the next
    /// flow from the source and chains the following arrival.
    FlowArrival,
    /// A packet finishes propagating and arrives at a node.
    Deliver {
        /// Arriving node.
        node: NodeRef,
        /// Packet delivered.
        packet: Packet,
    },
    /// A port finished serializing a packet; it may start the next.
    TransmitDone {
        /// Transmitting node.
        node: NodeRef,
        /// Port index (always 0 for hosts).
        port: usize,
    },
    /// A sender's retransmission timer.
    Rto {
        /// Host owning the sender.
        host: usize,
        /// Flow whose timer fired.
        flow_id: u64,
        /// Generation (stale generations are ignored).
        gen: u64,
    },
    /// A receiver's delayed-ACK flush timer.
    DelAck {
        /// Host owning the receiver.
        host: usize,
        /// Flow whose timer fired.
        flow_id: u64,
        /// Generation (stale generations are ignored).
        gen: u64,
    },
    /// A rate-limited application's resume tick.
    AppResume {
        /// Host owning the sender.
        host: usize,
        /// Flow to resume.
        flow_id: u64,
        /// Generation (stale generations are ignored).
        gen: u64,
    },
    /// Periodic trace sampling tick.
    TraceSample,
    /// The next scheduled fault event fires (events apply in schedule
    /// order, so the variant carries no payload).
    Fault,
}

impl World {
    /// Applies the next scheduled fault event.
    fn apply_next_fault(&mut self, now: u64, queue: &mut EventQueue<Event>) {
        let rt = self
            .faults
            .as_deref_mut()
            .expect("fault event without a schedule");
        let ev = rt.events[rt.next];
        rt.next += 1;
        rt.report.log.push((now, fault_desc(&ev)));
        if let FaultKind::BufferBytes(bytes) = ev.kind {
            let FaultTarget::Switch(s) = ev.target else {
                unreachable!("validated: buffer faults are switch-wide");
            };
            for port in &mut self.switches[s].ports {
                port.mq.set_cap_bytes(bytes);
            }
            return;
        }
        // A link-scoped fault: both directed ends of the cable change
        // together (a cut cable is cut both ways).
        let ends = self.link_ends(ev.target);
        let rt = self.faults.as_deref_mut().expect("checked above");
        for end in ends {
            let st = match end {
                LinkEnd::Host(h) => &mut rt.hosts[h],
                LinkEnd::SwitchPort(s, p) => &mut rt.switches[s][p],
            };
            match ev.kind {
                FaultKind::LinkDown => st.up = false,
                FaultKind::LinkUp => st.up = true,
                FaultKind::Rate(r) => st.rate_bps = r,
                FaultKind::Loss(p) => st.loss_p = p,
                FaultKind::Corrupt(p) => st.corrupt_p = p,
                FaultKind::BufferBytes(_) => unreachable!("handled above"),
            }
        }
        match ev.kind {
            FaultKind::LinkDown => rt.report.link_down_events += 1,
            FaultKind::LinkUp => {
                rt.report.link_up_events += 1;
                // Restart both ends: packets queued while the link was
                // down are waiting for a transmit kick. In a sharded run
                // every LP applies the state flip but only the owner of
                // an end holds its queued packets — kick owned ends only.
                for end in ends {
                    match end {
                        LinkEnd::Host(h) if self.owns_host(h) => {
                            self.try_transmit_host(h, now, queue);
                        }
                        LinkEnd::SwitchPort(s, p) if self.owns_switch(s) => {
                            self.try_transmit_switch(s, p, now, queue);
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

impl EventHandler for World {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        let now = now.as_nanos();
        match event {
            Event::FlowStart { flow_id } => {
                let desc = self.flows[flow_id as usize];
                let mut sender = TransportSender::new(
                    flow_id,
                    desc.src_host,
                    desc.dst_host,
                    desc.service,
                    desc.size_bytes,
                    desc.app_rate_bps,
                    now,
                    &self.transport,
                );
                if self.trace.record_rtt {
                    sender.enable_rtt_trace();
                }
                let out = sender.start(now);
                let SlotRef::Live(slot) = self.slot_ref(flow_id) else {
                    unreachable!("static flows are pre-slotted in prepare");
                };
                self.slots[slot].sender = Some(sender);
                self.process_sender_output(desc.src_host, flow_id, out, now, queue);
            }
            Event::FlowArrival => self.inject_next_flow(now, queue),
            Event::Deliver { node, packet } => {
                self.deliveries += 1;
                if packet.corrupted {
                    // The checksum fails on arrival; the hop discards it.
                    if let Some(rt) = self.faults.as_deref_mut() {
                        rt.report.corrupt_drops += 1;
                    }
                    return;
                }
                match node {
                    NodeRef::Host(h) => self.deliver_to_host(h, packet, now, queue),
                    NodeRef::Switch(s) => self.deliver_to_switch(s, packet, now, queue),
                }
            }
            Event::TransmitDone { node, port } => match node {
                NodeRef::Host(h) => {
                    self.hosts[h].nic_busy = false;
                    self.try_transmit_host(h, now, queue);
                }
                NodeRef::Switch(s) => {
                    self.switches[s].ports[port].busy = false;
                    self.try_transmit_switch(s, port, now, queue);
                }
            },
            Event::Rto {
                host,
                flow_id,
                gen: _,
            } => {
                // A timer outliving its flow's slot is stale by definition.
                let SlotRef::Live(slot) = self.slot_ref(flow_id) else {
                    return;
                };
                self.slots[slot].rto_next_fire = u64::MAX;
                // The event's generation may predate later re-arms, so the
                // sender's live deadline decides what this fire means.
                let deadline = self.slots[slot]
                    .sender
                    .as_ref()
                    .and_then(|s| s.rto_deadline());
                match deadline {
                    // Live deadline reached: a genuine timeout.
                    Some(arm) if arm.at_nanos <= now => {
                        let sender = self.slots[slot]
                            .sender
                            .as_mut()
                            .expect("armed timer has a sender");
                        let out = sender.on_rto(arm.gen, now);
                        self.process_sender_output(host, flow_id, out, now, queue);
                    }
                    // The deadline moved while this event was in flight:
                    // walk the single timer event forward to it.
                    Some(arm) => {
                        self.slots[slot].rto_next_fire = arm.at_nanos;
                        queue.push(
                            SimTime::from_nanos(arm.at_nanos),
                            Event::Rto {
                                host,
                                flow_id,
                                gen: arm.gen,
                            },
                        );
                    }
                    // Timer disarmed (all data ACKed or flow done).
                    None => {}
                }
            }
            Event::DelAck { host, flow_id, gen } => {
                let SlotRef::Live(slot) = self.slot_ref(flow_id) else {
                    return;
                };
                if let Some(receiver) = self.slots[slot].receiver.as_mut() {
                    if let Some(ack) = receiver.on_delack_timer(gen) {
                        self.host_enqueue(host, ack, now, queue);
                    }
                }
            }
            Event::AppResume { host, flow_id, gen } => {
                if let Some(sender) = self.sender_mut(flow_id) {
                    let out = sender.on_app_resume(gen, now);
                    self.process_sender_output(host, flow_id, out, now, queue);
                }
            }
            Event::TraceSample => {
                self.sample_traces(now);
                if let Some(interval) = self.trace.sample_interval_nanos {
                    if now + interval <= self.end_nanos {
                        queue.push(SimTime::from_nanos(now + interval), Event::TraceSample);
                        self.note_trace_push();
                    }
                }
            }
            Event::Fault => self.apply_next_fault(now, queue),
        }
    }
}
