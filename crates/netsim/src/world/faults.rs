//! Fault-injection runtime: per-directed-link state, the sorted event
//! cursor, and the world methods that install and resolve fault
//! targets. The event-time application lives in [`super::events`]
//! (`apply_next_fault`); this module owns the state it mutates.

use pmsb_faults::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
use pmsb_simcore::rng::SimRng;

use crate::trace::FaultReport;

use super::{NodeRef, World};

/// One directed end of a cable, for fault resolution.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LinkEnd {
    /// A host's NIC-side end.
    Host(usize),
    /// `(switch, port)` end.
    SwitchPort(usize, usize),
}

/// What the injector decided for one serialized packet.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Fate {
    Clean,
    Lost,
    Corrupted,
}

/// Live fault state of one directed link end.
pub(crate) struct LinkFaultState {
    pub(crate) up: bool,
    /// Degraded rate override (`None` = the wired rate).
    pub(crate) rate_bps: Option<u64>,
    pub(crate) loss_p: f64,
    pub(crate) corrupt_p: f64,
    /// This end's private random stream; only consumed while a loss or
    /// corruption probability is active, so inactive links draw nothing.
    rng: SimRng,
}

impl LinkFaultState {
    fn new(rng: SimRng) -> Self {
        LinkFaultState {
            up: true,
            rate_bps: None,
            loss_p: 0.0,
            corrupt_p: 0.0,
            rng,
        }
    }

    /// One admission decision per serialized packet.
    pub(crate) fn fate(&mut self) -> Fate {
        if self.loss_p > 0.0 && self.rng.uniform() < self.loss_p {
            return Fate::Lost;
        }
        if self.corrupt_p > 0.0 && self.rng.uniform() < self.corrupt_p {
            return Fate::Corrupted;
        }
        Fate::Clean
    }
}

/// Runtime the world carries only when a [`FaultSchedule`] is attached:
/// the sorted event list, per-directed-link state, and the report.
/// Fault-free runs hold `None` and pay a single branch per packet.
pub(crate) struct FaultRuntime {
    /// Schedule events sorted by time; applied in order by `next`.
    pub(crate) events: Vec<FaultEvent>,
    pub(crate) next: usize,
    pub(crate) hosts: Vec<LinkFaultState>,
    /// `switches[s][p]` = state of switch `s` port `p`'s outgoing side.
    pub(crate) switches: Vec<Vec<LinkFaultState>>,
    pub(crate) report: FaultReport,
}

/// Salt namespace separating switch-port fault streams from host
/// streams (hosts use their index directly).
const SWITCH_FAULT_SALT: u64 = 1 << 40;

/// One line of the fault timeline log.
pub(crate) fn fault_desc(ev: &FaultEvent) -> String {
    let target = match ev.target {
        FaultTarget::HostLink(h) => format!("host:{h}"),
        FaultTarget::SwitchLink { switch, port } => format!("switch:{switch}:{port}"),
        FaultTarget::Switch(s) => format!("switch:{s}"),
    };
    match ev.kind {
        FaultKind::LinkDown => format!("link-down {target}"),
        FaultKind::LinkUp => format!("link-up {target}"),
        FaultKind::Rate(Some(bps)) => format!("rate {target} {bps}"),
        FaultKind::Rate(None) => format!("rate {target} restore"),
        FaultKind::Loss(p) => format!("loss {target} {p}"),
        FaultKind::Corrupt(p) => format!("corrupt {target} {p}"),
        FaultKind::BufferBytes(b) => format!("buffer {target} {b}"),
    }
}

impl World {
    /// Attaches a fault schedule (call after wiring, before the run).
    ///
    /// Every directed link end gets its own random stream forked from the
    /// schedule's seed, so fault randomness is deterministic and fully
    /// independent of the workload RNG. Without a schedule the run takes
    /// no fault branches beyond a `None` check per packet.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a host, switch, or port that does not
    /// exist, or a host that is not wired.
    pub fn set_faults(&mut self, schedule: FaultSchedule) {
        let events = schedule.sorted_events();
        for ev in &events {
            self.validate_fault_target(ev);
        }
        let hosts = (0..self.hosts.len())
            .map(|h| LinkFaultState::new(schedule.stream(h as u64)))
            .collect();
        let switches = self
            .switches
            .iter()
            .enumerate()
            .map(|(s, sw)| {
                (0..sw.ports.len())
                    .map(|p| {
                        let salt = SWITCH_FAULT_SALT | ((s as u64) << 20) | p as u64;
                        LinkFaultState::new(schedule.stream(salt))
                    })
                    .collect()
            })
            .collect();
        self.faults = Some(Box::new(FaultRuntime {
            events,
            next: 0,
            hosts,
            switches,
            report: FaultReport::default(),
        }));
    }

    fn validate_fault_target(&self, ev: &FaultEvent) {
        match ev.target {
            FaultTarget::HostLink(h) => {
                assert!(h < self.hosts.len(), "fault targets unknown host {h}");
                assert!(
                    self.hosts[h].link.is_some(),
                    "fault targets unwired host {h}"
                );
            }
            FaultTarget::SwitchLink { switch, port } => {
                assert!(
                    switch < self.switches.len(),
                    "fault targets unknown switch {switch}"
                );
                assert!(
                    port < self.switches[switch].ports.len(),
                    "fault targets unknown port {port} on switch {switch}"
                );
            }
            FaultTarget::Switch(s) => {
                assert!(s < self.switches.len(), "fault targets unknown switch {s}");
            }
        }
    }

    /// Both directed ends of the cable a link-scoped fault names.
    pub(super) fn link_ends(&self, target: FaultTarget) -> [LinkEnd; 2] {
        match target {
            FaultTarget::HostLink(h) => {
                let link = self.hosts[h].link.expect("validated: host is wired");
                let NodeRef::Switch(s) = link.peer else {
                    unreachable!("hosts attach to switches");
                };
                [LinkEnd::Host(h), LinkEnd::SwitchPort(s, link.peer_port)]
            }
            FaultTarget::SwitchLink { switch, port } => {
                let link = self.switches[switch].ports[port].link;
                let far = match link.peer {
                    NodeRef::Host(h) => LinkEnd::Host(h),
                    NodeRef::Switch(t) => LinkEnd::SwitchPort(t, link.peer_port),
                };
                [LinkEnd::SwitchPort(switch, port), far]
            }
            FaultTarget::Switch(_) => unreachable!("switch-wide faults have no link ends"),
        }
    }
}
