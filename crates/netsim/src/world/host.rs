//! The endpoint layer: host NICs, sender output processing, and packet
//! delivery into the transport endpoints.

use pmsb::marking::MarkingScheme;
use pmsb::MarkPoint;
use pmsb_metrics::fct::FlowRecord;
use pmsb_sched::MultiQueue;
use pmsb_simcore::{EventQueue, SimDuration, SimTime};

use crate::packet::{Packet, PacketKind};
use crate::transport::{Receiver as _, Sender as _, SenderOutput, TransportReceiver};

use super::port::PacketPortView;
use super::{Event, Fate, LinkAttach, NodeRef, SlotRef, World};

/// An endpoint: one NIC queue towards its access switch, plus optional
/// NIC-level ECN marking.
pub(super) struct Host {
    pub(super) nic: MultiQueue<Packet>,
    pub(super) nic_marker: Option<Box<dyn MarkingScheme>>,
    pub(super) nic_mark_point: MarkPoint,
    pub(super) nic_busy: bool,
    pub(super) link: Option<LinkAttach>,
}

impl World {
    pub(super) fn process_sender_output(
        &mut self,
        host: usize,
        flow_id: u64,
        out: SenderOutput,
        now: u64,
        queue: &mut EventQueue<Event>,
    ) {
        let mut packets = out.packets;
        for pkt in packets.drain(..) {
            self.host_enqueue(host, pkt, now, queue);
        }
        if let Some(s) = self.sender_mut(flow_id) {
            s.recycle(packets);
        }
        if let Some(arm) = out.rto {
            // At most one timer event in flight per flow: skip the push
            // when an earlier (or equal) fire is already scheduled — that
            // fire re-arms lazily from the sender's live deadline.
            let at = arm.at_nanos.max(now);
            if let SlotRef::Live(slot) = self.slot_ref(flow_id) {
                if at < self.slots[slot].rto_next_fire {
                    self.slots[slot].rto_next_fire = at;
                    queue.push(
                        SimTime::from_nanos(at),
                        Event::Rto {
                            host,
                            flow_id,
                            gen: arm.gen,
                        },
                    );
                }
            }
        }
        if let Some(arm) = out.app_resume {
            queue.push(
                SimTime::from_nanos(arm.at_nanos.max(now)),
                Event::AppResume {
                    host,
                    flow_id,
                    gen: arm.gen,
                },
            );
        }
        if out.completed {
            self.finish_flow(host, flow_id, now, queue);
        }
    }

    /// Records a completed flow. In streaming mode this also tears down
    /// the sender half and sends a [`PacketKind::Fin`] through the
    /// network so the destination can free the receiver half: the Fin
    /// rides the normal delivery path (routing, queueing, cross-shard
    /// tie keys), which keeps slot reclamation byte-identical between
    /// sequential and sharded runs. Static mode records and returns —
    /// no Fins, no reclamation, no change to golden records.
    fn finish_flow(&mut self, host: usize, flow_id: u64, now: u64, queue: &mut EventQueue<Event>) {
        let SlotRef::Live(slot) = self.slot_ref(flow_id) else {
            unreachable!("completed flow has a slot");
        };
        let s = self.slots[slot]
            .sender
            .as_ref()
            .expect("completed flow has a sender");
        let rec = FlowRecord {
            flow_id,
            bytes: s.size_bytes(),
            start_nanos: s.start_nanos(),
            end_nanos: now,
        };
        if self.stream.is_none() {
            self.fct.record(rec);
            return;
        }
        let sender = self.slots[slot].sender.take().expect("taken once");
        let (dst, service) = (
            self.slots[slot].dst_host as usize,
            self.slots[slot].service as usize,
        );
        let st = self.stream.as_deref_mut().expect("streaming mode");
        st.completed += 1;
        st.bytes_completed += rec.bytes;
        st.sketch.insert(rec.fct_nanos());
        super::add_sender_stats(&mut st.agg, &sender.stats());
        if st.record_exact {
            self.fct.record(rec);
        }
        let fin = Packet::fin(flow_id, host, dst, service, now);
        self.host_enqueue(host, fin, now, queue);
        self.retire_slot_if_done(flow_id);
    }

    pub(super) fn host_enqueue(
        &mut self,
        host: usize,
        mut pkt: Packet,
        now: u64,
        queue: &mut EventQueue<Event>,
    ) {
        pkt.enqueued_at_nanos = now;
        let h = &mut self.hosts[host];
        // NIC-level ECN (one-queue port), mirroring NS-3's per-device
        // queue discs.
        if h.nic_mark_point == MarkPoint::Enqueue && pkt.ect && !pkt.ce {
            if let Some(marker) = h.nic_marker.as_mut() {
                let rate = h.link.map(|l| l.rate_bps).unwrap_or(10_000_000_000);
                let view = PacketPortView {
                    mq: &h.nic,
                    link_rate_bps: rate,
                    pool_bytes: None,
                    sojourn_nanos: None,
                };
                if marker.should_mark(&view, 0).is_mark() {
                    pkt.ce = true;
                    self.marks += 1;
                }
            }
        }
        let _ = self.hosts[host].nic.enqueue(0, pkt, now);
        self.try_transmit_host(host, now, queue);
    }

    pub(super) fn try_transmit_host(
        &mut self,
        host: usize,
        now: u64,
        queue: &mut EventQueue<Event>,
    ) {
        if let Some(rt) = self.faults.as_deref() {
            if !rt.hosts[host].up {
                return; // link down: packets stay parked in the NIC queue
            }
        }
        let marks = &mut self.marks;
        let h = &mut self.hosts[host];
        if h.nic_busy {
            return;
        }
        let Some((_, mut pkt)) = h.nic.dequeue(now) else {
            return;
        };
        if h.nic_mark_point == MarkPoint::Dequeue && pkt.ect && !pkt.ce {
            if let Some(marker) = h.nic_marker.as_mut() {
                let rate = h.link.map(|l| l.rate_bps).unwrap_or(10_000_000_000);
                let view = PacketPortView {
                    mq: &h.nic,
                    link_rate_bps: rate,
                    pool_bytes: None,
                    sojourn_nanos: Some(now.saturating_sub(pkt.enqueued_at_nanos)),
                };
                if marker.should_mark(&view, 0).is_mark() {
                    pkt.ce = true;
                    *marks += 1;
                }
            }
        }
        let link = h.link.expect("host transmits without a link");
        h.nic_busy = true;
        let mut rate_bps = link.rate_bps;
        let mut fate = Fate::Clean;
        if let Some(rt) = self.faults.as_deref_mut() {
            let st = &mut rt.hosts[host];
            if let Some(r) = st.rate_bps {
                rate_bps = r;
            }
            fate = st.fate();
            if matches!(fate, Fate::Lost) {
                rt.report.injected_drops += 1;
            }
        }
        let ser = SimDuration::for_bytes(pkt.wire_bytes, rate_bps).as_nanos();
        queue.push(
            SimTime::from_nanos(now + ser),
            Event::TransmitDone {
                node: NodeRef::Host(host),
                port: 0,
            },
        );
        match fate {
            // The wire time was spent but the packet never arrives.
            Fate::Lost => {}
            fate => {
                if matches!(fate, Fate::Corrupted) {
                    pkt.corrupted = true;
                }
                Self::push_deliver(
                    &mut self.shard,
                    queue,
                    now + ser + link.delay_nanos,
                    link.peer,
                    pkt,
                );
            }
        }
    }

    pub(super) fn deliver_to_host(
        &mut self,
        host: usize,
        pkt: Packet,
        now: u64,
        queue: &mut EventQueue<Event>,
    ) {
        match pkt.kind {
            PacketKind::Data { .. } => {
                let slot = match self.slot_ref(pkt.flow_id) {
                    SlotRef::Live(s) => s,
                    // Straggler data after teardown (e.g. a retransmit
                    // whose original was ACKed before the Fin): drop.
                    SlotRef::Retired => return,
                    // First data of a streaming flow at its destination:
                    // the receiver half claims a slot lazily.
                    SlotRef::Absent => self.alloc_slot(pkt.flow_id),
                };
                let transport = self.transport;
                let receiver = self.slots[slot]
                    .receiver
                    .get_or_insert_with(|| TransportReceiver::new(pkt.flow_id, &transport));
                let out = receiver.on_data(&pkt, now);
                if let Some(arm) = out.delack {
                    queue.push(
                        SimTime::from_nanos(arm.at_nanos.max(now)),
                        Event::DelAck {
                            host,
                            flow_id: pkt.flow_id,
                            gen: arm.gen,
                        },
                    );
                }
                if let Some(ack) = out.ack {
                    self.host_enqueue(host, ack, now, queue);
                }
            }
            PacketKind::Ack { cum_ack, ece } => {
                let Some(sender) = self.sender_mut(pkt.flow_id) else {
                    return; // flow not started yet, or already torn down
                };
                let out = sender.on_ack(cum_ack, ece, pkt.sent_at_nanos, now);
                self.process_sender_output(host, pkt.flow_id, out, now, queue);
            }
            PacketKind::Fin => {
                if let SlotRef::Live(slot) = self.slot_ref(pkt.flow_id) {
                    self.slots[slot].receiver = None;
                    self.retire_slot_if_done(pkt.flow_id);
                }
            }
        }
    }
}
