//! The simulated network: hosts, switches, links, and the event loop.
//!
//! A [`World`] owns every node and implements
//! [`EventHandler`](pmsb_simcore::EventHandler); running it under
//! [`Simulation`] executes the packet-level model:
//!
//! * hosts emit transport segments through a FIFO NIC,
//! * switches classify arriving packets onto service queues, apply the
//!   configured ECN marking at enqueue and/or dequeue, schedule with the
//!   configured policy, and forward over links with serialization +
//!   propagation delay,
//! * ACKs flow back and drive the senders' congestion control.
//!
//! The module splits by layer: this file holds the network structure
//! (wiring, sharding, run lifecycle), `types` the plain data (flow
//! descriptors, the transport slab, run results), `faults` the
//! fault-injection runtime, `port` the embeddable marking-view adapter
//! shared with the flow-level engines, `host` the endpoint/NIC layer,
//! `switch` the port layer, and `events` the event pump. The transport
//! the endpoints run is selected by [`TransportConfig::kind`] — see
//! [`crate::transport`].

mod events;
mod faults;
mod host;
pub(crate) mod port;
mod switch;
mod types;

pub use events::Event;
pub use types::{FlowDesc, NodeRef, RunResults, StreamStats};

pub(crate) use types::add_sender_stats;

use std::collections::HashMap;

use pmsb_metrics::fct::FctRecorder;
use pmsb_metrics::QuantileSketch;
use pmsb_sched::{Fifo, MultiQueue};
use pmsb_simcore::{EventQueue, LpMessage, SimTime, Simulation, TieKey};

use crate::config::{HostConfig, SwitchConfig, TransportConfig};
use crate::packet::Packet;
use crate::trace::{PortTrace, TraceConfig};
use crate::transport::{Sender as _, SenderStats, TransportSender};

use faults::{fault_desc, Fate, FaultRuntime, LinkEnd};
use host::Host;
use switch::{Switch, SwitchPort};
use types::{FlowSlot, LinkAttach, SlotRef, StreamRuntime, SLOT_NONE, SLOT_RETIRED};

/// Sharding state carried only by a world participating in a parallel
/// run (DESIGN.md §8): which logical process this instance is, which LP
/// owns each node, and the outbox of cross-LP packets produced during
/// the current window. Sequential worlds hold `None` and pay one branch
/// per scheduled delivery.
pub(crate) struct Shard {
    my_lp: usize,
    /// Owning LP of each switch (any disjoint+complete assignment; see
    /// `crate::partition` for the strategies that produce it).
    switch_owner: Vec<u32>,
    /// Owning LP of each host (= the owner of its attached switch).
    host_owner: Vec<u32>,
    /// Whether this LP runs the periodic [`Event::TraceSample`] chain
    /// (it owns a watched port, or is LP 0 when nothing is watched).
    runs_trace_chain: bool,
    /// Whether this LP is the designated counter of the trace chain.
    /// Several LPs may each run a chain (one per owned watched port
    /// group); only the lowest-numbered one lets its pushes count, so
    /// the merged event total matches the sequential run's single chain.
    canonical_trace_chain: bool,
    /// FEL pushes a sequential run would not have made on this LP
    /// (replicated fault events, duplicate trace chains); subtracted
    /// from `scheduled_count` before results merge.
    extra_pushes: u64,
    /// Cross-LP deliveries produced since the last drain, each tagged
    /// with the sender-side tie key (its position in the sequential
    /// push order, replayed on insertion at the destination LP).
    outbox: Vec<LpMessage<(TieKey, Event)>>,
}

/// The simulated network. Build with the `wire_*` methods (or the
/// [`crate::topology`] builders), add flows, then [`World::run_until_nanos`].
pub struct World {
    hosts: Vec<Host>,
    switches: Vec<Switch>,
    transport: TransportConfig,
    trace: TraceConfig,
    flows: Vec<FlowDesc>,
    /// Per-flow transport slab. Slot tables instead of per-host
    /// `HashMap`s keep hash lookups out of the per-event path;
    /// `HashMap`s reappear only at the result-export boundary in
    /// [`World::harvest`]. Static runs identity-map flow id → slot in
    /// [`World::prepare`] and never free; streaming runs allocate at
    /// arrival and recycle through `free_slots` at teardown.
    slots: Vec<FlowSlot>,
    /// Recycled slot indices (streaming mode only).
    free_slots: Vec<u32>,
    /// Flow id → slot index, with [`SLOT_NONE`]/[`SLOT_RETIRED`]
    /// sentinels. Four bytes per flow ever seen — the only per-flow cost
    /// that scales with the total (not concurrent) flow count.
    flow_slot: Vec<u32>,
    /// Currently allocated slots and the run's peak.
    live_slots: usize,
    slab_high_water: usize,
    /// Present only in streaming mode; boxed so static worlds stay small.
    stream: Option<Box<StreamRuntime>>,
    fct: FctRecorder,
    marks: u64,
    end_nanos: u64,
    deliveries: u64,
    /// Present only when a fault schedule is attached; boxed so the
    /// common fault-free world stays small.
    faults: Option<Box<FaultRuntime>>,
    /// Present only on worlds driven as one LP of a parallel run.
    shard: Option<Box<Shard>>,
}

impl World {
    /// Creates an empty network.
    pub fn new(transport: TransportConfig) -> Self {
        World {
            hosts: Vec::new(),
            switches: Vec::new(),
            transport,
            trace: TraceConfig::off(),
            flows: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            flow_slot: Vec::new(),
            live_slots: 0,
            slab_high_water: 0,
            stream: None,
            fct: FctRecorder::new(),
            marks: 0,
            end_nanos: 0,
            deliveries: 0,
            faults: None,
            shard: None,
        }
    }

    /// Number of switches in the network.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts in the network.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of ports on `switch`.
    pub fn num_ports(&self, switch: usize) -> usize {
        self.switches[switch].ports.len()
    }

    /// Candidate output ports on `switch` towards `dst_host` (for
    /// topology validation and tests).
    pub fn route_candidates(&self, switch: usize, dst_host: usize) -> &[usize] {
        self.switches[switch].routes.candidates(dst_host)
    }

    /// The node at the far end of `switch`'s `port`.
    pub fn port_peer(&self, switch: usize, port: usize) -> NodeRef {
        self.switches[switch].ports[port].link.peer
    }

    /// The ECMP-selected output port on `switch` towards `dst_host` for
    /// `flow_id` (for path-diversity tests).
    pub fn route_port_for(&self, switch: usize, dst_host: usize, flow_id: u64) -> usize {
        self.switches[switch].routes.port_for(dst_host, flow_id)
    }

    /// The switch a wired host attaches to.
    ///
    /// # Panics
    ///
    /// Panics if the host is not wired.
    pub fn host_switch(&self, host: usize) -> usize {
        let link = self.hosts[host].link.expect("host not wired");
        let NodeRef::Switch(s) = link.peer else {
            unreachable!("hosts attach to switches");
        };
        s
    }

    /// Adds a host; returns its index.
    pub fn add_host(&mut self, cfg: HostConfig) -> usize {
        self.hosts.push(Host {
            nic: MultiQueue::new(Box::new(Fifo::new()), cfg.nic_buffer_bytes),
            nic_marker: cfg.nic_marking.build(&[1]),
            nic_mark_point: cfg.nic_mark_point,
            nic_busy: false,
            link: None,
        });
        self.hosts.len() - 1
    }

    /// Adds a switch with no ports yet; returns its index.
    pub fn add_switch(&mut self) -> usize {
        self.switches.push(Switch {
            ports: Vec::new(),
            pool: crate::buffer::SharedPool::new(crate::buffer::BufferPolicy::Static),
            routes: crate::routing::RouteTable::new(0),
        });
        self.switches.len() - 1
    }

    fn build_port(&self, cfg: &SwitchConfig, link: LinkAttach) -> SwitchPort {
        let weights = cfg.scheduler.weights();
        SwitchPort {
            mq: MultiQueue::with_policy(cfg.scheduler.build(), cfg.port_buffer_policy()),
            marker: cfg.marking.build(&weights),
            mark_point: cfg.mark_point,
            busy: false,
            link,
            trace: None,
        }
    }

    /// Books a freshly-wired port's buffer budget into its switch's
    /// shared pool (a no-op pass-through under `Static`).
    fn pool_attach(&mut self, switch: usize, cfg: &SwitchConfig, rate_bps: u64) {
        self.switches[switch].pool.attach_port(
            cfg.buffer,
            cfg.buffer_bytes,
            cfg.scheduler.num_queues(),
            rate_bps,
        );
    }

    /// Connects `host` to `switch` with a bidirectional link; the switch
    /// side gets a port configured per `cfg`. Returns the new switch port
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if the host is already wired.
    pub fn wire_host(
        &mut self,
        host: usize,
        switch: usize,
        rate_bps: u64,
        delay_nanos: u64,
        cfg: &SwitchConfig,
    ) -> usize {
        assert!(self.hosts[host].link.is_none(), "host {host} already wired");
        let port_idx = self.switches[switch].ports.len();
        self.hosts[host].link = Some(LinkAttach {
            peer: NodeRef::Switch(switch),
            peer_port: port_idx,
            rate_bps,
            delay_nanos,
        });
        let link = LinkAttach {
            peer: NodeRef::Host(host),
            peer_port: 0,
            rate_bps,
            delay_nanos,
        };
        let port = self.build_port(cfg, link);
        self.switches[switch].ports.push(port);
        self.pool_attach(switch, cfg, rate_bps);
        port_idx
    }

    /// Connects two switches with a bidirectional link, creating one port
    /// on each side. Returns `(port_on_a, port_on_b)`.
    pub fn wire_switch_pair(
        &mut self,
        a: usize,
        b: usize,
        rate_bps: u64,
        delay_nanos: u64,
        cfg: &SwitchConfig,
    ) -> (usize, usize) {
        let pa = self.switches[a].ports.len();
        let pb = self.switches[b].ports.len();
        let link_ab = LinkAttach {
            peer: NodeRef::Switch(b),
            peer_port: pb,
            rate_bps,
            delay_nanos,
        };
        let link_ba = LinkAttach {
            peer: NodeRef::Switch(a),
            peer_port: pa,
            rate_bps,
            delay_nanos,
        };
        let port_a = self.build_port(cfg, link_ab);
        let port_b = self.build_port(cfg, link_ba);
        self.switches[a].ports.push(port_a);
        self.switches[b].ports.push(port_b);
        self.pool_attach(a, cfg, rate_bps);
        self.pool_attach(b, cfg, rate_bps);
        (pa, pb)
    }

    /// Sets the candidate output ports on `switch` towards `dst_host`.
    pub fn set_route(&mut self, switch: usize, dst_host: usize, ports: Vec<usize>) {
        self.switches[switch].routes.set(dst_host, ports);
    }

    /// Installs the trace configuration (call after wiring, before run).
    ///
    /// # Panics
    ///
    /// Panics if a watched port does not exist.
    pub fn set_trace(&mut self, trace: TraceConfig) {
        for (s, p) in &trace.watch_ports {
            let port = &mut self.switches[*s].ports[*p];
            port.trace = Some(PortTrace::new(
                port.mq.num_queues(),
                trace.throughput_bin_nanos,
            ));
        }
        self.trace = trace;
    }

    // ------------------------------------------------------------------
    // Sharding (conservative parallel runs, DESIGN.md §8).
    // ------------------------------------------------------------------

    /// Marks this world as LP `my_lp` of a parallel run partitioned by
    /// `switch_owner` (owning LP per switch). Call after wiring and
    /// trace/fault installation, before [`World::prepare`].
    ///
    /// Every LP holds a full copy of the network, but only simulates its
    /// own nodes; traces of non-owned ports are stripped here so the
    /// merged results carry exactly the owner's copy of each.
    pub(crate) fn set_shard(&mut self, my_lp: usize, switch_owner: Vec<u32>) {
        let host_owner = self
            .hosts
            .iter()
            .map(|h| {
                let link = h.link.expect("set_shard before wiring");
                let NodeRef::Switch(s) = link.peer else {
                    unreachable!("hosts attach to switches");
                };
                switch_owner[s]
            })
            .collect();
        for (s, sw) in self.switches.iter_mut().enumerate() {
            if switch_owner[s] as usize != my_lp {
                for p in &mut sw.ports {
                    p.trace = None;
                }
            }
        }
        let watched_owners: Vec<u32> = self
            .trace
            .watch_ports
            .iter()
            .map(|(s, _)| switch_owner[*s])
            .collect();
        let (runs_trace_chain, canonical_trace_chain) = if watched_owners.is_empty() {
            // Nothing watched: sampling is a no-op, but the sequential
            // run still schedules the chain — mirror it on LP 0 alone.
            (my_lp == 0, true)
        } else {
            let mine = watched_owners.contains(&(my_lp as u32));
            let lowest = *watched_owners.iter().min().expect("nonempty") as usize;
            (mine, my_lp == lowest)
        };
        self.shard = Some(Box::new(Shard {
            my_lp,
            switch_owner,
            host_owner,
            runs_trace_chain,
            canonical_trace_chain,
            extra_pushes: 0,
            outbox: Vec::new(),
        }));
    }

    fn owns_host(&self, host: usize) -> bool {
        self.shard
            .as_deref()
            .is_none_or(|sh| sh.host_owner[host] as usize == sh.my_lp)
    }

    fn owns_switch(&self, switch: usize) -> bool {
        self.shard
            .as_deref()
            .is_none_or(|sh| sh.switch_owner[switch] as usize == sh.my_lp)
    }

    /// The direct minimum-delay matrix between logical processes: entry
    /// `(a, b)` (row-major `k × k`) is the smallest propagation delay of
    /// any switch-to-switch link from a switch owned by LP `a` to one
    /// owned by LP `b`, or [`LookaheadMatrix::NEVER`] when no such link
    /// exists. [`pmsb_simcore::LookaheadMatrix::from_direct`] closes it
    /// over multi-hop paths to produce per-LP horizon bounds.
    pub(crate) fn lp_delay_matrix(&self, switch_owner: &[u32], k: usize) -> Vec<u64> {
        use pmsb_simcore::LookaheadMatrix;
        let mut d = vec![LookaheadMatrix::NEVER; k * k];
        for (s, sw) in self.switches.iter().enumerate() {
            for p in &sw.ports {
                if let NodeRef::Switch(t) = p.link.peer {
                    let (a, b) = (switch_owner[s] as usize, switch_owner[t] as usize);
                    if a != b && p.link.delay_nanos < d[a * k + b] {
                        d[a * k + b] = p.link.delay_nanos;
                    }
                }
            }
        }
        d
    }

    /// Moves the cross-LP deliveries produced this window into `out`.
    pub(crate) fn drain_outbox(&mut self, out: &mut Vec<LpMessage<(TieKey, Event)>>) {
        if let Some(sh) = self.shard.as_deref_mut() {
            out.append(&mut sh.outbox);
        }
    }

    /// FEL pushes the sequential run would not have made on this LP.
    pub(crate) fn shard_extra_pushes(&self) -> u64 {
        self.shard.as_deref().map_or(0, |sh| sh.extra_pushes)
    }

    /// Counts a trace-chain push as replicated unless this LP's chain is
    /// the canonical one.
    fn note_trace_push(&mut self) {
        if let Some(sh) = self.shard.as_deref_mut() {
            if !sh.canonical_trace_chain {
                sh.extra_pushes += 1;
            }
        }
    }

    /// Schedules a packet arrival, diverting it to the shard outbox when
    /// the destination node lives on another LP. An associated function
    /// (not a method) so call sites keep their disjoint field borrows.
    fn push_deliver(
        shard: &mut Option<Box<Shard>>,
        queue: &mut EventQueue<Event>,
        at_nanos: u64,
        node: NodeRef,
        packet: Packet,
    ) {
        if let Some(sh) = shard.as_deref_mut() {
            let owner = match node {
                NodeRef::Host(h) => sh.host_owner[h],
                NodeRef::Switch(s) => sh.switch_owner[s],
            } as usize;
            if owner != sh.my_lp {
                sh.outbox.push(LpMessage {
                    at: SimTime::from_nanos(at_nanos),
                    dst: owner,
                    payload: (queue.current_tie_key(), Event::Deliver { node, packet }),
                });
                return;
            }
        }
        queue.push(
            SimTime::from_nanos(at_nanos),
            Event::Deliver { node, packet },
        );
    }

    /// Registers a flow; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the flow is empty or src == dst.
    pub fn add_flow(&mut self, desc: FlowDesc) -> u64 {
        assert!(desc.size_bytes > 0, "flow must carry at least one byte");
        assert_ne!(desc.src_host, desc.dst_host, "flow to self");
        assert!(
            self.stream.is_none(),
            "add_flow and set_stream are mutually exclusive"
        );
        self.flows.push(desc);
        (self.flows.len() - 1) as u64
    }

    // ------------------------------------------------------------------
    // Streaming mode: lazy flow injection with slab reclamation.
    // ------------------------------------------------------------------

    /// Switches the world into streaming mode: flows are pulled lazily
    /// from `source` (which must yield nondecreasing `start_nanos`) and
    /// their transport state is recycled at completion, so resident
    /// memory is bounded by the concurrent flow population. Results come
    /// back as [`RunResults::stream`] aggregates instead of per-flow
    /// maps; `record_exact` additionally records every FCT in the
    /// exhaustive recorder (for differential validation on small runs —
    /// never on million-flow campaigns).
    ///
    /// # Panics
    ///
    /// Panics if flows were already registered with [`World::add_flow`].
    pub fn set_stream(
        &mut self,
        source: Box<dyn Iterator<Item = FlowDesc> + Send>,
        record_exact: bool,
    ) {
        assert!(
            self.flows.is_empty(),
            "add_flow and set_stream are mutually exclusive"
        );
        self.stream = Some(Box::new(StreamRuntime {
            source,
            next_desc: None,
            next_flow_id: 0,
            record_exact,
            injected: 0,
            completed: 0,
            bytes_completed: 0,
            agg: SenderStats::default(),
            sketch: QuantileSketch::new(),
        }));
    }

    /// Where `flow_id` currently points in the slab.
    fn slot_ref(&self, flow_id: u64) -> SlotRef {
        match self.flow_slot.get(flow_id as usize) {
            Some(&SLOT_RETIRED) => SlotRef::Retired,
            Some(&SLOT_NONE) | None => SlotRef::Absent,
            Some(&s) => SlotRef::Live(s as usize),
        }
    }

    /// The live sender of `flow_id`, if any.
    pub(super) fn sender_mut(&mut self, flow_id: u64) -> Option<&mut TransportSender> {
        match self.slot_ref(flow_id) {
            SlotRef::Live(s) => self.slots[s].sender.as_mut(),
            _ => None,
        }
    }

    /// Binds a fresh slot to `flow_id`, reusing a freed one when
    /// available, and tracks the live high-water mark.
    fn alloc_slot(&mut self, flow_id: u64) -> usize {
        let fid = flow_id as usize;
        if self.flow_slot.len() <= fid {
            self.flow_slot.resize(fid + 1, SLOT_NONE);
        }
        debug_assert_eq!(
            self.flow_slot[fid], SLOT_NONE,
            "flow {flow_id} already slotted"
        );
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(FlowSlot::empty());
                self.slots.len() - 1
            }
        };
        self.flow_slot[fid] = slot as u32;
        self.live_slots += 1;
        self.slab_high_water = self.slab_high_water.max(self.live_slots);
        slot
    }

    /// Recycles the flow's slot once both halves are gone. A no-op in
    /// static mode, where slots live for the whole run (that is what
    /// keeps static runs byte-identical to the pre-slab simulator).
    fn retire_slot_if_done(&mut self, flow_id: u64) {
        if self.stream.is_none() {
            return;
        }
        let fid = flow_id as usize;
        let s = self.flow_slot[fid];
        if s >= SLOT_RETIRED {
            return;
        }
        let slot = &mut self.slots[s as usize];
        if slot.sender.is_some() || slot.receiver.is_some() {
            return;
        }
        slot.rto_next_fire = u64::MAX;
        self.free_slots.push(s);
        self.flow_slot[fid] = SLOT_RETIRED;
        self.live_slots -= 1;
    }

    /// Counts a streaming-arrival push as replicated on every LP but
    /// LP 0: each LP replays the identical arrival chain (so global flow
    /// ids agree without coordination), and LP 0 is the canonical
    /// counter, mirroring the fault-event accounting.
    fn note_stream_push(&mut self) {
        if let Some(sh) = self.shard.as_deref_mut() {
            if sh.my_lp != 0 {
                sh.extra_pushes += 1;
            }
        }
    }

    /// Handles [`Event::FlowArrival`]: assigns the next global flow id,
    /// chains the following arrival, and — when this LP owns the source
    /// host — instantiates the sender in a fresh slab slot.
    pub(super) fn inject_next_flow(&mut self, now: u64, queue: &mut EventQueue<Event>) {
        let (desc, flow_id, next_at) = {
            let st = self
                .stream
                .as_deref_mut()
                .expect("flow arrival without a streaming source");
            let desc = st.next_desc.take().expect("arrival without a pulled flow");
            let flow_id = st.next_flow_id;
            st.next_flow_id += 1;
            let next_at = st.source.next().map(|next| {
                debug_assert!(
                    next.start_nanos >= desc.start_nanos,
                    "stream must be time-ordered"
                );
                let at = next.start_nanos;
                st.next_desc = Some(next);
                at
            });
            (desc, flow_id, next_at)
        };
        if let Some(at) = next_at {
            queue.push(SimTime::from_nanos(at.max(now)), Event::FlowArrival);
            self.note_stream_push();
        }
        if !self.owns_host(desc.src_host) {
            return;
        }
        let mut sender = TransportSender::new(
            flow_id,
            desc.src_host,
            desc.dst_host,
            desc.service,
            desc.size_bytes,
            desc.app_rate_bps,
            now,
            &self.transport,
        );
        let out = sender.start(now);
        let slot = self.alloc_slot(flow_id);
        self.slots[slot].sender = Some(sender);
        self.slots[slot].dst_host = desc.dst_host as u32;
        self.slots[slot].service = desc.service as u16;
        self.stream.as_deref_mut().expect("checked above").injected += 1;
        self.process_sender_output(desc.src_host, flow_id, out, now, queue);
    }

    /// Runs the simulation until `end_nanos`, returning the harvested
    /// results. Consumes the world.
    pub fn run_until_nanos(self, end_nanos: u64) -> RunResults {
        let mut sim = self.prepare(end_nanos);
        sim.run_until(SimTime::from_nanos(end_nanos));
        let events = sim.queue.scheduled_count();
        sim.handler.harvest(end_nanos, events)
    }

    /// Sizes the hot-path storage and seeds the FEL with the initial
    /// events, returning the simulation ready to drive. On a sharded
    /// world only owned flows start here and only the designated LPs run
    /// the trace chain; fault events are seeded everywhere (each LP
    /// applies the full schedule to keep link state coherent) with the
    /// replication accounted in [`World::shard_extra_pushes`].
    pub(crate) fn prepare(mut self, end_nanos: u64) -> Simulation<World> {
        self.end_nanos = end_nanos;
        if self.stream.is_none() {
            // Static mode: identity flow → slot mapping, pre-sized and
            // never freed, so slot index == flow id for the whole run.
            self.slots.resize_with(self.flows.len(), FlowSlot::empty);
            self.flow_slot = (0..self.flows.len() as u32).collect();
            self.live_slots = self.flows.len();
            self.slab_high_water = self.flows.len();
        }
        // Pre-size the hot-path storage: the FEL for the in-flight event
        // population (a generous per-flow share plus trace/timer headroom)
        // and every port's ring buffers for a congested queue's worth of
        // packets, so the steady state never grows a buffer. Streaming
        // runs hold one arrival plus the concurrent flows' events — a
        // flat reserve, independent of the total flow count.
        let queue_capacity = if self.stream.is_some() {
            4096
        } else {
            256 + 16 * self.flows.len()
        };
        for h in &mut self.hosts {
            h.nic.reserve(64);
        }
        for sw in &mut self.switches {
            for p in &mut sw.ports {
                p.mq.reserve(64);
            }
        }
        let mut sim = Simulation::new(self);
        sim.queue.reserve(queue_capacity);
        if sim.handler.stream.is_some() {
            let st = sim.handler.stream.as_deref_mut().expect("checked");
            if let Some(first) = st.source.next() {
                let at = first.start_nanos;
                st.next_desc = Some(first);
                sim.queue.push(SimTime::from_nanos(at), Event::FlowArrival);
                sim.handler.note_stream_push();
            }
        }
        for id in 0..sim.handler.flows.len() {
            let f = sim.handler.flows[id];
            if !sim.handler.owns_host(f.src_host) {
                continue;
            }
            sim.queue.push(
                SimTime::from_nanos(f.start_nanos),
                Event::FlowStart { flow_id: id as u64 },
            );
        }
        if let Some(interval) = sim.handler.trace.sample_interval_nanos {
            let runs_chain = sim
                .handler
                .shard
                .as_deref()
                .is_none_or(|sh| sh.runs_trace_chain);
            if runs_chain {
                sim.queue
                    .push(SimTime::from_nanos(interval), Event::TraceSample);
                sim.handler.note_trace_push();
            }
        }
        let fault_events = sim.handler.faults.as_deref().map_or(0, |rt| {
            // Pre-sorted and pushed in order: the FEL's (time, seq) FIFO
            // keeps same-time events aligned with the sequential `next`
            // cursor in [`World::apply_next_fault`].
            for ev in &rt.events {
                sim.queue
                    .push(SimTime::from_nanos(ev.at_nanos), Event::Fault);
            }
            rt.events.len() as u64
        });
        if let Some(sh) = sim.handler.shard.as_deref_mut() {
            if sh.my_lp != 0 {
                // LP 0 is the canonical holder of the replicated faults.
                sh.extra_pushes += fault_events;
            }
        }
        sim
    }

    pub(crate) fn harvest(mut self, end_nanos: u64, events: u64) -> RunResults {
        let mut rtt = HashMap::new();
        let mut stats = HashMap::new();
        let mut drops = 0u64;
        for h in &self.hosts {
            drops += h.nic.dropped_items();
        }
        if self.stream.is_none() {
            for slot in &self.slots {
                let Some(s) = slot.sender.as_ref() else {
                    continue;
                };
                stats.insert(s.flow_id(), s.stats());
                if let Some(samples) = s.rtt_samples() {
                    rtt.insert(s.flow_id(), samples.to_vec());
                }
            }
        }
        let slab_high_water = self.slab_high_water as u64;
        let stream = self.stream.take().map(|mut st| {
            // Flows still live at the cutoff never reached `finish_flow`;
            // their counters belong in the aggregate too.
            for slot in &self.slots {
                if let Some(s) = slot.sender.as_ref() {
                    add_sender_stats(&mut st.agg, &s.stats());
                }
            }
            StreamStats {
                sketch: st.sketch,
                injected: st.injected,
                completed: st.completed,
                bytes_completed: st.bytes_completed,
                agg_sender: st.agg,
                slab_high_water,
            }
        });
        let mut traces = HashMap::new();
        let mut shared_buffer = None;
        for (si, sw) in self.switches.iter_mut().enumerate() {
            for (pi, port) in sw.ports.iter_mut().enumerate() {
                drops += port.mq.dropped_items();
                if let Some(t) = port.trace.take() {
                    traces.insert((si, pi), t);
                }
            }
            if sw.pool.is_shared() {
                // Pool rejections are real drops. Non-owned switches of a
                // sharded run contribute zeros (their pools never see
                // traffic), so every LP folds every switch and the merge
                // just absorbs — Some-ness depends only on the config,
                // which all LPs share.
                drops += sw.pool.shared_drops();
                shared_buffer
                    .get_or_insert_with(pmsb_metrics::contention::ContentionSummary::default)
                    .absorb(&sw.pool.summary());
            }
        }
        RunResults {
            fct: self.fct,
            rtt_nanos_by_flow: rtt,
            port_traces: traces,
            sender_stats: stats,
            drops,
            marks: self.marks,
            end_nanos,
            events,
            deliveries: self.deliveries,
            faults: self.faults.map(|rt| rt.report),
            stream,
            shared_buffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MarkingConfig, SchedulerConfig, TransportKind};

    /// `num_senders` sender hosts plus one receiver (the last host) on a
    /// single switch; host NICs mirror the switch marking.
    fn star_world(num_senders: usize, marking: MarkingConfig) -> World {
        let mut w = World::new(TransportConfig::default());
        let cfg = SwitchConfig {
            scheduler: SchedulerConfig::Dwrr {
                weights: vec![1, 1],
            },
            marking: marking.clone(),
            ..SwitchConfig::default()
        };
        let host_cfg = HostConfig {
            nic_marking: marking,
            ..HostConfig::default()
        };
        let s_idx = num_senders; // receiver host index
        for _ in 0..=s_idx {
            w.add_host(host_cfg.clone());
        }
        let s = w.add_switch();
        for h in 0..=s_idx {
            let p = w.wire_host(h, s, 10_000_000_000, 5_000, &cfg);
            w.set_route(s, h, vec![p]);
        }
        w
    }

    fn two_host_world(marking: MarkingConfig) -> World {
        star_world(1, marking)
    }

    #[test]
    fn single_flow_completes_with_sane_fct() {
        let mut w = two_host_world(MarkingConfig::None);
        w.add_flow(FlowDesc::bulk(0, 1, 0, 100_000));
        let res = w.run_until_nanos(50_000_000);
        assert_eq!(res.fct.len(), 1);
        let rec = res.fct.records()[0];
        // 100 KB over 10 Gbps with ~20 us RTT: at least the transfer time
        // (~80 us incl. RTT), well under a millisecond.
        let fct = rec.fct_nanos();
        assert!(fct > 20_000, "FCT {fct} too small");
        assert!(fct < 1_000_000, "FCT {fct} too large");
        assert_eq!(res.drops, 0);
    }

    #[test]
    fn two_flows_share_and_complete() {
        // Two senders converge on one receiver: the switch port congests.
        let mut w = star_world(
            2,
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        );
        // Long enough for DCTCP to converge to the fair share.
        w.add_flow(FlowDesc::bulk(0, 2, 0, 20_000_000));
        w.add_flow(FlowDesc::bulk(1, 2, 1, 20_000_000));
        let res = w.run_until_nanos(200_000_000);
        assert_eq!(res.fct.len(), 2, "both flows complete");
        assert!(res.marks > 0, "congestion must trigger ECN marks");
        // Equal weights, equal sizes: completion times the same ballpark.
        let f: Vec<u64> = res.fct.records().iter().map(|r| r.fct_nanos()).collect();
        let ratio = f[0] as f64 / f[1] as f64;
        assert!((0.6..1.67).contains(&ratio), "unfair FCTs {f:?}");
    }

    #[test]
    fn long_lived_flow_reaches_line_rate() {
        let mut w = two_host_world(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        w.add_flow(FlowDesc::bulk(0, 1, 0, 20_000_000));
        let res = w.run_until_nanos(1_000_000_000);
        assert_eq!(res.fct.len(), 1);
        let rec = res.fct.records()[0];
        // 20 MB at 10 Gbps line rate = 16 ms minimum (payload/goodput
        // ratio raises this slightly); ECN must not destroy throughput.
        let fct = rec.fct_nanos();
        assert!(fct < 18_000_000, "FCT {fct} => goodput below ~9 Gbps");
        assert_eq!(res.drops, 0, "ECN must prevent buffer overflow");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = two_host_world(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            });
            w.add_flow(FlowDesc::bulk(0, 1, 0, 1_000_000));
            w.add_flow(FlowDesc::bulk(0, 1, 1, 500_000).starting_at(100_000));
            let res = w.run_until_nanos(100_000_000);
            res.fct
                .records()
                .iter()
                .map(|r| (r.flow_id, r.end_nanos))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ecn_keeps_buffer_near_threshold() {
        // A long flow with per-queue K=16 marking: buffer stays bounded
        // (far below what slow start would otherwise fill).
        let mut w = star_world(2, MarkingConfig::PerQueueStandard { threshold_pkts: 16 });
        w.set_trace(TraceConfig::watch_port(0, 2, 10_000));
        w.add_flow(FlowDesc::bulk(0, 2, 0, 50_000_000));
        w.add_flow(FlowDesc::bulk(1, 2, 1, 50_000_000));
        let res = w.run_until_nanos(60_000_000);
        let trace = &res.port_traces[&(0, 2)];
        // After slow start (first ~2 ms), occupancy must hover near the
        // 16-packet threshold, never exploding.
        let peak = trace.port_occupancy_pkts.peak_after(5_000_000).unwrap();
        assert!(peak < 50.0, "post-slow-start peak {peak} pkts too high");
        assert!(res.marks > 0);
    }

    #[test]
    fn app_rate_limited_flow_throttles() {
        let mut w = two_host_world(MarkingConfig::None);
        w.set_trace(TraceConfig::watch_port(0, 1, 100_000));
        w.add_flow(FlowDesc::long_lived(0, 1, 0).with_app_rate_bps(2_000_000_000));
        let res = w.run_until_nanos(20_000_000);
        let trace = &res.port_traces[&(0, 1)];
        // Mean throughput ~2 Gbps (payload/wire overhead makes it a bit
        // lower on goodput, but wire bytes are what the trace counts).
        let bins = trace.queue_throughput[0].num_bins();
        let mean = trace.mean_queue_gbps(0, bins / 2, bins);
        assert!((mean - 2.0).abs() < 0.3, "mean {mean} Gbps");
        assert_eq!(res.fct.len(), 0, "long-lived flow never completes");
    }

    #[test]
    fn reverse_direction_flow_works() {
        let mut w = two_host_world(MarkingConfig::None);
        w.add_flow(FlowDesc::bulk(1, 0, 0, 100_000));
        let res = w.run_until_nanos(50_000_000);
        assert_eq!(res.fct.len(), 1);
    }

    #[test]
    fn dynamic_threshold_shields_mice_from_pool_hogging() {
        // Drop-tail (no ECN), mice in queue 1 sharing the buffer with two
        // elephants in queue 0. Static private port buffers let the
        // elephants fill the receiver port and the mice's packets get
        // tail-dropped; the shared pool's DT policy caps the elephant
        // queue against the remaining free pool and leaves room.
        let run = |dt_alpha: Option<f64>| {
            let mut w = World::new(TransportConfig::default());
            let cfg = SwitchConfig {
                scheduler: SchedulerConfig::Dwrr {
                    weights: vec![1, 1],
                },
                marking: MarkingConfig::None,
                buffer_bytes: 48 * 1500,
                buffer: dt_alpha.map_or(crate::buffer::BufferPolicy::Static, |alpha| {
                    crate::buffer::BufferPolicy::DynamicThreshold { alpha }
                }),
                ..SwitchConfig::default()
            };
            let host_cfg = HostConfig::default();
            for _ in 0..4 {
                w.add_host(host_cfg.clone());
            }
            let s = w.add_switch();
            for h in 0..4 {
                let p = w.wire_host(h, s, 10_000_000_000, 5_000, &cfg);
                w.set_route(s, h, vec![p]);
            }
            w.add_flow(FlowDesc::long_lived(0, 3, 0));
            w.add_flow(FlowDesc::long_lived(1, 3, 0));
            for i in 0..8u64 {
                w.add_flow(FlowDesc::bulk(2, 3, 1, 30_000).starting_at(3_000_000 + i * 3_000_000));
            }
            let res = w.run_until_nanos(60_000_000);
            let mice_timeouts: u64 = (2..10)
                .map(|f| res.sender_stats.get(&f).map(|s| s.timeouts).unwrap_or(0))
                .sum();
            let p99 = res
                .fct
                .stats(pmsb_metrics::fct::SizeClass::Small)
                .map(|s| s.p99)
                .unwrap_or(f64::INFINITY);
            (p99, mice_timeouts)
        };
        let (static_p99, static_rtos) = run(None);
        let (dt_p99, dt_rtos) = run(Some(1.0));
        assert!(static_rtos > 0, "static pool must RTO some mice");
        assert_eq!(dt_rtos, 0, "DT leaves room: no mice timeouts");
        assert!(
            dt_p99 * 10.0 < static_p99,
            "DT must shield the mice: static {static_p99} vs dt {dt_p99}"
        );
    }

    #[test]
    fn delayed_acks_complete_flows_end_to_end() {
        let mut w = two_host_world(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        w.transport.ack_every_packets = 2;
        w.add_flow(FlowDesc::bulk(0, 1, 0, 1_000_000));
        // An odd tail segment exercises the delack flush timer.
        w.add_flow(FlowDesc::bulk(0, 1, 1, 3 * 1460));
        let res = w.run_until_nanos(200_000_000);
        assert_eq!(res.fct.len(), 2, "both flows complete under coalesced ACKs");
        for st in res.sender_stats.values() {
            assert_eq!(st.timeouts, 0, "delack flush must prevent RTOs: {st:?}");
        }
    }

    #[test]
    fn newreno_transport_completes_flows_end_to_end() {
        // The same fabric with the second transport: flows complete and
        // congestion still draws marks.
        let mut w = star_world(
            2,
            MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            },
        );
        w.transport.kind = TransportKind::NewReno;
        w.add_flow(FlowDesc::bulk(0, 2, 0, 5_000_000));
        w.add_flow(FlowDesc::bulk(1, 2, 1, 5_000_000));
        let res = w.run_until_nanos(200_000_000);
        assert_eq!(res.fct.len(), 2, "both NewReno flows complete");
        assert!(res.marks > 0, "congestion must trigger ECN marks");
    }

    #[test]
    fn newreno_and_dctcp_runs_differ() {
        // The transport axis must actually change the dynamics: same
        // workload, different transport, different completion schedule.
        let run = |kind: TransportKind| {
            let mut w = star_world(2, MarkingConfig::PerPort { threshold_pkts: 16 });
            w.transport.kind = kind;
            w.add_flow(FlowDesc::bulk(0, 2, 0, 10_000_000));
            w.add_flow(FlowDesc::bulk(1, 2, 1, 10_000_000));
            let res = w.run_until_nanos(500_000_000);
            assert_eq!(res.fct.len(), 2, "{kind:?} flows complete");
            res.fct
                .records()
                .iter()
                .map(|r| r.end_nanos)
                .collect::<Vec<_>>()
        };
        assert_ne!(
            run(TransportKind::Dctcp),
            run(TransportKind::NewReno),
            "transports must produce different schedules"
        );
    }

    #[test]
    #[should_panic(expected = "flow to self")]
    fn rejects_self_flow() {
        let mut w = two_host_world(MarkingConfig::None);
        w.add_flow(FlowDesc::bulk(0, 0, 0, 1000));
    }
}
