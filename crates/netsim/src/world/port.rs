//! The embeddable packet-port view: one adapter exposing any
//! `MultiQueue`-backed port as a [`PortView`] for the marking schemes.
//!
//! Three packet runtimes share it: the full switch layer
//! ([`super::switch`]) and host NICs ([`super::host`]), the per-port
//! calibration micro-sims ([`crate::fluid`]), and the embeddable
//! packet region of the regional engine (DESIGN.md §13). The point of
//! the split is that what a marking scheme *sees* at a port is defined
//! once, whichever driver owns the queues.

use pmsb::PortView;
use pmsb_sched::{MultiQueue, SchedItem};

/// Adapter exposing a multi-queue port's state as a [`PortView`].
pub(crate) struct PacketPortView<'a, T: SchedItem> {
    pub(crate) mq: &'a MultiQueue<T>,
    pub(crate) link_rate_bps: u64,
    /// Pool occupancy the marking scheme should see; `None` = the port
    /// is its own pool (occupancy read live from the queues).
    pub(crate) pool_bytes: Option<u64>,
    pub(crate) sojourn_nanos: Option<u64>,
}

impl<T: SchedItem> PortView for PacketPortView<'_, T> {
    fn num_queues(&self) -> usize {
        self.mq.num_queues()
    }
    fn port_bytes(&self) -> u64 {
        self.mq.port_bytes()
    }
    fn queue_bytes(&self, q: usize) -> u64 {
        self.mq.queue_bytes(q)
    }
    fn pool_bytes(&self) -> u64 {
        self.pool_bytes.unwrap_or_else(|| self.mq.port_bytes())
    }
    fn link_rate_bps(&self) -> u64 {
        self.link_rate_bps
    }
    fn packet_sojourn_nanos(&self) -> Option<u64> {
        self.sojourn_nanos
    }
    fn round_time_nanos(&self) -> Option<u64> {
        self.mq.scheduler().round_time_nanos()
    }
}
