//! The switch layer: multi-queue ports, ECN marking at enqueue/dequeue,
//! ECMP forwarding, and trace sampling.

use pmsb::marking::MarkingScheme;
use pmsb::MarkPoint;
use pmsb_sched::MultiQueue;
use pmsb_simcore::{EventQueue, SimDuration, SimTime};

use crate::buffer::{Admit, SharedPool};
use crate::packet::{Packet, MTU_WIRE_BYTES};
use crate::routing::RouteTable;
use crate::trace::PortTrace;

use super::{Event, Fate, LinkAttach, NodeRef, World};

/// One output port: service queues, marking scheme, and the outgoing link.
pub(super) struct SwitchPort {
    pub(super) mq: MultiQueue<Packet>,
    pub(super) marker: Option<Box<dyn MarkingScheme>>,
    pub(super) mark_point: MarkPoint,
    pub(super) busy: bool,
    pub(super) link: LinkAttach,
    pub(super) trace: Option<PortTrace>,
}

/// A switch: its ports, the shared memory pool they carve their backlog
/// from (a pass-through under [`crate::buffer::BufferPolicy::Static`]),
/// and the routing table towards each host.
pub(super) struct Switch {
    pub(super) ports: Vec<SwitchPort>,
    pub(super) pool: SharedPool,
    pub(super) routes: RouteTable,
}

/// A switch port's marking-scheme view: the shared
/// [`PacketPortView`](super::port::PacketPortView) over real packets.
pub(super) type SwitchPortView<'a> = super::port::PacketPortView<'a, Packet>;

impl World {
    pub(super) fn try_transmit_switch(
        &mut self,
        switch: usize,
        port: usize,
        now: u64,
        queue: &mut EventQueue<Event>,
    ) {
        if let Some(rt) = self.faults.as_deref() {
            if !rt.switches[switch][port].up {
                return; // port's link is down: leave the queue parked
            }
        }
        let marks = &mut self.marks;
        let Switch { ports, pool, .. } = &mut self.switches[switch];
        let p = &mut ports[port];
        if p.busy {
            return;
        }
        let Some((q, mut pkt)) = p.mq.dequeue(now) else {
            return;
        };
        if pool.is_shared() {
            pool.on_dequeue(port, q, pkt.wire_bytes, now);
        }
        // Dequeue-point marking (PMSB/TCN early-notification experiments).
        if p.mark_point == MarkPoint::Dequeue && pkt.ect && !pkt.ce {
            if let Some(marker) = p.marker.as_mut() {
                let view = SwitchPortView {
                    mq: &p.mq,
                    link_rate_bps: p.link.rate_bps,
                    pool_bytes: pool.is_shared().then(|| pool.used_bytes()),
                    sojourn_nanos: Some(now.saturating_sub(pkt.enqueued_at_nanos)),
                };
                if marker.should_mark(&view, q).is_mark() {
                    pkt.ce = true;
                    *marks += 1;
                }
            }
        }
        if let Some(tr) = p.trace.as_mut() {
            tr.queue_throughput[q].add(now, pkt.wire_bytes);
        }
        p.busy = true;
        let link = p.link;
        let mut rate_bps = link.rate_bps;
        let mut fate = Fate::Clean;
        if let Some(rt) = self.faults.as_deref_mut() {
            let st = &mut rt.switches[switch][port];
            if let Some(r) = st.rate_bps {
                rate_bps = r;
            }
            fate = st.fate();
            if matches!(fate, Fate::Lost) {
                rt.report.injected_drops += 1;
            }
        }
        let ser = SimDuration::for_bytes(pkt.wire_bytes, rate_bps).as_nanos();
        queue.push(
            SimTime::from_nanos(now + ser),
            Event::TransmitDone {
                node: NodeRef::Switch(switch),
                port,
            },
        );
        match fate {
            // The wire time was spent but the packet never arrives.
            Fate::Lost => {}
            fate => {
                if matches!(fate, Fate::Corrupted) {
                    pkt.corrupted = true;
                }
                Self::push_deliver(
                    &mut self.shard,
                    queue,
                    now + ser + link.delay_nanos,
                    link.peer,
                    pkt,
                );
            }
        }
    }

    pub(super) fn deliver_to_switch(
        &mut self,
        switch: usize,
        mut pkt: Packet,
        now: u64,
        queue: &mut EventQueue<Event>,
    ) {
        let out_port = match self.faults.as_deref_mut() {
            None => self.switches[switch]
                .routes
                .port_for(pkt.dst_host, pkt.flow_id),
            // ECMP re-hashes deterministically over the live candidates;
            // with everything up this equals the unmasked choice.
            Some(rt) => {
                let up = &rt.switches[switch];
                match self.switches[switch]
                    .routes
                    .port_for_masked(pkt.dst_host, pkt.flow_id, |p| up[p].up)
                {
                    Some(p) => p,
                    None => {
                        rt.report.unroutable_drops += 1;
                        return; // every candidate towards dst is down
                    }
                }
            }
        };
        // Pool occupancy across all ports of this switch. With a shared
        // pool it is the pool's O(1) book-keeping; under `Static` it is
        // only summed for the per-pool scheme — every other scheme looks
        // at its own port.
        let pool_occ: u64 = {
            let sw = &self.switches[switch];
            if sw.pool.is_shared() {
                sw.pool.used_bytes()
            } else {
                match &sw.ports[out_port].marker {
                    Some(m) if m.reads_pool() => sw.ports.iter().map(|p| p.mq.port_bytes()).sum(),
                    _ => 0,
                }
            }
        };
        let marks = &mut self.marks;
        let Switch { ports, pool, .. } = &mut self.switches[switch];
        let p = &mut ports[out_port];
        let q = pkt.service % p.mq.num_queues();
        pkt.enqueued_at_nanos = now;
        // Enqueue-point marking: decide on the occupancy the packet meets.
        // Marking runs before admission (the ASIC marks what it accepts;
        // what it rejects never carries a signal anywhere).
        if p.mark_point == MarkPoint::Enqueue && pkt.ect && !pkt.ce {
            if let Some(marker) = p.marker.as_mut() {
                let view = SwitchPortView {
                    mq: &p.mq,
                    link_rate_bps: p.link.rate_bps,
                    pool_bytes: Some(pool_occ),
                    sojourn_nanos: None,
                };
                if marker.should_mark(&view, q).is_mark() {
                    pkt.ce = true;
                    *marks += 1;
                }
            }
        }
        if pool.is_shared() {
            // The pool owns admission: the per-port cap is lifted, so an
            // admitted packet's enqueue cannot fail except under a
            // fault-shrunk port cap — in which case the MultiQueue counts
            // the drop and the pool must not book the bytes.
            let wire = pkt.wire_bytes;
            if pool.try_admit(out_port, q, p.mq.queue_bytes(q), wire) == Admit::Ok
                && p.mq.enqueue(q, pkt, now).is_ok()
            {
                pool.commit(wire);
            }
        } else {
            let _ = p.mq.enqueue(q, pkt, now); // drop counted in the MultiQueue
        }
        self.try_transmit_switch(switch, out_port, now, queue);
    }

    pub(super) fn sample_traces(&mut self, now: u64) {
        for sw in &mut self.switches {
            for port in &mut sw.ports {
                if let Some(tr) = port.trace.as_mut() {
                    let mut total = 0.0;
                    for q in 0..port.mq.num_queues() {
                        let pkts = port.mq.queue_bytes(q) as f64 / MTU_WIRE_BYTES as f64;
                        tr.queue_occupancy_pkts[q].sample(now, pkts);
                        total += pkts;
                    }
                    tr.port_occupancy_pkts.sample(now, total);
                }
            }
        }
    }
}
