//! Plain data carried by the world: node/link references, flow
//! descriptors, the per-flow transport slab, streaming aggregates, and
//! the harvested run results.
//!
//! Splitting these out of the event-loop module keeps them reusable by
//! the embeddable packet region ([`crate::fluid`]) and the parallel
//! driver without pulling in the whole-world machinery.

use std::collections::HashMap;

use pmsb_metrics::fct::FctRecorder;
use pmsb_metrics::QuantileSketch;

use crate::trace::{FaultReport, PortTrace};
use crate::transport::{SenderStats, TransportReceiver, TransportSender};

/// A node address: hosts and switches live in separate index spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// Host by index.
    Host(usize),
    /// Switch by index.
    Switch(usize),
}

/// One end of a point-to-point link.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkAttach {
    pub(crate) peer: NodeRef,
    /// Port index on the peer that faces back at this end (0 when the
    /// peer is a host). Lets fault injection resolve one cable to both of
    /// its directed ends.
    pub(crate) peer_port: usize,
    pub(crate) rate_bps: u64,
    pub(crate) delay_nanos: u64,
}

/// A flow to inject at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDesc {
    /// Sending host index.
    pub src_host: usize,
    /// Receiving host index.
    pub dst_host: usize,
    /// Service class (mapped to `service % num_queues` at each port).
    pub service: usize,
    /// Bytes to transfer; `u64::MAX` = long-lived flow.
    pub size_bytes: u64,
    /// Application rate cap in bits/second (`None` = unlimited).
    pub app_rate_bps: Option<u64>,
    /// Absolute start time in nanoseconds.
    pub start_nanos: u64,
}

impl FlowDesc {
    /// A bulk transfer of `size_bytes` starting at t=0.
    pub fn bulk(src_host: usize, dst_host: usize, service: usize, size_bytes: u64) -> Self {
        FlowDesc {
            src_host,
            dst_host,
            service,
            size_bytes,
            app_rate_bps: None,
            start_nanos: 0,
        }
    }

    /// A long-lived (never-ending) flow starting at t=0.
    pub fn long_lived(src_host: usize, dst_host: usize, service: usize) -> Self {
        FlowDesc::bulk(src_host, dst_host, service, u64::MAX)
    }

    /// Caps the application's offered rate.
    pub fn with_app_rate_bps(mut self, rate: u64) -> Self {
        self.app_rate_bps = Some(rate);
        self
    }

    /// Sets the start time.
    pub fn starting_at(mut self, nanos: u64) -> Self {
        self.start_nanos = nanos;
        self
    }
}

/// Sentinel in `World::flow_slot`: the flow has no slab slot yet.
pub(crate) const SLOT_NONE: u32 = u32::MAX;
/// Sentinel in `World::flow_slot`: the flow's slot was reclaimed.
pub(crate) const SLOT_RETIRED: u32 = u32::MAX - 1;

/// One slab slot of per-flow transport state. In static mode every
/// registered flow holds its slot (slot index == flow id) for the whole
/// run; in streaming mode slots are allocated at flow arrival and
/// recycled through `World::free_slots` once both halves are done, so
/// resident memory is bounded by the *concurrent* flow population, not
/// the total flow count.
pub(crate) struct FlowSlot {
    pub(crate) sender: Option<TransportSender>,
    pub(crate) receiver: Option<TransportReceiver>,
    /// Fire time of the earliest outstanding [`Event::Rto`](super::Event)
    /// for this flow (`u64::MAX` when none). Senders re-arm the
    /// retransmission timer on every ACK; instead of scheduling one event
    /// per re-arm, at most one timer event stays in flight per flow and a
    /// stale fire re-arms at the sender's live deadline
    /// ([`Sender::rto_deadline`](crate::transport::Sender::rto_deadline)).
    pub(crate) rto_next_fire: u64,
    /// Destination host and service, kept here so streaming teardown can
    /// address the Fin without a getter on the transport.
    pub(crate) dst_host: u32,
    pub(crate) service: u16,
}

impl FlowSlot {
    pub(crate) fn empty() -> Self {
        FlowSlot {
            sender: None,
            receiver: None,
            rto_next_fire: u64::MAX,
            dst_host: 0,
            service: 0,
        }
    }
}

/// Where a flow id currently points in the slab.
pub(crate) enum SlotRef {
    /// Index into `World::slots`.
    Live(usize),
    /// Both halves finished and the slot was recycled.
    Retired,
    /// Never seen (streaming: not yet arrived here).
    Absent,
}

/// Runtime carried only by a world in streaming mode: the lazy flow
/// source plus the bounded-memory result aggregates that replace the
/// per-flow maps of a static run.
pub(crate) struct StreamRuntime {
    /// Flows in nondecreasing `start_nanos` order, pulled one at a time.
    pub(crate) source: Box<dyn Iterator<Item = FlowDesc> + Send>,
    /// The flow pulled from the source whose arrival event is in flight.
    pub(crate) next_desc: Option<FlowDesc>,
    /// Next global flow id; every LP of a sharded run replays the same
    /// arrival chain, so ids agree without coordination.
    pub(crate) next_flow_id: u64,
    /// Also record every completed flow in the exhaustive [`FctRecorder`]
    /// (for differential sketch-vs-exact validation on small runs).
    pub(crate) record_exact: bool,
    pub(crate) injected: u64,
    pub(crate) completed: u64,
    pub(crate) bytes_completed: u64,
    pub(crate) agg: SenderStats,
    pub(crate) sketch: QuantileSketch,
}

/// Bounded-size results of a streaming run (see `World::set_stream`).
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Mergeable FCT quantile sketch over every completed flow.
    pub sketch: QuantileSketch,
    /// Flows whose sender was instantiated (started) during the run.
    pub injected: u64,
    /// Flows fully acknowledged before the end of the run.
    pub completed: u64,
    /// Payload bytes of completed flows.
    pub bytes_completed: u64,
    /// Sender counters summed over all flows (completed and live).
    pub agg_sender: SenderStats,
    /// Peak live slab population — the memory high-water mark in flow
    /// slots. On a sharded run this is the sum of per-LP peaks (an upper
    /// bound; exact for sequential runs).
    pub slab_high_water: u64,
}

/// Folds one sender's counters into an aggregate.
pub(crate) fn add_sender_stats(agg: &mut SenderStats, s: &SenderStats) {
    agg.marks_seen += s.marks_seen;
    agg.marks_ignored += s.marks_ignored;
    agg.retransmissions += s.retransmissions;
    agg.timeouts += s.timeouts;
    agg.loss_episodes += s.loss_episodes;
    agg.recovery_nanos += s.recovery_nanos;
}

/// Results harvested from a finished run.
#[derive(Debug)]
pub struct RunResults {
    /// Completed flows.
    pub fct: FctRecorder,
    /// Per-flow RTT samples (only when RTT tracing was on).
    pub rtt_nanos_by_flow: HashMap<u64, Vec<u64>>,
    /// Traces of watched ports, keyed by `(switch, port)`.
    pub port_traces: HashMap<(usize, usize), PortTrace>,
    /// Per-flow sender counters.
    pub sender_stats: HashMap<u64, SenderStats>,
    /// Packets tail-dropped anywhere in the network.
    pub drops: u64,
    /// CE marks applied by switches.
    pub marks: u64,
    /// Simulated time at the end of the run, nanoseconds.
    pub end_nanos: u64,
    /// Total events scheduled on the FEL over the run (simulator work,
    /// the denominator for events/sec benchmarks).
    pub events: u64,
    /// Packets delivered to a node (host or switch hop) over the run.
    pub deliveries: u64,
    /// What fault injection did; `None` when no schedule was attached
    /// (`drops` stays congestive buffer drops only — injected losses are
    /// counted here).
    pub faults: Option<FaultReport>,
    /// Streaming-mode aggregates; `None` on a static run. When present,
    /// the per-flow maps above stay empty (that is the point: bounded
    /// memory) and `fct` holds records only if exact recording was on.
    pub stream: Option<StreamStats>,
    /// Shared-buffer pool contention counters, folded over every switch
    /// running a shared policy; `None` under the default
    /// [`crate::buffer::BufferPolicy::Static`] (no pools in play). Pool
    /// rejections are already included in `drops`.
    pub shared_buffer: Option<pmsb_metrics::contention::ContentionSummary>,
}
