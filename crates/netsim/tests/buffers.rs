//! World-level tests for the shared-buffer switch subsystem
//! (DESIGN.md §12): tiny-buffer contention sanity per marking scheme,
//! the default-vs-explicit `static` identity, sharded determinism of
//! the pool accounting, and the fluid-engine rejection of shared
//! policies.

use pmsb_netsim::experiment::{EngineKind, Experiment, FlowDesc, MarkingConfig, RunResults};
use pmsb_netsim::packet::MTU_WIRE_BYTES;
use pmsb_netsim::BufferPolicy;

/// Canonical text form of everything a run observes, including the
/// shared-pool contention counters; byte equality is the gate.
fn fingerprint(res: &RunResults) -> String {
    let mut out = String::new();
    for r in res.fct.records() {
        out.push_str(&format!(
            "fct {} {} {} {}\n",
            r.flow_id, r.bytes, r.start_nanos, r.end_nanos
        ));
    }
    out.push_str(&format!(
        "marks {} drops {} deliveries {} events {} end {}\n",
        res.marks, res.drops, res.deliveries, res.events, res.end_nanos
    ));
    let mut stats: Vec<_> = res.sender_stats.iter().collect();
    stats.sort_by_key(|(id, _)| **id);
    for (id, s) in stats {
        out.push_str(&format!("sender {id} {s:?}\n"));
    }
    out.push_str(&format!("pool {:?}\n", res.shared_buffer));
    out
}

/// A 7-to-1 incast on the 2×2 leaf–spine: every host but the
/// aggregator ships 64 KB at t=1 ms, with a second wave 1 ms later.
fn incast(marking: MarkingConfig) -> Experiment {
    let mut e = Experiment::leaf_spine(2, 2, 4).marking(marking);
    for epoch in 0..2u64 {
        for src in 1..8usize {
            e.add_flow(
                FlowDesc::bulk(src, 0, src % 8, 64_000).starting_at(1_000_000 + epoch * 1_000_000),
            );
        }
    }
    e
}

fn marking_lineup() -> Vec<MarkingConfig> {
    vec![
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        MarkingConfig::PerQueueStandard { threshold_pkts: 65 },
        MarkingConfig::PerPort { threshold_pkts: 12 },
        MarkingConfig::MqEcn { standard_pkts: 16 },
    ]
}

/// Under a 4-MTU-per-port pool every scheme must shed load through the
/// shared pool (nonzero `shared_drops`), and the incast must still
/// complete — pool pressure degrades, it does not deadlock.
#[test]
fn tiny_buffers_shed_load_under_every_scheme() {
    for marking in marking_lineup() {
        for policy in [
            BufferPolicy::DynamicThreshold { alpha: 1.0 },
            BufferPolicy::DelayDriven {
                target_delay_nanos: 100_000,
            },
        ] {
            let res = incast(marking.clone())
                .buffer(policy)
                .buffer_bytes(4 * MTU_WIRE_BYTES)
                .run_for_millis(500);
            let sb = res.shared_buffer.expect("shared policy reports a summary");
            assert!(
                sb.shared_drops > 0,
                "{marking:?}/{policy:?}: 7-to-1 incast must overrun a 4-MTU pool"
            );
            assert!(sb.pool_high_water_bytes > 0);
            assert!(
                sb.pool_high_water_bytes <= sb.pool_total_bytes,
                "{marking:?}/{policy:?}: high water {} above pool {}",
                sb.pool_high_water_bytes,
                sb.pool_total_bytes
            );
            assert_eq!(
                res.fct.len(),
                14,
                "{marking:?}/{policy:?}: all incast flows finish despite drops"
            );
            // No marking assertion: a tiny pool can sit below a deep
            // per-queue threshold forever (e.g. 65 pkts never fits in a
            // 4-MTU-per-port pool) — which marking survives this regime
            // is exactly what the `buffers` campaign measures. Pool
            // rejections must be visible in the run's total drops.
            assert!(
                sb.shared_drops <= res.drops,
                "{marking:?}/{policy:?}: pool drops {} missing from total {}",
                sb.shared_drops,
                res.drops
            );
        }
    }
}

/// A normally-provisioned pool under `static` is drop-free for this
/// incast and reports no pool summary at all — the golden-record shape.
#[test]
fn default_and_explicit_static_are_identical() {
    let marking = MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    };
    let default_run = incast(marking.clone()).run_for_millis(500);
    let explicit = incast(marking)
        .buffer(BufferPolicy::Static)
        .run_for_millis(500);
    assert!(default_run.shared_buffer.is_none(), "static has no pool");
    assert_eq!(fingerprint(&default_run), fingerprint(&explicit));
}

/// Pool accounting is LP-local, so sharded runs must reproduce the
/// sequential run byte-for-byte — counters included — under both
/// shared policies.
#[test]
fn shared_policies_match_sequential_across_threads() {
    for policy in [
        BufferPolicy::DynamicThreshold { alpha: 1.0 },
        BufferPolicy::DelayDriven {
            target_delay_nanos: 100_000,
        },
    ] {
        let mk = || {
            incast(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .buffer(policy)
            .buffer_bytes(8 * MTU_WIRE_BYTES)
        };
        let sequential = fingerprint(&mk().run_for_millis(500));
        for threads in [2, 4] {
            let parallel = fingerprint(&mk().sim_threads(threads).run_for_millis(500));
            assert_eq!(
                sequential, parallel,
                "{policy:?}: sim_threads({threads}) diverged from sequential"
            );
        }
    }
}

/// The fluid engine models neither packets nor pools; asking it for a
/// shared policy must fail fast with the accepted variants named.
#[test]
#[should_panic(expected = "static|dt:ALPHA|delay[:MICROS]")]
fn fluid_engine_rejects_shared_buffer_policies() {
    let mut e = Experiment::dumbbell(2, 2)
        .engine(EngineKind::Fluid)
        .buffer(BufferPolicy::DynamicThreshold { alpha: 1.0 });
    e.add_flow(FlowDesc::long_lived(0, 2, 0));
    e.run_for_millis(5);
}
