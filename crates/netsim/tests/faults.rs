//! End-to-end fault-injection behaviour: determinism, zero-cost gating,
//! link dynamics, loss/corruption, ECMP rerouting, and recovery metrics.

use pmsb_netsim::experiment::{
    Experiment, FaultSchedule, FaultTarget, FlowDesc, MarkingConfig, RunResults,
};

fn dumbbell_two_flows() -> Experiment {
    let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
    e.add_flow(FlowDesc::bulk(1, 2, 1, 1_000_000).starting_at(200_000));
    e
}

/// Per-flow `(flow_id, end_nanos)` plus the global counters — the full
/// observable outcome of a run for equality checks.
fn fingerprint(res: &RunResults) -> (Vec<(u64, u64)>, u64, u64, u64, u64) {
    let mut fct: Vec<(u64, u64)> = res
        .fct
        .records()
        .iter()
        .map(|r| (r.flow_id, r.end_nanos))
        .collect();
    fct.sort_unstable();
    (fct, res.marks, res.drops, res.deliveries, res.events)
}

/// An attached-but-empty schedule must not perturb the run at all: the
/// injector arms no events and draws no randomness, so every observable
/// (FCTs, marks, drops, deliveries, even the FEL event count) matches
/// the no-schedule run exactly.
#[test]
fn empty_schedule_is_invisible() {
    let bare = dumbbell_two_flows().run_for_millis(100);
    let faulted = dumbbell_two_flows()
        .faults(FaultSchedule::new(7))
        .run_for_millis(100);
    assert_eq!(fingerprint(&bare), fingerprint(&faulted));
    assert!(bare.faults.is_none());
    let report = faulted.faults.expect("schedule attached => report present");
    assert_eq!(report.fault_drops(), 0);
    assert!(report.log.is_empty());
}

/// A link flap mid-transfer: the flow stalls (RTOs), recovers when the
/// link returns, and completes; the recovery metrics record the episode.
#[test]
fn link_flap_stalls_then_recovers() {
    let mut schedule = FaultSchedule::new(1);
    schedule.link_flap(FaultTarget::HostLink(0), 500_000, 5_000_000); // host 0 dark for 4.5 ms
    let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
    let res = e.faults(schedule).run_for_millis(200);
    assert_eq!(res.fct.len(), 1, "flow must complete after the flap");
    let st = &res.sender_stats[&0];
    assert!(st.timeouts > 0, "a 4.5 ms outage must RTO: {st:?}");
    assert!(
        st.loss_episodes >= 1,
        "the outage is a loss episode: {st:?}"
    );
    assert!(
        st.recovery_nanos > 1_000_000,
        "recovery spans the outage: {st:?}"
    );
    let report = res.faults.unwrap();
    assert_eq!(report.link_down_events, 1);
    assert_eq!(report.link_up_events, 1);
    assert_eq!(report.log.len(), 2, "both flap events logged");
    // The flap outlasts the flow's loss-free FCT (~1.7 ms): completion
    // must come after the link returned.
    assert!(res.fct.records()[0].end_nanos > 5_000_000);
}

/// Probabilistic loss: retransmissions appear, drops are attributed to
/// the injector (not the buffers), and the flow still completes.
#[test]
fn random_loss_retransmits_and_completes() {
    let mut schedule = FaultSchedule::new(2);
    schedule.loss(FaultTarget::HostLink(0), 0, 0.01); // 1% on host 0's link, both directions
    let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
    let res = e.faults(schedule).run_for_millis(500);
    assert_eq!(res.fct.len(), 1, "flow must survive 1% loss");
    let st = &res.sender_stats[&0];
    assert!(st.retransmissions > 0, "1% over ~1400 pkts: {st:?}");
    assert!(st.loss_episodes >= 1);
    assert!(st.recovery_nanos > 0);
    let report = res.faults.unwrap();
    assert!(report.injected_drops > 0);
    assert_eq!(report.corrupt_drops, 0);
    assert_eq!(res.drops, 0, "injected losses are not buffer drops");
}

/// Corruption consumes wire time and is discarded at the next hop's
/// checksum — counted separately from clean loss.
#[test]
fn corruption_is_dropped_at_next_hop() {
    let mut schedule = FaultSchedule::new(3);
    schedule.corrupt(FaultTarget::HostLink(0), 0, 0.01);
    let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
    let res = e.faults(schedule).run_for_millis(500);
    assert_eq!(res.fct.len(), 1);
    let report = res.faults.unwrap();
    assert!(report.corrupt_drops > 0);
    assert_eq!(report.injected_drops, 0);
    assert!(res.sender_stats[&0].retransmissions > 0);
}

/// Degrading a link's rate slows the flow down; restoring it mid-run
/// lets it finish. The FCT must exceed what the full-rate fabric gives.
#[test]
fn rate_degradation_slows_the_flow() {
    let baseline = {
        let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
        e.run_for_millis(100)
    };
    let mut schedule = FaultSchedule::new(4);
    schedule.rate_limit(FaultTarget::HostLink(0), 0, 1_000_000_000); // 10 Gbps -> 1 Gbps
    let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
    let degraded = e.faults(schedule).run_for_millis(100);
    assert_eq!(degraded.fct.len(), 1);
    let fast = baseline.fct.records()[0].fct_nanos();
    let slow = degraded.fct.records()[0].fct_nanos();
    assert!(
        slow > 5 * fast,
        "1 Gbps must be ~10x slower: {fast} ns vs {slow} ns"
    );
}

/// A leaf uplink flap in a leaf–spine fabric: ECMP re-hashes data around
/// the dead link at the leaf, ACKs arriving at the far spine blackhole
/// (no routing-protocol propagation — a local mask only), and everything
/// re-converges and completes once the link returns.
#[test]
fn uplink_flap_reroutes_and_reconverges() {
    let hosts_per_leaf = 2;
    let mut schedule = FaultSchedule::new(5);
    // Leaf 0's uplink to spine 0 (leaf port hosts_per_leaf + 0).
    schedule.link_flap(
        FaultTarget::SwitchLink {
            switch: 0,
            port: hosts_per_leaf,
        },
        1_000_000,
        8_000_000,
    );
    let mut e = Experiment::leaf_spine(2, 2, hosts_per_leaf);
    // Inter-rack flows from every leaf-0 host to every leaf-1 host.
    let mut id = 0;
    for src in 0..hosts_per_leaf {
        for dst in hosts_per_leaf..2 * hosts_per_leaf {
            e.add_flow(FlowDesc::bulk(src, dst, id % 8, 1_000_000));
            id += 1;
        }
    }
    let res = e.faults(schedule).run_for_millis(300);
    assert_eq!(
        res.fct.len(),
        hosts_per_leaf * hosts_per_leaf,
        "every flow completes after the flap"
    );
    let report = res.faults.unwrap();
    assert_eq!(report.link_down_events, 1);
    assert_eq!(report.link_up_events, 1);
}

/// Shrinking a switch's shared buffer mid-run causes tail drops a
/// full-size buffer would have absorbed.
#[test]
fn buffer_shrink_causes_drops() {
    let run = |shrink: bool| {
        let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::None);
        e.add_flow(FlowDesc::bulk(0, 2, 0, 1_000_000));
        e.add_flow(FlowDesc::bulk(1, 2, 1, 1_000_000));
        if shrink {
            let mut schedule = FaultSchedule::new(6);
            schedule.shrink_buffer(0, 0, 3 * 1500); // 3 packets
            e = e.faults(schedule);
        }
        e.run_for_millis(500)
    };
    let full = run(false);
    let tiny = run(true);
    assert_eq!(full.drops, 0, "ample buffer absorbs both flows");
    assert!(tiny.drops > 0, "3-packet buffer must tail-drop");
    assert_eq!(tiny.fct.len(), 2, "flows survive the tiny buffer");
}

/// The whole faulted run is deterministic: identical seeds and schedules
/// reproduce every observable, including the injector's own counters.
#[test]
fn faulted_runs_are_deterministic() {
    let run = || {
        let mut schedule = FaultSchedule::new(11);
        schedule.loss(FaultTarget::HostLink(0), 0, 0.02);
        schedule.link_flap(FaultTarget::HostLink(1), 2_000_000, 4_000_000);
        let mut e = dumbbell_two_flows();
        e = e.faults(schedule);
        e.run_for_millis(300)
    };
    let (a, b) = (run(), run());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults, b.faults);
    assert_eq!(
        a.sender_stats[&0].retransmissions,
        b.sender_stats[&0].retransmissions
    );
}

/// Different fault seeds change only the fault randomness — the loss
/// pattern moves, proving the injector draws from its own stream.
#[test]
fn fault_seed_steers_only_the_fault_stream() {
    let run = |seed: u64| {
        let mut schedule = FaultSchedule::new(seed);
        schedule.loss(FaultTarget::HostLink(0), 0, 0.02);
        let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        e.add_flow(FlowDesc::bulk(0, 2, 0, 2_000_000));
        e.faults(schedule).run_for_millis(500)
    };
    let (a, b) = (run(1), run(2));
    // Both complete; the realized loss pattern differs.
    assert_eq!(a.fct.len(), 1);
    assert_eq!(b.fct.len(), 1);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different fault seeds must realize different loss patterns"
    );
}
