//! Differential tests: the fluid/hybrid engines against the packet
//! engine on the same experiments.
//!
//! The fluid model trades per-packet fidelity for throughput, so these
//! are *tolerance* checks, not byte-compares: mean FCTs must land
//! within a stated band of the packet engine's (the fluid engine skips
//! slow-start and models marking as a steady-state curve, so it runs a
//! little optimistic on short flows), and the *ordering* of marking
//! rates across schemes — the relation the paper's comparisons rest
//! on — must be preserved. The steady-state standing-queue closed forms
//! get exact unit checks against the heavy-traffic limits.

use pmsb_netsim::experiment::{Experiment, FlowDesc};
use pmsb_netsim::{EngineKind, MarkingConfig, SchedulerConfig};

/// Mean FCT in nanoseconds over all completed flows.
fn mean_fct_nanos(e: Experiment, horizon_ms: u64, expect_flows: usize) -> (f64, u64) {
    let res = e.run_for_millis(horizon_ms);
    assert_eq!(
        res.fct.len(),
        expect_flows,
        "every flow must complete before the horizon"
    );
    let sum: u128 = res
        .fct
        .records()
        .iter()
        .map(|r| r.fct_nanos() as u128)
        .sum();
    (sum as f64 / expect_flows as f64, res.marks)
}

fn dumbbell_case(engine: EngineKind, marking: MarkingConfig) -> (f64, u64) {
    let mut e = Experiment::dumbbell(4, 4).marking(marking).engine(engine);
    for i in 0..4 {
        // 1 MB bulk flows: bandwidth-dominated, so the fluid model's
        // missing slow-start phase stays a second-order effect.
        e.add_flow(FlowDesc::bulk(i, 4, i, 1_000_000));
    }
    mean_fct_nanos(e, 100, 4)
}

fn leaf_spine_case(engine: EngineKind, marking: MarkingConfig) -> (f64, u64) {
    // 2 leaves x 2 spines x 4 hosts: cross-leaf flows share the leaf
    // uplinks and downlinks, exercising multi-hop paths and ECMP.
    let mut e = Experiment::leaf_spine(2, 2, 4)
        .marking(marking)
        .engine(engine);
    for i in 0..4 {
        e.add_flow(FlowDesc::bulk(i, 4 + i, i, 1_000_000));
    }
    mean_fct_nanos(e, 100, 4)
}

fn assert_within(fluid: f64, packet: f64, lo: f64, hi: f64, what: &str) {
    let ratio = fluid / packet;
    assert!(
        ratio >= lo && ratio <= hi,
        "{what}: fluid mean FCT {:.1} us vs packet {:.1} us (ratio {ratio:.2}, \
         tolerance [{lo}, {hi}])",
        fluid / 1e3,
        packet / 1e3,
    );
}

#[test]
fn dumbbell_fct_means_agree_within_tolerance() {
    let pmsb = MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    };
    let (packet, _) = dumbbell_case(EngineKind::Packet, pmsb.clone());
    let (fluid, _) = dumbbell_case(EngineKind::Fluid, pmsb.clone());
    let (hybrid, _) = dumbbell_case(EngineKind::Hybrid, pmsb);
    assert_within(fluid, packet, 0.5, 2.0, "dumbbell fluid");
    assert_within(hybrid, packet, 0.5, 2.0, "dumbbell hybrid");
}

#[test]
fn leaf_spine_fct_means_agree_within_tolerance() {
    let pmsb = MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    };
    let (packet, _) = leaf_spine_case(EngineKind::Packet, pmsb.clone());
    let (fluid, _) = leaf_spine_case(EngineKind::Fluid, pmsb.clone());
    let (hybrid, _) = leaf_spine_case(EngineKind::Hybrid, pmsb);
    assert_within(fluid, packet, 0.5, 2.0, "leaf-spine fluid");
    assert_within(hybrid, packet, 0.5, 2.0, "leaf-spine hybrid");
}

/// The relation the scheme sweeps rest on: within a marking family, a
/// lower threshold means a shorter standing queue, a smaller window,
/// and therefore a *higher* steady-state marking fraction — so the
/// aggressive threshold must out-mark the permissive one under both
/// engines, on both topologies. Long (10 MB) flows keep the packet
/// engine in its AIMD steady state, where this monotonicity holds; on
/// short transient-dominated runs the packet counts hinge on slow-start
/// overshoot, which the fluid model deliberately does not carry. The
/// fluid engine must also agree on "no marking scheme, no marks".
#[test]
fn marking_rate_ordering_is_preserved() {
    let aggressive = MarkingConfig::PerPort { threshold_pkts: 4 };
    let permissive = MarkingConfig::PerPort { threshold_pkts: 12 };
    let marks = |topo: &str, engine, marking| {
        let mut e = match topo {
            "dumbbell" => Experiment::dumbbell(4, 4),
            _ => Experiment::leaf_spine(2, 2, 4),
        }
        .marking(marking)
        .engine(engine);
        for i in 0..4 {
            let dst = if topo == "dumbbell" { 4 } else { 4 + i };
            e.add_flow(FlowDesc::bulk(i, dst, i, 10_000_000));
        }
        let res = e.run_for_millis(500);
        assert_eq!(res.fct.len(), 4, "{topo}: all flows complete");
        res.marks
    };
    for topo in ["dumbbell", "leaf-spine"] {
        let packet_lo = marks(topo, EngineKind::Packet, aggressive.clone());
        let packet_hi = marks(topo, EngineKind::Packet, permissive.clone());
        let fluid_lo = marks(topo, EngineKind::Fluid, aggressive.clone());
        let fluid_hi = marks(topo, EngineKind::Fluid, permissive.clone());
        assert!(
            packet_lo > packet_hi,
            "{topo} packet: K4 ({packet_lo}) must out-mark K12 ({packet_hi})"
        );
        assert!(
            fluid_lo > fluid_hi,
            "{topo} fluid: K4 ({fluid_lo}) must out-mark K12 ({fluid_hi})"
        );
    }
    let mut e = Experiment::dumbbell(2, 2)
        .marking(MarkingConfig::None)
        .engine(EngineKind::Fluid);
    e.add_flow(FlowDesc::bulk(0, 2, 0, 1_000_000));
    e.add_flow(FlowDesc::bulk(1, 2, 1, 1_000_000));
    assert_eq!(e.run_for_millis(100).marks, 0, "no scheme, no marks");
}

/// The fluid standing-queue closed forms against the heavy-traffic
/// limits for a saturated port serving two queues: per-queue marking
/// holds each of the `m` backlogged queues at its threshold `K`, so the
/// port converges to `m*K`; per-port marking caps the *sum* at `K`
/// regardless of how many queues share it. This is the saturated
/// two-queue ("2-port" in the MaxWeight sense: both service classes
/// backlogged) fixed point of the max-weight heavy-traffic analysis —
/// total backlog scales with the number of contending classes for
/// per-queue thresholds and is invariant for port-level ones.
#[test]
fn steady_state_queues_match_heavy_traffic_closed_forms() {
    use pmsb_netsim::fluid::steady_state_queue_bytes;
    let sched = SchedulerConfig::Dwrr {
        weights: vec![1; 8],
    };
    let rate = 10_000_000_000;
    let buf = 2 * 1024 * 1024;
    let k = 65u64 * 1500;
    let per_queue = MarkingConfig::PerQueueStandard { threshold_pkts: 65 };
    let one = steady_state_queue_bytes(&per_queue, &sched, rate, buf, &[0]);
    let two = steady_state_queue_bytes(&per_queue, &sched, rate, buf, &[0, 1]);
    assert_eq!(one, k, "one backlogged queue sits at its own threshold");
    // Two saturated queues: the port fixed point is 2K (the scan steps
    // in whole MTUs split across queues, so allow one MTU of rounding).
    assert!(
        two >= 2 * k - 2 * 1500 && two <= 2 * k + 2 * 1500,
        "two backlogged queues must sit at ~2K: got {two}, want ~{}",
        2 * k
    );
    let per_port = MarkingConfig::PerPort { threshold_pkts: 12 };
    let pp_one = steady_state_queue_bytes(&per_port, &sched, rate, buf, &[0]);
    let pp_two = steady_state_queue_bytes(&per_port, &sched, rate, buf, &[0, 1]);
    assert_eq!(pp_one, 12 * 1500, "port threshold is the port fixed point");
    assert_eq!(pp_two, pp_one, "invariant in the number of active classes");
}

/// `--sim-threads` must not change fluid/hybrid results: the engines
/// are single-threaded by design, so a sharded request falls through to
/// the same deterministic run (this is what CI's byte-compare rests on).
#[test]
fn hybrid_results_are_identical_across_sim_threads() {
    let run = |threads: usize| {
        let mut e = Experiment::dumbbell(4, 4)
            .marking(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .engine(EngineKind::Hybrid)
            .sim_threads(threads);
        for i in 0..4 {
            e.add_flow(FlowDesc::bulk(i, 4, i, 1_000_000));
        }
        let res = e.run_for_millis(100);
        (
            res.fct
                .records()
                .iter()
                .map(|r| (r.flow_id, r.end_nanos))
                .collect::<Vec<_>>(),
            res.marks,
        )
    };
    assert_eq!(run(1), run(4));
}
