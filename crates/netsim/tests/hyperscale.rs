//! Hyperscale subsystem tests: fat-tree structural invariants, ECMP
//! determinism, bounded-memory streaming runs, sketch-vs-exact
//! differential validation, and sharded-vs-sequential byte identity for
//! streaming workloads.

use pmsb_metrics::QuantileSketch;
use pmsb_netsim::config::TransportConfig;
use pmsb_netsim::experiment::{Experiment, MarkingConfig, RunResults};
use pmsb_netsim::topology;
use pmsb_netsim::world::NodeRef;
use pmsb_netsim::{HostConfig, SwitchConfig, World};
use pmsb_workload::PatternSpec;

fn build_fat_tree(k: usize) -> World {
    topology::fat_tree(
        k,
        10_000_000_000,
        1_000,
        &SwitchConfig::default(),
        &HostConfig::default(),
        TransportConfig::default(),
    )
}

/// Walks the fabric from `src`'s edge switch towards `dst` following the
/// ECMP choice for `flow_id`; returns the hop count, panicking on a loop.
fn hops_to(w: &World, src: usize, dst: usize, flow_id: u64) -> usize {
    let mut node = NodeRef::Switch(w.host_switch(src));
    let mut hops = 0;
    loop {
        hops += 1;
        assert!(hops <= 8, "routing loop from host {src} to host {dst}");
        let NodeRef::Switch(s) = node else {
            unreachable!("walk stays on switches until arrival")
        };
        let port = w.route_port_for(s, dst, flow_id);
        match w.port_peer(s, port) {
            NodeRef::Host(h) => {
                assert_eq!(h, dst, "route from {src} delivered to wrong host");
                return hops;
            }
            sw => node = sw,
        }
    }
}

/// Counts distinct switch-level paths from `src`'s edge switch to `dst`
/// by exhaustive DFS over every route candidate.
fn count_paths(w: &World, src: usize, dst: usize) -> usize {
    fn dfs(w: &World, node: NodeRef, dst: usize, depth: usize) -> usize {
        assert!(depth <= 8, "path explosion towards host {dst}");
        match node {
            NodeRef::Host(h) => usize::from(h == dst),
            NodeRef::Switch(s) => w
                .route_candidates(s, dst)
                .iter()
                .map(|&p| dfs(w, w.port_peer(s, p), dst, depth + 1))
                .sum(),
        }
    }
    dfs(w, NodeRef::Switch(w.host_switch(src)), dst, 0)
}

#[test]
fn fat_tree_structural_invariants() {
    for k in [4usize, 6, 24] {
        let w = build_fat_tree(k);
        assert_eq!(w.num_hosts(), k * k * k / 4, "k={k} host count");
        assert_eq!(w.num_switches(), 5 * k * k / 4, "k={k} switch count");
    }
}

/// The last hyperscale ROADMAP remnant: `fat_tree(24)` — 3456 hosts,
/// 720 switches — must build and stream a workload end to end, with
/// flows actually crossing pods and the slab staying bounded.
#[test]
fn fat_tree_k24_streams_a_quick_smoke() {
    let total = 500u64;
    let exp = Experiment::fat_tree(24)
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .stream(PatternSpec::shuffle(), 9, total);
    let res = exp.run_until_nanos(50_000_000);
    let stream = res.stream.as_ref().expect("streaming run");
    assert_eq!(stream.injected, total, "all flows must be injected");
    assert!(
        stream.completed >= total * 9 / 10,
        "shuffle must drain on k=24: {} of {total} completed",
        stream.completed
    );
    assert!(res.deliveries > 0);
    assert!(
        stream.slab_high_water <= total,
        "slab must stay bounded on the big fabric"
    );
}

#[test]
fn fat_tree_all_pairs_reachable() {
    let k = 4;
    let w = build_fat_tree(k);
    let n = w.num_hosts();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            for flow_id in 0..4u64 {
                let hops = hops_to(&w, src, dst, flow_id);
                // Same edge: 1 switch. Same pod: 3. Inter-pod: 5.
                assert!(
                    hops == 1 || hops == 3 || hops == 5,
                    "host {src} -> {dst}: unexpected hop count {hops}"
                );
            }
        }
    }
}

#[test]
fn fat_tree_equal_cost_core_paths() {
    for k in [4usize, 6] {
        let w = build_fat_tree(k);
        let half = k / 2;
        let hosts_per_pod = half * half;
        // Inter-pod: (k/2)^2 equal-cost paths through the core.
        assert_eq!(
            count_paths(&w, 0, hosts_per_pod),
            half * half,
            "k={k} inter-pod path count"
        );
        // Same pod, different edge: one path per aggregation switch.
        assert_eq!(count_paths(&w, 0, half), half, "k={k} intra-pod path count");
        // Same edge switch: the single local hop.
        assert_eq!(count_paths(&w, 0, 1), 1, "k={k} same-edge path count");
    }
}

#[test]
fn ecmp_is_deterministic_and_diverse() {
    // Two independently built fabrics must agree on every path choice
    // (routing is keyed by flow id alone, never by RNG or build order),
    // and the choices must actually spread over the equal-cost paths.
    let a = build_fat_tree(4);
    let b = build_fat_tree(4);
    let edge = a.host_switch(0);
    let dst = a.num_hosts() - 1; // other pod: 4 equal-cost paths
    let mut first_hops = std::collections::BTreeSet::new();
    for flow_id in 0..64u64 {
        let pa = a.route_port_for(edge, dst, flow_id);
        let pb = b.route_port_for(edge, dst, flow_id);
        assert_eq!(pa, pb, "ECMP choice differs between identical builds");
        first_hops.insert(pa);
    }
    assert!(
        first_hops.len() > 1,
        "64 flows all hashed onto one uplink: no path diversity"
    );
}

/// The exact nearest-rank order statistic the sketch approximates.
fn exact_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

#[test]
fn sketch_matches_exact_percentiles_on_leaf_spine() {
    // The paper's 48-host leaf–spine under a streamed hot-service load,
    // recording both the sketch and the exhaustive recorder: every
    // reported quantile must sit within the sketch's documented relative
    // error of the true order statistic at the same (nearest) rank.
    let exp = Experiment::paper_leaf_spine()
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .stream(PatternSpec::hotservice(1.1), 7, 2_000)
        .stream_record_exact();
    let res = exp.run_for_millis(200);
    let stream = res.stream.as_ref().expect("streaming run");
    assert_eq!(
        stream.completed,
        res.fct.len() as u64,
        "sketch and exact recorder must see the same completions"
    );
    assert!(stream.completed > 1_000, "workload too idle to validate");
    let mut exact: Vec<u64> = res.fct.records().iter().map(|r| r.fct_nanos()).collect();
    exact.sort_unstable();
    for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99] {
        let truth = exact_rank(&exact, q) as f64;
        let approx = stream.sketch.quantile(q).expect("non-empty sketch") as f64;
        let rel = (approx - truth).abs() / truth;
        assert!(
            rel <= QuantileSketch::RELATIVE_ERROR,
            "q={q}: sketch {approx} vs exact {truth} (rel {rel})"
        );
    }
    assert_eq!(stream.sketch.count(), stream.completed);
}

#[test]
fn streaming_slab_is_bounded_by_concurrency() {
    // 5 000 incast flows through a k=4 fat-tree: total flow count is two
    // orders of magnitude above the synchronized fan-in, so a bounded
    // high-water mark proves slots are recycled, not accumulated.
    let total = 5_000u64;
    let exp = Experiment::fat_tree(4)
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .stream(PatternSpec::incast(8), 3, total);
    let res = exp.run_until_nanos(400_000_000);
    let stream = res.stream.as_ref().expect("streaming run");
    assert_eq!(stream.injected, total, "all flows must be injected");
    assert!(
        stream.completed >= total * 99 / 100,
        "incast epochs must drain: {} of {total} completed",
        stream.completed
    );
    assert!(
        stream.slab_high_water < total / 10,
        "slab high-water {} not bounded by concurrency (total {total})",
        stream.slab_high_water
    );
    assert!(stream.bytes_completed >= stream.completed * 20_000);
}

/// Everything observable from a streaming run, in canonical text form.
fn stream_fingerprint(res: &RunResults) -> String {
    let mut out = String::new();
    for r in res.fct.records() {
        out.push_str(&format!(
            "fct {} {} {} {}\n",
            r.flow_id, r.bytes, r.start_nanos, r.end_nanos
        ));
    }
    let s = res.stream.as_ref().expect("streaming run");
    out.push_str(&format!(
        "injected {} completed {} bytes {} agg {:?}\n",
        s.injected, s.completed, s.bytes_completed, s.agg_sender
    ));
    for q in [0.5, 0.9, 0.99] {
        out.push_str(&format!("q{q} {:?}\n", s.sketch.quantile(q)));
    }
    out.push_str(&format!(
        "marks {} drops {} deliveries {} events {} end {}\n",
        res.marks, res.drops, res.deliveries, res.events, res.end_nanos
    ));
    out
}

#[test]
fn streaming_sharded_matches_sequential() {
    // The tentpole determinism gate: a streamed mixed workload over the
    // fat-tree must produce byte-identical records, aggregates, and
    // event counts for any thread count — slab teardown included (the
    // Fin path rides the same deterministic delivery machinery).
    let run = |threads: usize| {
        let exp = Experiment::fat_tree(4)
            .marking(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .stream(
                PatternSpec::Mix(vec![PatternSpec::incast(6), PatternSpec::shuffle()]),
                11,
                600,
            )
            .stream_record_exact()
            .sim_threads(threads);
        exp.run_until_nanos(80_000_000)
    };
    let seq = stream_fingerprint(&run(1));
    for threads in [2, 4] {
        let par = stream_fingerprint(&run(threads));
        assert_eq!(seq, par, "streaming run diverged at {threads} threads");
    }
    let sketch_a = run(1).stream.expect("stream").sketch;
    let sketch_b = run(4).stream.expect("stream").sketch;
    assert_eq!(sketch_a, sketch_b, "merged sketch must be bit-identical");
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn stream_rejects_static_flows() {
    let mut exp = Experiment::fat_tree(4);
    exp.add_flow(pmsb_netsim::FlowDesc::bulk(0, 1, 0, 1_000));
    let _ = exp
        .stream(PatternSpec::shuffle(), 1, 10)
        .run_until_nanos(1_000_000);
}
