//! Simulator-level invariants that must hold for any workload.

use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};
use pmsb_simcore::rng::SimRng;

/// Physics lower bound on a flow's completion time: payload at line rate
/// plus one unloaded RTT (propagation + serialization of the first
/// packet and last ACK are folded in conservatively as just the
/// propagation RTT).
fn fct_lower_bound_nanos(size_bytes: u64, rate_bps: u64, rtt_nanos: u64) -> u64 {
    let wire = size_bytes + size_bytes.div_ceil(1460) * 40;
    (wire as u128 * 8 * 1_000_000_000 / rate_bps as u128) as u64 + rtt_nanos
}

#[test]
fn fct_never_beats_physics() {
    let mut e = Experiment::dumbbell(2, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    for (i, size) in [1_000u64, 50_000, 500_000, 5_000_000].iter().enumerate() {
        e.add_flow(FlowDesc::bulk(i % 2, 2, i % 2, *size));
    }
    let res = e.run_for_millis(100);
    assert_eq!(res.fct.len(), 4);
    for r in res.fct.records() {
        let bound = fct_lower_bound_nanos(r.bytes, 10_000_000_000, 20_000);
        assert!(
            r.fct_nanos() >= bound,
            "flow {} of {} B finished in {} ns, below the physical bound {} ns",
            r.flow_id,
            r.bytes,
            r.fct_nanos(),
            bound
        );
    }
}

#[test]
fn lossless_runs_have_no_retransmissions() {
    // Ample buffers and ECN: nothing should ever be retransmitted.
    let mut e = Experiment::dumbbell(4, 2).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    for s in 0..4 {
        e.add_flow(FlowDesc::bulk(s, 4, s % 2, 2_000_000));
    }
    let res = e.run_for_millis(200);
    assert_eq!(res.drops, 0);
    for (flow, st) in &res.sender_stats {
        assert_eq!(
            st.retransmissions, 0,
            "flow {flow} retransmitted without loss: {st:?}"
        );
        assert_eq!(st.timeouts, 0, "flow {flow} timed out without loss");
    }
}

#[test]
fn aggregate_wire_throughput_never_exceeds_link_rate() {
    let mut e = Experiment::dumbbell(6, 2)
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .watch_bottleneck(100_000);
    for s in 0..6 {
        e.add_flow(FlowDesc::long_lived(s, 6, s % 2));
    }
    let res = e.run_for_millis(30);
    let trace = &res.port_traces[&(0, 6)];
    // One packet can be credited entirely to the bin its dequeue lands
    // in, so a bin may exceed line rate by up to one MTU per bin width.
    let slack = 1500.0 * 8.0 / 100e-6 / 1e9; // 0.12 Gbps at 100 us bins
    for q in 0..2 {
        for g in trace.queue_throughput[q].gbps() {
            assert!(g <= 10.0 + slack, "queue {q} bin exceeded line rate: {g}");
        }
    }
    let totals: Vec<f64> = {
        let a = trace.queue_throughput[0].gbps();
        let b = trace.queue_throughput[1].gbps();
        (0..a.len().max(b.len()))
            .map(|i| a.get(i).copied().unwrap_or(0.0) + b.get(i).copied().unwrap_or(0.0))
            .collect()
    };
    for t in totals {
        assert!(t <= 10.0 + slack, "port bin exceeded line rate: {t}");
    }
}

/// Any random small flow set on a dumbbell completes, with no drops
/// under PMSB's shallow marking, and respects the physics bound.
/// Twelve seeded-random flow sets.
#[test]
fn random_flow_sets_complete() {
    let mut rng = SimRng::seed_from(0x1f);
    for _ in 0..12 {
        let n = 1 + rng.below(7);
        let mut e = Experiment::dumbbell(4, 2).marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        for i in 0..n {
            let size = 1_000 + rng.below(299_000) as u64;
            let start = rng.below(5_000_000) as u64;
            e.add_flow(FlowDesc::bulk(i % 4, 4, i % 2, size).starting_at(start));
        }
        let res = e.run_for_millis(200);
        assert_eq!(res.fct.len(), n, "all flows must complete");
        for r in res.fct.records() {
            let bound = fct_lower_bound_nanos(r.bytes, 10_000_000_000, 20_000);
            assert!(r.fct_nanos() >= bound);
        }
    }
}
