//! Differential tests for the sharded conservative runner (DESIGN.md §8):
//! `sim_threads(n)` must reproduce the sequential run byte-for-byte —
//! every record, counter, trace, and fault interaction — for any `n`,
//! under either partition strategy, across all marking schemes and with
//! fault schedules attached.

use pmsb_netsim::experiment::{
    Experiment, FaultSchedule, FlowDesc, MarkingConfig, PartitionStrategy, RunResults, TraceConfig,
};
use pmsb_workload::{PatternSpec, SizeDistSpec};

const PARTITIONS: [PartitionStrategy; 2] =
    [PartitionStrategy::Contiguous, PartitionStrategy::Traffic];

/// Canonical text form of everything a run observes; byte equality here
/// is the parallel-vs-sequential gate.
fn fingerprint(res: &RunResults) -> String {
    let mut out = String::new();
    for r in res.fct.records() {
        out.push_str(&format!(
            "fct {} {} {} {}\n",
            r.flow_id, r.bytes, r.start_nanos, r.end_nanos
        ));
    }
    out.push_str(&format!(
        "marks {} drops {} deliveries {} events {} end {}\n",
        res.marks, res.drops, res.deliveries, res.events, res.end_nanos
    ));
    let mut stats: Vec<_> = res.sender_stats.iter().collect();
    stats.sort_by_key(|(id, _)| **id);
    for (id, s) in stats {
        out.push_str(&format!("sender {id} {s:?}\n"));
    }
    let mut rtt: Vec<_> = res.rtt_nanos_by_flow.iter().collect();
    rtt.sort_by_key(|(id, _)| **id);
    for (id, samples) in rtt {
        out.push_str(&format!("rtt {id} {samples:?}\n"));
    }
    let mut traces: Vec<_> = res.port_traces.iter().collect();
    traces.sort_by_key(|(k, _)| **k);
    for (k, t) in traces {
        out.push_str(&format!("trace {k:?} {t:?}\n"));
    }
    if let Some(f) = &res.faults {
        out.push_str(&format!("faults {f:?}\n"));
    }
    if let Some(s) = &res.stream {
        // Everything except `slab_high_water`, which is documented as a
        // sum of per-LP peaks (an upper bound, not a shared observable).
        out.push_str(&format!(
            "stream {} {} {} {:?} {:?}\n",
            s.injected, s.completed, s.bytes_completed, s.agg_sender, s.sketch
        ));
    }
    out
}

/// A 2×2 leaf–spine (4 hosts per leaf) with deterministic cross- and
/// intra-leaf flows exercising ECMP, congestion, and queue diversity.
fn small_fabric(marking: MarkingConfig) -> Experiment {
    let mut e = Experiment::leaf_spine(2, 2, 4).marking(marking);
    // Cross-leaf incast onto host 7 plus reverse and intra-leaf traffic.
    e.add_flow(FlowDesc::bulk(0, 7, 0, 400_000));
    e.add_flow(FlowDesc::bulk(1, 7, 1, 300_000).starting_at(50_000));
    e.add_flow(FlowDesc::bulk(2, 7, 2, 200_000).starting_at(100_000));
    e.add_flow(FlowDesc::bulk(3, 6, 3, 250_000).starting_at(150_000));
    e.add_flow(FlowDesc::bulk(4, 1, 4, 350_000).starting_at(200_000));
    e.add_flow(FlowDesc::bulk(5, 0, 5, 150_000).starting_at(250_000));
    e.add_flow(FlowDesc::bulk(6, 2, 6, 100_000).starting_at(300_000));
    e.add_flow(FlowDesc::bulk(0, 4, 7, 50_000).starting_at(400_000));
    e.add_flow(FlowDesc::bulk(1, 2, 0, 80_000).starting_at(500_000)); // intra-leaf
    e.add_flow(FlowDesc::bulk(7, 3, 1, 120_000).starting_at(600_000));
    e
}

fn assert_threads_match(mk: impl Fn() -> Experiment, millis: u64) {
    let sequential = fingerprint(&mk().run_for_millis(millis));
    for partition in PARTITIONS {
        for threads in [2, 4] {
            let parallel = fingerprint(
                &mk()
                    .sim_threads(threads)
                    .partition(partition)
                    .run_for_millis(millis),
            );
            if sequential != parallel {
                for (a, b) in sequential.lines().zip(parallel.lines()) {
                    if a != b {
                        panic!(
                            "sim_threads({threads}) with {partition:?} diverged:\nseq: {a}\npar: {b}"
                        );
                    }
                }
                panic!(
                    "sim_threads({threads}) with {partition:?} diverged: line counts {} vs {}",
                    sequential.lines().count(),
                    parallel.lines().count()
                );
            }
        }
    }
}

#[test]
fn all_marking_schemes_match_sequential() {
    let schemes = [
        MarkingConfig::None,
        MarkingConfig::PerQueueStandard { threshold_pkts: 16 },
        MarkingConfig::PerQueueFractional { total_pkts: 16 },
        MarkingConfig::PerPort { threshold_pkts: 16 },
        MarkingConfig::PerPool { threshold_pkts: 24 },
        MarkingConfig::MqEcn { standard_pkts: 16 },
        MarkingConfig::Tcn {
            threshold_nanos: 39_000,
        },
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        MarkingConfig::Red {
            min_pkts: 5,
            max_pkts: 20,
            max_p: 0.8,
        },
    ];
    for marking in schemes {
        assert_threads_match(|| small_fabric(marking.clone()), 15);
    }
}

#[test]
fn traces_and_rtt_match_sequential() {
    assert_threads_match(
        || {
            let mut t = TraceConfig::watch_port(0, 4, 50_000); // a leaf uplink
            t.watch_ports.push((2, 0)); // and a spine downlink
            small_fabric(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .trace(t)
            .record_rtt()
        },
        15,
    );
}

/// The committed example schedule (an uplink flap plus steady random
/// loss on a second uplink) on the paper fabric: fault state, ECMP
/// rerouting, loss randomness, and recovery must all shard cleanly.
#[test]
fn uplink_flap_schedule_matches_sequential() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/uplink_flap.faults"
    ))
    .expect("committed example schedule");
    let schedule = FaultSchedule::parse(&text).expect("parses");
    let mk = move || {
        let mut e = Experiment::paper_leaf_spine()
            .marking(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .faults(schedule.clone());
        // Long flows through leaf 0's uplinks spanning the 5–15 ms flap,
        // plus background cross-leaf traffic.
        for i in 0..12u64 {
            let src = (i % 12) as usize; // leaf 0 hosts
            let dst = 12 + ((i * 7) % 36) as usize; // other leaves
            e.add_flow(
                FlowDesc::bulk(src, dst, (i % 8) as usize, 600_000 + i * 40_000)
                    .starting_at(i * 300_000),
            );
        }
        for i in 0..6u64 {
            let src = 12 + (i * 5 % 36) as usize;
            let dst = (i % 12) as usize;
            e.add_flow(
                FlowDesc::bulk(src, dst, (i % 8) as usize, 300_000)
                    .starting_at(2_000_000 + i * 500_000),
            );
        }
        e
    };
    let sequential = mk().run_for_millis(30);
    assert!(
        sequential
            .faults
            .as_ref()
            .is_some_and(|f| f.link_down_events == 1 && f.link_up_events == 1),
        "flap must fire inside the horizon"
    );
    let sequential = fingerprint(&sequential);
    for partition in PARTITIONS {
        for threads in [2, 4] {
            let parallel = fingerprint(
                &mk()
                    .sim_threads(threads)
                    .partition(partition)
                    .run_for_millis(30),
            );
            assert_eq!(
                sequential, parallel,
                "sim_threads({threads}) with {partition:?} diverged under the fault schedule"
            );
        }
    }
}

/// The paper's §VI-B fabric (4 leaves × 4 spines, 48 hosts) under a
/// dense all-to-all-ish load — the shape of the large-scale benchmark
/// cell, shrunk to test scale. Eight switches give every partition
/// strategy real choices at 2 and 4 LPs.
#[test]
fn large_scale_fabric_matches_sequential() {
    let mk = || {
        let mut e = Experiment::paper_leaf_spine().marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        for i in 0..32u64 {
            let src = ((i * 5) % 48) as usize;
            let dst = ((i * 11 + 17) % 48) as usize;
            if src == dst {
                continue;
            }
            e.add_flow(
                FlowDesc::bulk(src, dst, (i % 8) as usize, 100_000 + i * 20_000)
                    .starting_at(i * 150_000),
            );
        }
        e
    };
    assert_threads_match(mk, 20);
}

/// A k=8 fat-tree (80 switches, 128 hosts) driven by a streaming
/// shuffle with web-search sizes: the bounded-memory streaming path —
/// sender slab, completion sketch, aggregate counters — must shard as
/// cleanly as the static flow list, on a fabric deep enough that the
/// lookahead matrix has real multi-hop structure.
#[test]
fn fat_tree_streaming_matches_sequential() {
    let mk = || {
        Experiment::fat_tree(8)
            .marking(MarkingConfig::Pmsb {
                port_threshold_pkts: 12,
            })
            .stream(
                PatternSpec::sized(PatternSpec::shuffle(), SizeDistSpec::WebSearch),
                7,
                256,
            )
            .stream_record_exact()
    };
    assert_threads_match(mk, 15);
}

/// A dumbbell has one switch: any thread count collapses to the
/// sequential path and still produces identical results.
#[test]
fn dumbbell_collapses_to_sequential() {
    let mk = || {
        let mut e = Experiment::dumbbell(3, 4).marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        e.add_flow(FlowDesc::bulk(0, 3, 0, 500_000));
        e.add_flow(FlowDesc::bulk(1, 3, 1, 500_000));
        e.add_flow(FlowDesc::bulk(2, 3, 2, 500_000));
        e
    };
    assert_threads_match(mk, 10);
}
