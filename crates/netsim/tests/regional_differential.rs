//! Differential tests for the regional engine (packet fidelity on a hot
//! set of switch ports, fluid everywhere else — DESIGN.md §13) against
//! its two limits:
//!
//! - **Empty hot set → fluid, byte for byte.** With no hot ports the
//!   regional run must degenerate to the plain fluid engine — same FCT
//!   records, same mark and drop counters — because no ghost packets are
//!   ever injected and no solver cap is ever applied. This is the
//!   regression the empty-set fast path in `fluid::run` exists for.
//! - **All ports hot → packet, within tolerance.** With every switch
//!   port in the hot set the regional engine drives every flow from
//!   measured marks at real `MultiQueue`s, so its mean FCTs must land in
//!   the same band around the packet engine that the fluid/hybrid
//!   engines are held to (`fluid_differential.rs`): ghost pacing skips
//!   slow-start and ACK clocking, so it is a tolerance check, not a
//!   byte-compare.
//!
//! Both limits run on the dumbbell and the 2×2 leaf–spine so single-hop
//! and multi-hop (ECMP) paths are covered.

use pmsb_netsim::experiment::{Experiment, FlowDesc};
use pmsb_netsim::{EngineKind, MarkingConfig, RegionSpec};

fn pmsb() -> MarkingConfig {
    MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    }
}

/// Dumbbell: 4 senders into one receiver through a single 5-port
/// switch (ports 0..=4, port 4 is the bottleneck egress).
fn dumbbell(engine: EngineKind, region: Option<RegionSpec>) -> Experiment {
    let mut e = Experiment::dumbbell(4, 4).marking(pmsb()).engine(engine);
    if let Some(r) = region {
        e = e.region(r);
    }
    for i in 0..4 {
        // 1 MB bulk flows: bandwidth-dominated, so the missing
        // slow-start phase stays a second-order effect.
        e.add_flow(FlowDesc::bulk(i, 4, i, 1_000_000));
    }
    e
}

/// 2 leaves × 2 spines × 4 hosts: leaves are switches 0–1 with ports
/// 0..6 (4 host downlinks + 2 spine uplinks), spines are switches 2–3
/// with ports 0..2 (one per leaf). Cross-leaf flows exercise multi-hop
/// paths and ECMP.
fn leaf_spine(engine: EngineKind, region: Option<RegionSpec>) -> Experiment {
    let mut e = Experiment::leaf_spine(2, 2, 4)
        .marking(pmsb())
        .engine(engine);
    if let Some(r) = region {
        e = e.region(r);
    }
    for i in 0..4 {
        e.add_flow(FlowDesc::bulk(i, 4 + i, i, 1_000_000));
    }
    e
}

/// Every switch port of the dumbbell world.
fn dumbbell_all_ports() -> RegionSpec {
    RegionSpec::Ports((0..5).map(|p| (0usize, p)).collect())
}

/// Every switch port of the 2×2×4 leaf–spine world.
fn leaf_spine_all_ports() -> RegionSpec {
    let mut ports = Vec::new();
    for leaf in 0..2usize {
        for p in 0..6usize {
            ports.push((leaf, p));
        }
    }
    for spine in 2..4usize {
        for p in 0..2usize {
            ports.push((spine, p));
        }
    }
    RegionSpec::Ports(ports)
}

/// The full observable signature of one run: per-flow completion times
/// plus the global mark/drop counters.
fn signature(e: Experiment, horizon_ms: u64) -> (Vec<(u64, u64, u64)>, u64, u64) {
    let res = e.run_for_millis(horizon_ms);
    let records: Vec<(u64, u64, u64)> = res
        .fct
        .records()
        .iter()
        .map(|r| (r.flow_id, r.end_nanos, r.fct_nanos()))
        .collect();
    (records, res.marks, res.drops)
}

/// Mean FCT in nanoseconds over all completed flows, asserting every
/// flow finished before the horizon.
fn mean_fct_nanos(e: Experiment, horizon_ms: u64, expect_flows: usize) -> f64 {
    let res = e.run_for_millis(horizon_ms);
    assert_eq!(
        res.fct.len(),
        expect_flows,
        "every flow must complete before the horizon"
    );
    let sum: u128 = res
        .fct
        .records()
        .iter()
        .map(|r| r.fct_nanos() as u128)
        .sum();
    sum as f64 / expect_flows as f64
}

fn assert_within(regional: f64, packet: f64, lo: f64, hi: f64, what: &str) {
    let ratio = regional / packet;
    assert!(
        ratio >= lo && ratio <= hi,
        "{what}: regional mean FCT {:.1} us vs packet {:.1} us (ratio {ratio:.2}, \
         tolerance [{lo}, {hi}])",
        regional / 1e3,
        packet / 1e3,
    );
}

#[test]
fn empty_hot_set_is_byte_identical_to_fluid() {
    let region = RegionSpec::Ports(Vec::new());
    assert_eq!(
        signature(dumbbell(EngineKind::Regional, Some(region.clone())), 100),
        signature(dumbbell(EngineKind::Fluid, None), 100),
        "dumbbell: regional with no hot ports must be the fluid run"
    );
    assert_eq!(
        signature(leaf_spine(EngineKind::Regional, Some(region)), 100),
        signature(leaf_spine(EngineKind::Fluid, None), 100),
        "leaf-spine: regional with no hot ports must be the fluid run"
    );
}

#[test]
fn dumbbell_all_ports_hot_matches_packet_within_tolerance() {
    let packet = mean_fct_nanos(dumbbell(EngineKind::Packet, None), 100, 4);
    let regional = mean_fct_nanos(
        dumbbell(EngineKind::Regional, Some(dumbbell_all_ports())),
        100,
        4,
    );
    assert_within(regional, packet, 0.5, 2.0, "dumbbell all-ports-hot");
}

#[test]
fn leaf_spine_all_ports_hot_matches_packet_within_tolerance() {
    let packet = mean_fct_nanos(leaf_spine(EngineKind::Packet, None), 100, 4);
    let regional = mean_fct_nanos(
        leaf_spine(EngineKind::Regional, Some(leaf_spine_all_ports())),
        100,
        4,
    );
    assert_within(regional, packet, 0.5, 2.0, "leaf-spine all-ports-hot");
}

/// Regional runs with a real hot set must still be exactly repeatable:
/// two identical runs produce identical FCT records and counters (the
/// property CI's byte-compare gate rests on).
#[test]
fn explicit_hot_set_runs_are_deterministic() {
    let run = || {
        signature(
            leaf_spine(EngineKind::Regional, Some(leaf_spine_all_ports())),
            100,
        )
    };
    assert_eq!(run(), run());
}
