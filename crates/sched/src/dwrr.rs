//! Deficit Weighted Round Robin.

use crate::{QueueState, RoundTimeEstimator, Scheduler};

/// DWRR: queues are visited round-robin; each visit credits the queue's
/// byte *quantum* (weight × quantum unit) into a deficit counter, and the
/// queue transmits head packets while they fit the deficit. Byte-accurate
/// weighted fair sharing for variable packet sizes.
///
/// DWRR is round-based: the estimator samples the wall-clock duration of
/// each full pointer sweep, exposing the smoothed `T_round` MQ-ECN needs
/// (see [`RoundTimeEstimator`]).
///
/// # Example
///
/// ```
/// use pmsb_sched::{Dwrr, Scheduler};
///
/// let d = Dwrr::new(vec![1, 3], 1500);
/// assert_eq!(d.weights(), vec![1, 3]);
/// assert_eq!(d.round_time_nanos(), Some(0)); // round-based, no sample yet
/// ```
#[derive(Debug)]
pub struct Dwrr {
    weights: Vec<u64>,
    quanta: Vec<u64>,
    deficit: Vec<u64>,
    credited: Vec<bool>,
    backlog_items: Vec<u64>,
    ptr: usize,
    /// Set when the queue under the pointer emptied: the pointer must move
    /// on before the next selection (an emptied queue leaves the DWRR
    /// active list; if it refills it re-joins at the *end* of the round,
    /// not in place — otherwise an ACK-clocked flow that drains its queue
    /// between dequeues would be re-credited a fresh quantum on every
    /// visit and starve the other queues).
    force_advance: bool,
    round_start: Option<u64>,
    estimator: RoundTimeEstimator,
}

impl Dwrr {
    /// Creates the policy with per-queue `weights` and a byte
    /// `quantum_unit` (a queue's quantum is `weight × quantum_unit`;
    /// use at least one MTU to bound per-round work).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is zero, or
    /// `quantum_unit` is zero.
    pub fn new(weights: Vec<u64>, quantum_unit: u64) -> Self {
        assert!(
            !weights.is_empty() && weights.iter().all(|w| *w > 0),
            "DWRR weights must be positive"
        );
        assert!(quantum_unit > 0, "quantum unit must be positive");
        let n = weights.len();
        let quanta = weights.iter().map(|w| w * quantum_unit).collect();
        Dwrr {
            weights,
            quanta,
            deficit: vec![0; n],
            credited: vec![false; n],
            backlog_items: vec![0; n],
            ptr: 0,
            force_advance: false,
            round_start: None,
            // T_idle defaults to one 1500-B MTU at 10 Gbps; refine with
            // `with_estimator` when modelling other link speeds.
            estimator: RoundTimeEstimator::paper_default(1500, 10_000_000_000),
        }
    }

    /// Replaces the round-time estimator (e.g. to match the port's actual
    /// link rate for the idle-reset gap).
    pub fn with_estimator(mut self, estimator: RoundTimeEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// The queue's byte quantum per round.
    pub fn quantum_bytes(&self, q: usize) -> u64 {
        self.quanta[q]
    }

    /// Moves the service pointer to the next queue, completing a round
    /// (and sampling its duration) on wrap-around.
    fn advance(&mut self, n: usize, now_nanos: u64) {
        self.credited[self.ptr] = false;
        self.ptr += 1;
        if self.ptr == n {
            self.ptr = 0;
            let start = self.round_start.take().unwrap_or(now_nanos);
            self.estimator.on_round_complete(start, now_nanos);
            self.round_start = Some(now_nanos);
        }
    }
}

impl Scheduler for Dwrr {
    fn num_queues(&self) -> usize {
        self.weights.len()
    }

    fn on_enqueue(&mut self, q: usize, _bytes: u64, now_nanos: u64) {
        self.backlog_items[q] += 1;
        self.estimator.on_enqueue(now_nanos);
    }

    fn select(&mut self, state: &QueueState<'_>, now_nanos: u64) -> Option<usize> {
        if state.all_empty() {
            return None;
        }
        let n = self.weights.len();
        if self.round_start.is_none() {
            self.round_start = Some(now_nanos);
        }
        if self.force_advance {
            self.force_advance = false;
            self.advance(n, now_nanos);
        }
        // The head must fit after at most ceil(head/quantum) credits, so
        // the sweep terminates; the explicit bound guards a logic error.
        let max_hops = n * 64 * 1024;
        for _ in 0..max_hops {
            if state.is_active(self.ptr) {
                if !self.credited[self.ptr] {
                    self.deficit[self.ptr] += self.quanta[self.ptr];
                    self.credited[self.ptr] = true;
                }
                let head = state.heads[self.ptr].expect("active queue has a head");
                if head <= self.deficit[self.ptr] {
                    return Some(self.ptr);
                }
            } else {
                // Idle queue: loses any residual deficit.
                self.deficit[self.ptr] = 0;
            }
            self.advance(n, now_nanos);
        }
        unreachable!("DWRR sweep failed to find a servable head; quantum too small?");
    }

    fn on_dequeue(&mut self, q: usize, bytes: u64, _now_nanos: u64) {
        self.deficit[q] = self.deficit[q].saturating_sub(bytes);
        self.backlog_items[q] -= 1;
        if self.backlog_items[q] == 0 {
            // Standard DWRR: an emptied queue forfeits its deficit and
            // leaves the active list; the service pointer moves on.
            self.deficit[q] = 0;
            self.credited[q] = false;
            if self.ptr == q {
                self.force_advance = true;
            }
        }
    }

    fn weights(&self) -> Vec<u64> {
        self.weights.clone()
    }

    fn round_time_nanos(&self) -> Option<u64> {
        Some(self.estimator.smoothed_nanos())
    }

    fn name(&self) -> &'static str {
        "dwrr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{served_under_backlog, B};
    use crate::MultiQueue;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn equal_weights_share_equally() {
        let served = served_under_backlog(Box::new(Dwrr::new(vec![1, 1], 1500)), 1500, 1000);
        assert_eq!(served[0], served[1]);
    }

    #[test]
    fn weighted_shares_proportional() {
        let served = served_under_backlog(Box::new(Dwrr::new(vec![1, 3], 1500)), 1500, 4000);
        let ratio = served[1] as f64 / served[0] as f64;
        assert!((ratio - 3.0).abs() < 0.05, "ratio {ratio} != 3");
    }

    #[test]
    fn work_conserving_with_single_active_queue() {
        let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1, 1, 1], 1500)), u64::MAX);
        for _ in 0..10 {
            mq.enqueue(2, B(1500), 0).unwrap();
        }
        for _ in 0..10 {
            assert_eq!(mq.dequeue(0).unwrap().0, 2);
        }
    }

    #[test]
    fn variable_packet_sizes_stay_fair() {
        // Queue 0 sends 300-B packets, queue 1 sends 1500-B packets; bytes
        // served must still be ~1:1.
        let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1], 1500)), u64::MAX);
        let mut now = 0u64;
        for _ in 0..40 {
            mq.enqueue(0, B(300), now).unwrap();
        }
        for _ in 0..8 {
            mq.enqueue(1, B(1500), now).unwrap();
        }
        let mut served = [0u64; 2];
        for _ in 0..2000 {
            let Some((q, item)) = mq.dequeue(now) else {
                break;
            };
            served[q] += item.0;
            now += item.0;
            // Refill what we consumed to keep both backlogged.
            let _ = mq.enqueue(q, item, now);
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.1, "byte ratio {ratio} != 1");
    }

    #[test]
    fn emptied_queue_forfeits_deficit() {
        let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1], 3000)), u64::MAX);
        // Queue 0 has one small packet; dequeues and empties with residual
        // deficit which must be forfeited.
        mq.enqueue(0, B(100), 0).unwrap();
        mq.enqueue(1, B(1500), 0).unwrap();
        assert_eq!(mq.dequeue(1).unwrap().0, 0);
        assert_eq!(mq.dequeue(2).unwrap().0, 1);
        // Refill both; service must restart fairly rather than favouring
        // queue 0's stale credit.
        for _ in 0..4 {
            mq.enqueue(0, B(1500), 3).unwrap();
            mq.enqueue(1, B(1500), 3).unwrap();
        }
        let mut served = [0u64; 2];
        for t in 0..8 {
            let (q, item) = mq.dequeue(4 + t).unwrap();
            served[q] += item.0;
        }
        assert_eq!(served[0], served[1]);
    }

    /// Regression test: an ACK-clocked flow whose queue empties and
    /// refills between dequeues must not pin the pointer and starve a
    /// backlogged sibling queue.
    #[test]
    fn drain_refill_queue_does_not_starve_backlogged_queue() {
        let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1], 1500)), u64::MAX);
        let mut now = 0u64;
        // Queue 1: static backlog of 19 packets, never refilled.
        for _ in 0..19 {
            mq.enqueue(1, B(1500), now).unwrap();
        }
        // Queue 0: exactly one packet present at each dequeue (drains to
        // empty, refills before the next service) — the ACK-clocked shape.
        let mut served = [0u64; 2];
        for _ in 0..30 {
            mq.enqueue(0, B(1500), now).unwrap();
            let (q, item) = mq.dequeue(now).unwrap();
            served[q] += item.0;
            now += item.0;
            if q == 1 {
                // keep queue 0's "one packet waiting" pattern honest: the
                // unserved queue-0 packet stays for the next iteration.
                let (q2, item2) = mq.dequeue(now).unwrap();
                assert_eq!(q2, 0);
                served[q2] += item2.0;
                now += item2.0;
            }
        }
        assert!(
            served[1] >= 19 * 1500,
            "backlogged queue starved: served {served:?}"
        );
    }

    #[test]
    fn round_time_tracks_active_queue_count() {
        // 8 active queues serving 1500-B quanta: a round serves 8 packets.
        // With time advancing 1 ns per byte, T_round converges near
        // 8 * 1500 ns.
        let mut mq = MultiQueue::new(
            Box::new(
                Dwrr::new(vec![1; 8], 1500).with_estimator(RoundTimeEstimator::new(0.75, u64::MAX)),
            ),
            u64::MAX,
        );
        let mut now = 0u64;
        for _ in 0..4 {
            for q in 0..8 {
                mq.enqueue(q, B(1500), now).unwrap();
            }
        }
        for _ in 0..400 {
            let (q, item) = mq.dequeue(now).unwrap();
            now += item.0;
            mq.enqueue(q, B(1500), now).unwrap();
        }
        let t_round = mq.scheduler().round_time_nanos().unwrap();
        assert!(
            (t_round as i64 - 12_000).abs() < 600,
            "T_round {t_round} not near 12000"
        );
    }

    #[test]
    fn round_time_short_with_one_active_queue() {
        let mut mq = MultiQueue::new(
            Box::new(
                Dwrr::new(vec![1; 8], 1500).with_estimator(RoundTimeEstimator::new(0.75, u64::MAX)),
            ),
            u64::MAX,
        );
        let mut now = 0u64;
        for _ in 0..4 {
            mq.enqueue(3, B(1500), now).unwrap();
        }
        for _ in 0..200 {
            let (q, item) = mq.dequeue(now).unwrap();
            now += item.0;
            mq.enqueue(q, B(1500), now).unwrap();
        }
        let t_round = mq.scheduler().round_time_nanos().unwrap();
        // One quantum per sweep: ~1500 ns.
        assert!(
            (t_round as i64 - 1500).abs() < 200,
            "T_round {t_round} not near 1500"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        Dwrr::new(vec![1, 0], 1500);
    }

    /// Long-run byte service is proportional to weights for seeded-random
    /// weight vectors under permanent backlog.
    #[test]
    fn proportional_service() {
        let mut rng = SimRng::seed_from(0xd33);
        for _ in 0..32 {
            let n = 2 + rng.below(3);
            let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(7) as u64).collect();
            let served =
                served_under_backlog(Box::new(Dwrr::new(weights.clone(), 1500)), 1500, 6000);
            let total: u64 = served.iter().sum();
            let wsum: u64 = weights.iter().sum();
            for q in 0..n {
                let got = served[q] as f64 / total as f64;
                let want = weights[q] as f64 / wsum as f64;
                assert!(
                    (got - want).abs() < 0.05,
                    "queue {q}: got {got}, want {want} (weights {weights:?})"
                );
            }
        }
    }
}
