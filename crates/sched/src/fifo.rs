//! Single-queue FIFO "scheduling" (host NICs, single-service ports).

use crate::{QueueState, Scheduler};

/// A degenerate one-queue policy: first in, first out.
///
/// # Example
///
/// ```
/// use pmsb_sched::{Fifo, Scheduler};
///
/// let f = Fifo::new();
/// assert_eq!(f.num_queues(), 1);
/// assert_eq!(f.round_time_nanos(), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl Fifo {
    /// Creates the policy.
    pub fn new() -> Self {
        Fifo
    }
}

impl Scheduler for Fifo {
    fn num_queues(&self) -> usize {
        1
    }

    fn on_enqueue(&mut self, _q: usize, _bytes: u64, _now_nanos: u64) {}

    fn select(&mut self, state: &QueueState<'_>, _now_nanos: u64) -> Option<usize> {
        state.is_active(0).then_some(0)
    }

    fn on_dequeue(&mut self, _q: usize, _bytes: u64, _now_nanos: u64) {}

    fn weights(&self) -> Vec<u64> {
        vec![1]
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::B;
    use crate::MultiQueue;

    #[test]
    fn serves_in_arrival_order() {
        let mut mq = MultiQueue::new(Box::new(Fifo::new()), u64::MAX);
        for i in 1..=5u64 {
            mq.enqueue(0, B(i), 0).unwrap();
        }
        for i in 1..=5u64 {
            assert_eq!(mq.dequeue(i).unwrap().1, B(i));
        }
    }
}
