//! Hierarchical SP + WFQ scheduling (the paper's "SP+WFQ" switch config).

use std::collections::VecDeque;

use crate::{QueueState, Scheduler};

/// Strict priority across *groups* of queues, weighted fair queueing
/// within each group.
///
/// The paper's Fig. 13 configuration — queue 1 strictly above queues 2 and
/// 3, which share the remainder 1:1 — is
/// `HierSpWfq::new(vec![0, 1, 1], vec![1, 1, 1])`.
///
/// # Example
///
/// ```
/// use pmsb_sched::{HierSpWfq, Scheduler};
///
/// let h = HierSpWfq::new(vec![0, 1, 1], vec![1, 1, 1]);
/// assert_eq!(h.num_queues(), 3);
/// assert_eq!(h.round_time_nanos(), None); // not round-based
/// ```
#[derive(Debug)]
pub struct HierSpWfq {
    /// `group_of[q]` = priority group of queue `q` (0 = highest).
    group_of: Vec<usize>,
    weights: Vec<u64>,
    /// Per-queue start tags (WFQ state), plus a virtual clock per group.
    start_tags: Vec<VecDeque<f64>>,
    last_finish: Vec<f64>,
    group_vtime: Vec<f64>,
    num_groups: usize,
}

impl HierSpWfq {
    /// Creates the policy. `group_of[q]` assigns queue `q` to a priority
    /// group (0 is served strictly first); `weights[q]` is the WFQ weight
    /// of queue `q` inside its group.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or of different lengths, if any
    /// weight is zero, or if group ids are not contiguous from 0.
    pub fn new(group_of: Vec<usize>, weights: Vec<u64>) -> Self {
        assert!(!group_of.is_empty(), "need at least one queue");
        assert_eq!(
            group_of.len(),
            weights.len(),
            "group/weight length mismatch"
        );
        assert!(weights.iter().all(|w| *w > 0), "weights must be positive");
        let num_groups = group_of.iter().max().unwrap() + 1;
        for g in 0..num_groups {
            assert!(
                group_of.contains(&g),
                "group ids must be contiguous: missing group {g}"
            );
        }
        let n = group_of.len();
        HierSpWfq {
            group_of,
            weights,
            start_tags: (0..n).map(|_| VecDeque::new()).collect(),
            last_finish: vec![0.0; n],
            group_vtime: vec![0.0; num_groups],
            num_groups,
        }
    }
}

impl Scheduler for HierSpWfq {
    fn num_queues(&self) -> usize {
        self.group_of.len()
    }

    fn on_enqueue(&mut self, q: usize, bytes: u64, _now_nanos: u64) {
        let g = self.group_of[q];
        let start = self.group_vtime[g].max(self.last_finish[q]);
        let finish = start + bytes as f64 / self.weights[q] as f64;
        self.start_tags[q].push_back(start);
        self.last_finish[q] = finish;
    }

    fn select(&mut self, state: &QueueState<'_>, _now_nanos: u64) -> Option<usize> {
        for g in 0..self.num_groups {
            let mut best: Option<(usize, f64)> = None;
            for q in 0..self.group_of.len() {
                if self.group_of[q] != g || !state.is_active(q) {
                    continue;
                }
                let s = *self.start_tags[q]
                    .front()
                    .expect("tag queue out of sync with packet queue");
                match best {
                    Some((_, bs)) if bs <= s => {}
                    _ => best = Some((q, s)),
                }
            }
            if let Some((q, s)) = best {
                self.group_vtime[g] = self.group_vtime[g].max(s);
                return Some(q);
            }
        }
        None
    }

    fn on_dequeue(&mut self, q: usize, _bytes: u64, _now_nanos: u64) {
        self.start_tags[q]
            .pop_front()
            .expect("dequeue from queue with no tags");
    }

    fn weights(&self) -> Vec<u64> {
        self.weights.clone()
    }

    fn name(&self) -> &'static str {
        "sp+wfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::B;
    use crate::MultiQueue;

    fn paper_config() -> MultiQueue<B> {
        // Queue 0 strictly above queues 1 and 2 (1:1 within the group).
        MultiQueue::new(
            Box::new(HierSpWfq::new(vec![0, 1, 1], vec![1, 1, 1])),
            u64::MAX,
        )
    }

    #[test]
    fn high_priority_group_preempts() {
        let mut mq = paper_config();
        mq.enqueue(1, B(100), 0).unwrap();
        mq.enqueue(2, B(100), 0).unwrap();
        mq.enqueue(0, B(100), 0).unwrap();
        assert_eq!(mq.dequeue(1).unwrap().0, 0);
    }

    #[test]
    fn low_group_shares_fairly() {
        let mut mq = paper_config();
        for _ in 0..10 {
            mq.enqueue(1, B(1000), 0).unwrap();
            mq.enqueue(2, B(1000), 0).unwrap();
        }
        let mut served = [0u64; 3];
        for t in 0..20 {
            let (q, item) = mq.dequeue(t).unwrap();
            served[q] += item.0;
        }
        assert_eq!(served[1], served[2]);
    }

    #[test]
    fn mixed_backlog_priorities_and_fairness() {
        let mut mq = paper_config();
        let mut now = 0u64;
        // All three queues permanently backlogged; queue 0 app-limited to
        // a trickle is the realistic case, but under full backlog SP gives
        // queue 0 everything.
        for _ in 0..4 {
            for q in 0..3 {
                mq.enqueue(q, B(1000), now).unwrap();
            }
        }
        for _ in 0..50 {
            let (q, item) = mq.dequeue(now).unwrap();
            assert_eq!(q, 0, "backlogged strict-priority queue must monopolize");
            now += item.0;
            mq.enqueue(q, B(1000), now).unwrap();
        }
    }

    #[test]
    fn weighted_low_group() {
        // Queues 1:3 weights inside the low group.
        let mut mq = MultiQueue::new(
            Box::new(HierSpWfq::new(vec![0, 1, 1], vec![1, 1, 3])),
            u64::MAX,
        );
        let mut now = 0u64;
        for _ in 0..200 {
            mq.enqueue(1, B(1000), now).unwrap();
            mq.enqueue(2, B(1000), now).unwrap();
        }
        let mut served = [0u64; 3];
        for _ in 0..200 {
            let (q, item) = mq.dequeue(now).unwrap();
            served[q] += item.0;
            now += item.0;
        }
        let ratio = served[2] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio} != 3");
    }

    #[test]
    fn not_round_based() {
        let h = HierSpWfq::new(vec![0, 1, 1], vec![1, 1, 1]);
        assert_eq!(h.round_time_nanos(), None, "SP+WFQ has no round concept");
    }

    #[test]
    fn drain_refill_high_priority_does_not_starve_low_group() {
        // Mirror of the DWRR regression: queue 0 (strict high) drains and
        // refills between dequeues; queues 1/2 are backlogged. SP gives
        // q0 absolute priority, but whenever q0 is momentarily empty the
        // low group must be served.
        let mut mq = MultiQueue::new(
            Box::new(HierSpWfq::new(vec![0, 1, 1], vec![1, 1, 1])),
            u64::MAX,
        );
        for _ in 0..10 {
            mq.enqueue(1, B(1000), 0).unwrap();
            mq.enqueue(2, B(1000), 0).unwrap();
        }
        let mut low_served = 0;
        for t in 0..20u64 {
            // q0 gets one packet every other dequeue opportunity.
            if t % 2 == 0 {
                mq.enqueue(0, B(1000), t).unwrap();
            }
            let (q, _) = mq.dequeue(t).unwrap();
            if q != 0 {
                low_served += 1;
            }
        }
        assert_eq!(low_served, 10, "low group serves whenever q0 is empty");
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_gappy_groups() {
        HierSpWfq::new(vec![0, 2], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        HierSpWfq::new(vec![0, 0], vec![1]);
    }
}
