#![warn(missing_docs)]

//! Multi-queue packet schedulers for switch output ports.
//!
//! A switch port owns a [`MultiQueue`] — a set of FIFO service queues with
//! shared-buffer accounting and tail drop — and a [`Scheduler`] policy that
//! picks which queue transmits next:
//!
//! * [`Fifo`] — a single queue (host NICs, single-service ports),
//! * [`StrictPriority`] — lower queue index always wins,
//! * [`Wrr`] — weighted round robin in packets,
//! * [`Dwrr`] — deficit weighted round robin in bytes,
//! * [`Wfq`] — weighted fair queueing (start-time fair queueing virtual
//!   clock),
//! * [`HierSpWfq`] — strict priority across groups, WFQ within a group
//!   (the paper's "SP+WFQ" configuration).
//!
//! Round-based schedulers (WRR, DWRR) also expose a smoothed *round time*
//! through [`RoundTimeEstimator`] — the signal MQ-ECN needs; schedulers
//! without a round concept return `None`, which is exactly why MQ-ECN
//! cannot run on them.
//!
//! # Example
//!
//! ```
//! use pmsb_sched::{Dwrr, MultiQueue, SchedItem};
//!
//! #[derive(Debug)]
//! struct Pkt(u64);
//! impl SchedItem for Pkt {
//!     fn len_bytes(&self) -> u64 { self.0 }
//! }
//!
//! // Two queues, 1:1 weights, 1 MB shared buffer.
//! let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1], 1500)), 1_000_000);
//! mq.enqueue(0, Pkt(1500), 0).unwrap();
//! mq.enqueue(1, Pkt(1500), 0).unwrap();
//! let (q, _pkt) = mq.dequeue(100).unwrap();
//! assert_eq!(q, 0);
//! let (q, _pkt) = mq.dequeue(200).unwrap();
//! assert_eq!(q, 1);
//! ```

mod dwrr;
mod fifo;
mod hier;
mod multi_queue;
mod round;
mod sp;
mod wfq;
mod wrr;

pub use dwrr::Dwrr;
pub use fifo::Fifo;
pub use hier::HierSpWfq;
pub use multi_queue::{BufferPolicy, MultiQueue};
pub use round::RoundTimeEstimator;
pub use sp::StrictPriority;
pub use wfq::Wfq;
pub use wrr::Wrr;

/// Anything a scheduler can queue: it only needs a wire length.
pub trait SchedItem: std::fmt::Debug {
    /// The item's length in bytes as it occupies buffer and link.
    fn len_bytes(&self) -> u64;
}

/// Read-only queue state handed to [`Scheduler::select`].
#[derive(Debug, Clone, Copy)]
pub struct QueueState<'a> {
    /// Bytes buffered per queue.
    pub bytes: &'a [u64],
    /// Length in bytes of each queue's head item (`None` if empty).
    pub heads: &'a [Option<u64>],
}

impl QueueState<'_> {
    /// `true` if queue `q` holds at least one item.
    pub fn is_active(&self, q: usize) -> bool {
        self.heads[q].is_some()
    }

    /// `true` if every queue is empty.
    pub fn all_empty(&self) -> bool {
        self.heads.iter().all(|h| h.is_none())
    }
}

/// A work-conserving multi-queue scheduling policy.
///
/// The [`MultiQueue`] drives the protocol: `on_enqueue` after an item is
/// admitted, `select` to choose the next queue to serve (the multi-queue
/// always dequeues from the returned queue), `on_dequeue` after the item
/// has been removed. Implementations may freely mutate their state inside
/// `select` (e.g. DWRR deficit refresh).
pub trait Scheduler: std::fmt::Debug + Send {
    /// Number of queues this policy schedules.
    fn num_queues(&self) -> usize;

    /// Called after an item of `bytes` was appended to queue `q` at time
    /// `now_nanos`.
    fn on_enqueue(&mut self, q: usize, bytes: u64, now_nanos: u64);

    /// Picks the queue to serve next, or `None` if all queues are empty.
    /// Must return an active queue (non-empty under `state`).
    fn select(&mut self, state: &QueueState<'_>, now_nanos: u64) -> Option<usize>;

    /// Called after an item of `bytes` was removed from queue `q`.
    fn on_dequeue(&mut self, q: usize, bytes: u64, now_nanos: u64);

    /// Scheduling weight of each queue (all 1 for unweighted policies).
    fn weights(&self) -> Vec<u64>;

    /// The smoothed round time in nanoseconds for round-based schedulers;
    /// `None` when the policy has no round concept (WFQ, SP, FIFO).
    fn round_time_nanos(&self) -> Option<u64> {
        None
    }

    /// Short policy name for reports (e.g. `"dwrr"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A test item: just a byte length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct B(pub u64);
    impl SchedItem for B {
        fn len_bytes(&self) -> u64 {
            self.0
        }
    }

    /// Runs a saturation experiment: keeps every queue permanently
    /// backlogged with `pkt`-byte items and counts bytes served per queue
    /// over `dequeues` dequeues. Time advances by the serialized bytes.
    pub fn served_under_backlog(sched: Box<dyn Scheduler>, pkt: u64, dequeues: usize) -> Vec<u64> {
        let n = sched.num_queues();
        let mut mq = MultiQueue::new(sched, u64::MAX);
        let mut now = 0u64;
        let mut served = vec![0u64; n];
        // Keep 4 packets in each queue at all times.
        for _ in 0..4 {
            for q in 0..n {
                mq.enqueue(q, B(pkt), now).unwrap();
            }
        }
        for _ in 0..dequeues {
            let (q, item) = mq.dequeue(now).expect("backlogged queues must serve");
            served[q] += item.0;
            now += item.0; // 1 byte per nano: arbitrary but consistent
            mq.enqueue(q, B(pkt), now).unwrap();
        }
        served
    }
}
