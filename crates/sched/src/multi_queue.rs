//! The per-port multi-queue buffer with shared-buffer tail drop.

use std::collections::VecDeque;

use crate::{QueueState, SchedItem, Scheduler};

/// How the shared buffer admits arriving items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferPolicy {
    /// One static byte budget for the whole port; any queue may fill it
    /// (plain tail drop). The classic output-queued default.
    SharedStatic {
        /// Total bytes available to the port.
        cap_bytes: u64,
    },
    /// Dynamic Threshold (Choudhury & Hahne), the commodity shared-buffer
    /// policy: a queue may only grow while its own occupancy is below
    /// `alpha × (cap − total occupancy)`, so no queue can monopolize the
    /// pool and freshly-active queues always find room.
    DynamicThreshold {
        /// Total bytes available to the port.
        cap_bytes: u64,
        /// The DT scale factor (commodity defaults are 0.5–8).
        alpha: f64,
    },
}

impl BufferPolicy {
    /// The total pool size in bytes.
    pub fn cap_bytes(&self) -> u64 {
        match self {
            BufferPolicy::SharedStatic { cap_bytes }
            | BufferPolicy::DynamicThreshold { cap_bytes, .. } => *cap_bytes,
        }
    }

    /// Whether an item of `bytes` may enter queue `q`.
    fn admits(&self, queue_bytes: u64, port_bytes: u64, bytes: u64) -> bool {
        match self {
            BufferPolicy::SharedStatic { cap_bytes } => port_bytes + bytes <= *cap_bytes,
            BufferPolicy::DynamicThreshold { cap_bytes, alpha } => {
                if port_bytes + bytes > *cap_bytes {
                    return false;
                }
                let free = (*cap_bytes - port_bytes) as f64;
                (queue_bytes + bytes) as f64 <= alpha * free
            }
        }
    }
}

/// A set of FIFO service queues sharing one buffer pool, served by a
/// pluggable [`Scheduler`].
///
/// This models one output port of a commodity switch: typically 4–8 queues
/// drawing from a shared per-port byte budget, tail-dropping arrivals that
/// would overflow it.
///
/// # Example
///
/// ```
/// use pmsb_sched::{MultiQueue, SchedItem, StrictPriority};
///
/// #[derive(Debug, PartialEq)]
/// struct Pkt(u64);
/// impl SchedItem for Pkt {
///     fn len_bytes(&self) -> u64 { self.0 }
/// }
///
/// let mut mq = MultiQueue::new(Box::new(StrictPriority::new(2)), 10_000);
/// mq.enqueue(1, Pkt(500), 0).unwrap();
/// mq.enqueue(0, Pkt(100), 0).unwrap();
/// // Strict priority: queue 0 first even though queue 1 arrived earlier.
/// assert_eq!(mq.dequeue(10).unwrap(), (0, Pkt(100)));
/// assert_eq!(mq.dequeue(20).unwrap(), (1, Pkt(500)));
/// ```
pub struct MultiQueue<T: SchedItem> {
    queues: Vec<VecDeque<T>>,
    queue_bytes: Vec<u64>,
    port_bytes: u64,
    policy: BufferPolicy,
    dropped_items: u64,
    dropped_bytes: u64,
    scheduler: Box<dyn Scheduler>,
    /// Reused per-dequeue head-size snapshot, so the hot path never
    /// allocates.
    head_scratch: Vec<Option<u64>>,
}

impl<T: SchedItem> MultiQueue<T> {
    /// Creates a multi-queue with the scheduler's queue count and a
    /// static shared buffer of `cap_bytes` (see
    /// [`MultiQueue::with_policy`] for Dynamic Threshold).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler declares zero queues.
    pub fn new(scheduler: Box<dyn Scheduler>, cap_bytes: u64) -> Self {
        MultiQueue::with_policy(scheduler, BufferPolicy::SharedStatic { cap_bytes })
    }

    /// Creates a multi-queue with an explicit buffer admission policy.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler declares zero queues or a
    /// [`BufferPolicy::DynamicThreshold`] has a non-positive `alpha`.
    pub fn with_policy(scheduler: Box<dyn Scheduler>, policy: BufferPolicy) -> Self {
        let n = scheduler.num_queues();
        assert!(n > 0, "a port needs at least one queue");
        if let BufferPolicy::DynamicThreshold { alpha, .. } = policy {
            assert!(alpha > 0.0, "DT alpha must be positive, got {alpha}");
        }
        MultiQueue {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            queue_bytes: vec![0; n],
            port_bytes: 0,
            policy,
            dropped_items: 0,
            dropped_bytes: 0,
            scheduler,
            head_scratch: Vec::with_capacity(n),
        }
    }

    /// Pre-sizes every service queue for `items_per_queue` buffered items,
    /// so steady-state operation does not grow ring buffers.
    pub fn reserve(&mut self, items_per_queue: usize) {
        for q in &mut self.queues {
            q.reserve(items_per_queue);
        }
    }

    /// Appends `item` to queue `q` at time `now_nanos`.
    ///
    /// # Errors
    ///
    /// Returns the item back when admitting it would overflow the shared
    /// buffer (tail drop); the drop counters are incremented.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn enqueue(&mut self, q: usize, item: T, now_nanos: u64) -> Result<(), T> {
        let bytes = item.len_bytes();
        if !self
            .policy
            .admits(self.queue_bytes[q], self.port_bytes, bytes)
        {
            self.dropped_items += 1;
            self.dropped_bytes += bytes;
            return Err(item);
        }
        self.queues[q].push_back(item);
        self.queue_bytes[q] += bytes;
        self.port_bytes += bytes;
        self.scheduler.on_enqueue(q, bytes, now_nanos);
        Ok(())
    }

    /// Removes and returns the next item chosen by the scheduler, together
    /// with the queue it came from. `None` when all queues are empty.
    pub fn dequeue(&mut self, now_nanos: u64) -> Option<(usize, T)> {
        self.head_scratch.clear();
        self.head_scratch
            .extend(self.queues.iter().map(|q| q.front().map(|i| i.len_bytes())));
        let state = QueueState {
            bytes: &self.queue_bytes,
            heads: &self.head_scratch,
        };
        if state.all_empty() {
            return None;
        }
        let q = self
            .scheduler
            .select(&state, now_nanos)
            .expect("scheduler must serve a non-empty port");
        let item = self.queues[q]
            .pop_front()
            .expect("scheduler selected an empty queue");
        let bytes = item.len_bytes();
        self.queue_bytes[q] -= bytes;
        self.port_bytes -= bytes;
        self.scheduler.on_dequeue(q, bytes, now_nanos);
        Some((q, item))
    }

    /// Peeks the head item of queue `q`.
    pub fn peek(&self, q: usize) -> Option<&T> {
        self.queues[q].front()
    }

    /// Number of queues on this port.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Bytes currently buffered in queue `q`.
    pub fn queue_bytes(&self, q: usize) -> u64 {
        self.queue_bytes[q]
    }

    /// Items currently buffered in queue `q`.
    pub fn queue_len(&self, q: usize) -> usize {
        self.queues[q].len()
    }

    /// Total bytes currently buffered on the port.
    pub fn port_bytes(&self) -> u64 {
        self.port_bytes
    }

    /// The shared-buffer capacity in bytes.
    pub fn cap_bytes(&self) -> u64 {
        self.policy.cap_bytes()
    }

    /// Re-caps the shared buffer at `cap_bytes`, keeping the admission
    /// policy (fault injection's buffer-shrink event). Items already
    /// buffered beyond a smaller cap are not evicted — the new cap only
    /// gates admission, like reprogramming a real switch's pool size.
    pub fn set_cap_bytes(&mut self, cap_bytes: u64) {
        self.policy = match self.policy {
            BufferPolicy::SharedStatic { .. } => BufferPolicy::SharedStatic { cap_bytes },
            BufferPolicy::DynamicThreshold { alpha, .. } => {
                BufferPolicy::DynamicThreshold { cap_bytes, alpha }
            }
        };
    }

    /// The buffer admission policy.
    pub fn buffer_policy(&self) -> BufferPolicy {
        self.policy
    }

    /// `true` if every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.port_bytes == 0
    }

    /// Items tail-dropped so far.
    pub fn dropped_items(&self) -> u64 {
        self.dropped_items
    }

    /// Bytes tail-dropped so far.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// The scheduling policy (for weight/round-time queries).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }
}

impl<T: SchedItem> std::fmt::Debug for MultiQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueue")
            .field("scheduler", &self.scheduler.name())
            .field("queue_bytes", &self.queue_bytes)
            .field("port_bytes", &self.port_bytes)
            .field("policy", &self.policy)
            .field("dropped_items", &self.dropped_items)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::B;
    use crate::{Fifo, StrictPriority};

    #[test]
    fn accounting_tracks_enqueue_dequeue() {
        let mut mq = MultiQueue::new(Box::new(StrictPriority::new(2)), 10_000);
        mq.enqueue(0, B(100), 0).unwrap();
        mq.enqueue(1, B(200), 0).unwrap();
        assert_eq!(mq.port_bytes(), 300);
        assert_eq!(mq.queue_bytes(0), 100);
        assert_eq!(mq.queue_bytes(1), 200);
        mq.dequeue(1).unwrap();
        assert_eq!(mq.port_bytes(), 200);
        assert!(!mq.is_empty());
        mq.dequeue(2).unwrap();
        assert!(mq.is_empty());
        assert!(mq.dequeue(3).is_none());
    }

    #[test]
    fn tail_drop_on_overflow() {
        let mut mq = MultiQueue::new(Box::new(Fifo::new()), 250);
        mq.enqueue(0, B(100), 0).unwrap();
        mq.enqueue(0, B(100), 0).unwrap();
        let rejected = mq.enqueue(0, B(100), 0);
        assert_eq!(rejected.unwrap_err(), B(100));
        assert_eq!(mq.dropped_items(), 1);
        assert_eq!(mq.dropped_bytes(), 100);
        assert_eq!(mq.port_bytes(), 200);
        // A smaller item still fits.
        mq.enqueue(0, B(50), 0).unwrap();
        assert_eq!(mq.port_bytes(), 250);
    }

    #[test]
    fn shrinking_cap_gates_admission_without_evicting() {
        let mut mq = MultiQueue::new(Box::new(Fifo::new()), 1000);
        mq.enqueue(0, B(400), 0).unwrap();
        mq.enqueue(0, B(400), 0).unwrap();
        mq.set_cap_bytes(500);
        assert_eq!(mq.port_bytes(), 800, "shrink evicts nothing");
        assert!(mq.enqueue(0, B(100), 1).is_err(), "over the new cap");
        // Drain below the new cap: admission resumes.
        mq.dequeue(2).unwrap();
        assert!(mq.enqueue(0, B(100), 3).is_ok());
        assert_eq!(mq.cap_bytes(), 500);
    }

    #[test]
    fn drops_do_not_disturb_scheduler_state() {
        // Fill the buffer, drop one, then drain fully: FIFO order intact.
        let mut mq = MultiQueue::new(Box::new(Fifo::new()), 300);
        mq.enqueue(0, B(100), 0).unwrap();
        mq.enqueue(0, B(200), 0).unwrap();
        assert!(mq.enqueue(0, B(50), 0).is_err());
        assert_eq!(mq.dequeue(1).unwrap().1, B(100));
        assert_eq!(mq.dequeue(2).unwrap().1, B(200));
        assert!(mq.dequeue(3).is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut mq = MultiQueue::new(Box::new(Fifo::new()), 1000);
        mq.enqueue(0, B(7), 0).unwrap();
        assert_eq!(mq.peek(0), Some(&B(7)));
        assert_eq!(mq.queue_len(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queue_scheduler_rejected() {
        let _ = MultiQueue::<B>::new(Box::new(StrictPriority::new(0)), 10);
    }

    #[test]
    fn dynamic_threshold_stops_a_hog_queue() {
        // alpha = 1: a queue may hold at most as much as remains free, so
        // one queue can never take more than half the pool.
        let mut mq = MultiQueue::with_policy(
            Box::new(StrictPriority::new(2)),
            BufferPolicy::DynamicThreshold {
                cap_bytes: 1000,
                alpha: 1.0,
            },
        );
        let mut admitted = 0;
        while mq.enqueue(0, B(100), 0).is_ok() {
            admitted += 1;
        }
        assert_eq!(admitted, 5, "hog capped at alpha/(1+alpha) of the pool");
        // The other queue still finds room (a static policy would too at
        // this point, but the hog could never have filled the pool).
        assert!(mq.enqueue(1, B(100), 0).is_ok());
    }

    #[test]
    fn dynamic_threshold_total_never_exceeds_cap() {
        let mut mq = MultiQueue::with_policy(
            Box::new(StrictPriority::new(4)),
            BufferPolicy::DynamicThreshold {
                cap_bytes: 1000,
                alpha: 8.0,
            },
        );
        for round in 0..100 {
            let _ = mq.enqueue(round % 4, B(90), 0);
        }
        assert!(mq.port_bytes() <= 1000);
        assert!(mq.dropped_items() > 0);
    }

    #[test]
    fn static_policy_unchanged_by_refactor() {
        let mut mq = MultiQueue::with_policy(
            Box::new(StrictPriority::new(2)),
            BufferPolicy::SharedStatic { cap_bytes: 250 },
        );
        mq.enqueue(0, B(100), 0).unwrap();
        mq.enqueue(0, B(100), 0).unwrap();
        assert!(mq.enqueue(1, B(100), 0).is_err(), "pool full for everyone");
        assert_eq!(mq.cap_bytes(), 250);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dt_rejects_bad_alpha() {
        let _ = MultiQueue::<B>::with_policy(
            Box::new(StrictPriority::new(1)),
            BufferPolicy::DynamicThreshold {
                cap_bytes: 10,
                alpha: 0.0,
            },
        );
    }
}
