//! Smoothed round-time estimation for round-based schedulers.
//!
//! MQ-ECN's dynamic threshold (Eq. 3 of the paper) divides each queue's
//! quantum by `T_round`, the smoothed time the scheduler takes to serve all
//! queues once. Following the MQ-ECN paper's setting (adopted by the PMSB
//! evaluation): exponential smoothing with `β = 0.75`, and a reset when the
//! port has been idle longer than `T_idle` (one MTU's transmission time) —
//! an idle port has no meaningful round, and resetting to zero makes MQ-ECN
//! fall back to the standard threshold (full throughput for a fresh flow).

/// Exponentially smoothed round-time tracker.
///
/// Fed by the scheduler: [`RoundTimeEstimator::on_round_complete`] whenever
/// the service pointer wraps, [`RoundTimeEstimator::on_enqueue`] on every
/// arrival (to detect idle gaps). [`RoundTimeEstimator::smoothed_nanos`]
/// yields the current estimate.
///
/// # Example
///
/// ```
/// use pmsb_sched::RoundTimeEstimator;
///
/// let mut est = RoundTimeEstimator::new(0.75, 1_200);
/// est.on_round_complete(0, 10_000);      // first sample adopted directly
/// assert_eq!(est.smoothed_nanos(), 10_000);
/// est.on_round_complete(10_000, 30_000); // 0.75*10000 + 0.25*20000
/// assert_eq!(est.smoothed_nanos(), 12_500);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTimeEstimator {
    beta: f64,
    t_idle_nanos: u64,
    smoothed_nanos: f64,
    has_sample: bool,
    last_activity_nanos: u64,
}

impl RoundTimeEstimator {
    /// Creates an estimator with smoothing factor `beta` (weight on
    /// history) and idle-reset gap `t_idle_nanos`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= beta < 1`.
    pub fn new(beta: f64, t_idle_nanos: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&beta),
            "beta must be in [0,1), got {beta}"
        );
        RoundTimeEstimator {
            beta,
            t_idle_nanos,
            smoothed_nanos: 0.0,
            has_sample: false,
            last_activity_nanos: 0,
        }
    }

    /// The paper's configuration: `β = 0.75`, `T_idle` = the transmission
    /// time of one MTU on the given link.
    pub fn paper_default(mtu_bytes: u64, link_rate_bps: u64) -> Self {
        let t_idle = (mtu_bytes as f64 * 8.0 / link_rate_bps as f64 * 1e9).round() as u64;
        RoundTimeEstimator::new(0.75, t_idle.max(1))
    }

    /// Records a completed round that started at `start_nanos` and ended at
    /// `end_nanos`.
    pub fn on_round_complete(&mut self, start_nanos: u64, end_nanos: u64) {
        let sample = end_nanos.saturating_sub(start_nanos) as f64;
        if self.has_sample {
            self.smoothed_nanos = self.beta * self.smoothed_nanos + (1.0 - self.beta) * sample;
        } else {
            self.smoothed_nanos = sample;
            self.has_sample = true;
        }
        self.last_activity_nanos = end_nanos;
    }

    /// Notes port activity at `now_nanos`; a gap longer than `T_idle`
    /// since the last activity resets the estimate (idle port ⇒ no round).
    pub fn on_enqueue(&mut self, now_nanos: u64) {
        if self.has_sample && now_nanos.saturating_sub(self.last_activity_nanos) > self.t_idle_nanos
        {
            self.reset();
        }
        self.last_activity_nanos = now_nanos;
    }

    /// Clears the estimate back to "no round observed".
    pub fn reset(&mut self) {
        self.smoothed_nanos = 0.0;
        self.has_sample = false;
    }

    /// The smoothed round time in nanoseconds (0 until the first sample,
    /// which MQ-ECN interprets as "use the standard threshold").
    pub fn smoothed_nanos(&self) -> u64 {
        self.smoothed_nanos.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn first_sample_adopted() {
        let mut e = RoundTimeEstimator::new(0.75, 100);
        assert_eq!(e.smoothed_nanos(), 0);
        e.on_round_complete(50, 150);
        assert_eq!(e.smoothed_nanos(), 100);
    }

    #[test]
    fn ewma_converges_to_constant_rounds() {
        let mut e = RoundTimeEstimator::new(0.75, 1_000_000);
        let mut t = 0;
        for _ in 0..100 {
            e.on_round_complete(t, t + 500);
            t += 500;
        }
        assert!((e.smoothed_nanos() as i64 - 500).abs() <= 1);
    }

    #[test]
    fn idle_gap_resets() {
        let mut e = RoundTimeEstimator::new(0.75, 1_200);
        e.on_round_complete(0, 1_000);
        assert!(e.smoothed_nanos() > 0);
        // Arrival within T_idle: estimate kept.
        e.on_enqueue(2_000);
        assert!(e.smoothed_nanos() > 0);
        // Arrival after a long idle gap: reset.
        e.on_enqueue(10_000);
        assert_eq!(e.smoothed_nanos(), 0);
    }

    #[test]
    fn paper_default_t_idle_is_mtu_time() {
        // 1500 B at 10 Gbps = 1200 ns.
        let e = RoundTimeEstimator::paper_default(1500, 10_000_000_000);
        let mut e2 = e.clone();
        e2.on_round_complete(0, 100);
        e2.on_enqueue(100 + 1200); // exactly T_idle: no reset
        assert_eq!(e2.smoothed_nanos(), 100);
        e2.on_enqueue(100 + 1200 + 1201 + 1); // beyond: reset
        assert_eq!(e2.smoothed_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        RoundTimeEstimator::new(1.0, 100);
    }

    /// The estimate stays within the min/max of the samples seen since
    /// the last reset, for seeded-random sample runs.
    #[test]
    fn estimate_within_sample_range() {
        let mut rng = SimRng::seed_from(0x20);
        for _ in 0..64 {
            let len = 1 + rng.below(49);
            let samples: Vec<u64> = (0..len).map(|_| 1 + rng.below(99_999) as u64).collect();
            let mut e = RoundTimeEstimator::new(0.75, u64::MAX);
            let mut t = 0;
            for s in &samples {
                e.on_round_complete(t, t + s);
                t += s;
            }
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            let got = e.smoothed_nanos();
            assert!(
                got >= lo.saturating_sub(1) && got <= hi + 1,
                "{got} not in [{lo},{hi}]"
            );
        }
    }
}
