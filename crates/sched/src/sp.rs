//! Strict-priority scheduling.

use crate::{QueueState, Scheduler};

/// Strict Priority (SP): the lowest-indexed non-empty queue always
/// transmits; queue 0 is the highest priority.
///
/// SP has no round concept, so [`Scheduler::round_time_nanos`] is `None` —
/// MQ-ECN cannot run on it (Table I of the paper), while PMSB and TCN can.
///
/// # Example
///
/// ```
/// use pmsb_sched::{Scheduler, StrictPriority};
///
/// let sp = StrictPriority::new(3);
/// assert_eq!(sp.num_queues(), 3);
/// assert_eq!(sp.round_time_nanos(), None); // not round-based
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrictPriority {
    num_queues: usize,
}

impl StrictPriority {
    /// Creates the policy over `num_queues` queues, highest priority first.
    pub fn new(num_queues: usize) -> Self {
        StrictPriority { num_queues }
    }
}

impl Scheduler for StrictPriority {
    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn on_enqueue(&mut self, _q: usize, _bytes: u64, _now_nanos: u64) {}

    fn select(&mut self, state: &QueueState<'_>, _now_nanos: u64) -> Option<usize> {
        (0..self.num_queues).find(|q| state.is_active(*q))
    }

    fn on_dequeue(&mut self, _q: usize, _bytes: u64, _now_nanos: u64) {}

    fn weights(&self) -> Vec<u64> {
        vec![1; self.num_queues]
    }

    fn name(&self) -> &'static str {
        "sp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::B;
    use crate::MultiQueue;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn highest_priority_first() {
        let mut mq = MultiQueue::new(Box::new(StrictPriority::new(3)), u64::MAX);
        mq.enqueue(2, B(1), 0).unwrap();
        mq.enqueue(0, B(2), 0).unwrap();
        mq.enqueue(1, B(3), 0).unwrap();
        assert_eq!(mq.dequeue(1).unwrap().0, 0);
        assert_eq!(mq.dequeue(2).unwrap().0, 1);
        assert_eq!(mq.dequeue(3).unwrap().0, 2);
    }

    #[test]
    fn low_priority_starves_under_backlog() {
        let mut mq = MultiQueue::new(Box::new(StrictPriority::new(2)), u64::MAX);
        for _ in 0..100 {
            mq.enqueue(0, B(10), 0).unwrap();
        }
        mq.enqueue(1, B(10), 0).unwrap();
        for _ in 0..100 {
            assert_eq!(mq.dequeue(0).unwrap().0, 0, "queue 1 must starve");
        }
        assert_eq!(mq.dequeue(0).unwrap().0, 1);
    }

    /// SP always serves the minimum non-empty index, for seeded-random
    /// active sets.
    #[test]
    fn serves_minimum_active() {
        let mut rng = SimRng::seed_from(0x59);
        for _ in 0..64 {
            let n = 1 + rng.below(7);
            let mut active: Vec<bool> = (0..n).map(|_| rng.below(2) == 1).collect();
            active[rng.below(n)] = true; // at least one non-empty queue
            let mut mq = MultiQueue::new(Box::new(StrictPriority::new(n)), u64::MAX);
            for (q, a) in active.iter().enumerate() {
                if *a {
                    mq.enqueue(q, B(1), 0).unwrap();
                }
            }
            let expect = active.iter().position(|a| *a).unwrap();
            assert_eq!(mq.dequeue(1).unwrap().0, expect);
        }
    }
}
